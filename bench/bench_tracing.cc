// Tracing overhead benchmarks (PR 7 tentpole).
//
// BM_BatchInferenceTracingDisabled vs BM_BatchInferenceTracingFull vs
// BM_BatchInferenceTracingFlight is the headline comparison: the same SQ
// batch analyzed with tracing compiled in but runtime-off (the production
// default, budgeted at <= 2% over an untraced build), with a full-mode
// session recording every span, and with the small flight-recorder rings.
// BM_DisabledSpanCost and BM_EnabledInstantCost give the per-site price:
// the disabled span is one relaxed atomic load and branch; the enabled
// instant is a clock read plus a ring write under an uncontended lock.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/capture/packet_record.h"
#include "src/common/tracing.h"
#include "src/csi/batch_analyzer.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

// One SQ service plus captured sessions, generated once per process — the
// same shape as the candidate-cache bench so numbers are comparable across
// BENCH_* tags.
struct Workload {
  media::Manifest manifest;
  std::vector<capture::CaptureTrace> traces;
};

const Workload& SqWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    w->manifest = testbed::MakeAssetForDesign(infer::DesignType::kSQ, 1);
    for (int i = 0; i < 4; ++i) {
      testbed::SessionConfig config;
      config.design = infer::DesignType::kSQ;
      config.manifest = &w->manifest;
      config.downlink = nettrace::StableTrace("s", (3 + i) * kMbps);
      config.duration = 60 * kUsPerSec;
      config.seed = 200 + static_cast<uint64_t>(i);
      w->traces.push_back(testbed::RunStreamingSession(config).capture);
    }
    return w;
  }();
  return *workload;
}

void RunBatch(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::InferenceConfig config;
  config.design = infer::DesignType::kSQ;
  config.host_suffix = w.manifest.host;
  infer::BatchConfig batch;
  batch.threads = 2;
  infer::BatchAnalyzer analyzer(&w.manifest, config, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

// Production default: tracing compiled in, no session active. Every
// instrumentation site reduces to an atomic load + branch.
void BM_BatchInferenceTracingDisabled(benchmark::State& state) {
  trace::TraceSession::Global().Stop();
  RunBatch(state);
}

// Full-mode session: every span/instant/flow recorded into 32k-event rings
// (overwriting; export is not timed — deployments export once per run).
void BM_BatchInferenceTracingFull(benchmark::State& state) {
  trace::SessionOptions options;
  options.mode = trace::Mode::kFull;
  trace::TraceSession::Global().Start(options);
  RunBatch(state);
  trace::TraceSession::Global().Stop();
}

// Flight-recorder mode: same recording path, 4k-event rings. The always-on
// post-mortem configuration.
void BM_BatchInferenceTracingFlight(benchmark::State& state) {
  trace::SessionOptions options;
  options.mode = trace::Mode::kFlight;
  trace::TraceSession::Global().Start(options);
  RunBatch(state);
  trace::TraceSession::Global().Stop();
}

// Per-site cost of a span macro with no active session (ns/op).
void BM_DisabledSpanCost(benchmark::State& state) {
  trace::TraceSession::Global().Stop();
  for (auto _ : state) {
    CSI_TRACE_SPAN("bench_disabled_span", "bench");
    benchmark::ClobberMemory();
  }
}

// Per-event cost of an instant with a full-mode session recording (ns/op).
void BM_EnabledInstantCost(benchmark::State& state) {
  trace::SessionOptions options;
  options.mode = trace::Mode::kFull;
  trace::TraceSession::Global().Start(options);
  [[maybe_unused]] int64_t i = 0;
  for (auto _ : state) {
    CSI_TRACE_INSTANT("bench_instant", "bench", {"i", i++});
    benchmark::ClobberMemory();
  }
  trace::TraceSession::Global().Stop();
}

}  // namespace

BENCHMARK(BM_BatchInferenceTracingDisabled)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_BatchInferenceTracingFull)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_BatchInferenceTracingFlight)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_DisabledSpanCost);
BENCHMARK(BM_EnabledInstantCost);

BENCHMARK_MAIN();
