// §3.2 experiment: accuracy of chunk-size estimation from encrypted packets.
//
// The paper downloads objects of 50 KB..1 MB over HTTPS and QUIC (Cronet) in
// varied mobile networks, 100 downloads each, and reports a maximum
// estimation error of 1% (HTTPS) and 5% (QUIC). We replicate the protocol:
// objects are fetched over the simulated stacks across bandwidths and loss
// rates; the estimate is the de-duplicated TLS byte sum (HTTPS) or the raw
// QUIC payload sum.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/capture/capture.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/http/http_session.h"
#include "src/net/link.h"
#include "src/sim/simulator.h"

using namespace csi;

namespace {

struct DownloadResult {
  Bytes true_size = 0;
  Bytes estimate = 0;
};

DownloadResult DownloadOnce(http::Protocol protocol, Bytes object_size, BitsPerSec bandwidth,
                            double loss, uint64_t seed) {
  sim::Simulator sim;
  capture::GatewayTap tap(&sim);
  const auto trace = nettrace::StableTrace("bench", bandwidth);
  std::unique_ptr<http::HttpSession> session;
  net::LinkConfig down;
  down.trace = &trace;
  down.propagation_delay = 15 * kUsPerMs;
  auto downlink = std::make_unique<net::Link>(
      &sim, down,
      loss > 0 ? std::unique_ptr<net::LossModel>(new net::BernoulliLoss(loss))
               : std::unique_ptr<net::LossModel>(new net::NoLoss()),
      Rng(seed), tap.Tap([&session](const net::Packet& p) { session->DeliverToClient(p); }));
  net::LinkConfig up;
  up.propagation_delay = 15 * kUsPerMs;
  auto uplink = std::make_unique<net::Link>(
      &sim, up, std::make_unique<net::NoLoss>(), Rng(seed + 1),
      [&session](const net::Packet& p) { session->DeliverToServer(p); });

  http::SessionConfig config;
  config.protocol = protocol;
  session = std::make_unique<http::HttpSession>(
      &sim, config, tap.Tap([&uplink](const net::Packet& p) { uplink->Send(p); }),
      [&downlink](const net::Packet& p) { downlink->Send(p); },
      [object_size](const std::string&) { return object_size; });

  session->Connect([] {});
  sim.RunUntil(2 * kUsPerSec);
  TimeUs request_time = sim.Now();
  bool done = false;
  session->Get("object", 380, [&](const http::FetchResult&) { done = true; });
  sim.RunUntil(sim.Now() + 300 * kUsPerSec);
  if (!done) {
    return {object_size, 0};
  }
  // Estimate exactly as §3.2: sum downlink payloads after the request,
  // de-duplicating TCP retransmissions by sequence number.
  Bytes estimate = 0;
  std::vector<uint64_t> seen;
  for (const auto& r : tap.trace()) {
    if (r.from_client || r.payload <= 0 || r.timestamp <= request_time) {
      continue;
    }
    if (protocol == http::Protocol::kHttps) {
      bool dup = false;
      for (uint64_t s : seen) {
        if (s == r.tcp_seq) {
          dup = true;
          break;
        }
      }
      if (dup) {
        continue;
      }
      seen.push_back(r.tcp_seq);
      estimate += r.payload;
    } else {
      estimate += r.payload - net::kQuicHeaderBytes;
    }
  }
  return {object_size, estimate};
}

}  // namespace

int main() {
  const std::vector<Bytes> sizes{50 * kKB, 100 * kKB, 250 * kKB, 500 * kKB, 1 * kMB};
  const std::vector<BitsPerSec> bandwidths{2 * kMbps, 8 * kMbps, 25 * kMbps};
  const std::vector<double> losses{0.0, 0.005, 0.02};

  std::printf("§3.2 — size-estimation error from encrypted traffic\n");
  std::printf("(objects 50KB..1MB, bandwidths 2/8/25 Mbps, loss 0/0.5/2%%)\n\n");

  TextTable table;
  table.SetHeader({"protocol", "downloads", "mean err %", "p95 err %", "max err %",
                   "undershoots", "paper max"});
  for (http::Protocol protocol : {http::Protocol::kHttps, http::Protocol::kQuic}) {
    std::vector<double> errors;
    int undershoots = 0;
    uint64_t seed = 1;
    for (Bytes size : sizes) {
      for (BitsPerSec bw : bandwidths) {
        for (double loss : losses) {
          for (int rep = 0; rep < 3; ++rep) {
            const DownloadResult r = DownloadOnce(protocol, size, bw, loss, seed += 7);
            if (r.estimate == 0) {
              continue;  // did not complete in time
            }
            const double err =
                (static_cast<double>(r.estimate) - static_cast<double>(r.true_size)) /
                static_cast<double>(r.true_size);
            errors.push_back(100 * err);
            if (err < 0) {
              ++undershoots;
            }
          }
        }
      }
    }
    double max_err = 0;
    for (double e : errors) {
      max_err = std::max(max_err, e);
    }
    table.AddRow({protocol == http::Protocol::kHttps ? "HTTPS" : "QUIC",
                  std::to_string(errors.size()), FormatDouble(Mean(errors), 3),
                  FormatDouble(Percentile(errors, 95), 3), FormatDouble(max_err, 3),
                  std::to_string(undershoots),
                  protocol == http::Protocol::kHttps ? "1%" : "5%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Property (1): estimates never undershoot; error bounded by k.\n");
  return 0;
}
