// Shared group-candidate cache microbenchmarks (PR 6 tentpole).
//
// BM_SqBatchNoCache vs BM_SqBatchWarmSharedCache is the headline number: the
// same SQ batch analyzed with enumeration from scratch per group versus
// warm-started from the batch-wide cache (the deployment steady state, where
// a gateway re-analyzes sessions of one service all day). BM_SqBatchColdCache
// isolates the insert/bookkeeping overhead the first batch pays to warm the
// cache. BM_GroupEnumCold vs BM_GroupEnumHit gives the per-group cost: the
// time/op of the hit benchmark IS the ns/group of the cached fast path.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/capture/packet_record.h"
#include "src/common/rng.h"
#include "src/csi/batch_analyzer.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/chunk_database.h"
#include "src/csi/flow_classifier.h"
#include "src/csi/group_search.h"
#include "src/csi/splitter.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

// One SQ service plus captured sessions of it, generated once per process.
// Duplicated captures model the deployment stream: many devices replaying the
// same popular content, which is exactly the signature-reuse the cache banks.
struct Workload {
  media::Manifest manifest;
  std::vector<capture::CaptureTrace> traces;
};

const Workload& SqWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    // Full-length asset (the deployment regime: enumeration cost scales with
    // manifest positions), short captures of its start.
    w->manifest = testbed::MakeAssetForDesign(infer::DesignType::kSQ, 1);
    std::vector<capture::CaptureTrace> unique;
    for (int i = 0; i < 2; ++i) {
      testbed::SessionConfig config;
      config.design = infer::DesignType::kSQ;
      config.manifest = &w->manifest;
      config.downlink = nettrace::StableTrace("s", (4 + 2 * i) * kMbps);
      config.duration = 60 * kUsPerSec;
      config.seed = 100 + static_cast<uint64_t>(i);
      unique.push_back(testbed::RunStreamingSession(config).capture);
    }
    for (int copy = 0; copy < 3; ++copy) {
      for (const capture::CaptureTrace& trace : unique) {
        w->traces.push_back(trace);
      }
    }
    return w;
  }();
  return *workload;
}

infer::DbSnapshot SqSnapshot() {
  static const infer::DbSnapshot* snap = new infer::DbSnapshot(
      std::make_shared<const infer::ChunkDatabase>(&SqWorkload().manifest));
  return *snap;
}

infer::InferenceConfig SqConfig() {
  infer::InferenceConfig config;
  config.design = infer::DesignType::kSQ;
  config.host_suffix = SqWorkload().manifest.host;
  config.other_object_sizes.push_back(SqWorkload().manifest.SerializedSize() +
                                      config.expected_fixed_overhead);
  return config;
}

void ReportCacheCounters(benchmark::State& state, const infer::BatchAnalyzer& analyzer) {
  if (const infer::GroupCandidateCache* cache = analyzer.candidate_cache()) {
    const infer::GroupCandidateCache::Stats stats = cache->stats();
    state.counters["hit_ratio"] = stats.hit_ratio();
    state.counters["groups/s"] = benchmark::Counter(
        static_cast<double>(stats.hits + stats.misses), benchmark::Counter::kIsRate);
  }
}

// Baseline: every group enumerated from scratch, every batch.
void BM_SqBatchNoCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.candidate_cache_mb = 0;
  infer::BatchAnalyzer analyzer(SqSnapshot(), SqConfig(), batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

// First batch against a fresh cache: pays the inserts, banks the entries.
void BM_SqBatchColdCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  for (auto _ : state) {
    state.PauseTiming();
    infer::InferenceConfig config = SqConfig();
    config.candidate_cache = std::make_shared<infer::GroupCandidateCache>(64ull << 20);
    infer::BatchConfig batch;
    batch.threads = 2;
    infer::BatchAnalyzer analyzer(SqSnapshot(), std::move(config), batch);
    state.ResumeTiming();
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

// Steady state: the cache already holds this service's group signatures.
void BM_SqBatchWarmSharedCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.candidate_cache_mb = 64;
  infer::BatchAnalyzer analyzer(SqSnapshot(), SqConfig(), batch);
  analyzer.AnalyzeAll(w.traces);  // warm pass, untimed
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
  ReportCacheCounters(state, analyzer);
}

// --- The repeated-trace enumeration workload -------------------------------
//
// The layer the cache targets, isolated: every trace's split groups,
// enumerated over the full admissible start range (the sequence-root regime —
// chained groups collapse to single-start ranges the per-searcher memo
// already absorbs, so the shared cache earns its keep exactly here).

const std::vector<std::vector<infer::TrafficGroup>>& TraceGroups() {
  static const auto* groups = [] {
    auto* g = new std::vector<std::vector<infer::TrafficGroup>>;
    const Workload& w = SqWorkload();
    for (const capture::CaptureTrace& trace : w.traces) {
      std::vector<infer::Flow> flows = infer::ClassifyMediaFlows(trace, w.manifest.host);
      std::vector<infer::TrafficGroup> split;
      if (!flows.empty()) {
        split = infer::SplitIntoGroups(flows.front().packets, {});
      }
      g->push_back(std::move(split));
    }
    return g;
  }();
  return *groups;
}

infer::GroupSearchConfig EnumConfig() {
  infer::GroupSearchConfig config;
  config.k = 0.05;
  config.expected_overhead = 0.005;
  return config;
}

int64_t EnumerateAllTraceGroups(const infer::DbSnapshot& snap,
                                const infer::GroupSearchConfig& config) {
  int64_t enumerated = 0;
  for (const std::vector<infer::TrafficGroup>& trace : TraceGroups()) {
    for (const infer::TrafficGroup& group : trace) {
      benchmark::DoNotOptimize(infer::EnumerateGroupCandidateSet(
          group, snap, config, {}, 0, snap.num_positions()));
      ++enumerated;
    }
  }
  return enumerated;
}

// No cache: the full DFS for every group of every trace, every batch.
void BM_RepeatedTraceGroupsNoCache(benchmark::State& state) {
  const infer::DbSnapshot snap = SqSnapshot();
  const infer::GroupSearchConfig config = EnumConfig();
  int64_t groups = 0;
  for (auto _ : state) {
    groups += EnumerateAllTraceGroups(snap, config);
  }
  state.SetItemsProcessed(groups);
}

// Fresh cache per batch: the first-batch price (inserts included).
void BM_RepeatedTraceGroupsCold(benchmark::State& state) {
  const infer::DbSnapshot snap = SqSnapshot();
  int64_t groups = 0;
  for (auto _ : state) {
    state.PauseTiming();
    infer::GroupCandidateCache cache(64ull << 20);
    infer::GroupSearchConfig config = EnumConfig();
    config.shared_cache = &cache;
    state.ResumeTiming();
    groups += EnumerateAllTraceGroups(snap, config);
  }
  state.SetItemsProcessed(groups);
}

// Shared warm cache across batches: the steady-state headline number.
void BM_RepeatedTraceGroupsWarm(benchmark::State& state) {
  const infer::DbSnapshot snap = SqSnapshot();
  infer::GroupCandidateCache cache(64ull << 20);
  infer::GroupSearchConfig config = EnumConfig();
  config.shared_cache = &cache;
  EnumerateAllTraceGroups(snap, config);  // warm pass, untimed
  int64_t groups = 0;
  for (auto _ : state) {
    groups += EnumerateAllTraceGroups(snap, config);
  }
  state.SetItemsProcessed(groups);
  state.counters["hit_ratio"] = cache.stats().hit_ratio();
}

// --- Per-group costs -------------------------------------------------------

media::Manifest DenseManifest(int positions) {
  media::Manifest m;
  m.asset_id = "bench-cache";
  m.host = "bench.cache.example";
  Rng rng(0x77);
  for (int t = 0; t < 6; ++t) {
    media::Track track;
    track.name = "v" + std::to_string(t);
    track.type = media::MediaType::kVideo;
    track.nominal_bitrate = (t + 1) * 1'000'000;
    const double mean = 250'000.0 * (t + 1);
    for (int i = 0; i < positions; ++i) {
      track.chunks.push_back(
          media::Chunk{static_cast<Bytes>(mean * rng.Uniform(0.5, 1.8)), 2'000'000});
    }
    m.video_tracks.push_back(std::move(track));
  }
  return m;
}

infer::TrafficGroup PlantedGroup(const media::Manifest& m, int start, int run) {
  infer::TrafficGroup g;
  Bytes total = 0;
  for (int j = 0; j < run; ++j) {
    g.requests.push_back(infer::DetectedRequest{});
    total += m.video_tracks[1].chunks[static_cast<size_t>(start + j)].size;
  }
  g.estimated_total = total + total / 300 + 1;
  return g;
}

// Full enumeration cost for one two-chunk group over the whole start range.
void BM_GroupEnumCold(benchmark::State& state) {
  const media::Manifest m = DenseManifest(512);
  const infer::ChunkDatabase db(&m);
  const infer::DbSnapshot snap(db);
  const infer::TrafficGroup group = PlantedGroup(m, 37, 2);
  infer::GroupSearchConfig config;
  config.k = 0.05;
  config.expected_overhead = 0.005;
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::EnumerateGroupCandidateSet(
        group, snap, config, {}, 0, snap.num_positions()));
  }
}

// The same call against a warm shared cache: time/op = ns per cached group.
void BM_GroupEnumHit(benchmark::State& state) {
  const media::Manifest m = DenseManifest(512);
  const infer::ChunkDatabase db(&m);
  const infer::DbSnapshot snap(db);
  const infer::TrafficGroup group = PlantedGroup(m, 37, 2);
  infer::GroupCandidateCache cache(64ull << 20);
  infer::GroupSearchConfig config;
  config.k = 0.05;
  config.expected_overhead = 0.005;
  config.shared_cache = &cache;
  benchmark::DoNotOptimize(infer::EnumerateGroupCandidateSet(
      group, snap, config, {}, 0, snap.num_positions()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::EnumerateGroupCandidateSet(
        group, snap, config, {}, 0, snap.num_positions()));
  }
  state.counters["hit_ratio"] = cache.stats().hit_ratio();
}

}  // namespace

BENCHMARK(BM_SqBatchNoCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqBatchColdCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqBatchWarmSharedCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_RepeatedTraceGroupsNoCache)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RepeatedTraceGroupsCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RepeatedTraceGroupsWarm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupEnumCold);
BENCHMARK(BM_GroupEnumHit);

BENCHMARK_MAIN();
