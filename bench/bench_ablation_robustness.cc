// Ablation study of CSI's robustness mechanisms (beyond the paper's
// evaluation; DESIGN.md §5 motivates each):
//
//   * wildcards       — unexplainable/oversized groups widen the index chain
//                       instead of breaking it;
//   * merge repair    — exchanges split by retransmitted QUIC requests can be
//                       re-joined by the chain search;
//   * phantom deficit — group explanations may use fewer objects than
//                       detected requests;
//   * calibrated rank — candidates ordered by deviation from the measured
//                       protocol-overhead model (vs. uncalibrated);
//   * SP2             — the simultaneous-request split points (vs. SP1 only).
//
// Each row disables one mechanism and reports Table-4-style accuracy on the
// design it protects.

#include <cstdio>

#include "src/common/table.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

struct Variant {
  const char* name;
  infer::DesignType design;
  void (*tweak)(infer::InferenceConfig*);
};

void NoTweak(infer::InferenceConfig*) {}
void NoWildcards(infer::InferenceConfig* c) { c->enable_wildcards = false; }
void NoMerge(infer::InferenceConfig* c) { c->enable_merge_repair = false; }
void NoDeficit(infer::InferenceConfig* c) { c->enable_phantom_deficit = false; }
void NoRanking(infer::InferenceConfig* c) { c->enable_calibrated_ranking = false; }
void NoSp2(infer::InferenceConfig* c) { c->splitter.enable_sp2 = false; }

}  // namespace

int main() {
  const TimeUs duration = 10 * 60 * kUsPerSec;
  Rng trace_rng(0xAB1A7E);
  const auto traces = nettrace::CellularTraceLibrary(4, duration, trace_rng);

  const Variant variants[] = {
      {"SQ baseline (all on)", infer::DesignType::kSQ, NoTweak},
      {"SQ - wildcards", infer::DesignType::kSQ, NoWildcards},
      {"SQ - phantom deficit", infer::DesignType::kSQ, NoDeficit},
      {"SQ - calibrated ranking", infer::DesignType::kSQ, NoRanking},
      {"SQ - SP2 split points", infer::DesignType::kSQ, NoSp2},
      {"CQ baseline (all on)", infer::DesignType::kCQ, NoTweak},
      {"CQ - merge repair", infer::DesignType::kCQ, NoMerge},
      {"CQ - calibrated ranking", infer::DesignType::kCQ, NoRanking},
  };

  std::printf("Ablation — contribution of each robustness mechanism\n\n");
  TextTable table;
  table.SetHeader({"variant", "runs", "best:100%", "best:>95%", "best:5pct", "worst:5pct"});

  for (const Variant& variant : variants) {
    std::vector<testbed::AccuracyResult> runs;
    uint64_t seed = 4242;
    for (int v = 0; v < 2; ++v) {
      const media::Manifest manifest = testbed::MakeAssetForDesign(variant.design, v, duration);
      for (const auto& trace : traces) {
        testbed::SessionConfig session;
        session.design = variant.design;
        session.manifest = &manifest;
        session.downlink = trace;
        session.duration = duration;
        session.seed = ++seed;
        const auto result = RunStreamingSession(session);
        infer::InferenceConfig config;
        config.design = variant.design;
        variant.tweak(&config);
        const infer::InferenceEngine engine(&manifest, config);
        const auto inference = engine.Analyze(result.capture);
        runs.push_back(testbed::ScoreInference(inference, result.downloads));
      }
    }
    const auto best = testbed::Aggregate(runs, /*best=*/true);
    const auto worst = testbed::Aggregate(runs, /*best=*/false);
    table.AddRow({variant.name, std::to_string(runs.size()),
                  FormatDouble(best.pct_100_match, 1), FormatDouble(best.pct_above_95, 1),
                  FormatDouble(best.pct5_accuracy, 1), FormatDouble(worst.pct5_accuracy, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Disabling a mechanism should not raise accuracy; large drops show why the\n"
              "mechanism exists (DESIGN.md §5).\n");
  return 0;
}
