#!/usr/bin/env bash
# Builds (Release) and runs google-benchmark suites, writing a combined
# BENCH_<tag>.json at the repo root via --benchmark_format=json.
#
# Usage: bench/run_benches.sh [tag] [bench_name...]
#   tag          suffix of the output file (default: pr1)
#   bench_name   restrict to these suites (default: every bench_* binary)
set -euo pipefail

TAG="${1:-pr1}"
shift $(( $# > 0 ? 1 : 0 ))
ONLY=("$@")
REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$REPO/build-bench"

cmake -B "$BUILD" -S "$REPO" -DCMAKE_BUILD_TYPE=Release >/dev/null
if (( ${#ONLY[@]} > 0 )); then
  cmake --build "$BUILD" -j "$(nproc)" --target "${ONLY[@]}" >/dev/null
else
  cmake --build "$BUILD" -j "$(nproc)" >/dev/null
fi

OUT="$REPO/BENCH_${TAG}.json"
TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

benches=()
for bin in "$BUILD"/bench/bench_*; do
  [[ -x "$bin" ]] || continue
  name="$(basename "$bin")"
  if (( ${#ONLY[@]} > 0 )); then
    keep=0
    for want in "${ONLY[@]}"; do [[ "$name" == "$want" ]] && keep=1; done
    (( keep )) || continue
  fi
  echo "== $name" >&2
  "$bin" --benchmark_format=json --benchmark_out="$TMPDIR_BENCH/$name.json" \
         --benchmark_out_format=json >&2
  benches+=("$TMPDIR_BENCH/$name.json")
done

# Merge: keep the context of the first suite, concatenate all benchmarks.
python3 - "$OUT" "${benches[@]}" <<'EOF'
import json, sys
out, files = sys.argv[1], sys.argv[2:]
merged = None
for path in files:
    with open(path) as f:
        data = json.load(f)
    if merged is None:
        merged = data
    else:
        merged["benchmarks"].extend(data["benchmarks"])
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
print(out)
EOF
