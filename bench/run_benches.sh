#!/usr/bin/env bash
# Builds (Release) and runs google-benchmark suites, writing a combined
# BENCH_<tag>.json at the repo root via --benchmark_format=json.
#
# Usage: bench/run_benches.sh [tag] [bench_name...]
#   tag          suffix of the output file (default: pr1)
#   bench_name   restrict to these suites (default: every bench_* binary)
set -euo pipefail

TAG="${1:-pr1}"
shift $(( $# > 0 ? 1 : 0 ))
ONLY=("$@")
REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$REPO/build-bench"

cmake -B "$BUILD" -S "$REPO" -DCMAKE_BUILD_TYPE=Release >/dev/null
if (( ${#ONLY[@]} > 0 )); then
  cmake --build "$BUILD" -j "$(nproc)" --target "${ONLY[@]}" >/dev/null
else
  cmake --build "$BUILD" -j "$(nproc)" >/dev/null
fi

OUT="$REPO/BENCH_${TAG}.json"
TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

benches=()
for bin in "$BUILD"/bench/bench_*; do
  [[ -x "$bin" ]] || continue
  name="$(basename "$bin")"
  if (( ${#ONLY[@]} > 0 )); then
    keep=0
    for want in "${ONLY[@]}"; do [[ "$name" == "$want" ]] && keep=1; done
    (( keep )) || continue
  fi
  echo "== $name" >&2
  "$bin" --benchmark_format=json --benchmark_out="$TMPDIR_BENCH/$name.json" \
         --benchmark_out_format=json >&2
  benches+=("$TMPDIR_BENCH/$name.json")
done

# Pipeline-telemetry snapshot: run a small generated batch through csi_batch
# and save the metrics JSON next to the bench output, so every bench tag also
# records stage latencies / cache hit rates / thread-pool stats.
cmake --build "$BUILD" -j "$(nproc)" --target csi_testgen csi_batch >/dev/null
METRICS_OUT="$REPO/METRICS_${TAG}.json"
# Seeds congruent mod 5 share the same generated asset, so every session can
# be analyzed against the seed-1 manifest.
for seed in 1 6 11 16; do
  mkdir -p "$TMPDIR_BENCH/batch/s$seed"
  "$BUILD/tools/csi_testgen" --design SH --duration 60 --seed "$seed" \
      --out "$TMPDIR_BENCH/batch/s$seed" >/dev/null
done
"$BUILD/tools/csi_batch" --manifest "$TMPDIR_BENCH/batch/s1/video.manifest" \
    --design SH --dir "$TMPDIR_BENCH/batch" --quiet \
    --metrics-out "$METRICS_OUT" >&2
echo "$METRICS_OUT" >&2

# Merge: keep the context of the first suite, concatenate all benchmarks.
python3 - "$OUT" "${benches[@]}" <<'EOF'
import json, sys
out, files = sys.argv[1], sys.argv[2:]
merged = None
for path in files:
    with open(path) as f:
        data = json.load(f)
    if merged is None:
        merged = data
    else:
        merged["benchmarks"].extend(data["benchmarks"])
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
print(out)
EOF
