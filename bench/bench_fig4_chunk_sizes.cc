// Figure 4: chunk sizes of a high-PASR video across its tracks, illustrating
// (a) VBR size diversity within each track, (b) cross-track correlation at
// each position, and (c) size overlap between tracks — including the chunks
// a 1 MB estimate cannot distinguish (the highlighted set in the paper).

#include <cstdio>

#include "src/common/table.h"
#include "src/csi/chunk_database.h"
#include "src/media/encoder.h"

using namespace csi;

int main() {
  // The paper plots "Adele - Hello" (PASR 2.6). Encode a comparable asset.
  media::EncoderConfig config;
  config.target_pasr = 2.6;
  config.maxrate_factor = 4.0;  // high-PASR encode: the cap sits far out
  config.minrate_factor = 0.1;  // ...and so does the quality floor
  Rng rng(0xF16'4);
  const media::Manifest m =
      media::EncodeAsset("fig4-pasr26", "cdn.example", 6 * 60 * kUsPerSec, config, rng);

  std::printf("Figure 4 — chunk sizes of a PASR-2.6 encoding (%d tracks, %d chunks)\n\n",
              m.num_video_tracks(), m.num_positions());

  TextTable table;
  std::vector<std::string> header{"index"};
  for (const auto& t : m.video_tracks) {
    header.push_back(t.name + " (KB)");
  }
  table.SetHeader(header);
  for (int i = 0; i < m.num_positions(); i += 4) {  // subsample for readability
    std::vector<std::string> row{std::to_string(i)};
    for (const auto& t : m.video_tracks) {
      row.push_back(FormatDouble(
          static_cast<double>(t.chunks[static_cast<size_t>(i)].size) / 1000.0, 0));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());

  TextTable stats;
  stats.SetHeader({"track", "bitrate (kbps)", "mean KB", "min KB", "max KB", "PASR"});
  for (const auto& t : m.video_tracks) {
    Bytes lo = t.chunks[0].size;
    Bytes hi = t.chunks[0].size;
    for (const auto& c : t.chunks) {
      lo = std::min(lo, c.size);
      hi = std::max(hi, c.size);
    }
    stats.AddRow({t.name, FormatDouble(t.nominal_bitrate / 1000.0, 0),
                  FormatDouble(t.MeanChunkSize() / 1000.0, 0),
                  FormatDouble(static_cast<double>(lo) / 1000.0, 0),
                  FormatDouble(static_cast<double>(hi) / 1000.0, 0),
                  FormatDouble(t.Pasr(), 2)});
  }
  std::printf("%s\n", stats.Render().c_str());

  // The paper highlights the chunks indistinguishable from a 1 MB estimate
  // at k = 1%: they span multiple tracks and multiple positions.
  const infer::ChunkDatabase db(&m);
  const auto candidates = db.VideoCandidates(1 * kMB, 0.01);
  std::printf("chunks matching a 1 MB estimate (k=1%%): %zu\n", candidates.size());
  for (const auto& c : candidates) {
    std::printf("  track %s, index %d, size %ld\n",
                m.video_tracks[static_cast<size_t>(c.track)].name.c_str(), c.index,
                static_cast<long>(m.SizeOf(c)));
  }
  std::printf("\nPaper's observation: multiple chunks in both the same track and different\n"
              "tracks share sizes, so a single size cannot identify a chunk.\n");
  return 0;
}
