// §5.3.2 validation: the SP1/SP2 traffic splitting keeps SQ groups small.
// The paper reports that 99.7% of groups contain at most 10 requests across
// YouTube sessions with various bandwidth profiles.

#include <cstdio>
#include <map>

#include "src/common/table.h"
#include "src/csi/flow_classifier.h"
#include "src/csi/splitter.h"
#include "src/testbed/experiment.h"

using namespace csi;

int main() {
  const TimeUs duration = 10 * 60 * kUsPerSec;
  Rng trace_rng(0x532);
  const auto traces = nettrace::CellularTraceLibrary(8, duration, trace_rng);

  std::map<int, int> histogram;
  int total_groups = 0;
  int at_most_10 = 0;
  uint64_t seed = 10;
  for (int v = 0; v < 3; ++v) {
    const media::Manifest manifest =
        testbed::MakeAssetForDesign(infer::DesignType::kSQ, v, duration);
    for (const auto& trace : traces) {
      testbed::SessionConfig session;
      session.design = infer::DesignType::kSQ;
      session.manifest = &manifest;
      session.downlink = trace;
      session.duration = duration;
      session.seed = ++seed;
      const auto result = RunStreamingSession(session);
      const auto flows = infer::ClassifyMediaFlows(result.capture, "cdn.example");
      if (flows.empty()) {
        continue;
      }
      for (const auto& group : infer::SplitIntoGroups(flows[0].packets)) {
        ++histogram[std::min(group.num_requests(), 16)];
        ++total_groups;
        if (group.num_requests() <= 10) {
          ++at_most_10;
        }
      }
    }
  }

  std::printf("§5.3.2 — SQ traffic-group sizes after SP1/SP2 splitting\n\n");
  TextTable table;
  table.SetHeader({"requests/group", "count", "fraction %"});
  for (const auto& [size, count] : histogram) {
    table.AddRow({size >= 16 ? ">=16" : std::to_string(size), std::to_string(count),
                  FormatDouble(100.0 * count / total_groups, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("groups <= 10 requests: %.2f%%   (paper: 99.7%%)\n",
              100.0 * at_most_10 / std::max(total_groups, 1));
  return 0;
}
