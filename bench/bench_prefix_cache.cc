// Analysis-prefix cache microbenchmarks (PR 8 tentpole).
//
// BM_SqBatchNoPrefixCache vs BM_SqBatchWarmPrefixCache is the headline
// number: the same SQ batch analyzed with the per-packet stages (flow
// classification, traffic splitting) recomputed per trace versus served from
// the shared prefix cache — the replay/steady-state regime where a gateway
// re-analyzes the same captures against every manifest refresh.
// BM_SqBatchColdPrefixCache isolates the fingerprint + insert overhead the
// first pass pays. BM_LiveReplayAcrossRefreshes is the end-to-end sweep: a
// growing LiveChunkDatabase publishing refreshes while the same capture set
// replays per snapshot — only the snapshot-dependent back half (merge repair,
// group search) reruns on warm rounds. The candidate cache is disabled
// throughout so every delta attributes to the prefix cache alone.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/capture/packet_record.h"
#include "src/csi/batch_analyzer.h"
#include "src/csi/live_database.h"
#include "src/csi/prefix_cache.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

// One SQ service plus captured sessions, generated once per process.
// Duplicated captures model the replay stream the cache banks on.
struct Workload {
  media::Manifest manifest;
  std::vector<capture::CaptureTrace> traces;
};

const Workload& SqWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    w->manifest = testbed::MakeAssetForDesign(infer::DesignType::kSQ, 1);
    std::vector<capture::CaptureTrace> unique;
    for (int i = 0; i < 2; ++i) {
      testbed::SessionConfig config;
      config.design = infer::DesignType::kSQ;
      config.manifest = &w->manifest;
      config.downlink = nettrace::StableTrace("s", (4 + 2 * i) * kMbps);
      config.duration = 60 * kUsPerSec;
      config.seed = 100 + static_cast<uint64_t>(i);
      unique.push_back(testbed::RunStreamingSession(config).capture);
    }
    for (int copy = 0; copy < 3; ++copy) {
      for (const capture::CaptureTrace& trace : unique) {
        w->traces.push_back(trace);
      }
    }
    return w;
  }();
  return *workload;
}

infer::DbSnapshot SqSnapshot() {
  static const infer::DbSnapshot* snap = new infer::DbSnapshot(
      std::make_shared<const infer::ChunkDatabase>(&SqWorkload().manifest));
  return *snap;
}

infer::InferenceConfig SqConfig() {
  infer::InferenceConfig config;
  config.design = infer::DesignType::kSQ;
  config.host_suffix = SqWorkload().manifest.host;
  config.other_object_sizes.push_back(SqWorkload().manifest.SerializedSize() +
                                      config.expected_fixed_overhead);
  return config;
}

void ReportPrefixCounters(benchmark::State& state, const infer::BatchAnalyzer& analyzer) {
  if (const infer::AnalysisPrefixCache* cache = analyzer.prefix_cache()) {
    const infer::AnalysisPrefixCache::Stats stats = cache->stats();
    state.counters["hit_ratio"] = stats.hit_ratio();
    state.counters["lookups/s"] = benchmark::Counter(
        static_cast<double>(stats.lookups()), benchmark::Counter::kIsRate);
  }
}

// The key itself: fingerprinting a full ~60 s capture. This is the fixed toll
// every cached lookup pays, so it has to stay a small fraction of the
// per-packet stages it replaces.
void BM_FingerprintTrace(benchmark::State& state) {
  const capture::CaptureTrace& trace = SqWorkload().traces.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::FingerprintTrace(trace));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
}

// Baseline: per-packet stages recomputed for every trace, every batch.
void BM_SqBatchNoPrefixCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.candidate_cache_mb = 0;
  batch.prefix_cache_mb = 0;
  infer::BatchAnalyzer analyzer(SqSnapshot(), SqConfig(), batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

// First pass against a fresh cache: pays fingerprints + inserts.
void BM_SqBatchColdPrefixCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  for (auto _ : state) {
    state.PauseTiming();
    infer::InferenceConfig config = SqConfig();
    config.prefix_cache = std::make_shared<infer::AnalysisPrefixCache>(32ull << 20);
    infer::BatchConfig batch;
    batch.threads = 2;
    batch.candidate_cache_mb = 0;
    infer::BatchAnalyzer analyzer(SqSnapshot(), std::move(config), batch);
    state.ResumeTiming();
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

// Steady state: every trace's prefix served from the shared cache; only the
// snapshot-dependent search half runs.
void BM_SqBatchWarmPrefixCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.candidate_cache_mb = 0;
  batch.prefix_cache_mb = 32;
  infer::BatchAnalyzer analyzer(SqSnapshot(), SqConfig(), batch);
  analyzer.AnalyzeAll(w.traces);  // warm pass, untimed
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
  ReportPrefixCounters(state, analyzer);
}

// --- Live replay across refreshes ------------------------------------------
//
// The deployment sweep the cache was built for: a live ladder grows by
// `refreshes` publishes and the same capture set is re-analyzed at every
// snapshot. Without the cache each round repeats the per-packet stages; with
// it every round after the first is fully warm (the prefix is
// snapshot-independent), so only group search tracks the growing database.

struct ReplayPlan {
  media::Manifest start;
  std::vector<infer::ManifestRefresh> refreshes;
};

const ReplayPlan& SqReplayPlan() {
  static const ReplayPlan* plan = [] {
    auto* p = new ReplayPlan;
    const media::Manifest& full = SqWorkload().manifest;
    const int positions = full.num_positions();
    const int start = positions / 2;
    p->start = full;
    for (auto& track : p->start.video_tracks) {
      track.chunks.resize(static_cast<size_t>(start));
    }
    constexpr int kRefreshes = 4;
    for (int r = 0; r < kRefreshes; ++r) {
      const int lo = start + (positions - start) * r / kRefreshes;
      const int hi = start + (positions - start) * (r + 1) / kRefreshes;
      infer::ManifestRefresh refresh;
      refresh.video_appends.resize(full.video_tracks.size());
      for (size_t t = 0; t < full.video_tracks.size(); ++t) {
        const auto& chunks = full.video_tracks[t].chunks;
        refresh.video_appends[t].assign(chunks.begin() + lo, chunks.begin() + hi);
      }
      p->refreshes.push_back(std::move(refresh));
    }
    return p;
  }();
  return *plan;
}

void RunLiveReplay(benchmark::State& state, int prefix_cache_mb) {
  const Workload& w = SqWorkload();
  const ReplayPlan& plan = SqReplayPlan();
  int64_t analyzed = 0;
  std::unique_ptr<infer::BatchAnalyzer> analyzer;
  for (auto _ : state) {
    state.PauseTiming();
    infer::LiveChunkDatabase live(plan.start, {});
    infer::BatchConfig batch;
    batch.threads = 2;
    batch.candidate_cache_mb = 0;
    batch.prefix_cache_mb = prefix_cache_mb;
    analyzer = std::make_unique<infer::BatchAnalyzer>(live.Acquire(), SqConfig(), batch);
    state.ResumeTiming();
    benchmark::DoNotOptimize(analyzer->AnalyzeAll(w.traces));
    analyzed += static_cast<int64_t>(w.traces.size());
    for (const infer::ManifestRefresh& refresh : plan.refreshes) {
      state.PauseTiming();
      live.ApplyRefresh(refresh);
      analyzer->UpdateSnapshot(live.Acquire());
      state.ResumeTiming();
      benchmark::DoNotOptimize(analyzer->AnalyzeAll(w.traces));
      analyzed += static_cast<int64_t>(w.traces.size());
    }
    state.PauseTiming();
    live.WaitForCompaction();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(analyzed);
  if (analyzer != nullptr) {
    ReportPrefixCounters(state, *analyzer);
  }
}

void BM_LiveReplayNoPrefixCache(benchmark::State& state) { RunLiveReplay(state, 0); }
void BM_LiveReplayWarmPrefixCache(benchmark::State& state) { RunLiveReplay(state, 32); }

}  // namespace

BENCHMARK(BM_FingerprintTrace);
BENCHMARK(BM_SqBatchNoPrefixCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqBatchColdPrefixCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqBatchWarmPrefixCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_LiveReplayNoPrefixCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_LiveReplayWarmPrefixCache)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
