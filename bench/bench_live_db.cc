// LiveChunkDatabase microbenchmarks (PR 4 tentpole).
//
// BM_LiveRefresh vs BM_FullRebuildPerRefresh quantifies why the live database
// exists: appending one refresh into the sorted delta buffer is O(appended ·
// log) work, while the stop-the-world alternative re-sorts the whole flat
// index every refresh. BM_SnapshotQuery sweeps the residual delta size to
// show what the merged (base + delta) query path costs relative to a fully
// compacted snapshot, and BM_Compaction measures the background rebuild a
// publish cadence has to absorb.

#include <benchmark/benchmark.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/chunk_database.h"
#include "src/csi/group_search.h"
#include "src/csi/live_database.h"
#include "src/media/manifest.h"

using namespace csi;

namespace {

constexpr int kTracks = 8;

// A deployment-scale live ladder: 8 tracks x `positions` chunks each.
media::Manifest LiveManifest(int positions) {
  media::Manifest m;
  m.asset_id = "bench-live";
  m.host = "bench.live.example";
  Rng rng(0x11fe);
  for (int t = 0; t < kTracks; ++t) {
    media::Track track;
    track.name = "v" + std::to_string(t);
    track.type = media::MediaType::kVideo;
    track.nominal_bitrate = (t + 1) * 1'000'000;
    const double mean = 250'000.0 * (t + 1);
    for (int i = 0; i < positions; ++i) {
      track.chunks.push_back(
          media::Chunk{static_cast<Bytes>(mean * rng.Uniform(0.5, 1.8)), 2'000'000});
    }
    m.video_tracks.push_back(std::move(track));
  }
  return m;
}

// One live-edge refresh: `appended` new chunks on every track.
infer::ManifestRefresh MakeRefresh(Rng* rng, int appended) {
  infer::ManifestRefresh refresh;
  refresh.video_appends.resize(kTracks);
  for (int t = 0; t < kTracks; ++t) {
    const double mean = 250'000.0 * (t + 1);
    for (int i = 0; i < appended; ++i) {
      refresh.video_appends[static_cast<size_t>(t)].push_back(
          media::Chunk{static_cast<Bytes>(mean * rng->Uniform(0.5, 1.8)), 2'000'000});
    }
  }
  return refresh;
}

// Appending refreshes into the delta buffer, compaction disabled: the
// incremental cost a live deployment pays per metadata poll.
void BM_LiveRefresh(benchmark::State& state) {
  const int appended = static_cast<int>(state.range(0));
  const media::Manifest manifest = LiveManifest(2048);
  Rng rng(0xabc);
  for (auto _ : state) {
    state.PauseTiming();
    infer::LiveChunkDatabase::Options options;
    options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
    infer::LiveChunkDatabase live(manifest, options);
    state.ResumeTiming();
    for (int r = 0; r < 16; ++r) {
      benchmark::DoNotOptimize(live.ApplyRefresh(MakeRefresh(&rng, appended)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["chunks/refresh"] = static_cast<double>(appended) * kTracks;
}

// The stop-the-world alternative: a full sorted rebuild per refresh.
void BM_FullRebuildPerRefresh(benchmark::State& state) {
  const int appended = static_cast<int>(state.range(0));
  Rng rng(0xabc);
  for (auto _ : state) {
    state.PauseTiming();
    media::Manifest manifest = LiveManifest(2048);
    state.ResumeTiming();
    for (int r = 0; r < 16; ++r) {
      const infer::ManifestRefresh refresh = MakeRefresh(&rng, appended);
      for (int t = 0; t < kTracks; ++t) {
        auto& chunks = manifest.video_tracks[static_cast<size_t>(t)].chunks;
        chunks.insert(chunks.end(), refresh.video_appends[static_cast<size_t>(t)].begin(),
                      refresh.video_appends[static_cast<size_t>(t)].end());
      }
      infer::ChunkDatabase db(&manifest);
      benchmark::DoNotOptimize(db);
    }
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.counters["chunks/refresh"] = static_cast<double>(appended) * kTracks;
}

// Candidate queries against a snapshot carrying `delta` residual chunks:
// delta = 0 is the compacted fast path (pure base index).
void BM_SnapshotQuery(benchmark::State& state) {
  const int delta_chunks = static_cast<int>(state.range(0));
  const media::Manifest manifest = LiveManifest(2048);
  infer::LiveChunkDatabase::Options options;
  options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
  infer::LiveChunkDatabase live(manifest, options);
  Rng rng(0x5eed);
  for (int left = delta_chunks; left > 0; left -= kTracks) {
    live.ApplyRefresh(MakeRefresh(&rng, 1));
  }
  const infer::DbSnapshot snap = live.Acquire();
  std::vector<Bytes> estimates(1024);
  for (auto& e : estimates) {
    e = rng.UniformInt(1, 8 * 250'000 * 2);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.VideoCandidates(estimates[i], 0.05));
    i = (i + 1) & (estimates.size() - 1);
  }
  state.counters["delta"] = static_cast<double>(snap.delta_chunks());
}

// The full sharded rebuild a compaction runs (over a pool, off the hot path).
void BM_Compaction(benchmark::State& state) {
  const media::Manifest manifest = LiveManifest(2048);
  ThreadPool pool(4);
  Rng rng(0xc0);
  for (auto _ : state) {
    state.PauseTiming();
    infer::LiveChunkDatabase::Options options;
    options.pool = &pool;
    options.build_shards = static_cast<int>(state.range(0));
    options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
    infer::LiveChunkDatabase live(manifest, options);
    for (int r = 0; r < 8; ++r) {
      live.ApplyRefresh(MakeRefresh(&rng, 4));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(live.CompactNow());
  }
}

// Group enumeration across live-manifest refreshes, with and without the
// shared candidate cache (arg 1/0). The append sizes sit outside every query
// window, so a warm cache revalidates entries against the delta probe instead
// of re-enumerating — the --follow-manifests steady state.
void BM_GroupEnumAcrossRefreshes(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const media::Manifest manifest = LiveManifest(512);

  // Two-chunk groups planted on the low tracks: estimates stay well under
  // the out-of-window append size below.
  Rng qrng(0x9a);
  std::vector<infer::TrafficGroup> groups;
  for (int i = 0; i < 24; ++i) {
    const int start = static_cast<int>(qrng.UniformInt(0, 509));
    const int track = static_cast<int>(qrng.UniformInt(0, 2));
    infer::TrafficGroup g;
    Bytes total = 0;
    for (int j = 0; j < 2; ++j) {
      g.requests.push_back(infer::DetectedRequest{});
      total += manifest.video_tracks[static_cast<size_t>(track)]
                   .chunks[static_cast<size_t>(start + j)]
                   .size;
    }
    g.estimated_total = total + total / 300 + 1;
    groups.push_back(std::move(g));
  }

  // Live-edge appends no candidate window can contain.
  const auto big_refresh = [] {
    infer::ManifestRefresh refresh;
    refresh.video_appends.resize(kTracks);
    for (int t = 0; t < kTracks; ++t) {
      refresh.video_appends[static_cast<size_t>(t)].push_back(
          media::Chunk{50'000'000, 2'000'000});
    }
    return refresh;
  };

  infer::GroupSearchConfig config;
  config.k = 0.05;
  config.expected_overhead = 0.005;
  constexpr int kRefreshes = 8;
  for (auto _ : state) {
    state.PauseTiming();
    infer::LiveChunkDatabase::Options options;
    options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
    infer::LiveChunkDatabase live(manifest, options);
    infer::GroupCandidateCache cache(64ull << 20);
    infer::GroupSearchConfig run = config;
    if (cached) {
      run.shared_cache = &cache;
    }
    const auto enumerate_all = [&](const infer::DbSnapshot& snap) {
      for (const infer::TrafficGroup& g : groups) {
        benchmark::DoNotOptimize(
            infer::EnumerateGroupCandidateSet(g, snap, run, {}, 0, snap.num_positions()));
      }
    };
    enumerate_all(live.Acquire());  // warm pass at the starting epoch
    state.ResumeTiming();
    for (int r = 0; r < kRefreshes; ++r) {
      live.ApplyRefresh(big_refresh());
      enumerate_all(live.Acquire());
    }
  }
  state.SetItemsProcessed(state.iterations() * kRefreshes *
                          static_cast<int64_t>(groups.size()));
  state.counters["cache"] = cached ? 1 : 0;
}

}  // namespace

BENCHMARK(BM_LiveRefresh)->ArgName("appended")->Arg(1)->Arg(4)->Arg(16)->UseRealTime();
BENCHMARK(BM_FullRebuildPerRefresh)
    ->ArgName("appended")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_SnapshotQuery)->ArgName("delta")->Arg(0)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_Compaction)->ArgName("shards")->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupEnumAcrossRefreshes)
    ->ArgName("cache")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
