// Table 3: chunk-size variability (PASR) of six popular services' encodings
// and the percentage of chunk sequences with unique sizes, for k = 1% and 5%
// and sequence lengths 1, 3, 6.
//
// The corpora are generators calibrated to the per-service PASR statistics
// the paper reports (the uniqueness numbers are then *measured*, not copied).
// Corpus sizes are scaled down by default for runtime (full Table 3 crawls
// 1920 YouTube videos); pass --full to use the paper's corpus sizes.

#include <cstdio>
#include <cstring>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/csi/uniqueness.h"
#include "src/media/service_profiles.h"

using namespace csi;

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const int corpus_cap = full ? 0 : 24;  // 0 = paper corpus size
  const int samples = full ? 2000 : 800;

  std::printf("Table 3 — chunk-size variability and %% unique sequences per service\n");
  std::printf("(cells: median (95th percentile) across the corpus)%s\n\n",
              full ? "" : "  [scaled corpora; --full for paper sizes]");

  TextTable table;
  table.SetHeader({"Service", "#Videos", "PASR", "1ch k=1%", "3ch k=1%", "6ch k=1%",
                   "1ch k=5%", "3ch k=5%", "6ch k=5%"});

  Rng corpus_rng(0x7AB1E3);
  for (const auto& profile : media::Table3Services()) {
    const int count = corpus_cap > 0 ? std::min(corpus_cap, profile.corpus_size) : 0;
    const auto corpus = media::GenerateCorpus(profile, count, corpus_rng);
    std::vector<double> pasr;
    std::vector<double> u1_1, u3_1, u6_1, u1_5, u3_5, u6_5;
    Rng sample_rng(0x5EED + static_cast<uint64_t>(profile.corpus_size));
    for (const auto& m : corpus) {
      std::vector<double> track_pasr;
      for (const auto& t : m.video_tracks) {
        track_pasr.push_back(t.Pasr());
      }
      pasr.push_back(Mean(track_pasr));
      u1_1.push_back(100 * infer::UniqueSingleChunkFraction(m, 0.01));
      u1_5.push_back(100 * infer::UniqueSingleChunkFraction(m, 0.05));
      u3_1.push_back(100 * infer::UniqueSequenceFraction(m, 3, 0.01, samples, sample_rng));
      u6_1.push_back(100 * infer::UniqueSequenceFraction(m, 6, 0.01, samples, sample_rng));
      u3_5.push_back(100 * infer::UniqueSequenceFraction(m, 3, 0.05, samples, sample_rng));
      u6_5.push_back(100 * infer::UniqueSequenceFraction(m, 6, 0.05, samples, sample_rng));
    }
    auto cell = [](std::vector<double> v, int decimals) {
      return FormatDouble(Percentile(v, 50), decimals) + " (" +
             FormatDouble(Percentile(v, 95), decimals) + ")";
    };
    table.AddRow({profile.name, std::to_string(corpus.size()), cell(pasr, 2),
                  cell(u1_1, 1), cell(u3_1, 1), cell(u6_1, 1), cell(u1_5, 1),
                  cell(u3_5, 1), cell(u6_5, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper's Table 3 medians for reference: PASR 1.35-1.94; 1-chunk 0.0%%;\n"
      "3-chunk k=1%%: 96.9-99.5%%; 6-chunk k=1%%: 100%%; 6-chunk k=5%%: 90.3-99.8%%.\n");
  return 0;
}
