// §6.2.3: CSI computation time. The paper reports a few seconds for a
// 10-minute trace on the non-MUX designs and up to ~1 minute for SQ.
// google-benchmark over the inference engine, excluding session simulation.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "src/csi/batch_analyzer.h"
#include "src/csi/inference.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

struct PreparedSession {
  media::Manifest manifest;
  testbed::SessionResult session;
};

const PreparedSession& Prepare(infer::DesignType design) {
  static std::map<infer::DesignType, std::unique_ptr<PreparedSession>> cache;
  auto it = cache.find(design);
  if (it == cache.end()) {
    auto prepared = std::make_unique<PreparedSession>();
    prepared->manifest = testbed::MakeAssetForDesign(design, 1, 10 * 60 * kUsPerSec);
    testbed::SessionConfig config;
    config.design = design;
    config.manifest = &prepared->manifest;
    Rng rng(0x623);
    config.downlink =
        nettrace::CellularTrace("bench", 6 * kMbps, 0.5, 10 * 60 * kUsPerSec, 2 * kUsPerSec, rng);
    config.duration = 10 * 60 * kUsPerSec;
    config.seed = 99;
    prepared->session = RunStreamingSession(config);
    it = cache.emplace(design, std::move(prepared)).first;
  }
  return *it->second;
}

void BM_Inference(benchmark::State& state, infer::DesignType design) {
  const PreparedSession& prepared = Prepare(design);
  infer::InferenceConfig config;
  config.design = design;
  const infer::InferenceEngine engine(&prepared.manifest, config);
  for (auto _ : state) {
    auto result = engine.Analyze(prepared.session.capture);
    benchmark::DoNotOptimize(result);
  }
  state.counters["packets"] = static_cast<double>(prepared.session.capture.size());
  state.counters["chunks"] = static_cast<double>(prepared.session.downloads.size());
}

void BM_DatabaseBuild(benchmark::State& state) {
  const PreparedSession& prepared = Prepare(infer::DesignType::kSH);
  for (auto _ : state) {
    infer::ChunkDatabase db(&prepared.manifest);
    benchmark::DoNotOptimize(db);
  }
}

// The deployment workload: a batch of concurrent sessions of one service,
// fanned out across a worker pool over one shared ChunkDatabase. Reported
// items/sec is sessions/sec.
struct PreparedBatch {
  media::Manifest manifest;
  std::vector<capture::CaptureTrace> traces;
};

const PreparedBatch& PrepareBatch() {
  static std::unique_ptr<PreparedBatch> cache;
  if (cache == nullptr) {
    cache = std::make_unique<PreparedBatch>();
    const TimeUs duration = 2 * 60 * kUsPerSec;
    cache->manifest = testbed::MakeAssetForDesign(infer::DesignType::kSH, 1, duration);
    for (int i = 0; i < 8; ++i) {
      testbed::SessionConfig config;
      config.design = infer::DesignType::kSH;
      config.manifest = &cache->manifest;
      Rng rng(0x800 + static_cast<uint64_t>(i));
      config.downlink = nettrace::CellularTrace("bench", (4 + i % 4) * kMbps, 0.4, duration,
                                                2 * kUsPerSec, rng);
      config.duration = duration;
      config.seed = 4000 + static_cast<uint64_t>(i);
      cache->traces.push_back(RunStreamingSession(config).capture);
    }
  }
  return *cache;
}

void BM_BatchInference(benchmark::State& state) {
  const PreparedBatch& prepared = PrepareBatch();
  infer::InferenceConfig config;
  config.design = infer::DesignType::kSH;
  infer::BatchConfig batch;
  batch.threads = static_cast<int>(state.range(0));
  infer::BatchAnalyzer analyzer(&prepared.manifest, config, batch);
  for (auto _ : state) {
    auto results = analyzer.AnalyzeAll(prepared.traces);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(prepared.traces.size()));
  state.counters["batch_size"] = static_cast<double>(prepared.traces.size());
}

}  // namespace

BENCHMARK_CAPTURE(BM_Inference, CH_10min_trace, infer::DesignType::kCH)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Inference, SH_10min_trace, infer::DesignType::kSH)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Inference, CQ_10min_trace, infer::DesignType::kCQ)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Inference, SQ_10min_trace, infer::DesignType::kSQ)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DatabaseBuild)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BatchInference)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
