// Table 4: CSI inference accuracy with an ExoPlayer-style client across the
// four ABR design types (CH/SH/CQ/SQ), with and without displayed-chunk
// information, over bandwidth-trace-driven replays.
//
// Methodology mirrors §6.2: multiple test videos of different genres x a
// library of cellular bandwidth traces x repeated runs; each run streams for
// 10 minutes; the inference may output several candidate sequences and we
// report the best and worst. Scaled down by default (--full for a larger
// sweep).

#include <cstdio>
#include <cstring>

#include "src/common/table.h"
#include "src/testbed/experiment.h"

using namespace csi;

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const int num_videos = full ? 5 : 3;
  const int num_traces = full ? 10 : 5;
  const int reps = full ? 3 : 1;
  const TimeUs duration = 10 * 60 * kUsPerSec;
  const char* adaptations[] = {"hybrid", "rate-based", "buffer-based"};

  Rng trace_rng(0x7AB1E4);
  const auto traces = nettrace::CellularTraceLibrary(num_traces, duration, trace_rng);

  std::printf("Table 4 — inference accuracy per ABR design type%s\n",
              full ? "" : "  [scaled sweep; --full for more runs]");
  std::printf("(columns: %% runs with 100%% accuracy / %% runs >95%% / 5th-pct accuracy)\n\n");

  TextTable table;
  table.SetHeader({"Case", "runs", "best:100%", "best:>95%", "best:5pct", "worst:100%",
                   "worst:>95%", "worst:5pct", "disp best:100%", "disp worst:100%",
                   "disp worst:>95%"});

  for (auto design : {infer::DesignType::kCH, infer::DesignType::kSH,
                      infer::DesignType::kCQ, infer::DesignType::kSQ}) {
    std::vector<testbed::AccuracyResult> plain;
    std::vector<testbed::AccuracyResult> with_display;
    uint64_t seed = 1000;
    for (int v = 0; v < num_videos; ++v) {
      const media::Manifest manifest = testbed::MakeAssetForDesign(design, v, duration);
      for (int t = 0; t < num_traces; ++t) {
        for (int rep = 0; rep < reps; ++rep) {
          testbed::SessionConfig session;
          session.design = design;
          session.manifest = &manifest;
          session.downlink = traces[static_cast<size_t>(t)];
          session.adaptation = adaptations[(v + t + rep) % 3];
          session.duration = duration;
          session.seed = ++seed;
          const testbed::EvalRun run = testbed::RunAndScore(session);
          plain.push_back(run.without_display);
          with_display.push_back(run.with_display);
        }
      }
    }
    const auto best = testbed::Aggregate(plain, /*best=*/true);
    const auto worst = testbed::Aggregate(plain, /*best=*/false);
    const auto disp_best = testbed::Aggregate(with_display, /*best=*/true);
    const auto disp_worst = testbed::Aggregate(with_display, /*best=*/false);
    table.AddRow({infer::DesignTypeName(design), std::to_string(plain.size()),
                  FormatDouble(best.pct_100_match, 1), FormatDouble(best.pct_above_95, 1),
                  FormatDouble(best.pct5_accuracy, 1), FormatDouble(worst.pct_100_match, 1),
                  FormatDouble(worst.pct_above_95, 1), FormatDouble(worst.pct5_accuracy, 1),
                  FormatDouble(disp_best.pct_100_match, 1),
                  FormatDouble(disp_worst.pct_100_match, 1),
                  FormatDouble(disp_worst.pct_above_95, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper's Table 4 reference (without display, best output, 100%% match):\n"
      "CH 100.0, SH 100.0, CQ 100.0, SQ 98.0. With display the worst output\n"
      "also recovers (e.g. SQ worst-output 100%%-match rises 4.0 -> 91.5).\n");
  return 0;
}
