// ChunkDatabase build and size-window-scan microbenchmarks (PR 3 tentpole).
//
// BM_DbBuild sweeps the shard count of the index build over a worker pool on
// a deployment-scale synthetic manifest (the index is byte-identical for
// every shard count — db_differential_test — so this measures pure build
// speed). BM_SizeWindowScan compares the scalar and SIMD count kernels on the
// exact window the hybrid FlatRange query hands them, and BM_CandidateQuery
// measures the end-to-end lookup both ways.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/common/thread_pool.h"
#include "src/csi/chunk_database.h"
#include "src/media/manifest.h"

using namespace csi;

namespace {

// A large VBR ladder: 12 tracks x 4096 positions ~ 49k chunks, an order of
// magnitude past the testbed assets so the build has something to chew on.
const media::Manifest& BigManifest() {
  static std::unique_ptr<media::Manifest> cache;
  if (cache == nullptr) {
    cache = std::make_unique<media::Manifest>();
    cache->asset_id = "bench-db-build";
    cache->host = "bench.example";
    Rng rng(0xdbb);
    for (int t = 0; t < 12; ++t) {
      media::Track track;
      track.name = "v" + std::to_string(t);
      track.type = media::MediaType::kVideo;
      track.nominal_bitrate = (t + 1) * 1'000'000;
      const double mean = 250'000.0 * (t + 1);
      for (int i = 0; i < 4096; ++i) {
        const Bytes size = static_cast<Bytes>(mean * rng.Uniform(0.5, 1.8));
        track.chunks.push_back(media::Chunk{size, 2'000'000});
      }
      cache->video_tracks.push_back(std::move(track));
    }
  }
  return *cache;
}

void BM_DbBuild(benchmark::State& state) {
  const media::Manifest& manifest = BigManifest();
  const int shards = static_cast<int>(state.range(0));
  ThreadPool pool(4);
  for (auto _ : state) {
    infer::ChunkDatabase db(&manifest,
                            infer::DbBuildOptions{shards > 1 ? &pool : nullptr, shards});
    benchmark::DoNotOptimize(db);
  }
  state.counters["chunks"] =
      static_cast<double>(manifest.num_video_tracks()) * manifest.num_positions();
}

// Forces `backend` for the benchmark body, restoring the default after.
class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend backend)
      : saved_(simd::ActiveBackend()), ok_(simd::ForceBackend(backend)) {}
  ~ScopedBackend() { simd::ForceBackend(saved_); }
  bool ok() const { return ok_; }

 private:
  simd::Backend saved_;
  bool ok_;
};

void ScanBody(benchmark::State& state, simd::Backend backend) {
  ScopedBackend scoped(backend);
  if (!scoped.ok()) {
    state.SkipWithError("backend unavailable on this build/CPU");
    return;
  }
  // The exact shape FlatRange hands the kernel: a <=128-element sorted run.
  Rng rng(0x51);
  std::vector<int64_t> window(128);
  int64_t v = 1000;
  for (auto& x : window) {
    v += rng.UniformInt(0, 512);
    x = v;
  }
  std::vector<int64_t> bounds(1024);
  for (auto& b : bounds) {
    b = rng.UniformInt(window.front() - 100, window.back() + 100);
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t count = simd::CountBelow(window.data(), window.size(), bounds[i]);
    benchmark::DoNotOptimize(count);
    i = (i + 1) & (bounds.size() - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(window.size()));
  state.SetLabel(simd::BackendName(backend));
}

void BM_SizeWindowScan_Scalar(benchmark::State& state) {
  ScanBody(state, simd::Backend::kScalar);
}

void BM_SizeWindowScan_Simd(benchmark::State& state) {
  // Widest vector backend this build/CPU supports.
  simd::Backend best = simd::Backend::kScalar;
  for (simd::Backend b :
       {simd::Backend::kSse2, simd::Backend::kNeon, simd::Backend::kAvx2}) {
    if (simd::BackendSupported(b)) {
      best = b;
    }
  }
  if (best == simd::Backend::kScalar) {
    state.SkipWithError("no vector backend on this build/CPU");
    return;
  }
  ScanBody(state, best);
}

void QueryBody(benchmark::State& state, bool scalar) {
  ScopedBackend scoped(scalar ? simd::Backend::kScalar : simd::ActiveBackend());
  const media::Manifest& manifest = BigManifest();
  const infer::ChunkDatabase db(&manifest);
  Rng rng(0x63);
  std::vector<Bytes> estimates(1024);
  const Bytes max_size = db.flat_sizes().back();
  for (auto& e : estimates) {
    e = rng.UniformInt(1, max_size);
  }
  size_t i = 0;
  for (auto _ : state) {
    const bool hit = db.HasVideoCandidate(estimates[i], 0.05);
    benchmark::DoNotOptimize(hit);
    i = (i + 1) & (estimates.size() - 1);
  }
  state.SetLabel(simd::BackendName(simd::ActiveBackend()));
}

void BM_CandidateQuery_Scalar(benchmark::State& state) { QueryBody(state, true); }
void BM_CandidateQuery_Dispatched(benchmark::State& state) { QueryBody(state, false); }

}  // namespace

BENCHMARK(BM_DbBuild)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_SizeWindowScan_Scalar);
BENCHMARK(BM_SizeWindowScan_Simd);
BENCHMARK(BM_CandidateQuery_Scalar);
BENCHMARK(BM_CandidateQuery_Dispatched);

BENCHMARK_MAIN();
