// Columnar cold-path microbenchmarks (PR 10 tentpole).
//
// BM_ColdBatch_Aos vs BM_ColdBatch_Soa is the headline number: the same
// cache-disabled batch (every trace pays the full per-packet pipeline)
// analyzed through the legacy AoS walk versus the SoA columns + SIMD column
// kernels. The per-stage pairs attribute the delta: flow classification,
// request/size estimation (CH), traffic splitting (SQ) and the prefix-cache
// fingerprint, each run over pre-built columns so the stage cost is isolated
// from the one-time transpose that BM_BuildColumns measures. The kernel
// micros compare the forced-scalar and active-SIMD dispatch of the two
// hottest column scans on a synthetic 64k-packet column.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/capture/packet_columns.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/csi/batch_analyzer.h"
#include "src/csi/flow_classifier.h"
#include "src/csi/prefix_cache.h"
#include "src/csi/size_estimator.h"
#include "src/csi/splitter.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

// One service + captured sessions per design path we attribute: CH exercises
// the HTTPS estimator, SQ the QUIC splitter. Generated once per process;
// columns are pre-built so stage benches never time the transpose.
struct Workload {
  media::Manifest manifest;
  std::vector<capture::CaptureTrace> traces;
  std::vector<capture::PacketColumns> columns;
  size_t total_packets = 0;
  // Dominant media flow of the first trace, in both layouts, so the stage
  // benches skip classification.
  std::vector<capture::PacketRecord> dominant_aos;
  uint32_t dominant_flow = 0;
};

Workload MakeWorkload(infer::DesignType design) {
  Workload w;
  w.manifest = testbed::MakeAssetForDesign(design, 1);
  for (int i = 0; i < 4; ++i) {
    testbed::SessionConfig config;
    config.design = design;
    config.manifest = &w.manifest;
    config.downlink = nettrace::StableTrace("s", (3 + i) * kMbps);
    config.duration = 60 * kUsPerSec;
    config.seed = 200 + static_cast<uint64_t>(i);
    w.traces.push_back(testbed::RunStreamingSession(config).capture);
    w.columns.push_back(capture::PacketColumns::Build(w.traces.back()));
    w.total_packets += w.traces.back().size();
  }
  auto flows = infer::ClassifyMediaFlows(w.traces.front(), w.manifest.host);
  size_t best = 0;
  for (size_t f = 1; f < flows.size(); ++f) {
    if (flows[f].downlink_bytes > flows[best].downlink_bytes) {
      best = f;
    }
  }
  w.dominant_aos = std::move(flows[best].packets);
  const auto media = infer::ClassifyMediaFlowIds(w.columns.front(), w.manifest.host);
  w.dominant_flow = media.front();
  for (const uint32_t f : media) {
    if (w.columns.front().flow_downlink_bytes(f) >
        w.columns.front().flow_downlink_bytes(w.dominant_flow)) {
      w.dominant_flow = f;
    }
  }
  return w;
}

const Workload& ChWorkload() {
  static const Workload* w = new Workload(MakeWorkload(infer::DesignType::kCH));
  return *w;
}

const Workload& SqWorkload() {
  static const Workload* w = new Workload(MakeWorkload(infer::DesignType::kSQ));
  return *w;
}

const std::vector<capture::PacketRecord>& DominantAosFlow(const Workload& w) {
  return w.dominant_aos;
}

capture::FlowView DominantFlowView(const Workload& w) {
  return w.columns.front().flow(w.dominant_flow);
}

// --- Transpose --------------------------------------------------------------

void BM_BuildColumns(benchmark::State& state) {
  const Workload& w = ChWorkload();
  for (auto _ : state) {
    for (const capture::CaptureTrace& trace : w.traces) {
      benchmark::DoNotOptimize(capture::PacketColumns::Build(trace));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.total_packets));
}

// --- Per-stage AoS vs SoA ----------------------------------------------------

void BM_Classify_Aos(benchmark::State& state) {
  const Workload& w = ChWorkload();
  for (auto _ : state) {
    for (const capture::CaptureTrace& trace : w.traces) {
      benchmark::DoNotOptimize(infer::ClassifyMediaFlows(trace, w.manifest.host));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.total_packets));
}

void BM_Classify_Soa(benchmark::State& state) {
  const Workload& w = ChWorkload();
  for (auto _ : state) {
    for (const capture::PacketColumns& columns : w.columns) {
      benchmark::DoNotOptimize(infer::ClassifyMediaFlowIds(columns, w.manifest.host));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.total_packets));
}

void BM_EstimateExchanges_Aos(benchmark::State& state) {
  const auto& flow = DominantAosFlow(ChWorkload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::EstimateExchanges(flow, /*quic=*/false));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(flow.size()));
}

void BM_EstimateExchanges_Soa(benchmark::State& state) {
  const capture::FlowView view = DominantFlowView(ChWorkload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::EstimateExchanges(view, /*quic=*/false));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(view.size()));
}

void BM_SplitGroups_Aos(benchmark::State& state) {
  const auto& flow = DominantAosFlow(SqWorkload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::SplitIntoGroups(flow));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(flow.size()));
}

void BM_SplitGroups_Soa(benchmark::State& state) {
  const capture::FlowView view = DominantFlowView(SqWorkload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::SplitIntoGroups(view));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(view.size()));
}

void BM_Fingerprint_Aos(benchmark::State& state) {
  const capture::CaptureTrace& trace = ChWorkload().traces.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::FingerprintTrace(trace));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
}

void BM_Fingerprint_Soa(benchmark::State& state) {
  const capture::PacketColumns& columns = ChWorkload().columns.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::FingerprintColumns(columns));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(columns.packet_count()));
}

// --- End-to-end cold batch ---------------------------------------------------

void RunColdBatch(benchmark::State& state, const Workload& w,
                  infer::DesignType design, bool use_columnar) {
  infer::InferenceConfig config;
  config.design = design;
  config.host_suffix = w.manifest.host;
  config.use_columnar = use_columnar;
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.candidate_cache_mb = 0;
  batch.prefix_cache_mb = 0;
  batch.caches.result.budget_mb = 0;
  infer::BatchAnalyzer analyzer(&w.manifest, config, batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        use_columnar ? analyzer.AnalyzeAll(w.columns) : analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

void BM_ChColdBatch_Aos(benchmark::State& state) {
  RunColdBatch(state, ChWorkload(), infer::DesignType::kCH, false);
}
void BM_ChColdBatch_Soa(benchmark::State& state) {
  RunColdBatch(state, ChWorkload(), infer::DesignType::kCH, true);
}
void BM_SqColdBatch_Aos(benchmark::State& state) {
  RunColdBatch(state, SqWorkload(), infer::DesignType::kSQ, false);
}
void BM_SqColdBatch_Soa(benchmark::State& state) {
  RunColdBatch(state, SqWorkload(), infer::DesignType::kSQ, true);
}

// --- Kernel micros: scalar vs active dispatch --------------------------------

struct KernelColumns {
  std::vector<int64_t> ts;
  std::vector<int64_t> payload;
  std::vector<uint8_t> dir;
};

const KernelColumns& SyntheticColumns() {
  static const KernelColumns* cols = [] {
    auto* c = new KernelColumns;
    Rng rng(77);
    constexpr size_t kPackets = 64 * 1024;
    int64_t now = 0;
    for (size_t i = 0; i < kPackets; ++i) {
      now += rng.UniformInt(1, 2000);
      c->ts.push_back(now);
      c->payload.push_back(rng.UniformInt(0, 1500));
      c->dir.push_back(rng.Chance(0.3) ? 1 : 0);
    }
    return c;
  }();
  return *cols;
}

void RunSumInWindow(benchmark::State& state, simd::Backend backend) {
  const KernelColumns& c = SyntheticColumns();
  const simd::Backend saved = simd::ActiveBackend();
  if (!simd::ForceBackend(backend)) {
    state.SkipWithError("backend unsupported");
    return;
  }
  const int64_t end = c.ts.back() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::SumInWindow(c.ts.data(), c.payload.data(), c.ts.size(), 0, end));
  }
  simd::ForceBackend(saved);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(c.ts.size()));
}

void BM_SumInWindow_Scalar(benchmark::State& state) {
  RunSumInWindow(state, simd::Backend::kScalar);
}
void BM_SumInWindow_Simd(benchmark::State& state) {
  RunSumInWindow(state, simd::ActiveBackend());
}

void RunCollectIndices(benchmark::State& state, simd::Backend backend) {
  const KernelColumns& c = SyntheticColumns();
  const simd::Backend saved = simd::ActiveBackend();
  if (!simd::ForceBackend(backend)) {
    state.SkipWithError("backend unsupported");
    return;
  }
  std::vector<uint32_t> out(c.ts.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::CollectIndices(c.dir.data(), 1, c.payload.data(),
                                                  infer::kQuicRequestThreshold,
                                                  c.dir.size(), out.data()));
  }
  simd::ForceBackend(saved);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(c.dir.size()));
}

void BM_CollectIndices_Scalar(benchmark::State& state) {
  RunCollectIndices(state, simd::Backend::kScalar);
}
void BM_CollectIndices_Simd(benchmark::State& state) {
  RunCollectIndices(state, simd::ActiveBackend());
}

}  // namespace

BENCHMARK(BM_BuildColumns);
BENCHMARK(BM_Classify_Aos);
BENCHMARK(BM_Classify_Soa);
BENCHMARK(BM_EstimateExchanges_Aos);
BENCHMARK(BM_EstimateExchanges_Soa);
BENCHMARK(BM_SplitGroups_Aos);
BENCHMARK(BM_SplitGroups_Soa);
BENCHMARK(BM_Fingerprint_Aos);
BENCHMARK(BM_Fingerprint_Soa);
BENCHMARK(BM_ChColdBatch_Aos)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ChColdBatch_Soa)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqColdBatch_Aos)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqColdBatch_Soa)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SumInWindow_Scalar);
BENCHMARK(BM_SumInWindow_Simd);
BENCHMARK(BM_CollectIndices_Scalar);
BENCHMARK(BM_CollectIndices_Simd);

BENCHMARK_MAIN();
