// Figure 11 (+ §7 behavioural findings): time series of the Hulu-like
// player's selected track, throughput, and inferred buffer under
//   (a) stable 2 Mbps,
//   (b) condition B2 shaped by r=1.5 Mbps / N=50 KB,
//   (c) condition B2 shaped by r=1.5 Mbps / N=5 MB.
// Everything shown is computed from the encrypted capture by CSI.
//
// Also verifies the §7 findings: startup on the lowest track, convergence to
// a track with bitrate <= bandwidth/2, and the ON-OFF pattern at ~145 s of
// buffer.

#include <cstdio>
#include <optional>

#include "src/common/table.h"
#include "src/csi/inference.h"
#include "src/csi/qoe.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

media::Manifest MakeHuluAsset() {
  media::EncoderConfig config;
  config.ladder = media::GeometricLadder(7, 300 * kKbps, 5800 * kKbps);
  config.target_pasr = 1.35;
  config.audio_bitrates = {128 * kKbps};
  Rng rng(0x47);
  return media::EncodeAsset("hulu-asset", "cdn.hulu.example", 12 * 60 * kUsPerSec, config,
                            rng);
}

void RunCase(const char* title, const media::Manifest& manifest,
             const nettrace::BandwidthTrace& bw, std::optional<net::TokenBucketConfig> shaper,
             uint64_t seed) {
  testbed::SessionConfig session;
  session.design = infer::DesignType::kSH;
  session.manifest = &manifest;
  session.downlink = bw;
  session.adaptation = "hulu-like";
  session.player.max_buffer = 145 * kUsPerSec;
  session.duration = 6 * 60 * kUsPerSec;
  session.seed = seed;
  session.shaper = shaper;
  const auto result = RunStreamingSession(session);

  infer::InferenceConfig config;
  config.design = infer::DesignType::kSH;
  const infer::InferenceEngine engine(&manifest, config);
  const auto inference = engine.Analyze(result.capture);
  std::printf("%s\n", title);
  if (inference.sequences.empty()) {
    std::printf("  (no inferred sequence)\n\n");
    return;
  }
  const auto& seq = inference.sequences[0];
  const infer::QoeReport qoe = infer::AnalyzeQoe(seq, manifest);

  TextTable table;
  table.SetHeader({"t (s)", "track", "chunk idx", "dl rate (Mbps)", "buffer (s)"});
  size_t buffer_cursor = 0;
  for (const auto& slot : seq.slots) {
    if (slot.kind != infer::SlotKind::kVideo || slot.chunk.index % 4 != 0) {
      continue;
    }
    const double seconds = UsToSeconds(slot.request_time);
    const double dl_time = UsToSeconds(std::max<TimeUs>(slot.done_time - slot.request_time, 1));
    const double rate = static_cast<double>(manifest.SizeOf(slot.chunk)) * 8.0 / dl_time / 1e6;
    while (buffer_cursor + 1 < qoe.buffer_curve.size() &&
           qoe.buffer_curve[buffer_cursor].time < slot.request_time) {
      ++buffer_cursor;
    }
    const double buffer =
        UsToSeconds(qoe.buffer_curve.empty() ? 0 : qoe.buffer_curve[buffer_cursor].level);
    table.AddRow({FormatDouble(seconds, 1), "T" + std::to_string(slot.chunk.track + 1),
                  std::to_string(slot.chunk.index), FormatDouble(rate, 2),
                  FormatDouble(buffer, 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("  avg bitrate %.0f kbps, switches %d, stalls %d, data %s\n\n",
              qoe.avg_bitrate / 1000.0, qoe.track_switches, qoe.stall_count,
              FormatBytes(static_cast<double>(qoe.data_usage)).c_str());
}

}  // namespace

int main() {
  const media::Manifest manifest = MakeHuluAsset();
  std::printf("Figure 11 — Hulu-like player behaviour (from CSI-inferred sequences)\n\n");

  // §7 basic behaviour: stable bandwidth sweeps. The client starts on T1 and
  // converges to the highest track with bitrate <= bandwidth/2.
  std::printf("§7 — convergence track vs stable bandwidth (paper: bitrate <= bw/2)\n");
  TextTable conv;
  conv.SetHeader({"bandwidth", "converged track", "track bitrate (kbps)", "<= bw/2"});
  uint64_t seed = 100;
  for (double bw : {1.0, 2.0, 3.0, 4.0}) {
    testbed::SessionConfig session;
    session.design = infer::DesignType::kSH;
    session.manifest = &manifest;
    session.downlink = nettrace::StableTrace("stable", bw * kMbps);
    session.adaptation = "hulu-like";
    session.player.max_buffer = 145 * kUsPerSec;
    session.duration = 5 * 60 * kUsPerSec;
    session.seed = ++seed;
    const auto result = RunStreamingSession(session);
    // Converged track = mode of the second half of downloads.
    std::vector<int> counts(static_cast<size_t>(manifest.num_video_tracks()), 0);
    for (const auto& d : result.downloads) {
      if (d.chunk.type == media::MediaType::kVideo &&
          d.request_time > 2 * 60 * kUsPerSec) {
        ++counts[static_cast<size_t>(d.chunk.track)];
      }
    }
    int track = 0;
    for (int t = 0; t < manifest.num_video_tracks(); ++t) {
      if (counts[static_cast<size_t>(t)] > counts[static_cast<size_t>(track)]) {
        track = t;
      }
    }
    const double track_rate = manifest.video_tracks[static_cast<size_t>(track)].nominal_bitrate;
    conv.AddRow({FormatDouble(bw, 1) + " Mbps", "T" + std::to_string(track + 1),
                 FormatDouble(track_rate / 1000.0, 0),
                 track_rate <= bw * kMbps / 2 ? "yes" : "no"});
  }
  std::printf("%s\n", conv.Render().c_str());

  RunCase("(a) stable 2 Mbps, unshaped", manifest, nettrace::StableTrace("2mbps", 2 * kMbps),
          std::nullopt, 11);
  net::TokenBucketConfig small_bucket;
  small_bucket.rate = 1.5 * kMbps;
  small_bucket.bucket_size = 50 * kKB;
  RunCase("(b) B2, token bucket r=1.5 Mbps N=50 KB", manifest, nettrace::ConditionB2(),
          small_bucket, 12);
  net::TokenBucketConfig big_bucket;
  big_bucket.rate = 1.5 * kMbps;
  big_bucket.bucket_size = 5 * kMB;
  RunCase("(c) B2, token bucket r=1.5 Mbps N=5 MB", manifest, nettrace::ConditionB2(),
          big_bucket, 13);
  return 0;
}
