// Figure 5 + §3.3 Q1: fraction of unique chunk sequences vs sequence length,
// for Big-Buck-Bunny-style encodings spanning PASR 1.1..2.0, at k = 1%
// (HTTPS) and k = 5% (QUIC).
//
// Paper reference points: <0.1% of single chunks unique at k=1% (Q1);
// 99.9% of 3-chunk sequences unique at k=1% and 92.6% of 6-chunk sequences
// unique at k=5% for PASR 1.1. Our synthetic encoder reproduces the shape
// (steep growth with length, ordering by PASR and k); see EXPERIMENTS.md for
// the quantitative comparison.

#include <cstdio>

#include "src/common/table.h"
#include "src/csi/uniqueness.h"
#include "src/media/encoder.h"

using namespace csi;

int main() {
  constexpr int kSamples = 2500;
  const std::vector<int> lengths{1, 2, 3, 4, 5, 6, 7, 8};

  for (double k : {0.01, 0.05}) {
    std::printf("Figure 5 — %% unique sequences vs length (k = %.0f%%)\n",
                k * 100);
    TextTable table;
    std::vector<std::string> header{"PASR", "single-unique%"};
    for (int len : lengths) {
      header.push_back("L=" + std::to_string(len));
    }
    table.SetHeader(header);
    for (int p = 0; p < 10; ++p) {
      const double pasr = 1.1 + 0.1 * p;
      media::EncoderConfig config;
      config.target_pasr = pasr;
      Rng rng(0xF165 + static_cast<uint64_t>(p));
      // BBB is ~10 min; six tracks, 5-s chunks (paper §3.3 methodology).
      const media::Manifest m =
          media::EncodeAsset("bbb", "cdn.example", 10 * 60 * kUsPerSec, config, rng);
      std::vector<std::string> row{FormatDouble(pasr, 1),
                                   FormatDouble(100 * infer::UniqueSingleChunkFraction(m, k), 2)};
      Rng sample_rng(0x5A17 + static_cast<uint64_t>(p));
      for (int len : lengths) {
        row.push_back(FormatDouble(
            100 * infer::UniqueSequenceFraction(m, len, k, kSamples, sample_rng), 1));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf(
      "Q1 (paper): single chunks are almost never unique; identifiability comes\n"
      "from short *sequences* of sizes, and grows rapidly with sequence length.\n");
  return 0;
}
