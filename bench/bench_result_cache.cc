// Whole-result cache microbenchmarks (PR 9 tentpole).
//
// BM_SqBatchNoResultCache vs BM_SqBatchWarmResultCache is the headline
// number: the same SQ batch analyzed end-to-end per trace versus served
// whole from the result cache at the same snapshot state — the steady-state
// regime where a gateway re-analyzes the same captures between manifest
// refreshes. BM_SqBatchWarmRevalidation is the second headline: every timed
// round runs against a *new* snapshot state of the same lineage (the live
// ladder grew by chunks far outside every recorded hull), so each trace pays
// one DeltaHasSizeInWindow probe, revalidates, and re-anchors — still no
// pipeline run. BM_SqBatchColdResultCache isolates the fingerprint + insert
// overhead of the first pass. The prefix and candidate caches are disabled
// throughout so every delta attributes to the result cache alone.
//
// The sessions deliberately cover only the front half of the manifest: the
// live edge is far from every group's start window, which keeps the recorded
// hulls provable (no growth-range budget above the per-start floor) — the
// deployment shape where revalidation pays off.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "src/capture/packet_record.h"
#include "src/csi/batch_analyzer.h"
#include "src/csi/live_database.h"
#include "src/csi/result_cache.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

// One SQ service plus captured sessions, generated once per process. The
// manifest runs twice as long as any session so no analysis touches the live
// edge; duplicated captures model the replay stream the cache banks on.
struct Workload {
  media::Manifest manifest;
  std::vector<capture::CaptureTrace> traces;
};

const Workload& SqWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    w->manifest = testbed::MakeAssetForDesign(infer::DesignType::kSQ, 1, 120 * kUsPerSec);
    std::vector<capture::CaptureTrace> unique;
    for (int i = 0; i < 2; ++i) {
      testbed::SessionConfig config;
      config.design = infer::DesignType::kSQ;
      config.manifest = &w->manifest;
      config.downlink = nettrace::StableTrace("s", (4 + 2 * i) * kMbps);
      config.duration = 45 * kUsPerSec;
      config.seed = 100 + static_cast<uint64_t>(i);
      unique.push_back(testbed::RunStreamingSession(config).capture);
    }
    for (int copy = 0; copy < 3; ++copy) {
      for (const capture::CaptureTrace& trace : unique) {
        w->traces.push_back(trace);
      }
    }
    return w;
  }();
  return *workload;
}

infer::DbSnapshot SqSnapshot() {
  static const infer::DbSnapshot* snap = new infer::DbSnapshot(
      std::make_shared<const infer::ChunkDatabase>(&SqWorkload().manifest));
  return *snap;
}

infer::InferenceConfig SqConfig() {
  infer::InferenceConfig config;
  config.design = infer::DesignType::kSQ;
  config.host_suffix = SqWorkload().manifest.host;
  config.other_object_sizes.push_back(SqWorkload().manifest.SerializedSize() +
                                      config.expected_fixed_overhead);
  return config;
}

// Lower tiers off so the delta is the result cache's alone.
infer::BatchConfig LowerTiersOff() {
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.caches.prefix.enabled = false;
  batch.caches.candidate.enabled = false;
  return batch;
}

void ReportResultCounters(benchmark::State& state, const infer::BatchAnalyzer& analyzer) {
  if (const infer::ResultCache* cache = analyzer.result_cache()) {
    const infer::ResultCache::Stats stats = cache->stats();
    state.counters["hit_ratio"] = stats.hit_ratio();
    state.counters["invalidations"] = static_cast<double>(stats.invalidations);
    state.counters["lookups/s"] = benchmark::Counter(
        static_cast<double>(stats.lookups()), benchmark::Counter::kIsRate);
  }
}

// A refresh appending `chunks` positions to every video track with sizes far
// outside any admissible hull the sessions can record (multi-GB chunks vs.
// MB-scale probe windows), so revalidation stays provable round after round.
infer::ManifestRefresh HugeChunkRefresh(const media::Manifest& manifest, int chunks) {
  infer::ManifestRefresh refresh;
  refresh.video_appends.resize(manifest.video_tracks.size());
  for (size_t t = 0; t < manifest.video_tracks.size(); ++t) {
    for (int c = 0; c < chunks; ++c) {
      media::Chunk chunk;
      chunk.size = (static_cast<Bytes>(3) << 30) + static_cast<Bytes>(t) * 1024 + c;
      chunk.duration = 2 * kUsPerSec;
      refresh.video_appends[t].push_back(chunk);
    }
  }
  return refresh;
}

// Baseline: the full pipeline runs for every trace, every batch.
void BM_SqBatchNoResultCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::BatchConfig batch = LowerTiersOff();
  batch.caches.result.enabled = false;
  infer::BatchAnalyzer analyzer(SqSnapshot(), SqConfig(), batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

// First pass against a fresh cache: pays fingerprints + inserts on top of the
// full pipeline.
void BM_SqBatchColdResultCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  for (auto _ : state) {
    state.PauseTiming();
    infer::InferenceConfig config = SqConfig();
    config.caches.result = std::make_shared<infer::ResultCache>(64ull << 20);
    infer::BatchAnalyzer analyzer(SqSnapshot(), std::move(config), LowerTiersOff());
    state.ResumeTiming();
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
}

// Steady state at one snapshot: every trace served whole from the cache
// (same_state hits), nothing downstream of the fingerprint runs.
void BM_SqBatchWarmResultCache(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::BatchAnalyzer analyzer(SqSnapshot(), SqConfig(), LowerTiersOff());
  analyzer.AnalyzeAll(w.traces);  // warm pass, untimed
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
  ReportResultCounters(state, analyzer);
}

// Steady state across snapshot publishes: every timed round first applies a
// refresh (new state, same lineage), so every lookup revalidates through one
// delta probe and re-anchors — the O(log delta) path, not the O(1) same-state
// path, and still no pipeline run.
void BM_SqBatchWarmRevalidation(benchmark::State& state) {
  const Workload& w = SqWorkload();
  infer::LiveDbOptions options;
  options.compact_after_delta_chunks = SIZE_MAX;  // keep the delta probeable
  infer::LiveChunkDatabase live(SqWorkload().manifest, options);
  infer::BatchAnalyzer analyzer(live.Acquire(), SqConfig(), LowerTiersOff());
  analyzer.AnalyzeAll(w.traces);  // warm pass, untimed
  // Prime past the edge-sensitive phase, untimed: enumerations whose start
  // window touched the original live edge have a growth range too small to
  // keep the per-start budget at the floor, so their first hulls are unsafe.
  // One large append moves the edge far enough that the re-inserted hulls are
  // provable, and the timed rounds below measure pure revalidation.
  analyzer.UpdateSnapshot(live.ApplyRefresh(HugeChunkRefresh(w.manifest, 64)));
  analyzer.AnalyzeAll(w.traces);
  const infer::ResultCache::Stats primed = analyzer.result_cache()->stats();
  const infer::ManifestRefresh refresh = HugeChunkRefresh(w.manifest, 2);
  for (auto _ : state) {
    state.PauseTiming();
    analyzer.UpdateSnapshot(live.ApplyRefresh(refresh));
    state.ResumeTiming();
    benchmark::DoNotOptimize(analyzer.AnalyzeAll(w.traces));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(w.traces.size()));
  const infer::ResultCache::Stats stats = analyzer.result_cache()->stats();
  state.counters["hit_ratio"] =
      static_cast<double>(stats.hits - primed.hits) /
      static_cast<double>(stats.lookups() - primed.lookups());
  state.counters["invalidations"] = static_cast<double>(stats.invalidations - primed.invalidations);
  state.counters["lookups/s"] = benchmark::Counter(
      static_cast<double>(stats.lookups() - primed.lookups()), benchmark::Counter::kIsRate);
  if (stats.invalidations > primed.invalidations) {
    std::fprintf(stderr,
                 "warning: %llu invalidation(s) during warm revalidation — "
                 "hulls were not provable, numbers include pipeline reruns\n",
                 static_cast<unsigned long long>(stats.invalidations - primed.invalidations));
  }
}

}  // namespace

BENCHMARK(BM_SqBatchNoResultCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqBatchColdResultCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqBatchWarmResultCache)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SqBatchWarmRevalidation)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
