// Figure 10: the §7 use case — understanding how token-bucket shaping
// parameters interact with a Hulu-like player, *from encrypted traffic*.
//
// (a)/(b): track-time distribution and data usage vs token rate r (N=50KB).
// (c)/(d): the same vs bucket size N (r=1.5 Mbps), under conditions B1
// (stable 10 Mbps) and B2 (10 Mbps with dips to 1 Mbps).
//
// All reported QoE comes from the CSI-inferred chunk sequence, not from
// player instrumentation — demonstrating the paper's point that shaping
// policies can be evaluated despite end-to-end encryption.

#include <cstdio>

#include "src/common/table.h"
#include "src/csi/inference.h"
#include "src/csi/qoe.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

// Hulu-like setup of §7: 7 tracks, client starts on T1, converges to the
// highest track whose bitrate is at most half the bandwidth, ~145 s buffer.
media::Manifest MakeHuluAsset() {
  media::EncoderConfig config;
  config.ladder = media::GeometricLadder(7, 300 * kKbps, 5800 * kKbps);
  config.target_pasr = 1.35;  // Hulu's Table 3 median
  config.audio_bitrates = {128 * kKbps};
  Rng rng(0x47);
  return media::EncodeAsset("hulu-asset", "cdn.hulu.example", 12 * 60 * kUsPerSec, config,
                            rng);
}

struct ShapingOutcome {
  std::vector<double> track_fraction;
  Bytes data_usage = 0;
  int switches = 0;
  int stalls = 0;
};

ShapingOutcome RunShaped(const media::Manifest& manifest, const nettrace::BandwidthTrace& bw,
                         BitsPerSec rate, Bytes bucket, uint64_t seed) {
  testbed::SessionConfig session;
  session.design = infer::DesignType::kSH;  // Hulu Android is SH (Table 2)
  session.manifest = &manifest;
  session.downlink = bw;
  session.adaptation = "hulu-like";
  session.player.max_buffer = 145 * kUsPerSec;  // §7 measurement
  session.duration = 10 * 60 * kUsPerSec;
  session.seed = seed;
  net::TokenBucketConfig shaper;
  shaper.rate = rate;
  shaper.bucket_size = bucket;
  session.shaper = shaper;
  const auto result = RunStreamingSession(session);

  infer::InferenceConfig config;
  config.design = infer::DesignType::kSH;
  const infer::InferenceEngine engine(&manifest, config);
  const auto inference = engine.Analyze(result.capture);
  ShapingOutcome outcome;
  outcome.track_fraction.assign(static_cast<size_t>(manifest.num_video_tracks()), 0.0);
  if (inference.sequences.empty()) {
    return outcome;
  }
  const infer::QoeReport qoe = infer::AnalyzeQoe(inference.sequences[0], manifest);
  outcome.track_fraction = qoe.track_time_fraction;
  outcome.data_usage = qoe.data_usage;
  outcome.switches = qoe.track_switches;
  outcome.stalls = qoe.stall_count;
  return outcome;
}

void PrintSweep(const char* title, const media::Manifest& manifest,
                const std::vector<std::pair<std::string, ShapingOutcome>>& rows) {
  std::printf("%s\n", title);
  TextTable table;
  std::vector<std::string> header{"config"};
  for (int t = 0; t < manifest.num_video_tracks(); ++t) {
    header.push_back("T" + std::to_string(t + 1) + "%");
  }
  header.push_back("data");
  header.push_back("switches");
  header.push_back("stalls");
  table.SetHeader(header);
  for (const auto& [name, o] : rows) {
    std::vector<std::string> row{name};
    for (double f : o.track_fraction) {
      row.push_back(FormatDouble(100 * f, 1));
    }
    row.push_back(FormatBytes(static_cast<double>(o.data_usage)));
    row.push_back(std::to_string(o.switches));
    row.push_back(std::to_string(o.stalls));
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  const media::Manifest manifest = MakeHuluAsset();
  const auto b1 = nettrace::ConditionB1();
  const auto b2 = nettrace::ConditionB2();

  std::printf("Figure 10 — token-bucket shaping vs Hulu-like player (QoE inferred by CSI)\n\n");

  // (a)/(b): sweep token rate r with small bucket N = 50 KB.
  for (const auto* cond : {&b1, &b2}) {
    std::vector<std::pair<std::string, ShapingOutcome>> rows;
    uint64_t seed = 500;
    for (double r : {0.5, 1.0, 1.5, 2.0, 3.0}) {
      rows.emplace_back("r=" + FormatDouble(r, 1) + "Mbps N=50KB",
                        RunShaped(manifest, *cond, r * kMbps, 50 * kKB, ++seed));
    }
    PrintSweep(
        (std::string("(a/b) rate sweep under ") + cond->name()).c_str(), manifest, rows);
  }

  // (c)/(d): sweep bucket size N with r = 1.5 Mbps.
  for (const auto* cond : {&b1, &b2}) {
    std::vector<std::pair<std::string, ShapingOutcome>> rows;
    uint64_t seed = 900;
    for (Bytes n : {50 * kKB, 500 * kKB, 5 * kMB}) {
      rows.emplace_back("r=1.5Mbps N=" + FormatBytes(static_cast<double>(n)),
                        RunShaped(manifest, *cond, 1.5 * kMbps, n, ++seed));
    }
    PrintSweep(
        (std::string("(c/d) bucket sweep under ") + cond->name()).c_str(), manifest, rows);
  }

  std::printf(
      "Paper's findings to compare: higher r -> more time on high tracks and more\n"
      "data; larger N -> bursts let the player ramp to higher tracks (N=5MB uses\n"
      "~2.2x the data of N=50KB under B2) at the cost of more track switches.\n");
  return 0;
}
