#include "src/media/ladder.h"

#include <cmath>

namespace csi::media {

Ladder DefaultVideoLadder() {
  return {
      {"144p", 150 * kKbps},  {"240p", 280 * kKbps},  {"360p", 520 * kKbps},
      {"480p", 1200 * kKbps}, {"720p", 2400 * kKbps}, {"1080p", 4800 * kKbps},
  };
}

Ladder GeometricLadder(int count, BitsPerSec lowest, BitsPerSec highest) {
  Ladder ladder;
  if (count <= 0) {
    return ladder;
  }
  if (count == 1) {
    ladder.push_back({"T1", lowest});
    return ladder;
  }
  const double ratio = std::pow(highest / lowest, 1.0 / static_cast<double>(count - 1));
  double rate = lowest;
  for (int i = 0; i < count; ++i) {
    ladder.push_back({"T" + std::to_string(i + 1), rate});
    rate *= ratio;
  }
  return ladder;
}

}  // namespace csi::media
