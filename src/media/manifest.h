// ABR media model: chunks, tracks, and manifests.
//
// A video asset is encoded into a ladder of `Track`s (one per quality level);
// each track is split into `Chunk`s of a few seconds of content. The
// `Manifest` is the metadata a streaming client downloads before playback and
// is also the chunk-size database CSI consults when fingerprinting encrypted
// traffic (paper §4.1).

#ifndef CSI_SRC_MEDIA_MANIFEST_H_
#define CSI_SRC_MEDIA_MANIFEST_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace csi::media {

enum class MediaType { kVideo, kAudio };

// One encoded chunk: `size` bytes representing `duration` of playback.
struct Chunk {
  Bytes size = 0;
  TimeUs duration = 0;
};

// One encoding of the asset at a fixed quality level.
struct Track {
  std::string name;           // e.g. "720p" or "audio-128k"
  MediaType type = MediaType::kVideo;
  BitsPerSec nominal_bitrate = 0;  // the ladder's advertised bitrate
  std::vector<Chunk> chunks;

  // Total playback duration of the track.
  TimeUs TotalDuration() const;
  // Total encoded bytes of the track.
  Bytes TotalBytes() const;
  // Mean chunk size.
  double MeanChunkSize() const;
  // Peak-to-average size ratio: p95 chunk size / mean chunk size (paper §3.3).
  double Pasr() const;
};

// Identifies one chunk in a manifest: media type, track ordinal within that
// type (0-based, increasing bitrate), playback index (0-based).
struct ChunkRef {
  MediaType type = MediaType::kVideo;
  int track = 0;
  int index = 0;

  friend bool operator==(const ChunkRef&, const ChunkRef&) = default;
};

// The full encoding of one video asset.
struct Manifest {
  std::string asset_id;
  std::string host;  // server hostname (what SNI will carry)
  std::vector<Track> video_tracks;  // ascending nominal bitrate
  std::vector<Track> audio_tracks;  // ascending nominal bitrate (often 1)

  // Number of playback positions (chunks per video track).
  int num_positions() const {
    return video_tracks.empty() ? 0 : static_cast<int>(video_tracks[0].chunks.size());
  }
  int num_video_tracks() const { return static_cast<int>(video_tracks.size()); }
  int num_audio_tracks() const { return static_cast<int>(audio_tracks.size()); }
  bool has_separate_audio() const { return !audio_tracks.empty(); }

  // Playback duration of the asset (from the first video track).
  TimeUs TotalDuration() const;

  const Track& TrackOf(const ChunkRef& ref) const;
  const Chunk& ChunkOf(const ChunkRef& ref) const;
  Bytes SizeOf(const ChunkRef& ref) const { return ChunkOf(ref).size; }

  // Serializes to / parses from a simple line-oriented text format, standing
  // in for a DASH MPD / HLS playlist with explicit chunk sizes.
  std::string Serialize() const;
  static Manifest Parse(const std::string& text);

  // Approximate wire size of the serialized manifest in bytes (what the
  // player downloads before the first chunk).
  Bytes SerializedSize() const;
};

}  // namespace csi::media

#endif  // CSI_SRC_MEDIA_MANIFEST_H_
