// Scene-complexity model feeding the VBR encoder.
//
// Real VBR encoders allocate more bits to complex scenes; the result is that
// chunk sizes within a track track the content's scene structure and chunks
// at the same playback position are large (or small) across *all* tracks
// simultaneously (visible in the paper's Fig. 4). We model per-chunk
// complexity as a piecewise process: scenes arrive with geometric lengths,
// each scene has a log-normal base complexity, and chunks within a scene
// wander around it with small AR(1) noise.

#ifndef CSI_SRC_MEDIA_SCENE_MODEL_H_
#define CSI_SRC_MEDIA_SCENE_MODEL_H_

#include <vector>

#include "src/common/rng.h"

namespace csi::media {

struct SceneModelConfig {
  // Probability a new scene starts at each chunk boundary.
  double scene_change_prob = 0.15;
  // Log-space standard deviation of scene base complexity.
  double scene_sigma = 0.6;
  // Log-space standard deviation of within-scene chunk noise.
  double chunk_sigma = 0.18;
  // AR(1) coefficient of within-scene noise.
  double chunk_ar = 0.0;
  // Probability a new scene reuses an earlier scene's base complexity
  // (videos revisit settings/shots, which is why nearly every chunk has a
  // size-twin somewhere in the asset — paper §3.3 Q1).
  double scene_repeat_prob = 0.10;
};

// Per-chunk complexity plus the id of the scene each chunk belongs to
// (repeated scenes share an id — their chunks are size-twins).
struct ComplexityTrace {
  std::vector<double> complexity;  // positive, mean ~1
  std::vector<int> scene_ids;
};

ComplexityTrace GenerateScenes(int count, const SceneModelConfig& config, Rng& rng);

// Returns `count` positive complexity multipliers with mean ~1.
std::vector<double> GenerateComplexity(int count, const SceneModelConfig& config, Rng& rng);

}  // namespace csi::media

#endif  // CSI_SRC_MEDIA_SCENE_MODEL_H_
