#include "src/media/service_profiles.h"

#include <algorithm>
#include <cmath>

namespace csi::media {

std::vector<ServiceProfile> Table3Services() {
  std::vector<ServiceProfile> services;

  ServiceProfile amazon;
  amazon.name = "Amazon";
  amazon.corpus_size = 111;
  amazon.pasr_median = 1.35;
  amazon.pasr_p95 = 1.47;
  amazon.chunk_duration = 6 * kUsPerSec;
  amazon.separate_audio = true;
  services.push_back(amazon);

  ServiceProfile facebook;
  facebook.name = "Facebook";
  facebook.corpus_size = 144;
  facebook.pasr_median = 1.73;
  facebook.pasr_p95 = 2.19;
  facebook.chunk_duration = 4 * kUsPerSec;
  facebook.min_tracks = 4;
  facebook.max_tracks = 6;
  facebook.separate_audio = true;
  facebook.min_duration = 1 * 60 * kUsPerSec;
  facebook.max_duration = 10 * 60 * kUsPerSec;
  services.push_back(facebook);

  ServiceProfile hbo;
  hbo.name = "HBO Now";
  hbo.corpus_size = 30;
  hbo.pasr_median = 1.57;
  hbo.pasr_p95 = 1.58;
  hbo.chunk_duration = 6 * kUsPerSec;
  hbo.separate_audio = true;
  hbo.min_duration = 20 * 60 * kUsPerSec;
  hbo.max_duration = 60 * 60 * kUsPerSec;
  services.push_back(hbo);

  ServiceProfile hulu;
  hulu.name = "Hulu";
  hulu.corpus_size = 30;
  hulu.pasr_median = 1.35;
  hulu.pasr_p95 = 1.44;
  hulu.chunk_duration = 5 * kUsPerSec;
  hulu.min_tracks = 7;
  hulu.max_tracks = 7;
  hulu.separate_audio = true;
  hulu.min_duration = 20 * 60 * kUsPerSec;
  hulu.max_duration = 45 * 60 * kUsPerSec;
  services.push_back(hulu);

  ServiceProfile vudu;
  vudu.name = "Vudu";
  vudu.corpus_size = 46;
  vudu.pasr_median = 1.52;
  vudu.pasr_p95 = 1.58;
  vudu.chunk_duration = 6 * kUsPerSec;
  vudu.separate_audio = true;
  vudu.min_duration = 80 * 60 * kUsPerSec;
  vudu.max_duration = 120 * 60 * kUsPerSec;
  services.push_back(vudu);

  ServiceProfile youtube;
  youtube.name = "Youtube";
  youtube.corpus_size = 1920;
  youtube.pasr_median = 1.94;
  youtube.pasr_p95 = 2.13;
  youtube.chunk_duration = 5 * kUsPerSec;
  youtube.min_tracks = 5;
  youtube.max_tracks = 6;
  youtube.separate_audio = true;
  // Newer shot-based-style encodes contribute extra duration-driven size
  // variability (§6.1 factor (2)).
  youtube.shot_based_fraction = 0.25;
  youtube.min_duration = 2 * 60 * kUsPerSec;
  youtube.max_duration = 15 * 60 * kUsPerSec;
  services.push_back(youtube);

  return services;
}

double SamplePasr(const ServiceProfile& profile, Rng& rng) {
  // Model PASR - 1 as log-normal: the median pins mu, the p95 pins sigma.
  const double med = std::max(profile.pasr_median - 1.0, 0.01);
  const double p95 = std::max(profile.pasr_p95 - 1.0, med * 1.001);
  const double mu = std::log(med);
  const double sigma = (std::log(p95) - mu) / 1.645;
  const double pasr = 1.0 + rng.LogNormal(mu, sigma);
  return std::clamp(pasr, 1.02, 4.0);
}

std::vector<Manifest> GenerateCorpus(const ServiceProfile& profile, int count, Rng& rng) {
  if (count <= 0) {
    count = profile.corpus_size;
  }
  std::vector<Manifest> corpus;
  corpus.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    EncoderConfig config;
    const int tracks =
        static_cast<int>(rng.UniformInt(profile.min_tracks, profile.max_tracks));
    config.ladder = GeometricLadder(tracks, profile.lowest_bitrate, profile.highest_bitrate);
    config.chunk_duration = profile.chunk_duration;
    config.target_pasr = SamplePasr(profile, rng);
    config.shot_based = rng.Chance(profile.shot_based_fraction);
    if (profile.separate_audio) {
      config.audio_bitrates = {128 * kKbps};
    }
    const TimeUs duration = rng.UniformInt(profile.min_duration, profile.max_duration);
    corpus.push_back(EncodeAsset(profile.name + "-video-" + std::to_string(i),
                                 "cdn." + profile.name + ".example", duration, config, rng));
  }
  return corpus;
}

}  // namespace csi::media
