#include "src/media/manifest.h"

#include <sstream>
#include <stdexcept>

#include "src/common/stats.h"

namespace csi::media {

TimeUs Track::TotalDuration() const {
  TimeUs total = 0;
  for (const Chunk& c : chunks) {
    total += c.duration;
  }
  return total;
}

Bytes Track::TotalBytes() const {
  Bytes total = 0;
  for (const Chunk& c : chunks) {
    total += c.size;
  }
  return total;
}

double Track::MeanChunkSize() const {
  if (chunks.empty()) {
    return 0.0;
  }
  return static_cast<double>(TotalBytes()) / static_cast<double>(chunks.size());
}

double Track::Pasr() const {
  if (chunks.empty()) {
    return 0.0;
  }
  std::vector<double> sizes;
  sizes.reserve(chunks.size());
  for (const Chunk& c : chunks) {
    sizes.push_back(static_cast<double>(c.size));
  }
  const double mean = Mean(sizes);
  if (mean <= 0.0) {
    return 0.0;
  }
  return Percentile(std::move(sizes), 95.0) / mean;
}

TimeUs Manifest::TotalDuration() const {
  return video_tracks.empty() ? 0 : video_tracks[0].TotalDuration();
}

const Track& Manifest::TrackOf(const ChunkRef& ref) const {
  const auto& tracks = ref.type == MediaType::kVideo ? video_tracks : audio_tracks;
  return tracks.at(static_cast<size_t>(ref.track));
}

const Chunk& Manifest::ChunkOf(const ChunkRef& ref) const {
  return TrackOf(ref).chunks.at(static_cast<size_t>(ref.index));
}

std::string Manifest::Serialize() const {
  std::ostringstream out;
  out << "#CSI-MANIFEST v1\n";
  out << "asset " << asset_id << "\n";
  out << "host " << host << "\n";
  auto emit = [&out](const Track& t, const char* kind) {
    out << kind << " " << t.name << " " << static_cast<int64_t>(t.nominal_bitrate) << "\n";
    for (const Chunk& c : t.chunks) {
      out << "chunk " << c.size << " " << c.duration << "\n";
    }
  };
  for (const Track& t : video_tracks) {
    emit(t, "video-track");
  }
  for (const Track& t : audio_tracks) {
    emit(t, "audio-track");
  }
  return out.str();
}

Manifest Manifest::Parse(const std::string& text) {
  Manifest m;
  std::istringstream in(text);
  std::string line;
  Track* current = nullptr;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "asset") {
      ls >> m.asset_id;
    } else if (tag == "host") {
      ls >> m.host;
    } else if (tag == "video-track" || tag == "audio-track") {
      Track t;
      int64_t bitrate = 0;
      ls >> t.name >> bitrate;
      t.nominal_bitrate = static_cast<BitsPerSec>(bitrate);
      t.type = tag == "video-track" ? MediaType::kVideo : MediaType::kAudio;
      auto& list = t.type == MediaType::kVideo ? m.video_tracks : m.audio_tracks;
      list.push_back(std::move(t));
      current = &list.back();
    } else if (tag == "chunk") {
      if (current == nullptr) {
        throw std::runtime_error("manifest: chunk before track");
      }
      Chunk c;
      ls >> c.size >> c.duration;
      current->chunks.push_back(c);
    } else {
      throw std::runtime_error("manifest: unknown tag '" + tag + "'");
    }
  }
  return m;
}

Bytes Manifest::SerializedSize() const { return static_cast<Bytes>(Serialize().size()); }

}  // namespace csi::media
