// Encoding ladders: the set of (resolution, bitrate) rungs a service encodes
// each asset into. Defaults follow the per-title-style six-rung ladder the
// paper uses for its Big Buck Bunny encodings (144p..1080p, per [15]).

#ifndef CSI_SRC_MEDIA_LADDER_H_
#define CSI_SRC_MEDIA_LADDER_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace csi::media {

struct LadderRung {
  std::string name;        // e.g. "480p"
  BitsPerSec bitrate = 0;  // nominal video bitrate
};

using Ladder = std::vector<LadderRung>;

// Six-rung 144p-1080p ladder used for the Fig. 4/5 style encodings.
Ladder DefaultVideoLadder();

// Ladder with `count` rungs geometrically spaced between `lowest` and
// `highest` bits/sec.
Ladder GeometricLadder(int count, BitsPerSec lowest, BitsPerSec highest);

}  // namespace csi::media

#endif  // CSI_SRC_MEDIA_LADDER_H_
