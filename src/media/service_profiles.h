// Calibrated per-service encoding corpora.
//
// The paper's Table 3 studies encodings crawled from six commercial services
// (Amazon, Facebook Watch, HBO Now, Hulu, Vudu, YouTube). We cannot crawl
// those services here, so each profile is a generator calibrated to the
// PASR statistics the paper reports (median and 95th percentile across the
// corpus) plus service-appropriate structure: chunk duration, ladder size,
// separate-vs-muxed audio, and shot-based encoding for services that use it.
// The uniqueness results of Table 3 are then *measured* on the generated
// corpora, not copied from the paper.

#ifndef CSI_SRC_MEDIA_SERVICE_PROFILES_H_
#define CSI_SRC_MEDIA_SERVICE_PROFILES_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/media/encoder.h"
#include "src/media/manifest.h"

namespace csi::media {

struct ServiceProfile {
  std::string name;
  int corpus_size = 30;        // #videos in the paper's crawl
  double pasr_median = 1.5;    // calibration targets (Table 3)
  double pasr_p95 = 1.6;
  TimeUs chunk_duration = 5 * kUsPerSec;
  int min_tracks = 5;
  int max_tracks = 7;
  BitsPerSec lowest_bitrate = 200 * kKbps;
  BitsPerSec highest_bitrate = 6000 * kKbps;
  bool separate_audio = true;
  double shot_based_fraction = 0.0;  // fraction of corpus using shot-based encoding
  TimeUs min_duration = 3 * 60 * kUsPerSec;
  TimeUs max_duration = 20 * 60 * kUsPerSec;
};

// The six profiles of Table 3, in the paper's row order.
std::vector<ServiceProfile> Table3Services();

// Draws one asset's target PASR from the service's calibrated distribution.
double SamplePasr(const ServiceProfile& profile, Rng& rng);

// Generates a corpus of `count` manifests for the service (count <= 0 uses
// profile.corpus_size).
std::vector<Manifest> GenerateCorpus(const ServiceProfile& profile, int count, Rng& rng);

}  // namespace csi::media

#endif  // CSI_SRC_MEDIA_SERVICE_PROFILES_H_
