// Synthetic VBR/CBR encoder.
//
// Stands in for the paper's FFmpeg three-pass encodings (§3.3): it produces a
// `Manifest` whose per-track chunk-size statistics hit a requested PASR
// (peak-to-average size ratio, p95/mean) by shaping a shared scene-complexity
// sequence. Chunks at the same playback position are correlated across tracks
// (as in real VBR ladders, Fig. 4), the `-maxrate`-style cap bounds peak
// sizes, and audio tracks are CBR with constant chunk sizes (§5.2).

#ifndef CSI_SRC_MEDIA_ENCODER_H_
#define CSI_SRC_MEDIA_ENCODER_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/media/ladder.h"
#include "src/media/manifest.h"
#include "src/media/scene_model.h"

namespace csi::media {

struct EncoderConfig {
  Ladder ladder = DefaultVideoLadder();
  // Nominal chunk duration (5 s in the paper's encodings).
  TimeUs chunk_duration = 5 * kUsPerSec;
  // Target per-track PASR; 1.0 selects CBR-like encoding.
  double target_pasr = 1.5;
  // Log-space sigma of track-specific deviation from the shared complexity.
  double per_track_sigma = 0.06;
  // `-maxrate` analogue: chunk size is capped at maxrate_factor * nominal.
  // The cap binds for peak scenes, clustering the upper size tail (real
  // three-pass encodes do the same — the source of the paper's Q1 finding
  // that single chunks are almost never unique).
  double maxrate_factor = 3.0;
  // Encoder quality floor: chunks never drop below minrate_factor * nominal.
  double minrate_factor = 0.3;
  // Scene process parameters.
  SceneModelConfig scene;
  // Shot-based encoding (Netflix-style): chunk durations vary per shot,
  // adding duration-driven size variability (§6.1).
  bool shot_based = false;
  double shot_duration_sigma = 0.30;
  // Rate-control quantization: encoders pick from discrete quantizer steps,
  // so chunk sizes snap to a log-spaced grid (~4% apart) with small residual
  // jitter. This is what makes nearly every chunk have a size-twin somewhere
  // in the asset (paper §3.3 Q1) while chunk *runs* remain distinctive.
  double size_quantum_log = 0.035;
  double quantum_jitter_sigma = 0.002;
  // Container/mux overhead added to every chunk.
  Bytes per_chunk_overhead = 350;
  // Audio: if non-empty, separate CBR audio tracks at these bitrates
  // (S* designs). If empty, audio is muxed into the video chunks at
  // `muxed_audio_bitrate` (C* designs).
  std::vector<BitsPerSec> audio_bitrates;
  BitsPerSec muxed_audio_bitrate = 128 * kKbps;
};

// Encodes an asset of the given playback duration. Deterministic given `rng`
// state.
Manifest EncodeAsset(const std::string& asset_id, const std::string& host,
                     TimeUs total_duration, const EncoderConfig& config, Rng& rng);

// Exposed for tests: returns the exponent applied to the complexity sequence
// so that p95/mean of the transformed values reaches `target_pasr`.
double SolvePasrExponent(const std::vector<double>& complexity, double target_pasr,
                         double maxrate_factor);

}  // namespace csi::media

#endif  // CSI_SRC_MEDIA_ENCODER_H_
