#include "src/media/encoder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/stats.h"

namespace csi::media {
namespace {

// p95/mean of complexity^gamma with the maxrate cap applied (after
// normalizing the transformed values to mean 1).
double PasrOf(const std::vector<double>& complexity, double gamma, double maxrate_factor) {
  std::vector<double> v;
  v.reserve(complexity.size());
  double sum = 0.0;
  for (double c : complexity) {
    const double t = std::pow(c, gamma);
    v.push_back(t);
    sum += t;
  }
  const double mean = sum / static_cast<double>(v.size());
  double capped_sum = 0.0;
  for (double& t : v) {
    t = std::min(t / mean, maxrate_factor);
    capped_sum += t;
  }
  const double capped_mean = capped_sum / static_cast<double>(v.size());
  if (capped_mean <= 0.0) {
    return 1.0;
  }
  return Percentile(v, 95.0) / capped_mean;
}

// p95/mean of the final chunk-size model: nominal * capped(c^gamma) + addend
// (the addend models muxed audio + container overhead, which compresses the
// achievable ratio on low-bitrate tracks).
double TrackPasr(const std::vector<double>& complexity, double gamma, double maxrate_factor,
                 double minrate_factor, double nominal_bytes, double addend_bytes) {
  std::vector<double> v;
  v.reserve(complexity.size());
  double sum = 0.0;
  for (double c : complexity) {
    const double t = std::pow(c, gamma);
    v.push_back(t);
    sum += t;
  }
  const double mean = sum / static_cast<double>(v.size());
  double size_sum = 0.0;
  for (double& t : v) {
    t = nominal_bytes * std::clamp(t / mean, minrate_factor, maxrate_factor) + addend_bytes;
    size_sum += t;
  }
  const double size_mean = size_sum / static_cast<double>(v.size());
  if (size_mean <= 0.0) {
    return 1.0;
  }
  return Percentile(v, 95.0) / size_mean;
}

// Scan-then-bisect for the exponent that makes TrackPasr hit the target; the
// curve rises, peaks, and collapses, so plain bisection is unsound.
double SolveTrackGamma(const std::vector<double>& complexity, double target_pasr,
                       double maxrate_factor, double minrate_factor, double nominal_bytes,
                       double addend_bytes) {
  if (complexity.size() < 2 || target_pasr <= 1.0) {
    return 0.0;
  }
  constexpr double kStep = 0.1;
  constexpr double kMaxGamma = 12.0;
  double best_gamma = 0.0;
  double best_pasr = 1.0;
  double bracket_lo = -1.0;
  double bracket_hi = -1.0;
  double prev = 0.0;
  for (double gamma = kStep; gamma <= kMaxGamma; gamma += kStep) {
    const double pasr = TrackPasr(complexity, gamma, maxrate_factor, minrate_factor,
                                  nominal_bytes, addend_bytes);
    if (pasr > best_pasr) {
      best_pasr = pasr;
      best_gamma = gamma;
    }
    if (pasr >= target_pasr) {
      bracket_lo = prev;
      bracket_hi = gamma;
      break;
    }
    prev = gamma;
  }
  if (bracket_hi < 0.0) {
    return best_gamma;  // target unreachable (addend/cap bound it)
  }
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (bracket_lo + bracket_hi);
    if (TrackPasr(complexity, mid, maxrate_factor, minrate_factor, nominal_bytes,
                  addend_bytes) < target_pasr) {
      bracket_lo = mid;
    } else {
      bracket_hi = mid;
    }
  }
  return 0.5 * (bracket_lo + bracket_hi);
}

}  // namespace

double SolvePasrExponent(const std::vector<double>& complexity, double target_pasr,
                         double maxrate_factor) {
  if (complexity.size() < 2 || target_pasr <= 1.0) {
    return 0.0;
  }
  // PASR rises with gamma, peaks, then collapses (extreme exponents
  // concentrate all mass in a few spikes), so plain bisection is unsound.
  // Scan for the first crossing of the target, then bisect the bracket; if
  // the target is unreachable, use the gamma that maximizes PASR.
  constexpr double kStep = 0.1;
  constexpr double kMaxGamma = 12.0;
  double best_gamma = 0.0;
  double best_pasr = 1.0;
  double bracket_lo = -1.0;
  double bracket_hi = -1.0;
  double prev = 0.0;
  for (double gamma = kStep; gamma <= kMaxGamma; gamma += kStep) {
    const double pasr = PasrOf(complexity, gamma, maxrate_factor);
    if (pasr > best_pasr) {
      best_pasr = pasr;
      best_gamma = gamma;
    }
    if (pasr >= target_pasr) {
      bracket_lo = prev;
      bracket_hi = gamma;
      break;
    }
    prev = gamma;
  }
  if (bracket_hi < 0.0) {
    return best_gamma;  // target unreachable with this complexity draw
  }
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (bracket_lo + bracket_hi);
    if (PasrOf(complexity, mid, maxrate_factor) < target_pasr) {
      bracket_lo = mid;
    } else {
      bracket_hi = mid;
    }
  }
  return 0.5 * (bracket_lo + bracket_hi);
}

Manifest EncodeAsset(const std::string& asset_id, const std::string& host,
                     TimeUs total_duration, const EncoderConfig& config, Rng& rng) {
  Manifest m;
  m.asset_id = asset_id;
  m.host = host;

  // Chunk durations: fixed, or per-shot variable for shot-based encoding.
  std::vector<TimeUs> durations;
  if (config.shot_based) {
    TimeUs remaining = total_duration;
    while (remaining > 0) {
      const double mult = rng.LogNormal(0.0, config.shot_duration_sigma);
      TimeUs d = static_cast<TimeUs>(static_cast<double>(config.chunk_duration) * mult);
      d = std::clamp<TimeUs>(d, config.chunk_duration / 3, config.chunk_duration * 3);
      d = std::min(d, remaining);
      durations.push_back(d);
      remaining -= d;
    }
  } else {
    const int count =
        static_cast<int>((total_duration + config.chunk_duration - 1) / config.chunk_duration);
    durations.assign(static_cast<size_t>(std::max(count, 1)), config.chunk_duration);
  }
  const int positions = static_cast<int>(durations.size());

  // Shared scene complexity; each track solves its own shaping exponent so
  // that the *final* chunk sizes — including muxed audio and container
  // overhead, which compress the ratio on low-bitrate tracks — hit the
  // target PASR.
  const ComplexityTrace scenes = GenerateScenes(positions, config.scene, rng);
  const std::vector<double>& base_complexity = scenes.complexity;
  const bool separate_audio = !config.audio_bitrates.empty();
  const double mean_dur_sec = UsToSeconds(config.chunk_duration);
  for (const LadderRung& rung : config.ladder) {
    Track t;
    t.name = rung.name;
    t.type = MediaType::kVideo;
    t.nominal_bitrate = rung.bitrate;
    t.chunks.reserve(static_cast<size_t>(positions));
    const double nominal_mean_bytes = rung.bitrate * mean_dur_sec / 8.0;
    double addend = static_cast<double>(config.per_chunk_overhead);
    if (!separate_audio) {
      addend += config.muxed_audio_bitrate * mean_dur_sec / 8.0;
    }
    const double gamma =
        SolveTrackGamma(base_complexity, config.target_pasr, config.maxrate_factor,
                        config.minrate_factor, nominal_mean_bytes, addend);
    // Normalize the shaped complexity to mean 1.
    std::vector<double> mult(base_complexity.size());
    double sum = 0.0;
    for (size_t i = 0; i < base_complexity.size(); ++i) {
      mult[i] = std::pow(base_complexity[i], gamma);
      sum += mult[i];
    }
    const double mean = sum / static_cast<double>(positions);
    // Track-specific deviation is content-driven: one multiplier per scene,
    // so a revisited scene encodes to a near-identical size in this track.
    std::map<int, double> scene_track_noise;
    for (int i = 0; i < positions; ++i) {
      const double dur_sec = UsToSeconds(durations[static_cast<size_t>(i)]);
      const double nominal_bytes = rung.bitrate * dur_sec / 8.0;
      double m_i = mult[static_cast<size_t>(i)] / mean;
      if (config.per_track_sigma > 0.0) {
        auto [it, inserted] = scene_track_noise.try_emplace(
            scenes.scene_ids[static_cast<size_t>(i)], 0.0);
        if (inserted) {
          it->second = rng.LogNormal(0.0, config.per_track_sigma);
        }
        m_i *= it->second;
      }
      if (config.size_quantum_log > 0.0) {
        // Snap to the discrete rate-control grid (integer quantizer steps).
        const double q = config.size_quantum_log;
        m_i = std::exp(std::round(std::log(m_i) / q) * q);
        if (config.quantum_jitter_sigma > 0.0) {
          m_i *= rng.LogNormal(0.0, config.quantum_jitter_sigma);
        }
      }
      // The VBV cap and quality floor are hard limits; chunks pinned at the
      // cap become exact size-twins, as real `-maxrate` encodes show.
      m_i = std::clamp(m_i, config.minrate_factor, config.maxrate_factor);
      double size = nominal_bytes * m_i;
      if (!separate_audio) {
        size += config.muxed_audio_bitrate * dur_sec / 8.0;
      }
      Chunk c;
      c.size = std::max<Bytes>(static_cast<Bytes>(size) + config.per_chunk_overhead, 64);
      c.duration = durations[static_cast<size_t>(i)];
      t.chunks.push_back(c);
    }
    m.video_tracks.push_back(std::move(t));
  }

  if (separate_audio) {
    int k = 0;
    for (BitsPerSec rate : config.audio_bitrates) {
      Track t;
      t.name = "audio-" + std::to_string(static_cast<int64_t>(rate / kKbps)) + "k";
      t.type = MediaType::kAudio;
      t.nominal_bitrate = rate;
      // CBR audio: constant chunk size at the nominal chunk duration (§5.2).
      const Bytes audio_size =
          static_cast<Bytes>(rate * UsToSeconds(config.chunk_duration) / 8.0) +
          config.per_chunk_overhead;
      t.chunks.reserve(static_cast<size_t>(positions));
      for (int i = 0; i < positions; ++i) {
        t.chunks.push_back(Chunk{audio_size, durations[static_cast<size_t>(i)]});
      }
      m.audio_tracks.push_back(std::move(t));
      ++k;
    }
    (void)k;
  }
  return m;
}

}  // namespace csi::media
