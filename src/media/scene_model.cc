#include "src/media/scene_model.h"

#include <cmath>

namespace csi::media {

ComplexityTrace GenerateScenes(int count, const SceneModelConfig& config, Rng& rng) {
  ComplexityTrace trace;
  trace.complexity.reserve(static_cast<size_t>(count));
  trace.scene_ids.reserve(static_cast<size_t>(count));
  std::vector<double> past_scenes;
  double scene_log = rng.Normal(0.0, config.scene_sigma);
  past_scenes.push_back(scene_log);
  int scene_id = 0;
  double noise = 0.0;
  for (int i = 0; i < count; ++i) {
    if (i > 0 && rng.Chance(config.scene_change_prob)) {
      if (rng.Chance(config.scene_repeat_prob)) {
        // Revisit an earlier setting: its chunks get near-twin sizes.
        scene_id = static_cast<int>(
            rng.UniformInt(0, static_cast<int64_t>(past_scenes.size()) - 1));
        scene_log = past_scenes[static_cast<size_t>(scene_id)];
      } else {
        scene_log = rng.Normal(0.0, config.scene_sigma);
        past_scenes.push_back(scene_log);
        scene_id = static_cast<int>(past_scenes.size()) - 1;
      }
      noise = 0.0;
    }
    noise = config.chunk_ar * noise + rng.Normal(0.0, config.chunk_sigma);
    trace.complexity.push_back(std::exp(scene_log + noise));
    trace.scene_ids.push_back(scene_id);
  }
  // Normalize to mean 1 so nominal bitrates stay meaningful.
  double sum = 0.0;
  for (double c : trace.complexity) {
    sum += c;
  }
  const double mean = sum / static_cast<double>(count > 0 ? count : 1);
  if (mean > 0.0) {
    for (double& c : trace.complexity) {
      c /= mean;
    }
  }
  return trace;
}

std::vector<double> GenerateComplexity(int count, const SceneModelConfig& config, Rng& rng) {
  return GenerateScenes(count, config, rng).complexity;
}

}  // namespace csi::media
