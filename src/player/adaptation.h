// ABR adaptation policies.
//
// CSI makes no assumptions about the client's track-selection logic (paper
// §6.2); to honor that, the testbed exercises several distinct policies:
// throughput-based, buffer-based (BBA-style), a hybrid, and a "Hulu-like"
// policy reproducing the behaviour measured in §7 (start on the lowest track,
// converge to the highest track whose bitrate is at most half the available
// bandwidth).

#ifndef CSI_SRC_PLAYER_ADAPTATION_H_
#define CSI_SRC_PLAYER_ADAPTATION_H_

#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/media/manifest.h"

namespace csi::player {

struct AdaptationInput {
  // Smoothed throughput estimate; 0 when no sample exists yet.
  BitsPerSec est_throughput = 0;
  // Current video buffer level.
  TimeUs video_buffer = 0;
  // Track selected for the previous chunk; -1 before the first selection.
  int current_track = -1;
  // Video chunks downloaded so far this session.
  int chunks_downloaded = 0;
  const media::Manifest* manifest = nullptr;
};

class Adaptation {
 public:
  virtual ~Adaptation() = default;
  // Returns the video track ordinal to fetch next (0-based).
  virtual int SelectVideoTrack(const AdaptationInput& input) = 0;
  virtual std::string name() const = 0;
};

// Highest track whose nominal bitrate fits within safety * throughput.
class RateBasedAdaptation : public Adaptation {
 public:
  explicit RateBasedAdaptation(double safety = 0.7) : safety_(safety) {}
  int SelectVideoTrack(const AdaptationInput& input) override;
  std::string name() const override { return "rate-based"; }

 private:
  double safety_;
};

// BBA-style: track rises linearly with buffer level between a reservoir and a
// cushion.
class BufferBasedAdaptation : public Adaptation {
 public:
  BufferBasedAdaptation(TimeUs reservoir = 10 * kUsPerSec, TimeUs cushion = 50 * kUsPerSec)
      : reservoir_(reservoir), cushion_(cushion) {}
  int SelectVideoTrack(const AdaptationInput& input) override;
  std::string name() const override { return "buffer-based"; }

 private:
  TimeUs reservoir_;
  TimeUs cushion_;
};

// Rate-based with buffer guard rails (ExoPlayer-flavoured): drops a level
// when the buffer is low, requires headroom before switching up.
class HybridAdaptation : public Adaptation {
 public:
  HybridAdaptation(double safety = 0.85, TimeUs low_buffer = 10 * kUsPerSec,
                   TimeUs up_switch_buffer = 15 * kUsPerSec)
      : safety_(safety), low_buffer_(low_buffer), up_switch_buffer_(up_switch_buffer) {}
  int SelectVideoTrack(const AdaptationInput& input) override;
  std::string name() const override { return "hybrid"; }

 private:
  double safety_;
  TimeUs low_buffer_;
  TimeUs up_switch_buffer_;
};

// Reproduces the Hulu behaviour of §7: the first few chunks come from the
// lowest track, then the player converges to the highest track whose bitrate
// is at most `safety` (one half) of the estimated bandwidth.
class HuluLikeAdaptation : public Adaptation {
 public:
  HuluLikeAdaptation(double safety = 0.5, int startup_chunks = 3)
      : safety_(safety), startup_chunks_(startup_chunks) {}
  int SelectVideoTrack(const AdaptationInput& input) override;
  std::string name() const override { return "hulu-like"; }

 private:
  double safety_;
  int startup_chunks_;
};

// Factory by name ("rate-based", "buffer-based", "hybrid", "hulu-like").
std::unique_ptr<Adaptation> MakeAdaptation(const std::string& name);

}  // namespace csi::player

#endif  // CSI_SRC_PLAYER_ADAPTATION_H_
