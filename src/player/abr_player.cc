#include "src/player/abr_player.h"

#include <algorithm>
#include <utility>

#include "src/app/resource.h"

namespace csi::player {

using media::ChunkRef;
using media::MediaType;

AbrPlayer::AbrPlayer(sim::Simulator* sim, PlayerConfig config, const media::Manifest* manifest,
                     std::unique_ptr<Adaptation> adaptation, http::HttpSession* session,
                     Rng rng)
    : sim_(sim),
      config_(config),
      manifest_(manifest),
      adaptation_(std::move(adaptation)),
      session_(session),
      rng_(rng),
      next_video_index_(config.start_index),
      next_audio_index_(config.start_index),
      throughput_(config.ewma_alpha) {}

void AbrPlayer::Start() {
  session_->Connect([this] { FetchManifest(); });
}

Bytes AbrPlayer::RequestBytes() {
  return config_.request_bytes + rng_.UniformInt(0, std::max<Bytes>(config_.request_jitter, 1));
}

void AbrPlayer::FetchManifest() {
  const app::Resource manifest_res = app::Resource::ManifestOf(manifest_->asset_id);
  session_->Get(manifest_res.ToTag(), RequestBytes(), [this](const http::FetchResult&) {
    manifest_loaded_ = true;
    ScheduleDownloads();
  });
}

TimeUs AbrPlayer::PositionAt(TimeUs now) const {
  return playing_ ? anchor_pos_ + (now - anchor_time_) : anchor_pos_;
}

TimeUs AbrPlayer::Position() const { return PositionAt(sim_->Now()); }

TimeUs AbrPlayer::BufferedEnd() const {
  return manifest_->has_separate_audio() ? std::min(video_end_pos_, audio_end_pos_)
                                         : video_end_pos_;
}

TimeUs AbrPlayer::VideoBufferLevel() const {
  return std::max<TimeUs>(video_end_pos_ - Position(), 0);
}

TimeUs AbrPlayer::AudioBufferLevel() const {
  return std::max<TimeUs>(audio_end_pos_ - Position(), 0);
}

std::vector<StallRecord> AbrPlayer::stalls() const {
  std::vector<StallRecord> result = stalls_;
  if (stall_open_ && !result.empty() && result.back().end == 0) {
    result.back().end = sim_->Now();
  }
  return result;
}

void AbrPlayer::ScheduleDownloads() {
  if (!manifest_loaded_) {
    return;
  }
  const int positions = manifest_->num_positions();
  const bool separate_audio = manifest_->has_separate_audio();
  const TimeUs video_buffer = VideoBufferLevel();

  // Audio chases video: an audio chunk is due whenever the audio timeline
  // trails the video timeline.
  const bool audio_due =
      separate_audio && next_audio_index_ < positions && audio_end_pos_ < video_end_pos_;
  const bool video_due = next_video_index_ < positions;

  if (config_.transport_mux) {
    // SQ: audio and video pipelines run concurrently on the multiplexed
    // connection, but stay in lockstep: while an audio chunk that trails the
    // video timeline is in flight, the next video request waits for it, so
    // requests are typically issued in simultaneous audio+video pairs (the
    // behaviour behind the paper's SP2 split points).
    const bool audio_catching_up =
        separate_audio && audio_outstanding_ && audio_end_pos_ < video_end_pos_;
    if (!video_outstanding_ && video_due && !audio_catching_up) {
      if (video_buffer < config_.max_buffer) {
        RequestVideo();
      } else {
        ArmBufferWake(video_buffer);
      }
    }
    if (!audio_outstanding_ && audio_due) {
      RequestAudio();
    }
    return;
  }

  // Non-MUX designs: one request outstanding on the connection at a time.
  if (session_->outstanding() > 0) {
    return;
  }
  if (audio_due) {
    RequestAudio();
    return;
  }
  if (video_due) {
    if (video_buffer < config_.max_buffer) {
      RequestVideo();
    } else {
      ArmBufferWake(video_buffer);
    }
  }
}

void AbrPlayer::ArmBufferWake(TimeUs video_buffer) {
  if (wake_event_ != 0 || !playing_) {
    // While paused/stalled the buffer cannot drain; playback transitions
    // re-run ScheduleDownloads.
    return;
  }
  const TimeUs wait = std::max<TimeUs>(video_buffer - config_.max_buffer, 0) + 20 * kUsPerMs;
  wake_event_ = sim_->ScheduleAfter(wait, [this] {
    wake_event_ = 0;
    ScheduleDownloads();
  });
}

void AbrPlayer::RequestVideo() {
  AdaptationInput input;
  input.est_throughput = est_throughput();
  input.video_buffer = VideoBufferLevel();
  input.current_track = current_track_;
  input.chunks_downloaded = video_chunks_downloaded_;
  input.manifest = manifest_;
  const int track =
      std::clamp(adaptation_->SelectVideoTrack(input), 0, manifest_->num_video_tracks() - 1);
  const ChunkRef ref{MediaType::kVideo, track, next_video_index_};
  ++next_video_index_;
  video_outstanding_ = true;
  session_->Get(app::Resource::ChunkOf(manifest_->asset_id, ref).ToTag(), RequestBytes(),
                [this, ref](const http::FetchResult& result) { OnChunkDone(ref, result); });
}

void AbrPlayer::RequestAudio() {
  const ChunkRef ref{MediaType::kAudio, 0, next_audio_index_};
  ++next_audio_index_;
  audio_outstanding_ = true;
  session_->Get(app::Resource::ChunkOf(manifest_->asset_id, ref).ToTag(), RequestBytes(),
                [this, ref](const http::FetchResult& result) { OnChunkDone(ref, result); });
}

void AbrPlayer::OnChunkDone(ChunkRef ref, const http::FetchResult& result) {
  const media::Chunk& chunk = manifest_->ChunkOf(ref);
  DownloadRecord record;
  record.chunk = ref;
  record.request_time = result.request_time;
  record.done_time = result.done_time;
  record.bytes = result.body_bytes;
  downloads_.push_back(record);
  total_bytes_ += result.body_bytes;

  const TimeUs elapsed = std::max<TimeUs>(result.done_time - result.request_time, 1);
  throughput_.Add(static_cast<double>(result.body_bytes) * 8.0 / UsToSeconds(elapsed));

  if (ref.type == MediaType::kVideo) {
    video_outstanding_ = false;
    video_end_pos_ += chunk.duration;
    current_track_ = ref.track;
    ++video_chunks_downloaded_;
    video_downloads_.push_back(record);
  } else {
    audio_outstanding_ = false;
    audio_end_pos_ += chunk.duration;
  }

  UpdatePlayback();
  ScheduleDownloads();
}

void AbrPlayer::UpdatePlayback() {
  const TimeUs now = sim_->Now();
  if (!playing_ && !playback_complete_) {
    const TimeUs threshold = started_once_ ? config_.rebuffer_target : config_.startup_buffer;
    const bool all_downloaded = next_video_index_ >= manifest_->num_positions() &&
                                !video_outstanding_ && !audio_outstanding_;
    const TimeUs available = BufferedEnd() - anchor_pos_;
    if (available >= threshold || (all_downloaded && available > 0)) {
      playing_ = true;
      started_once_ = true;
      anchor_time_ = now;
      if (stall_open_) {
        stalls_.back().end = now;
        stall_open_ = false;
      }
      ScheduleDownloads();
    }
  }
  ArmStallEvent();
  ArmDisplayEvent();
}

void AbrPlayer::ArmStallEvent() {
  if (stall_event_ != 0) {
    sim_->Cancel(stall_event_);
    stall_event_ = 0;
  }
  if (!playing_) {
    return;
  }
  const TimeUs now = sim_->Now();
  const TimeUs remaining = BufferedEnd() - PositionAt(now);
  stall_event_ = sim_->ScheduleAfter(std::max<TimeUs>(remaining, 0), [this] {
    stall_event_ = 0;
    const TimeUs t = sim_->Now();
    anchor_pos_ = PositionAt(t);
    anchor_time_ = t;
    playing_ = false;
    // Distinguish end-of-content from a stall.
    const bool content_done = next_video_index_ >= manifest_->num_positions() &&
                              video_end_pos_ <= anchor_pos_;
    if (content_done) {
      playback_complete_ = true;
    } else {
      stalls_.push_back(StallRecord{t, 0});
      stall_open_ = true;
    }
    UpdatePlayback();
    ScheduleDownloads();
  });
}

void AbrPlayer::ArmDisplayEvent() {
  if (display_event_ != 0) {
    sim_->Cancel(display_event_);
    display_event_ = 0;
  }
  if (!playing_ || next_display_ordinal_ >= static_cast<int>(video_downloads_.size())) {
    return;
  }
  // Playback position at which the next undisplayed chunk starts.
  TimeUs boundary = 0;
  for (int i = 0; i < next_display_ordinal_; ++i) {
    boundary += manifest_->ChunkOf(video_downloads_[static_cast<size_t>(i)].chunk).duration;
  }
  const TimeUs now = sim_->Now();
  const TimeUs wait = std::max<TimeUs>(boundary - PositionAt(now), 0);
  display_event_ = sim_->ScheduleAfter(wait, [this] {
    display_event_ = 0;
    if (next_display_ordinal_ < static_cast<int>(video_downloads_.size())) {
      DisplayRecord d;
      d.chunk = video_downloads_[static_cast<size_t>(next_display_ordinal_)].chunk;
      d.start_time = sim_->Now();
      displays_.push_back(d);
      ++next_display_ordinal_;
    }
    ArmDisplayEvent();
  });
}

}  // namespace csi::player
