#include "src/player/adaptation.h"

#include <algorithm>
#include <stdexcept>

namespace csi::player {
namespace {

// Highest track with nominal bitrate <= budget; 0 if none fit.
int HighestFitting(const media::Manifest& manifest, BitsPerSec budget) {
  int pick = 0;
  for (int t = 0; t < manifest.num_video_tracks(); ++t) {
    if (manifest.video_tracks[static_cast<size_t>(t)].nominal_bitrate <= budget) {
      pick = t;
    }
  }
  return pick;
}

}  // namespace

int RateBasedAdaptation::SelectVideoTrack(const AdaptationInput& input) {
  if (input.est_throughput <= 0) {
    return 0;
  }
  return HighestFitting(*input.manifest, safety_ * input.est_throughput);
}

int BufferBasedAdaptation::SelectVideoTrack(const AdaptationInput& input) {
  const int top = input.manifest->num_video_tracks() - 1;
  if (input.video_buffer <= reservoir_) {
    return 0;
  }
  if (input.video_buffer >= cushion_) {
    return top;
  }
  const double frac = static_cast<double>(input.video_buffer - reservoir_) /
                      static_cast<double>(cushion_ - reservoir_);
  return static_cast<int>(frac * top);
}

int HybridAdaptation::SelectVideoTrack(const AdaptationInput& input) {
  int candidate = input.est_throughput > 0
                      ? HighestFitting(*input.manifest, safety_ * input.est_throughput)
                      : 0;
  const int current = std::max(input.current_track, 0);
  if (input.video_buffer < low_buffer_ && candidate >= current && input.current_track >= 0) {
    candidate = std::max(current - 1, 0);
  } else if (candidate > current && input.video_buffer < up_switch_buffer_ &&
             input.current_track >= 0) {
    candidate = current;  // not enough headroom to switch up yet
  }
  return candidate;
}

int HuluLikeAdaptation::SelectVideoTrack(const AdaptationInput& input) {
  if (input.chunks_downloaded < startup_chunks_ || input.est_throughput <= 0) {
    return 0;
  }
  return HighestFitting(*input.manifest, safety_ * input.est_throughput);
}

std::unique_ptr<Adaptation> MakeAdaptation(const std::string& name) {
  if (name == "rate-based") {
    return std::make_unique<RateBasedAdaptation>();
  }
  if (name == "buffer-based") {
    return std::make_unique<BufferBasedAdaptation>();
  }
  if (name == "hybrid") {
    return std::make_unique<HybridAdaptation>();
  }
  if (name == "hulu-like") {
    return std::make_unique<HuluLikeAdaptation>();
  }
  throw std::invalid_argument("unknown adaptation policy: " + name);
}

}  // namespace csi::player
