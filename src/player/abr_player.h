// ABR streaming client.
//
// Models the behaviours of commercial mobile players that CSI's inference
// relies on (paper §5.2) and that its evaluation exercises (§6.2):
//   * downloads the manifest, then chunks in contiguous playback-index order
//     (Property (2)), with the track chosen per chunk by a pluggable
//     adaptation policy;
//   * maintains a playout buffer with a maximum occupancy; when full it
//     pauses downloading until the buffer drains below the threshold,
//     producing the ON-OFF traffic pattern CSI's SP1 split points detect;
//   * issues at most one outstanding video and one outstanding audio request
//     (concurrently on QUIC with separate audio — transport MUX; strictly
//     serialized on HTTPS), which SP2 split points exploit;
//   * records ground-truth download, display, and stall logs used to score
//     inference accuracy (the paper's instrumented-ExoPlayer equivalent).

#ifndef CSI_SRC_PLAYER_ABR_PLAYER_H_
#define CSI_SRC_PLAYER_ABR_PLAYER_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/http/http_session.h"
#include "src/media/manifest.h"
#include "src/player/adaptation.h"
#include "src/sim/simulator.h"

namespace csi::player {

struct PlayerConfig {
  // Maximum buffer occupancy: downloading pauses at this level (ON-OFF).
  TimeUs max_buffer = 120 * kUsPerSec;
  // Playback starts once this much content is buffered.
  TimeUs startup_buffer = 10 * kUsPerSec;
  // After a stall, playback resumes at this buffer level.
  TimeUs rebuffer_target = 5 * kUsPerSec;
  // Encrypted request size (URL + headers), jittered per request.
  Bytes request_bytes = 380;
  Bytes request_jitter = 60;
  // First chunk index to play (tests may resume mid-video; Property (2) does
  // not assume I_1 = 1).
  int start_index = 0;
  // Throughput EWMA smoothing factor.
  double ewma_alpha = 0.25;
  // True for QUIC with separate audio (design SQ): audio and video requests
  // may be outstanding concurrently on the multiplexed connection.
  bool transport_mux = false;
};

// Ground-truth logs (instrumented-player equivalents; CSI never reads these
// during inference — only the scorer does).
struct DownloadRecord {
  media::ChunkRef chunk;
  TimeUs request_time = 0;
  TimeUs done_time = 0;
  Bytes bytes = 0;
};

struct DisplayRecord {
  media::ChunkRef chunk;
  TimeUs start_time = 0;  // wall time the chunk starts being displayed
};

struct StallRecord {
  TimeUs start = 0;
  TimeUs end = 0;  // == start of resume; 0 while ongoing
};

class AbrPlayer {
 public:
  AbrPlayer(sim::Simulator* sim, PlayerConfig config, const media::Manifest* manifest,
            std::unique_ptr<Adaptation> adaptation, http::HttpSession* session, Rng rng);

  // Connects and begins streaming.
  void Start();

  // --- State queries ---
  TimeUs VideoBufferLevel() const;
  TimeUs AudioBufferLevel() const;
  // Current playback position (time offset into the played content).
  TimeUs Position() const;
  bool playing() const { return playing_; }
  bool playback_complete() const { return playback_complete_; }
  BitsPerSec est_throughput() const { return throughput_.has_value() ? throughput_.value() : 0; }

  // --- Ground-truth logs ---
  const std::vector<DownloadRecord>& downloads() const { return downloads_; }
  const std::vector<DisplayRecord>& displays() const { return displays_; }
  // Stalls, with any open stall closed at the current time.
  std::vector<StallRecord> stalls() const;
  Bytes total_bytes_downloaded() const { return total_bytes_; }

 private:
  void FetchManifest();
  void ScheduleDownloads();
  void RequestVideo();
  void RequestAudio();
  void OnChunkDone(media::ChunkRef ref, const http::FetchResult& result);
  void UpdatePlayback();
  void ArmStallEvent();
  void ArmDisplayEvent();
  void ArmBufferWake(TimeUs video_buffer);
  TimeUs PositionAt(TimeUs now) const;
  TimeUs BufferedEnd() const;  // min of audio/video buffered end positions
  Bytes RequestBytes();

  sim::Simulator* sim_;
  PlayerConfig config_;
  const media::Manifest* manifest_;
  std::unique_ptr<Adaptation> adaptation_;
  http::HttpSession* session_;
  Rng rng_;

  bool manifest_loaded_ = false;
  int next_video_index_ = 0;
  int next_audio_index_ = 0;
  bool video_outstanding_ = false;
  bool audio_outstanding_ = false;
  int current_track_ = -1;
  int video_chunks_downloaded_ = 0;
  Ewma throughput_;

  // Playback state. Positions are offsets from the start_index boundary.
  TimeUs video_end_pos_ = 0;
  TimeUs audio_end_pos_ = 0;
  bool playing_ = false;
  bool started_once_ = false;
  bool playback_complete_ = false;
  TimeUs anchor_time_ = 0;
  TimeUs anchor_pos_ = 0;
  uint64_t stall_event_ = 0;
  uint64_t display_event_ = 0;
  uint64_t wake_event_ = 0;
  int next_display_ordinal_ = 0;  // how many video chunks have begun display

  std::vector<DownloadRecord> downloads_;
  std::vector<DownloadRecord> video_downloads_;  // downloads_, video only
  std::vector<DisplayRecord> displays_;
  std::vector<StallRecord> stalls_;
  bool stall_open_ = false;
  Bytes total_bytes_ = 0;
};

}  // namespace csi::player

#endif  // CSI_SRC_PLAYER_ABR_PLAYER_H_
