#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace csi::sim {

uint64_t Simulator::ScheduleAt(TimeUs when, Callback cb) {
  const uint64_t id = next_id_++;
  queue_.push(Event{std::max(when, now_), next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

uint64_t Simulator::ScheduleAfter(TimeUs delay, Callback cb) {
  return ScheduleAt(now_ + std::max<TimeUs>(delay, 0), std::move(cb));
}

bool Simulator::Cancel(uint64_t id) { return callbacks_.erase(id) > 0; }

bool Simulator::PopAndFire() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {
      continue;  // cancelled
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    cb();
    return true;
  }
  return false;
}

size_t Simulator::Run(size_t max_events) {
  size_t fired = 0;
  while (fired < max_events && PopAndFire()) {
    ++fired;
  }
  return fired;
}

size_t Simulator::RunUntil(TimeUs deadline) {
  size_t fired = 0;
  while (!queue_.empty()) {
    // Skip tombstones so queue_.top() reflects a live event.
    if (callbacks_.find(queue_.top().id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) {
      break;
    }
    if (PopAndFire()) {
      ++fired;
    }
  }
  now_ = std::max(now_, deadline);
  return fired;
}

}  // namespace csi::sim
