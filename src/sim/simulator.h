// Discrete-event simulation core.
//
// Everything in the CSI testbed (links, transports, players, servers) runs on
// a single `Simulator`: a clock plus a priority queue of timestamped events.
// Events scheduled for the same instant fire in scheduling order, which makes
// runs fully deterministic.

#ifndef CSI_SRC_SIM_SIMULATOR_H_
#define CSI_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace csi::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  // Current simulated time.
  TimeUs Now() const { return now_; }

  // Schedules `cb` to run at absolute time `when` (clamped to Now()).
  // Returns an id usable with Cancel().
  uint64_t ScheduleAt(TimeUs when, Callback cb);

  // Schedules `cb` to run `delay` microseconds from now.
  uint64_t ScheduleAfter(TimeUs delay, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op. Returns true if the event was pending.
  bool Cancel(uint64_t id);

  // Runs events until the queue drains or `max_events` fire. Returns the
  // number of events fired.
  size_t Run(size_t max_events = SIZE_MAX);

  // Runs events with timestamps <= `deadline`, then advances the clock to
  // `deadline` if it ended earlier. Returns events fired.
  size_t RunUntil(TimeUs deadline);

  // Number of live (non-cancelled) pending events.
  size_t pending_events() const { return callbacks_.size(); }

 private:
  struct Event {
    TimeUs when;
    uint64_t seq;  // tie-break: FIFO among same-time events
    uint64_t id;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Fires the next live event, if any. Returns whether one fired.
  bool PopAndFire();

  TimeUs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Live callbacks by event id; Cancel() removes the entry and the heap entry
  // becomes a tombstone skipped at pop time.
  std::unordered_map<uint64_t, Callback> callbacks_;
};

}  // namespace csi::sim

#endif  // CSI_SRC_SIM_SIMULATOR_H_
