#include "src/app/resource.h"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace csi::app {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(s);
  while (std::getline(in, part, sep)) {
    parts.push_back(part);
  }
  return parts;
}

}  // namespace

std::string Resource::ToTag() const {
  switch (kind) {
    case Kind::kManifest:
      return "manifest:" + asset_id;
    case Kind::kChunk:
    case Kind::kHead: {
      std::ostringstream out;
      out << (kind == Kind::kChunk ? "chunk:" : "head:") << asset_id << ":"
          << (chunk.type == media::MediaType::kVideo ? "v" : "a") << ":" << chunk.track << ":"
          << chunk.index;
      return out.str();
    }
  }
  return {};
}

Resource Resource::FromTag(const std::string& tag) {
  const auto parts = Split(tag, ':');
  if (parts.empty()) {
    throw std::invalid_argument("Resource: empty tag");
  }
  Resource r;
  if (parts[0] == "manifest" && parts.size() == 2) {
    r.kind = Kind::kManifest;
    r.asset_id = parts[1];
    return r;
  }
  if ((parts[0] == "chunk" || parts[0] == "head") && parts.size() == 5) {
    r.kind = parts[0] == "chunk" ? Kind::kChunk : Kind::kHead;
    r.asset_id = parts[1];
    r.chunk.type = parts[2] == "v" ? media::MediaType::kVideo : media::MediaType::kAudio;
    r.chunk.track = std::stoi(parts[3]);
    r.chunk.index = std::stoi(parts[4]);
    return r;
  }
  throw std::invalid_argument("Resource: bad tag '" + tag + "'");
}

Resource Resource::ManifestOf(const std::string& asset_id) {
  Resource r;
  r.kind = Kind::kManifest;
  r.asset_id = asset_id;
  return r;
}

Resource Resource::ChunkOf(const std::string& asset_id, media::ChunkRef ref) {
  Resource r;
  r.kind = Kind::kChunk;
  r.asset_id = asset_id;
  r.chunk = ref;
  return r;
}

Resource Resource::HeadOf(const std::string& asset_id, media::ChunkRef ref) {
  Resource r;
  r.kind = Kind::kHead;
  r.asset_id = asset_id;
  r.chunk = ref;
  return r;
}

}  // namespace csi::app
