#include "src/app/origin_server.h"

#include <stdexcept>

namespace csi::app {

void OriginServer::Host(const media::Manifest* manifest) {
  assets_[manifest->asset_id] = manifest;
}

const media::Manifest* OriginServer::FindAsset(const std::string& asset_id) const {
  auto it = assets_.find(asset_id);
  return it == assets_.end() ? nullptr : it->second;
}

Bytes OriginServer::ResponseBytesFor(const std::string& tag) const {
  const Resource r = Resource::FromTag(tag);
  const media::Manifest* manifest = FindAsset(r.asset_id);
  if (manifest == nullptr) {
    throw std::out_of_range("OriginServer: unknown asset " + r.asset_id);
  }
  switch (r.kind) {
    case Resource::Kind::kManifest:
      return manifest->SerializedSize();
    case Resource::Kind::kChunk:
      return manifest->SizeOf(r.chunk);
    case Resource::Kind::kHead:
      return 0;  // headers only
  }
  return 0;
}

}  // namespace csi::app
