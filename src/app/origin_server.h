// Origin server: serves manifests and chunks for hosted assets.
//
// Implements the `ServerHandler` role of `http::HttpSession`: given a request
// tag it returns the response body size. HEAD requests return zero body —
// they are how CSI's metadata collector queries chunk sizes when a manifest
// only lists URLs (paper §4.1).

#ifndef CSI_SRC_APP_ORIGIN_SERVER_H_
#define CSI_SRC_APP_ORIGIN_SERVER_H_

#include <map>
#include <string>

#include "src/app/resource.h"
#include "src/common/units.h"
#include "src/media/manifest.h"

namespace csi::app {

class OriginServer {
 public:
  // Registers an asset; the server keeps a pointer (caller keeps ownership
  // alive for the server's lifetime).
  void Host(const media::Manifest* manifest);

  // Response body size for a request tag. Unknown assets/refs throw
  // std::out_of_range (a real server would 404).
  Bytes ResponseBytesFor(const std::string& tag) const;

  const media::Manifest* FindAsset(const std::string& asset_id) const;

 private:
  std::map<std::string, const media::Manifest*> assets_;
};

}  // namespace csi::app

#endif  // CSI_SRC_APP_ORIGIN_SERVER_H_
