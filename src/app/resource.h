// Resource naming between player and origin server.
//
// A `Resource` stands in for the HTTP request URL. On a real wire the URL is
// encrypted — CSI never sees it — but the simulated client and server need a
// shared name for what is being fetched. Tags round-trip through a compact
// string form ("chunk:<asset>:v:<track>:<index>" etc.).

#ifndef CSI_SRC_APP_RESOURCE_H_
#define CSI_SRC_APP_RESOURCE_H_

#include <string>

#include "src/media/manifest.h"

namespace csi::app {

struct Resource {
  enum class Kind { kManifest, kChunk, kHead };

  Kind kind = Kind::kManifest;
  std::string asset_id;
  media::ChunkRef chunk;  // valid when kind is kChunk or kHead

  std::string ToTag() const;
  static Resource FromTag(const std::string& tag);

  static Resource ManifestOf(const std::string& asset_id);
  static Resource ChunkOf(const std::string& asset_id, media::ChunkRef ref);
  static Resource HeadOf(const std::string& asset_id, media::ChunkRef ref);
};

}  // namespace csi::app

#endif  // CSI_SRC_APP_RESOURCE_H_
