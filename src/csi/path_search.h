// Step 2 for designs without transport MUX: combine per-request candidates
// into contiguous chunk sequences via a layered-graph path search
// (paper §5.3.1, Fig. 9a).
//
// Layer i holds the video-chunk candidates matching estimate S~_i
// (Property (1)); an edge joins candidates of two requests when their
// playback indexes are consecutive (Property (2)) and every request between
// them can be a non-video exchange (an audio chunk whose CBR size matches, or
// a non-media exchange — handshake tail, manifest — that matches no chunk at
// all). Every source-to-sink path is one candidate chunk sequence; the paper
// finds them with Dijkstra over zero-weight edges, which on this DAG reduces
// to reachability pruning plus path enumeration (bounded by `max_sequences`).

#ifndef CSI_SRC_CSI_PATH_SEARCH_H_
#define CSI_SRC_CSI_PATH_SEARCH_H_

#include <map>
#include <vector>

#include "src/csi/chunk_database.h"
#include "src/csi/types.h"

namespace csi::infer {

// Optional displayed-chunk information (§4.2): OCR of player overlays yields
// (playback index -> track) constraints that prune video candidates.
using DisplayConstraints = std::map<int, int>;

struct PathSearchConfig {
  double k = 0.01;            // size-estimation error bound
  int max_sequences = 512;    // enumeration cap (result marked truncated)
};

// Per-request assignment options derived from the size estimate.
struct SlotOptions {
  std::vector<media::ChunkRef> video_candidates;
  int audio_track = -1;       // >= 0 if an audio chunk size matches
  bool other_ok = false;      // nothing matches: non-media exchange
  bool skippable() const { return audio_track >= 0 || other_ok; }
};

// Builds slot options for each estimated exchange.
std::vector<SlotOptions> BuildSlotOptions(const std::vector<EstimatedExchange>& exchanges,
                                          const ChunkDatabase& db, double k,
                                          const DisplayConstraints& display = {});

// Enumerates all contiguous-index assignments consistent with the options.
InferenceResult SearchSequences(const std::vector<EstimatedExchange>& exchanges,
                                const std::vector<SlotOptions>& options,
                                const ChunkDatabase& db,
                                const PathSearchConfig& config = {});

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_PATH_SEARCH_H_
