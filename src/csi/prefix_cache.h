// Cross-session cache of the snapshot-independent analysis prefix.
//
// PR 6 moved the SQ group enumeration behind the shared candidate cache, and
// since then the per-packet stages — flow classification, request/size
// estimation and traffic splitting — dominate end-to-end batch time on clean
// captures. Those stages read only the capture bytes and a handful of config
// knobs; they never touch the chunk database. A `--follow-manifests` replay
// or an overlapping batch therefore recomputes byte-identical flows, groups
// and exchanges for every repeat of every trace.
//
// AnalysisPrefixCache is the amortization layer for that front of the
// pipeline: a sharded, concurrent, byte-budgeted cache mapping
//
//   (128-bit trace fingerprint, interned classifier/splitter context)
//
// to the immutable `AnalysisPrefix` the per-packet stages produce. The
// fingerprint hashes every observer-visible packet field (timing, addressing,
// direction, sizes, sequence/packet numbers, SNI), so two captures share an
// entry exactly when the inference input is bit-identical; the context
// interns the knobs the prefix stages read (design, host suffix, splitter
// thresholds) with full structural equality, never a lossy hash.
//
// Safety argument (simpler than the candidate cache's): the cached value is a
// pure function of (capture bytes, context). No database state enters the
// prefix computation — merge repair, which probes the snapshot, deliberately
// stays *outside* the prefix (the cache stores pre-repair exchanges for the
// non-MUX designs) — so entries are valid across every snapshot, epoch and
// lineage forever; there is no invalidation, only eviction. Byte-identical
// output cache-on vs cache-off follows by construction and is locked in by
// tests/prefix_cache_test.cc.
//
// Hits return a shared_ptr to an immutable AnalysisPrefix — a warm Analyze
// jumps straight to the snapshot-dependent candidate/graph search without
// copying packet vectors. Eviction is per-shard second-chance (clock) over a
// byte budget via the shared ShardedClockStore (cache_common.h). Force-off
// escape hatches: CSI_PREFIX_CACHE=off or the unified CSI_CACHE=prefix:off
// turn every lookup into a miss and every insert into a no-op.

#ifndef CSI_SRC_CSI_PREFIX_CACHE_H_
#define CSI_SRC_CSI_PREFIX_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/capture/packet_columns.h"
#include "src/capture/packet_record.h"
#include "src/csi/cache_common.h"
#include "src/csi/splitter.h"
#include "src/csi/types.h"

namespace csi::infer {

// Deterministic 128-bit digest of a capture trace. Two independent 64-bit
// mixes over the same field stream: a single 64-bit FNV would make accidental
// collisions plausible at deployment trace counts, 128 bits makes them
// negligible. Pure integer arithmetic — identical on every platform.
struct TraceFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const TraceFingerprint&, const TraceFingerprint&) = default;
};

TraceFingerprint FingerprintTrace(const capture::CaptureTrace& trace);

// Identical digest computed from the columnar layout: replays the original
// capture order through the columns' (flow, slot) maps so the field stream —
// and therefore the fingerprint — is bit-identical to FingerprintTrace over
// the trace the columns were built from. Cached prefixes are interchangeable
// between the AoS and SoA paths.
TraceFingerprint FingerprintColumns(const capture::PacketColumns& columns);

// Immutable output of the snapshot-independent front of Analyze: flow
// classification plus — for the dominant media flow — either the split
// traffic groups (SQ) or the SNI-filtered estimated exchanges (CH/SH/CQ,
// *before* merge repair, which consults the snapshot and stays per-call).
// Shared by pointer between the cache and every engine that hits it.
struct AnalysisPrefix {
  // Number of media flows classified; 0 short-circuits Analyze to the empty
  // result exactly like the uncached path.
  int media_flows = 0;
  // SQ only: traffic groups of the dominant flow (SP1/SP2 splitting).
  std::vector<TrafficGroup> groups;
  // Non-SQ designs: per-exchange size estimates of the dominant flow with
  // handshake exchanges already filtered out.
  std::vector<EstimatedExchange> exchanges;
};

class AnalysisPrefixCache {
 public:
  static constexpr int kDefaultShards = 16;

  // Unified stats block shared by every cache tier (invalidations stays 0
  // here: prefix entries are snapshot-independent and never revalidate).
  using Stats = CacheStats;

  struct Query {
    TraceFingerprint fingerprint;
    uint32_t context = 0;

    friend bool operator==(const Query&, const Query&) = default;
  };

  explicit AnalysisPrefixCache(size_t budget_bytes, int shards = kDefaultShards);

  AnalysisPrefixCache(const AnalysisPrefixCache&) = delete;
  AnalysisPrefixCache& operator=(const AnalysisPrefixCache&) = delete;

  // True when CSI_PREFIX_CACHE=off|OFF|0|none or the unified
  // CSI_CACHE=prefix:off override forces the cache out of the picture
  // (environment checked once per process), or a test forced it via
  // ForceEnvOffForTest. Engines treat the cache as absent; a constructed
  // cache stays empty.
  static bool EnvForcesOff();
  // Recognizer behind the env override, exposed so tests can pin the accepted
  // spellings without re-execing under a modified environment.
  static bool IsOffValue(const std::string& value);
  // Test seam simulating CSI_PREFIX_CACHE=off in-process (the real env read
  // is cached in a static). Always reset to false before the test returns.
  static void ForceEnvOffForTest(bool off);

  // Interns the prefix-relevant subset of an inference config — design type,
  // host suffix, splitter knobs — and returns a process-stable id (>= 1).
  // Full structural equality, so two engines share an id only when every knob
  // the prefix stages read is identical.
  uint32_t InternContext(DesignType design, const std::string& host_suffix,
                         const SplitterConfig& splitter);

  // Fingerprints `trace` and assembles the key. O(packets), but pure
  // arithmetic — far cheaper than the classify/split work a hit skips.
  static Query MakeQuery(const capture::CaptureTrace& trace, uint32_t context);

  // Columnar flavor: same key for the same capture (see FingerprintColumns).
  static Query MakeQuery(const capture::PacketColumns& columns,
                         uint32_t context);

  // Returns the cached prefix, or null on a miss. Never blocks behind an
  // insert on another shard; entries are valid under every database snapshot
  // (see the safety argument above), so there is no revalidation step.
  std::shared_ptr<const AnalysisPrefix> Lookup(const Query& query);

  // Publishes a computed prefix. Replaces any existing entry for the key (a
  // racing thread computed the same trace); values larger than a whole
  // shard's budget are not admitted. No-op when the env forces the cache off.
  void Insert(const Query& query, std::shared_ptr<const AnalysisPrefix> prefix);

  // Drops every entry (stats survive). Test/bench seam for cold-start runs.
  void Clear();

  Stats stats() const;
  size_t budget_bytes() const { return store_.budget_bytes(); }
  int shards() const { return store_.shards(); }

 private:
  struct QueryHash {
    size_t operator()(const Query& q) const;
  };

  struct Entry {
    Query query;
    std::shared_ptr<const AnalysisPrefix> prefix;
    size_t bytes = 0;
    // Second-chance bit, guarded by the shard mutex.
    bool referenced = false;
  };

  // The interned prefix-relevant context fields (see InternContext).
  struct Context {
    DesignType design = DesignType::kCH;
    std::string host_suffix;
    SplitterConfig splitter;

    friend bool operator==(const Context&, const Context&) = default;
  };

  static size_t ApproxBytes(const AnalysisPrefix& prefix);

  internal::ShardedClockStore<Query, Entry, QueryHash> store_;

  mutable std::mutex contexts_mu_;
  std::vector<Context> contexts_;

  // Lock-free tallies (bytes/entries live in the shards and are summed on
  // demand).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_PREFIX_CACHE_H_
