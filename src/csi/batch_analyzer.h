// Parallel batch-inference engine.
//
// The deployment-scale workload is many concurrent sessions of the *same*
// service (one manifest, one fingerprint database), not one capture at a
// time: a gateway tap produces a stream of per-device traces that all need
// Step 1 + Step 2 analysis. BatchAnalyzer owns one InferenceEngine — and
// therefore one immutable ChunkDatabase shared by every worker — and fans
// Analyze calls for N traces out across a fixed thread pool.
//
// Determinism: results land in the output vector by input index, and the
// per-trace analysis itself is scheduling-independent, so AnalyzeAll returns
// bit-identical results for any worker count (tested in
// batch_analyzer_test).

#ifndef CSI_SRC_CSI_BATCH_ANALYZER_H_
#define CSI_SRC_CSI_BATCH_ANALYZER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/csi/inference.h"

namespace csi::infer {

struct BatchConfig {
  // Worker threads for the trace fan-out; 0 means hardware concurrency.
  int threads = 0;
  // Also hand the pool to each trace's SQ candidate enumeration
  // (GroupSearchConfig::pool). Off by default: with a full batch the
  // per-trace fan-out already saturates the pool, and intra-trace
  // parallelism only helps when analyzing fewer traces than workers.
  bool parallel_group_search = false;
  // Shard count for the shared ChunkDatabase build, fanned over the batch
  // pool; 0 = one shard per worker plus the caller, 1 = serial build. The
  // index is byte-identical for every value (db_differential_test).
  int db_build_shards = 0;
  // Unified per-tier knobs for the shared caches this analyzer creates when
  // the matching InferenceConfig cache pointer is null (an explicit pointer
  // always wins). One CacheOptions (cache_common.h) per tier:
  //  * prefix    — analysis-prefix cache (prefix_cache.h): repeats of the
  //    same trace bytes skip the per-packet stages. Snapshot-independent.
  //  * candidate — group-candidate cache (candidate_cache.h): repeated group
  //    signatures across traces and refreshes skip enumeration.
  //  * result    — whole-result cache (result_cache.h): a repeat of the same
  //    trace under the same (or a provably-equivalent) snapshot state skips
  //    the entire pipeline.
  // `enabled = false` or `budget_mb = 0` disables a tier. Results are
  // byte-identical with any subset enabled (prefix_cache_test,
  // candidate_cache_test, result_cache_test).
  struct Caches {
    CacheOptions prefix{/*budget_mb=*/32};
    CacheOptions candidate{/*budget_mb=*/64};
    CacheOptions result{/*budget_mb=*/64};
  };
  Caches caches;
  // Deprecated aliases of caches.candidate.budget_mb / caches.prefix.budget_mb,
  // kept for source compatibility: a non-negative value wins over the unified
  // block (0 still disables); the -1 default defers to `caches`.
  int candidate_cache_mb = -1;
  int prefix_cache_mb = -1;
  // Test seam / fault injection: when set, called instead of
  // InferenceEngine::Analyze for every trace. Trace-mode batches only — the
  // columnar AnalyzeAll overloads have no AoS trace to hand it and always go
  // through the engine.
  std::function<InferenceResult(const capture::CaptureTrace&)> analyze_override;
  // Invoked with (completed, total) after every `progress_every`-th completed
  // trace and once at batch end. Called from worker threads, serialized by a
  // mutex — keep it cheap. Completion order is scheduling-dependent; only the
  // counts are meaningful.
  std::function<void(size_t completed, size_t total)> progress;
  size_t progress_every = 16;
};

class BatchAnalyzer {
 public:
  // `manifest` must outlive the analyzer (same contract as InferenceEngine).
  // Builds the shared database on the batch pool.
  BatchAnalyzer(const media::Manifest* manifest, InferenceConfig config,
                BatchConfig batch = {});

  // Primary constructor: analyzes against an already-built snapshot (e.g.
  // LiveChunkDatabase::Acquire()). The snapshot pins its database version for
  // every trace of a batch; swap versions between batches with
  // UpdateSnapshot.
  BatchAnalyzer(DbSnapshot snapshot, InferenceConfig config, BatchConfig batch = {});

  // Re-points the shared engine at a newer database version. Must not be
  // called while AnalyzeAll is running (single-writer, quiesced contract —
  // same as InferenceEngine::UpdateSnapshot).
  void UpdateSnapshot(DbSnapshot snapshot) { engine_.UpdateSnapshot(std::move(snapshot)); }

  // Analyzes traces[i] into result[i]. Blocks until the whole batch is done.
  // If `trace_seconds` is non-null it is resized to the batch size and
  // slot i receives trace i's wall-clock analysis time (by-index slots, so
  // the output is deterministic even though scheduling is not).
  //
  // Fault isolation: a trace whose analysis throws does not poison its
  // siblings. The failed slot keeps a default-constructed InferenceResult,
  // the exception message lands in trace_errors[i] (when non-null; sibling
  // slots hold empty strings), and csi_batch_trace_analyze_failures_total is
  // incremented — the batch itself always completes. When a flight-recorder
  // trace session is active, the first failing trace also dumps the
  // per-thread event rings (TraceSession::DumpFlightRecord) before the batch
  // moves on.
  //
  // If `audits` is non-null it is resized to the batch size and slot i
  // receives trace i's inference audit record (see audit.h). Audits are
  // by-index like the other out-params, so they stay deterministic; slots of
  // failed traces keep whatever was recorded before the throw. The
  // analyze_override test seam bypasses the engine and leaves audits empty.
  std::vector<InferenceResult> AnalyzeAll(
      const std::vector<const capture::CaptureTrace*>& traces,
      std::vector<double>* trace_seconds = nullptr,
      std::vector<std::string>* trace_errors = nullptr,
      std::vector<InferenceAudit>* audits = nullptr);
  std::vector<InferenceResult> AnalyzeAll(const std::vector<capture::CaptureTrace>& traces,
                                          std::vector<double>* trace_seconds = nullptr,
                                          std::vector<std::string>* trace_errors = nullptr,
                                          std::vector<InferenceAudit>* audits = nullptr);

  // Columnar batches: identical fan-out, fault isolation and out-params over
  // pre-built PacketColumns (see InferenceEngine::Analyze(PacketColumns)).
  // Callers that re-analyze the same captures (csi_batch --repeat /
  // --follow-manifests) transpose once up front and every pass skips the
  // per-trace column build and the AoS fingerprint walk.
  std::vector<InferenceResult> AnalyzeAll(
      const std::vector<const capture::PacketColumns*>& columns,
      std::vector<double>* trace_seconds = nullptr,
      std::vector<std::string>* trace_errors = nullptr,
      std::vector<InferenceAudit>* audits = nullptr);
  std::vector<InferenceResult> AnalyzeAll(
      const std::vector<capture::PacketColumns>& columns,
      std::vector<double>* trace_seconds = nullptr,
      std::vector<std::string>* trace_errors = nullptr,
      std::vector<InferenceAudit>* audits = nullptr);

  const InferenceEngine& engine() const { return engine_; }
  int threads() const { return pool_.num_workers(); }
  // The shared group-candidate cache (caller-provided or analyzer-created);
  // null when disabled. Stats reads are safe while a batch runs.
  const GroupCandidateCache* candidate_cache() const {
    return engine_.config().candidate_cache.get();
  }
  // The shared analysis-prefix cache (caller-provided or analyzer-created);
  // null when disabled. Stats reads are safe while a batch runs.
  const AnalysisPrefixCache* prefix_cache() const {
    return engine_.config().prefix_cache.get();
  }
  // The shared whole-result cache (caller-provided or analyzer-created); null
  // when disabled. Stats reads are safe while a batch runs.
  const ResultCache* result_cache() const { return engine_.config().caches.result.get(); }

 private:
  // Both constructors funnel through these: they patch `config` with the
  // batch pool and return the engine by value (guaranteed elision), which
  // keeps the member-init list free of evaluation-order traps.
  static InferenceEngine MakeEngine(const media::Manifest* manifest, InferenceConfig config,
                                    const BatchConfig& batch, ThreadPool* pool);
  static InferenceEngine MakeEngine(DbSnapshot snapshot, InferenceConfig config,
                                    const BatchConfig& batch, ThreadPool* pool);

  // Shared fan-out core of every AnalyzeAll flavor: by-index slots, per-trace
  // timing/fault isolation/telemetry, progress throttling. `analyze_one` runs
  // on a worker thread and may throw; the wrapper contains the damage.
  std::vector<InferenceResult> RunBatch(
      size_t total,
      const std::function<InferenceResult(size_t index, InferenceAudit* audit)>&
          analyze_one,
      std::vector<double>* trace_seconds, std::vector<std::string>* trace_errors,
      std::vector<InferenceAudit>* audits);

  BatchConfig batch_;
  ThreadPool pool_;
  InferenceEngine engine_;
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_BATCH_ANALYZER_H_
