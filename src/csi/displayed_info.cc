#include "src/csi/displayed_info.h"

namespace csi::infer {

DisplayConstraints SampleDisplayedChunks(const std::vector<player::DisplayRecord>& displays,
                                         TimeUs session_end, const OcrConfig& config,
                                         Rng& rng) {
  DisplayConstraints constraints;
  for (size_t i = 0; i < displays.size(); ++i) {
    const TimeUs start = displays[i].start_time;
    const TimeUs end = i + 1 < displays.size() ? displays[i + 1].start_time : session_end;
    if (end - start < config.period) {
      continue;  // displayed too briefly for the periodic OCR to catch
    }
    if (config.miss_rate > 0.0 && rng.Chance(config.miss_rate)) {
      continue;
    }
    constraints[displays[i].chunk.index] = displays[i].chunk.track;
  }
  return constraints;
}

}  // namespace csi::infer
