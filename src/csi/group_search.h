// Step 2 for the transport-MUX design (SQ): per-group bounded exhaustive
// search plus cross-group sequence chaining (paper §5.3.2, Fig. 9b).
//
// After splitting, each traffic group exposes only (request count, total
// estimated bytes). A *group candidate* explains the group as
//   a contiguous run of video chunks (start index + a track per position)
//   + some number of CBR audio chunks
//   + optionally known non-media objects (e.g. the manifest, fetched once),
// whose total true size T satisfies T <= T_estimate <= (1+k)T. Candidates are
// found by depth-first search over per-position track choices with
// partial-sum pruning against the admissible window.
//
// Groups are chained like the layers of the non-MUX graph: the searcher
// tracks the *range* of possible next video indexes, and candidate
// enumeration is lazy, conditioned on that range — without the conditioning
// the per-group candidate space explodes and exhaustive search becomes
// infeasible. Oversized or unexplainable groups degrade to a *wildcard*
// (their requests stay unidentified and widen the index range by the request
// count) instead of breaking the whole chain.

#ifndef CSI_SRC_CSI_GROUP_SEARCH_H_
#define CSI_SRC_CSI_GROUP_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/arena.h"
#include "src/common/thread_pool.h"
#include "src/csi/db_snapshot.h"
#include "src/csi/path_search.h"
#include "src/csi/splitter.h"
#include "src/csi/types.h"

namespace csi::infer {

class GroupCandidateCache;  // candidate_cache.h
struct GroupCandidateSet;   // candidate_cache.h

struct GroupCandidate {
  int video_start = -1;     // -1: no video chunks in this group
  std::vector<int> tracks;  // track per consecutive video index
  int audio_count = 0;
  int other_count = 0;      // known non-media objects consumed
  // Total true bytes this candidate implies (video + audio + other).
  Bytes implied_total = 0;
  // Fallback: the group's requests stay unidentified; the next video index
  // may advance by up to the group's request count.
  bool wildcard = false;

  int video_end() const {
    return video_start < 0 ? -1 : video_start + static_cast<int>(tracks.size()) - 1;
  }

  friend bool operator==(const GroupCandidate&, const GroupCandidate&) = default;
};

struct GroupSearchConfig {
  double k = 0.05;  // QUIC size-estimation error bound
  // Calibrated estimate-inflation model (protocol overhead, §3.2):
  // estimate ~ true_bytes * (1 + expected_overhead) + objects * fixed
  // (record/frame framing is proportional; HTTP headers are per object).
  // Used only to *rank* candidates so the likeliest sequences are enumerated
  // before the cap, never to reject them.
  double expected_overhead = 0.006;
  Bytes expected_fixed_overhead = 230;
  // Per-(group, start-range) candidate cap.
  int max_candidates_per_group = 5000;
  // DFS node budget per (group, start-range) enumeration.
  int64_t max_dfs_nodes = 2'000'000;
  // Groups with more requests than this always become wildcards.
  int max_group_requests = 16;
  // QUIC request packets may be retransmitted under new packet numbers and
  // are then double-counted by the request detector; allow explanations with
  // up to this many fewer objects than detected requests.
  int max_phantom_requests = 2;
  int max_sequences = 512;
  // Sizes of known non-media objects that may appear in a group (manifest,
  // init segments).
  std::vector<Bytes> other_object_sizes;
  // Ablation switches (all on by default; see bench_ablation_robustness):
  // wildcard fallbacks for unexplainable groups, and the merge transition
  // that repairs exchanges split by retransmitted QUIC requests.
  bool enable_wildcards = true;
  bool enable_merge_repair = true;
  // Optional worker pool for candidate enumeration: the admissible start
  // range is partitioned into disjoint per-start-index jobs whose merged,
  // re-ranked output is bit-identical to the serial path (each start index
  // gets budgets that do not depend on the partitioning). Null: serial.
  ThreadPool* pool = nullptr;
  // Optional shared cross-trace result cache (see candidate_cache.h):
  // enumeration consults it before the DFS and publishes after rank+truncate,
  // so results are bit-identical cache-on vs cache-off by construction. Null
  // (or CSI_CANDIDATE_CACHE=off): every enumeration computes. The caller
  // keeps the cache alive for the search's lifetime; it is safe to share
  // across concurrent searches.
  GroupCandidateCache* shared_cache = nullptr;
};

// All explanations of one group whose video run starts within
// [start_lo, start_hi] (video-free explanations are start-agnostic).
// Sets `*truncated` if a cap was hit. Candidates are ranked by
// CandidateCost; ties keep a fixed enumeration order (video-free, then
// single-chunk runs from the flat size index, then longer runs by start
// index), so the output is deterministic and independent of config.pool.
// `cache` optionally memoizes flat-index queries across calls; it must not
// be shared across threads. `arena` optionally backs the enumeration's
// scratch allocations (splits, prefix-sum bounds, the pre-rank candidate
// accumulator); it is reset at every call, so it must be exclusive to this
// function — the per-searcher pattern. Null falls back to a call-local arena.
std::vector<GroupCandidate> EnumerateGroupCandidates(const TrafficGroup& group,
                                                     const DbSnapshot& db,
                                                     const GroupSearchConfig& config,
                                                     const DisplayConstraints& display,
                                                     int start_lo, int start_hi,
                                                     bool* truncated,
                                                     CandidateQueryCache* cache = nullptr,
                                                     MonotonicArena* arena = nullptr);

// Same enumeration, returning the immutable shared form the cross-trace
// cache stores: on a cache hit the set is shared, never copied. Callers that
// run many enumerations against config.shared_cache should intern their
// (config, display) context once and pass it as `context_id` (0 interns on
// demand). EnumerateGroupCandidates is a copying wrapper over this.
std::shared_ptr<const GroupCandidateSet> EnumerateGroupCandidateSet(
    const TrafficGroup& group, const DbSnapshot& db, const GroupSearchConfig& config,
    const DisplayConstraints& display, int start_lo, int start_hi,
    CandidateQueryCache* cache = nullptr, MonotonicArena* arena = nullptr,
    uint32_t context_id = 0);

// Ranking cost: relative deviation of the observed estimate from the
// candidate's predicted estimate under the calibrated overhead model.
double CandidateCost(const GroupCandidate& candidate, Bytes estimated_total,
                     int group_requests, const GroupSearchConfig& config);

// Full SQ inference over the split groups. `db` is an immutable snapshot (a
// bare `ChunkDatabase` converts implicitly via the deprecated adapter); the
// search holds it for the whole call, so concurrent live-database publishes
// never affect an in-flight search.
InferenceResult SearchGroupSequences(const std::vector<TrafficGroup>& groups,
                                     const DbSnapshot& db, const GroupSearchConfig& config,
                                     const DisplayConstraints& display = {});

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_GROUP_SEARCH_H_
