#include "src/csi/result_cache.h"

#include <cstdlib>
#include <utility>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"
#include "src/csi/chunk_database.h"

namespace csi::infer {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

// In-process override simulating CSI_RESULT_CACHE=off (the real env read is
// latched in a function-local static and cannot be flipped after first use).
std::atomic<bool> g_force_env_off{false};

// The collector the engine installed around the running Analyze, if any.
thread_local ResultHull* t_result_hull = nullptr;

}  // namespace

ResultHullScope::ResultHullScope(ResultHull* hull) : previous_(t_result_hull) {
  t_result_hull = hull;
}

ResultHullScope::~ResultHullScope() { t_result_hull = previous_; }

ResultHull* CurrentResultHull() { return t_result_hull; }

void RecordEnumerationForResultCache(const CandidateSetHull& hull, int start_lo,
                                     int canonical_start_hi, int positions,
                                     int64_t max_dfs_nodes) {
  ResultHull* const collector = CurrentResultHull();
  if (collector == nullptr || !hull.has_video_split) {
    // Video-free (and wildcard-fallback) explanations never read the position
    // axis; nothing to record.
    return;
  }
  const int pa = positions;
  if (canonical_start_hi != GroupCandidateCache::kOpenHi) {
    // Concrete range (hi < pa - 1): the clamped start range and every
    // per-start budget are position-count independent, and the single-chunk
    // path drops appended refs via its index filter. Only multi-chunk runs
    // that start in range but extend past pa can differ — same condition
    // GroupCandidateCache::Revalidate checks, evaluated here at analyze time.
    if (hull.v_max <= 1 || start_lo > canonical_start_hi ||
        canonical_start_hi + hull.v_max <= pa) {
      return;  // no run can cross the analyze-time live edge
    }
    // A crossing run is pruned before its DFS expands a node iff every
    // appended chunk alone exceeds every multi-chunk upper bound.
    collector->Widen(0, hull.hull2_hi);
    return;
  }
  // Growth range: the enumeration ran to the live edge. Appended positions
  // join the range under a later state; their candidates must all be
  // pruned/filtered, and surviving old starts must keep their exact budgets.
  const int range = pa - std::max(start_lo, 0);
  if (hull.v_max >= 2 && range >= 1 &&
      max_dfs_nodes / range > GroupCandidateCache::kPerStartNodeFloor) {
    // The per-start budget exceeded the floor, so widening the range would
    // shrink it — same inputs, different cutoff. No window can prove
    // identity; the result only ever hits at this exact state.
    collector->sensitive = true;
    collector->unsafe = true;
    return;
  }
  // An appended chunk inside the probe window could seed a new single-chunk
  // candidate (v == 1 hull) or let a run through it survive the MinSum prune.
  collector->Widen(hull.v_max >= 2 ? 0 : hull.hull1_lo, hull.hull_all_hi);
}

void RecordSizeProbeForResultCache(Bytes estimated, double k) {
  ResultHull* const collector = CurrentResultHull();
  if (collector == nullptr) {
    return;
  }
  // Recorded for positive and negative probes alike: an appended chunk in the
  // window can flip a negative answer to positive (and a compaction-proof
  // positive stays positive, so widening is merely conservative).
  collector->Widen(ChunkDatabase::AdmissibleLow(estimated, k), estimated);
}

size_t ResultCache::QueryHash::operator()(const Query& q) const {
  uint64_t h = q.fingerprint.lo;
  h = Mix(h, q.fingerprint.hi);
  h = Mix(h, q.context);
  h = Mix(h, q.lineage);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(size_t budget_bytes, int shards) : store_(budget_bytes, shards) {}

bool ResultCache::IsOffValue(const std::string& value) { return CacheOffSpelling(value); }

bool ResultCache::EnvForcesOff() {
  static const bool off = [] {
    const char* env = std::getenv("CSI_RESULT_CACHE");
    return (env != nullptr && IsOffValue(env)) || CsiCacheEnvDisables("result");
  }();
  return off || g_force_env_off.load(std::memory_order_relaxed);
}

void ResultCache::ForceEnvOffForTest(bool off) {
  g_force_env_off.store(off, std::memory_order_relaxed);
}

uint32_t ResultCache::InternContext(const Context& context) {
  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i] == context) {
      return static_cast<uint32_t>(i) + 1;
    }
  }
  contexts_.push_back(context);
  return static_cast<uint32_t>(contexts_.size());
}

ResultCache::Query ResultCache::MakeQuery(const TraceFingerprint& fingerprint,
                                          uint32_t context, const DbSnapshot& db) {
  Query q;
  q.fingerprint = fingerprint;
  q.context = context;
  q.lineage = db.lineage_id();
  return q;
}

// Decides whether `entry` (computed at state A := entry.state_id with
// positions_at =: P_A) yields byte-identical output under `db` (state B with
// P_B positions). The hull froze, at analyze time, every condition the
// candidate-tier Revalidate would check per enumeration plus every
// merge-repair window; one delta probe over the union answers for the whole
// pipeline (see the soundness argument in the header).
bool ResultCache::Revalidate(Entry& entry, const DbSnapshot& db) {
  if (db.state_id() == entry.state_id) {
    return true;
  }
  const int pa = entry.positions_at;
  const int pb = db.num_positions();
  const auto anchor = [&entry, &db, pb] {
    entry.state_id = db.state_id();
    entry.positions_at = pb;
    return true;
  };
  if (pb == pa) {
    // Same data, different publish (e.g. a compaction): identical output.
    return anchor();
  }
  if (pb < pa) {
    // A reader pinning an older state than the entry was computed at (a
    // publish raced the batch). The entry is not wrong — just not provable
    // from this snapshot — so miss without dropping it.
    return false;
  }
  // P_B > P_A: positions were appended since the entry was computed.
  if (!entry.hull.sensitive) {
    // The computation never read the position axis (no media flows, or every
    // enumeration was video-free / provably edge-disjoint).
    return anchor();
  }
  if (entry.hull.unsafe) {
    // Some per-start DFS budget was above the floor; it shifts with the live
    // edge and no window can prove identity.
    return false;
  }
  if (db.base_positions() > pa) {
    // A compaction folded the appends into the base; they can no longer be
    // probed one-sidedly against P_A.
    return false;
  }
  return db.DeltaHasSizeInWindow(entry.hull.probe_lo, entry.hull.probe_hi, pa) ? false
                                                                               : anchor();
}

size_t ResultCache::ApproxBytes(const InferenceResult& result) {
  size_t bytes = sizeof(Entry) + sizeof(InferenceResult) +
                 result.sequences.capacity() * sizeof(InferredSequence) +
                 result.exchanges.capacity() * sizeof(EstimatedExchange) +
                 result.group_sizes.capacity() * sizeof(int);
  for (const InferredSequence& s : result.sequences) {
    bytes += s.slots.capacity() * sizeof(InferredSlot);
  }
  return bytes;
}

std::shared_ptr<const InferenceResult> ResultCache::Lookup(const Query& query,
                                                           const DbSnapshot& db,
                                                           AuditShape* shape) {
  if (EnvForcesOff()) {
    return nullptr;
  }
  CSI_SPAN("result_cache_lookup");
  CSI_TRACE_SPAN("result_cache_lookup", "cache");
  auto& shard = store_.ShardFor(query);
  std::shared_ptr<const InferenceResult> hit;
  [[maybe_unused]] bool found = false;
  bool same_state = false;
  [[maybe_unused]] bool stale_snapshot = false;
  bool invalidated = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(query);
    if (it != shard.index.end()) {
      found = true;
      Entry& entry = *it->second;
      same_state = entry.state_id == db.state_id();
      if (Revalidate(entry, db)) {
        entry.referenced = true;
        hit = entry.result;
        if (shape != nullptr) {
          *shape = entry.shape;
        }
      } else if (db.num_positions() > entry.positions_at) {
        // Provably unusable under every state from here on (appends intersect
        // the hull, a budget was unsafe, or a compaction hid the delta): drop
        // it now instead of letting it rot until eviction.
        shard.bytes -= entry.bytes;
        shard.entries.erase(it->second);
        shard.index.erase(it);
        invalidated = true;
      } else {
        // The probing snapshot is older than the entry (a publish raced the
        // batch): miss without dropping — the entry stays right for newer
        // snapshots.
        stale_snapshot = true;
      }
    }
  }
  CSI_COUNTER_INC("csi_result_cache_lookups_total");
  if (hit != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    CSI_COUNTER_INC("csi_result_cache_hits_total");
    CSI_TRACE_INSTANT("result_cache", "cache",
                      {"outcome", same_state ? "hit" : "revalidated"},
                      {"reason", same_state ? "same_state" : "delta_proven_disjoint"});
    return hit;
  }
  if (invalidated) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    CSI_COUNTER_INC("csi_result_cache_invalidations_total");
    CSI_TRACE_INSTANT("result_cache", "cache", {"outcome", "invalidated"},
                      {"reason", "delta_in_window_or_compaction"});
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CSI_COUNTER_INC("csi_result_cache_misses_total");
  CSI_TRACE_INSTANT("result_cache", "cache", {"outcome", "miss"},
                    {"reason", !found          ? "absent"
                               : stale_snapshot ? "stale_snapshot"
                                                : "invalidated"});
  return nullptr;
}

void ResultCache::Insert(const Query& query, const DbSnapshot& db, const ResultHull& hull,
                         std::shared_ptr<const InferenceResult> result,
                         const AuditShape& shape) {
  if (EnvForcesOff() || result == nullptr) {
    return;
  }
  Entry entry;
  entry.query = query;
  entry.state_id = db.state_id();
  entry.positions_at = db.num_positions();
  entry.hull = hull;
  entry.shape = shape;
  entry.bytes = ApproxBytes(*result);
  entry.result = std::move(result);
  const int64_t evicted = store_.InsertAndEvict(std::move(entry));
  if (evicted < 0) {
    return;  // bigger than a whole shard's budget; refused
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  CSI_COUNTER_INC("csi_result_cache_inserts_total");
  if (evicted > 0) {
    evictions_.fetch_add(static_cast<uint64_t>(evicted), std::memory_order_relaxed);
    CSI_COUNTER_ADD("csi_result_cache_evictions_total", evicted);
  }
  // Per-shard drift between inserts is fine for a gauge; exact totals come
  // from stats().
  CSI_GAUGE_SET("csi_result_cache_bytes", static_cast<int64_t>(stats().bytes));
}

void ResultCache::Clear() { store_.Clear(); }

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  store_.AccumulateShards(&s);
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    s.contexts = contexts_.size();
  }
  return s;
}

}  // namespace csi::infer
