// Per-trace inference audit: a compact explanation record of *why* the
// engine produced the sequences it did — candidate counts per stage, DFS
// nodes expanded vs pruned, which shared-cache path each enumeration took,
// and the chosen-vs-runner-up explanation scores. Emitted as trace-event
// args when a TraceSession is active and serialized to `--audit-out` JSONL
// by the tools, so a misinferred session can be diagnosed offline without
// rerunning it.
//
// Collection uses a thread-local pointer installed by AuditScope for the
// duration of one InferenceEngine::Analyze call: the deep layers (group
// enumeration, candidate cache, chain search) accumulate through
// CurrentAudit() without threading a parameter through every signature.
// The collector is thread-confined by construction — the chain search runs
// on the analyzing thread, and DFS tallies from ParallelFor workers are
// merged by the calling thread before being recorded.

#ifndef CSI_SRC_CSI_AUDIT_H_
#define CSI_SRC_CSI_AUDIT_H_

#include <cstdint>
#include <string>

namespace csi::infer {

struct InferenceAudit {
  // Session shape.
  int media_flows = 0;
  int groups = 0;  // traffic groups (SQ) or exchange-derived groups
  // Candidate enumeration, summed over every (group, start-range) the chain
  // search evaluated.
  int64_t enumerations = 0;
  int64_t candidates = 0;
  int64_t enum_truncations = 0;
  int64_t wildcards = 0;
  int64_t dfs_nodes_expanded = 0;
  int64_t dfs_nodes_pruned = 0;
  // Shared candidate-cache path taken by those enumerations (see
  // candidate_cache.h for the outcome semantics).
  int64_t cache_hits = 0;           // valid under the probed state
  int64_t cache_revalidations = 0;  // proven valid under a newer state
  int64_t cache_invalidations = 0;  // entry erased by the probe
  int64_t cache_misses = 0;
  // Sequence chaining.
  int64_t chain_nodes = 0;
  int sequences = 0;
  bool truncated = false;
  // Path cost of the emitted best explanation and its closest competitor
  // (absent when fewer than one/two complete sequences exist). A large gap
  // means the inference is unambiguous; near-ties flag sessions worth a
  // second look.
  bool has_best_cost = false;
  double best_cost = 0.0;
  bool has_runner_up_cost = false;
  double runner_up_cost = 0.0;

  // One JSON object on one line (stable key order) for --audit-out JSONL.
  // `label` identifies the trace (file path or index).
  std::string ToJsonLine(const std::string& label) const;
};

// The active collector for this thread, or null when no audit was requested.
InferenceAudit* CurrentAudit();

// Installs `audit` as the calling thread's collector; restores the previous
// one on destruction (scopes nest). Null is allowed and makes the scope a
// no-op.
class AuditScope {
 public:
  explicit AuditScope(InferenceAudit* audit);
  ~AuditScope();
  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

 private:
  InferenceAudit* previous_;
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_AUDIT_H_
