#include "src/csi/uniqueness.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace csi::infer {

bool SizesSimilar(Bytes a, Bytes b, double k) {
  const double fa = static_cast<double>(a);
  const double fb = static_cast<double>(b);
  return fa <= (1.0 + k) * fb && fb <= (1.0 + k) * fa;
}

double UniqueSingleChunkFraction(const media::Manifest& manifest, double k) {
  std::vector<Bytes> sizes;
  for (const auto& track : manifest.video_tracks) {
    for (const auto& chunk : track.chunks) {
      sizes.push_back(chunk.size);
    }
  }
  if (sizes.empty()) {
    return 0.0;
  }
  std::sort(sizes.begin(), sizes.end());
  // A chunk of size S is unique iff no *other* chunk lies in
  // [S/(1+k), S*(1+k)]. With the sorted array this is a neighbor check.
  size_t unique = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    const bool left_similar = i > 0 && SizesSimilar(sizes[i - 1], sizes[i], k);
    const bool right_similar = i + 1 < sizes.size() && SizesSimilar(sizes[i + 1], sizes[i], k);
    if (!left_similar && !right_similar) {
      ++unique;
    }
  }
  return static_cast<double>(unique) / static_cast<double>(sizes.size());
}

namespace {

// sim_count[c][p]: number of tracks t' whose chunk at position p is similar
// to chunk c (c enumerated as track * positions + index).
struct SimilarityTable {
  int positions = 0;
  int tracks = 0;
  std::vector<uint8_t> counts;  // (tracks*positions) x positions

  SimilarityTable(const media::Manifest& manifest, double k) {
    tracks = manifest.num_video_tracks();
    positions = manifest.num_positions();
    counts.assign(static_cast<size_t>(tracks) * positions * positions, 0);
    for (int t = 0; t < tracks; ++t) {
      for (int i = 0; i < positions; ++i) {
        const Bytes size = manifest.video_tracks[static_cast<size_t>(t)]
                               .chunks[static_cast<size_t>(i)]
                               .size;
        uint8_t* row = &counts[(static_cast<size_t>(t) * positions + i) *
                               static_cast<size_t>(positions)];
        for (int p = 0; p < positions; ++p) {
          uint8_t c = 0;
          for (int t2 = 0; t2 < tracks; ++t2) {
            const Bytes other = manifest.video_tracks[static_cast<size_t>(t2)]
                                    .chunks[static_cast<size_t>(p)]
                                    .size;
            if (SizesSimilar(size, other, k)) {
              ++c;
            }
          }
          row[p] = c;
        }
      }
    }
  }

  uint8_t Count(int track, int index, int p) const {
    return counts[(static_cast<size_t>(track) * positions + index) *
                      static_cast<size_t>(positions) +
                  static_cast<size_t>(p)];
  }
};

}  // namespace

double UniqueSequenceFraction(const media::Manifest& manifest, int length, double k,
                              int samples, Rng& rng) {
  const int tracks = manifest.num_video_tracks();
  const int positions = manifest.num_positions();
  if (positions < length || tracks == 0 || samples <= 0) {
    return 0.0;
  }
  const SimilarityTable table(manifest, k);

  int unique = 0;
  std::vector<int> tau(static_cast<size_t>(length));
  for (int s = 0; s < samples; ++s) {
    const int start = static_cast<int>(rng.UniformInt(0, positions - length));
    for (int j = 0; j < length; ++j) {
      tau[static_cast<size_t>(j)] = static_cast<int>(rng.UniformInt(0, tracks - 1));
    }
    // Count sequences similar to (start, tau): sum over all start offsets of
    // the product of per-position similar-track counts. The sequence itself
    // contributes exactly 1 at offset `start`.
    uint64_t similar_total = 0;
    for (int s2 = 0; s2 + length <= positions; ++s2) {
      uint64_t product = 1;
      for (int j = 0; j < length && product > 0; ++j) {
        product *= table.Count(tau[static_cast<size_t>(j)], start + j, s2 + j);
      }
      similar_total += product;
      if (similar_total > 1) {
        break;  // already non-unique
      }
    }
    if (similar_total <= 1) {
      ++unique;
    }
  }
  return static_cast<double>(unique) / static_cast<double>(samples);
}

}  // namespace csi::infer
