// Size-indexed chunk database (the fingerprint dictionary).
//
// Built from the manifest gathered ahead of the measurement (paper §4.1),
// this answers the Step 2.1 query: given an estimated size S~ and the error
// bound k, which chunks satisfy Property (1): S <= S~ <= (1+k)S, i.e.
// S in [S~/(1+k), S~]?
//
// Storage is a single flat size-sorted index over *all* video chunks (SoA:
// one contiguous sizes array plus a parallel packed (track, index) array).
// Construction can be sharded across a thread pool: each shard sorts a
// contiguous slice of the (size, ref) pairs and the sorted runs are merged in
// a fixed order — the comparator is a strict total order (packed refs are
// unique), so the final index is byte-identical to the serial build for every
// shard count (locked in by tests/db_differential_test.cc).
//
// A range query binary-narrows the sorted sizes array to a small window and
// resolves the exact bounds with a SIMD count scan (src/common/simd.h); the
// scalar and vector paths return identical candidate sets. The database is
// immutable after construction and safe to share across threads (batch
// inference fans many Analyze calls out over one instance).

#ifndef CSI_SRC_CSI_CHUNK_DATABASE_H_
#define CSI_SRC_CSI_CHUNK_DATABASE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/media/manifest.h"

namespace csi {
class ThreadPool;
}

namespace csi::infer {

struct DbBuildOptions {
  // Worker pool the shard jobs fan out over; null builds on the calling
  // thread (shards are still sorted/merged independently, just serially).
  ThreadPool* pool = nullptr;
  // Number of index shards; 0 picks pool->num_workers() + 1 (or 1 without a
  // pool). The resulting index is byte-identical for every value.
  int shards = 0;
};

class ChunkDatabase {
 public:
  explicit ChunkDatabase(const media::Manifest* manifest);
  ChunkDatabase(const media::Manifest* manifest, const DbBuildOptions& options);

  // All video chunks whose true size could have produced estimate
  // `estimated` under error bound `k`. Ordered by (track, size, index).
  std::vector<media::ChunkRef> VideoCandidates(Bytes estimated, double k) const;

  // All video chunks with true size in [lo, hi], in flat-index order
  // (ascending size; ties by track then index).
  std::vector<media::ChunkRef> VideoCandidatesInSizeRange(Bytes lo, Bytes hi) const;

  // True iff VideoCandidates(estimated, k) would be non-empty — one range
  // probe, no allocation.
  bool HasVideoCandidate(Bytes estimated, double k) const;

  // Smallest admissible true size for estimate S~ under bound k: ceil(S~/(1+k)).
  static Bytes AdmissibleLow(Bytes estimated, double k);

  // True if some audio chunk size satisfies Property (1) for `estimated`.
  // Audio tracks are CBR (constant size per track, §5.2).
  bool AudioPossible(Bytes estimated, double k) const;
  // The audio track matching `estimated` (first match), or -1.
  int MatchingAudioTrack(Bytes estimated, double k) const;

  // Constant per-track audio chunk sizes.
  const std::vector<Bytes>& audio_sizes() const { return audio_sizes_; }

  // Size of video chunk (track, index).
  Bytes VideoSize(int track, int index) const {
    return size_of_[static_cast<size_t>(track) * static_cast<size_t>(num_positions_) +
                    static_cast<size_t>(index)];
  }
  int num_video_tracks() const { return num_tracks_; }
  int num_positions() const { return num_positions_; }
  // Smallest/largest video chunk size at a playback position.
  Bytes MinSizeAt(int index) const { return min_at_[static_cast<size_t>(index)]; }
  Bytes MaxSizeAt(int index) const { return max_at_[static_cast<size_t>(index)]; }

  const media::Manifest* manifest() const { return manifest_; }

  // Flat-index internals, exposed for the differential tests and benches:
  // sorted sizes and the parallel packed (track, index) words.
  const std::vector<Bytes>& flat_sizes() const { return sizes_; }
  const std::vector<uint32_t>& flat_packed_refs() const { return packed_refs_; }
  // Shard count the index was built with.
  int build_shards() const { return build_shards_; }

 private:
  // Packs (track, index) into one word of the flat index.
  static uint32_t PackRef(int track, int index) {
    return (static_cast<uint32_t>(track) << 20) | static_cast<uint32_t>(index);
  }
  static int TrackOfPacked(uint32_t packed) { return static_cast<int>(packed >> 20); }
  static int IndexOfPacked(uint32_t packed) {
    return static_cast<int>(packed & ((1u << 20) - 1));
  }

  // [first, last) half-open range of flat-index slots with size in [lo, hi].
  std::pair<size_t, size_t> FlatRange(Bytes lo, Bytes hi) const;

  const media::Manifest* manifest_;
  int num_tracks_ = 0;
  int num_positions_ = 0;
  int build_shards_ = 1;
  // Flat global index, sorted by (size, track, index). `sizes_[i]` and
  // `packed_refs_[i]` describe the same chunk.
  std::vector<Bytes> sizes_;
  std::vector<uint32_t> packed_refs_;
  // Row-major (track-major) copy of all chunk sizes for O(1) VideoSize
  // without chasing manifest pointers in the DFS hot loop.
  std::vector<Bytes> size_of_;
  std::vector<Bytes> audio_sizes_;
  std::vector<Bytes> min_at_;
  std::vector<Bytes> max_at_;
};

// Memo cache for repeated size-range queries against one ChunkDatabase.
//
// Real traces repeat sizes heavily (CBR audio chunks, re-downloaded and
// co-sized video chunks), so candidate queries for the same (estimate, k) —
// equivalently the same admissible byte window — recur many times within one
// analysis. The cache is deliberately *per analysis call*, not per database:
// it is single-threaded by construction, which keeps the shared ChunkDatabase
// free of mutable state and race-free under batch inference.
//
// Bounded: each memo holds at most `max_entries_per_memo` windows; inserting
// past the cap evicts the oldest entry (FIFO), so an arbitrarily long session
// cannot grow the cache without limit. A returned reference is therefore only
// valid until the next call on the same cache.
class CandidateQueryCache {
 public:
  static constexpr size_t kDefaultMaxEntriesPerMemo = 4096;

  explicit CandidateQueryCache(const ChunkDatabase* db,
                               size_t max_entries_per_memo = kDefaultMaxEntriesPerMemo)
      : db_(db),
        max_entries_per_memo_(max_entries_per_memo == 0 ? 1 : max_entries_per_memo) {}

  // Cached ChunkDatabase::VideoCandidates(estimated, k).
  const std::vector<media::ChunkRef>& VideoCandidates(Bytes estimated, double k);
  // Cached ChunkDatabase::VideoCandidatesInSizeRange(lo, hi).
  const std::vector<media::ChunkRef>& VideoCandidatesInSizeRange(Bytes lo, Bytes hi);

  const ChunkDatabase& db() const { return *db_; }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }
  // Total entries currently held across both memos.
  size_t size() const {
    return track_ordered_memo_.map.size() + flat_ordered_memo_.map.size();
  }
  size_t max_entries_per_memo() const { return max_entries_per_memo_; }

 private:
  using Window = std::pair<Bytes, Bytes>;

  struct WindowHash {
    size_t operator()(const Window& w) const {
      return std::hash<Bytes>()(w.first) ^ (std::hash<Bytes>()(w.second) * 0x9E3779B97F4A7C15ull);
    }
  };

  // One memo plus its FIFO eviction order.
  struct Memo {
    std::unordered_map<Window, std::vector<media::ChunkRef>, WindowHash> map;
    std::deque<Window> order;
  };

  template <typename Fetch>
  const std::vector<media::ChunkRef>& Lookup(Memo* memo, const Window& window,
                                             const Fetch& fetch);

  const ChunkDatabase* db_;
  size_t max_entries_per_memo_;
  // Keyed on the admissible byte window [lo, hi]; a (estimate, k) query maps
  // to ([AdmissibleLow(estimate, k), estimate]). Two memos because the two
  // entry points guarantee different orderings.
  Memo track_ordered_memo_;
  Memo flat_ordered_memo_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_CHUNK_DATABASE_H_
