// Size-indexed chunk database (the fingerprint dictionary).
//
// Built from the manifest gathered ahead of the measurement (paper §4.1),
// this answers the Step 2.1 query: given an estimated size S~ and the error
// bound k, which chunks satisfy Property (1): S <= S~ <= (1+k)S, i.e.
// S in [S~/(1+k), S~]?
//
// Storage is a single flat size-sorted index over *all* video chunks (SoA:
// one contiguous sizes array plus a parallel packed (track, index) array).
// Construction can be sharded across a thread pool: each shard sorts a
// contiguous slice of the (size, ref) pairs and the sorted runs are merged in
// a fixed order — the comparator is a strict total order (packed refs are
// unique), so the final index is byte-identical to the serial build for every
// shard count (locked in by tests/db_differential_test.cc).
//
// A range query binary-narrows the sorted sizes array to a small window and
// resolves the exact bounds with a SIMD count scan (src/common/simd.h); the
// scalar and vector paths return identical candidate sets. The database is
// immutable after construction and safe to share across threads (batch
// inference fans many Analyze calls out over one instance).

#ifndef CSI_SRC_CSI_CHUNK_DATABASE_H_
#define CSI_SRC_CSI_CHUNK_DATABASE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/media/manifest.h"

namespace csi {
class ThreadPool;
}

namespace csi::infer {

struct DbBuildOptions {
  // Worker pool the shard jobs fan out over; null builds on the calling
  // thread (shards are still sorted/merged independently, just serially).
  ThreadPool* pool = nullptr;
  // Number of index shards; 0 picks pool->num_workers() + 1 (or 1 without a
  // pool). The resulting index is byte-identical for every value.
  int shards = 0;
};

class ChunkDatabase {
 public:
  explicit ChunkDatabase(const media::Manifest* manifest);
  ChunkDatabase(const media::Manifest* manifest, const DbBuildOptions& options);

  // All video chunks whose true size could have produced estimate
  // `estimated` under error bound `k`. Ordered by (track, size, index).
  std::vector<media::ChunkRef> VideoCandidates(Bytes estimated, double k) const;

  // All video chunks with true size in [lo, hi], in flat-index order
  // (ascending size; ties by track then index).
  std::vector<media::ChunkRef> VideoCandidatesInSizeRange(Bytes lo, Bytes hi) const;

  // True iff VideoCandidates(estimated, k) would be non-empty — one range
  // probe, no allocation.
  bool HasVideoCandidate(Bytes estimated, double k) const;

  // Smallest admissible true size for estimate S~ under bound k: ceil(S~/(1+k)).
  static Bytes AdmissibleLow(Bytes estimated, double k);

  // True if some audio chunk size satisfies Property (1) for `estimated`.
  // Audio tracks are CBR (constant size per track, §5.2).
  bool AudioPossible(Bytes estimated, double k) const;
  // The audio track matching `estimated` (first match), or -1.
  int MatchingAudioTrack(Bytes estimated, double k) const;

  // Constant per-track audio chunk sizes.
  const std::vector<Bytes>& audio_sizes() const { return audio_sizes_; }

  // Size of video chunk (track, index).
  Bytes VideoSize(int track, int index) const {
    return size_of_[static_cast<size_t>(track) * static_cast<size_t>(num_positions_) +
                    static_cast<size_t>(index)];
  }
  int num_video_tracks() const { return num_tracks_; }
  int num_positions() const { return num_positions_; }
  // Smallest/largest video chunk size at a playback position.
  Bytes MinSizeAt(int index) const { return min_at_[static_cast<size_t>(index)]; }
  Bytes MaxSizeAt(int index) const { return max_at_[static_cast<size_t>(index)]; }

  const media::Manifest* manifest() const { return manifest_; }

  // Flat-index internals, exposed for the differential tests and benches:
  // sorted sizes and the parallel packed (track, index) words.
  const std::vector<Bytes>& flat_sizes() const { return sizes_; }
  const std::vector<uint32_t>& flat_packed_refs() const { return packed_refs_; }
  // Shard count the index was built with.
  int build_shards() const { return build_shards_; }

  // Packs (track, index) into one word of the flat index. Shared with
  // DbSnapshot's delta buffer so merged windows order identically. Limits:
  // track < 4096, index < 2^20.
  static uint32_t PackRef(int track, int index) {
    return (static_cast<uint32_t>(track) << 20) | static_cast<uint32_t>(index);
  }
  static int TrackOfPacked(uint32_t packed) { return static_cast<int>(packed >> 20); }
  static int IndexOfPacked(uint32_t packed) {
    return static_cast<int>(packed & ((1u << 20) - 1));
  }
  static constexpr int kMaxPositions = 1 << 20;

  // [first, last) half-open range of flat-index slots with size in [lo, hi].
  // Public so DbSnapshot can merge the base window with its delta buffer.
  std::pair<size_t, size_t> FlatRange(Bytes lo, Bytes hi) const;

 private:
  const media::Manifest* manifest_;
  int num_tracks_ = 0;
  int num_positions_ = 0;
  int build_shards_ = 1;
  // Flat global index, sorted by (size, track, index). `sizes_[i]` and
  // `packed_refs_[i]` describe the same chunk.
  std::vector<Bytes> sizes_;
  std::vector<uint32_t> packed_refs_;
  // Row-major (track-major) copy of all chunk sizes for O(1) VideoSize
  // without chasing manifest pointers in the DFS hot loop.
  std::vector<Bytes> size_of_;
  std::vector<Bytes> audio_sizes_;
  std::vector<Bytes> min_at_;
  std::vector<Bytes> max_at_;
};

// CandidateQueryCache moved to src/csi/db_snapshot.h: it is now bound to a
// DbSnapshot and keyed by snapshot state so memoized windows can never serve
// candidates from a stale database version.

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_CHUNK_DATABASE_H_
