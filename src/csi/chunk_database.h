// Size-indexed chunk database (the fingerprint dictionary).
//
// Built from the manifest gathered ahead of the measurement (paper §4.1),
// this answers the Step 2.1 query: given an estimated size S~ and the error
// bound k, which chunks satisfy Property (1): S <= S~ <= (1+k)S, i.e.
// S in [S~/(1+k), S~]?

#ifndef CSI_SRC_CSI_CHUNK_DATABASE_H_
#define CSI_SRC_CSI_CHUNK_DATABASE_H_

#include <vector>

#include "src/common/units.h"
#include "src/media/manifest.h"

namespace csi::infer {

class ChunkDatabase {
 public:
  explicit ChunkDatabase(const media::Manifest* manifest);

  // All video chunks whose true size could have produced estimate
  // `estimated` under error bound `k`.
  std::vector<media::ChunkRef> VideoCandidates(Bytes estimated, double k) const;

  // True if some audio chunk size satisfies Property (1) for `estimated`.
  // Audio tracks are CBR (constant size per track, §5.2).
  bool AudioPossible(Bytes estimated, double k) const;
  // The audio track matching `estimated` (first match), or -1.
  int MatchingAudioTrack(Bytes estimated, double k) const;

  // Constant per-track audio chunk sizes.
  const std::vector<Bytes>& audio_sizes() const { return audio_sizes_; }

  // Size of video chunk (track, index).
  Bytes VideoSize(int track, int index) const;
  int num_video_tracks() const { return num_tracks_; }
  int num_positions() const { return num_positions_; }
  // Smallest/largest video chunk size at a playback position.
  Bytes MinSizeAt(int index) const { return min_at_[static_cast<size_t>(index)]; }
  Bytes MaxSizeAt(int index) const { return max_at_[static_cast<size_t>(index)]; }

  const media::Manifest* manifest() const { return manifest_; }

 private:
  const media::Manifest* manifest_;
  int num_tracks_ = 0;
  int num_positions_ = 0;
  // Per track: (size, index) sorted by size, for range queries.
  std::vector<std::vector<std::pair<Bytes, int>>> by_size_;
  std::vector<Bytes> audio_sizes_;
  std::vector<Bytes> min_at_;
  std::vector<Bytes> max_at_;
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_CHUNK_DATABASE_H_
