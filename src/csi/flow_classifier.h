// Step 1.1: identify video-streaming connections in the capture.
//
// Flows are keyed by 5-tuple; a flow belongs to the video service if its
// ClientHello SNI matches the service's hostname (suffix match, e.g.
// "googlevideo.com"), or — when SNI is absent — if its server IP is in a
// known set (the DNS/IP fallback of paper §5.3.1).

#ifndef CSI_SRC_CSI_FLOW_CLASSIFIER_H_
#define CSI_SRC_CSI_FLOW_CLASSIFIER_H_

#include <set>
#include <string>
#include <vector>

#include "src/capture/packet_columns.h"
#include "src/capture/packet_record.h"

namespace csi::infer {

struct Flow {
  capture::FlowKey key;
  std::string sni;
  std::vector<capture::PacketRecord> packets;  // in capture order
  Bytes downlink_bytes = 0;
};

// All flows in the capture, in order of first appearance.
std::vector<Flow> SplitFlows(const capture::CaptureTrace& trace);

// Flows that belong to the video service identified by `host_suffix` (or by
// server IP when the SNI is missing). Classifies on per-flow metadata first
// and materializes packet vectors only for the flows that match, so non-media
// flows are never copied.
std::vector<Flow> ClassifyMediaFlows(const capture::CaptureTrace& trace,
                                     const std::string& host_suffix,
                                     const std::set<uint32_t>& known_server_ips = {});

// Columnar classification: the ids (first-appearance order) of the flows in
// `columns` that belong to the video service. No packets are touched at all —
// the interning pass of PacketColumns::Build already extracted the per-flow
// SNI and key, and downstream stages consume FlowViews over the same columns.
std::vector<uint32_t> ClassifyMediaFlowIds(
    const capture::PacketColumns& columns, const std::string& host_suffix,
    const std::set<uint32_t>& known_server_ips = {});

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_FLOW_CLASSIFIER_H_
