#include "src/csi/inference.h"

#include <algorithm>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"
#include "src/csi/flow_classifier.h"
#include "src/csi/size_estimator.h"

namespace csi::infer {

std::string DesignTypeName(DesignType type) {
  switch (type) {
    case DesignType::kCH:
      return "CH";
    case DesignType::kSH:
      return "SH";
    case DesignType::kCQ:
      return "CQ";
    case DesignType::kSQ:
      return "SQ";
  }
  return "?";
}

bool IsQuic(DesignType type) {
  return type == DesignType::kCQ || type == DesignType::kSQ;
}

bool HasSeparateAudio(DesignType type) {
  return type == DesignType::kSH || type == DesignType::kSQ;
}

InferenceEngine::InferenceEngine(DbSnapshot snapshot, InferenceConfig config)
    : manifest_(snapshot.manifest()),
      config_(std::move(config)),
      snapshot_(std::move(snapshot)) {
  FinishConfig();
}

InferenceEngine::InferenceEngine(const media::Manifest* manifest, InferenceConfig config)
    : manifest_(manifest),
      config_(std::move(config)),
      snapshot_(std::make_shared<const ChunkDatabase>(
          manifest, DbBuildOptions{config_.db_build_pool, config_.db_build_shards})) {
  FinishConfig();
}

void InferenceEngine::FinishConfig() {
  // Reconcile the deprecated per-tier cache fields with the unified `caches`
  // block: a legacy field set non-null wins; from here on both spellings name
  // the same cache, so readers of either see one coherent set.
  if (config_.candidate_cache != nullptr) {
    config_.caches.candidate = config_.candidate_cache;
  } else {
    config_.candidate_cache = config_.caches.candidate;
  }
  if (config_.prefix_cache != nullptr) {
    config_.caches.prefix = config_.prefix_cache;
  } else {
    config_.prefix_cache = config_.caches.prefix;
  }
  if (config_.host_suffix.empty()) {
    config_.host_suffix = manifest_->host;
  }
  if (config_.other_object_sizes.empty()) {
    // The manifest is fetched once per session; its on-the-wire estimate
    // includes the response headers.
    config_.other_object_sizes.push_back(manifest_->SerializedSize() +
                                         config_.expected_fixed_overhead);
  }
  if (config_.prefix_cache != nullptr) {
    // Intern after the host-suffix default fill so two engines built from the
    // same manifest share a context whether or not the suffix was explicit.
    prefix_context_ = config_.prefix_cache->InternContext(
        config_.design, config_.host_suffix, config_.splitter);
  }
  if (config_.caches.result != nullptr) {
    // Every knob a result can depend on, captured after the default fills for
    // the same sharing reason as the prefix context. Pools and the other
    // cache pointers are excluded: results are byte-identical across those.
    ResultCache::Context ctx;
    ctx.design = config_.design;
    ctx.host_suffix = config_.host_suffix;
    ctx.splitter = config_.splitter;
    ctx.k_https = config_.k_https;
    ctx.k_quic = config_.k_quic;
    ctx.expected_overhead_https = config_.expected_overhead_https;
    ctx.expected_overhead_quic = config_.expected_overhead_quic;
    ctx.expected_fixed_overhead = config_.expected_fixed_overhead;
    ctx.max_sequences = config_.max_sequences;
    ctx.max_candidates_per_group = config_.max_candidates_per_group;
    ctx.enable_wildcards = config_.enable_wildcards;
    ctx.enable_merge_repair = config_.enable_merge_repair;
    ctx.enable_phantom_deficit = config_.enable_phantom_deficit;
    ctx.enable_calibrated_ranking = config_.enable_calibrated_ranking;
    ctx.other_object_sizes = config_.other_object_sizes;
    result_context_ = config_.caches.result->InternContext(ctx);
  }
}

void InferenceEngine::UpdateSnapshot(DbSnapshot snapshot) {
  manifest_ = snapshot.manifest();
  snapshot_ = std::move(snapshot);
}

bool InferenceEngine::MatchesSomething(Bytes estimate, double k) const {
  // The video-index probe below is snapshot-dependent: an appended chunk
  // inside the admissible window can flip a "no" to a "yes" (audio is CBR and
  // other_object_sizes is config, both append-invariant). Tell the
  // result-tier collector, for positive and negative answers alike.
  RecordSizeProbeForResultCache(estimate, k);
  if (snapshot_.HasVideoCandidate(estimate, k) || snapshot_.AudioPossible(estimate, k)) {
    return true;
  }
  for (Bytes other : config_.other_object_sizes) {
    const double size = static_cast<double>(other);
    if (size <= static_cast<double>(estimate) &&
        static_cast<double>(estimate) <= (1.0 + k) * size) {
      return true;
    }
  }
  return false;
}

void InferenceEngine::MergePhantomSplits(std::vector<EstimatedExchange>* exchanges,
                                         double k) const {
  // A retransmitted QUIC request carries a new packet number, so the request
  // detector sees a phantom request that splits one object's window in two
  // (paper §2: QUIC retransmissions are not identifiable). Repair: when an
  // exchange matches nothing but its union with a neighbor matches a chunk,
  // merge them.
  bool changed = true;
  for (int pass = 0; pass < 3 && changed; ++pass) {
    changed = false;
    for (size_t i = 0; i + 1 < exchanges->size(); ++i) {
      EstimatedExchange& a = (*exchanges)[i];
      const EstimatedExchange& b = (*exchanges)[i + 1];
      // Phantom signature: the retransmission fires an RTO (~0.2-3 s) into
      // the download, so the first fragment is the *smaller* piece (it may
      // still coincidentally match some chunk), while the remainder matches
      // nothing on its own. A truncated session-end download looks different
      // (large complete piece first), so it is left alone.
      if (MatchesSomething(b.estimated_size, k)) {
        continue;
      }
      if (a.estimated_size >= b.estimated_size) {
        continue;
      }
      const Bytes merged = a.estimated_size + b.estimated_size;
      if (!MatchesSomething(merged, k)) {
        continue;
      }
      a.estimated_size = merged;
      a.last_data_time = std::max(a.last_data_time, b.last_data_time);
      exchanges->erase(exchanges->begin() + static_cast<long>(i) + 1);
      changed = true;
    }
  }
}

AnalysisPrefix InferenceEngine::ComputePrefixAoS(const capture::CaptureTrace& trace) const {
  AnalysisPrefix prefix;
  std::vector<Flow> flows;
  {
    CSI_SPAN("flow_classify");
    CSI_TRACE_SPAN_ARGS("flow_classify", "stage",
                        {"packets", static_cast<int64_t>(trace.size())});
    flows = ClassifyMediaFlows(trace, config_.host_suffix);
  }
  prefix.media_flows = static_cast<int>(flows.size());
  if (flows.empty()) {
    return prefix;
  }
  // The player streams over one connection; if several media flows exist
  // (e.g. probes), analyze the one carrying the bulk of the download.
  auto main_flow = std::max_element(
      flows.begin(), flows.end(),
      [](const Flow& a, const Flow& b) { return a.downlink_bytes < b.downlink_bytes; });

  if (config_.design == DesignType::kSQ) {
    CSI_SPAN("traffic_split");
    CSI_TRACE_SPAN_ARGS("traffic_split", "stage",
                        {"packets", static_cast<int64_t>(main_flow->packets.size())});
    prefix.groups = SplitIntoGroups(main_flow->packets, config_.splitter);
  } else {
    CSI_SPAN("size_estimate");
    CSI_TRACE_SPAN_ARGS("size_estimate", "stage",
                        {"packets", static_cast<int64_t>(main_flow->packets.size())});
    for (const EstimatedExchange& ex :
         EstimateExchanges(main_flow->packets, IsQuic(config_.design))) {
      if (ex.carries_sni) {
        // Handshake exchange (ClientHello / QUIC Initial): the data in its
        // window is the server's handshake flight, not a media object.
        continue;
      }
      prefix.exchanges.push_back(ex);
    }
    // Merge repair stays OUT of the prefix: MatchesSomething probes the
    // database snapshot, so the repaired exchange list is snapshot-dependent
    // while everything above this line is not.
  }
  return prefix;
}

AnalysisPrefix InferenceEngine::ComputePrefixColumns(
    const capture::PacketColumns& columns) const {
  AnalysisPrefix prefix;
  std::vector<uint32_t> media;
  {
    CSI_SPAN("flow_classify");
    CSI_TRACE_SPAN_ARGS("flow_classify", "stage",
                        {"packets", static_cast<int64_t>(columns.packet_count())});
    media = ClassifyMediaFlowIds(columns, config_.host_suffix);
  }
  prefix.media_flows = static_cast<int>(media.size());
  if (media.empty()) {
    return prefix;
  }
  // First-max over the per-flow downlink totals: media ids ascend in
  // first-appearance order, so this picks the same flow max_element picks on
  // the AoS flow vector.
  uint32_t main_flow = media.front();
  for (const uint32_t f : media) {
    if (columns.flow_downlink_bytes(f) > columns.flow_downlink_bytes(main_flow)) {
      main_flow = f;
    }
  }
  const capture::FlowView view = columns.flow(main_flow);

  if (config_.design == DesignType::kSQ) {
    CSI_SPAN("traffic_split");
    CSI_TRACE_SPAN_ARGS("traffic_split", "stage",
                        {"packets", static_cast<int64_t>(view.size())});
    prefix.groups = SplitIntoGroups(view, config_.splitter);
  } else {
    CSI_SPAN("size_estimate");
    CSI_TRACE_SPAN_ARGS("size_estimate", "stage",
                        {"packets", static_cast<int64_t>(view.size())});
    for (const EstimatedExchange& ex :
         EstimateExchanges(view, IsQuic(config_.design))) {
      if (ex.carries_sni) {
        // Handshake exchange (ClientHello / QUIC Initial): the data in its
        // window is the server's handshake flight, not a media object.
        continue;
      }
      prefix.exchanges.push_back(ex);
    }
    // Merge repair stays OUT of the prefix (see ComputePrefixAoS).
  }
  return prefix;
}

InferenceResult InferenceEngine::Analyze(const capture::CaptureTrace& trace,
                                         const DisplayConstraints& display,
                                         InferenceAudit* audit) const {
  return AnalyzeImpl(&trace, nullptr, display, audit);
}

InferenceResult InferenceEngine::Analyze(const capture::PacketColumns& columns,
                                         const DisplayConstraints& display,
                                         InferenceAudit* audit) const {
  return AnalyzeImpl(nullptr, &columns, display, audit);
}

InferenceResult InferenceEngine::AnalyzeImpl(const capture::CaptureTrace* trace,
                                             const capture::PacketColumns* columns,
                                             const DisplayConstraints& display,
                                             InferenceAudit* audit) const {
  const size_t packet_count =
      trace != nullptr ? trace->size() : columns->packet_count();
  CSI_SPAN("analyze");
  CSI_TRACE_SPAN_ARGS("analyze", "stage",
                      {"packets", static_cast<int64_t>(packet_count)});
  CSI_COUNTER_INC("csi_analyze_calls_total");

  AnalysisPrefixCache* const prefix_cache =
      config_.prefix_cache != nullptr && !AnalysisPrefixCache::EnvForcesOff()
          ? config_.prefix_cache.get()
          : nullptr;
  // Top tier: the whole-result cache. Calls with display constraints bypass
  // it — the key deliberately covers only the unconstrained path.
  ResultCache* const result_cache =
      config_.caches.result != nullptr && !ResultCache::EnvForcesOff() && display.empty()
          ? config_.caches.result.get()
          : nullptr;
  // One fingerprint pass feeds both the result- and prefix-tier keys. The
  // two flavors produce the same digest for the same capture, so entries are
  // shared across AoS and columnar callers.
  TraceFingerprint fingerprint;
  if (result_cache != nullptr || prefix_cache != nullptr) {
    fingerprint = columns != nullptr ? FingerprintColumns(*columns)
                                     : FingerprintTrace(*trace);
  }
  ResultCache::Query result_query;
  if (result_cache != nullptr) {
    result_query = ResultCache::MakeQuery(fingerprint, result_context_, snapshot_);
    ResultCache::AuditShape shape;
    if (std::shared_ptr<const InferenceResult> hit =
            result_cache->Lookup(result_query, snapshot_, &shape)) {
      if (audit != nullptr) {
        // Replay the shape of the skipped work; per-stage work counters stay
        // zero, which is how a served-from-cache audit line reads.
        audit->media_flows = shape.media_flows;
        audit->groups = shape.groups;
        audit->sequences = shape.sequences;
        audit->truncated = shape.truncated;
        audit->has_best_cost = shape.has_best_cost;
        audit->best_cost = shape.best_cost;
        audit->has_runner_up_cost = shape.has_runner_up_cost;
        audit->runner_up_cost = shape.runner_up_cost;
      }
      return *hit;
    }
  }

  // The insert below needs the audit shape (the chain search reports costs
  // through CurrentAudit()), so collect into a local audit when the caller
  // didn't ask for one. Collection never changes the result.
  InferenceAudit local_audit;
  InferenceAudit* const effective_audit =
      audit != nullptr ? audit : result_cache != nullptr ? &local_audit : nullptr;
  const AuditScope audit_scope(effective_audit);
  // Collector for everything the compute path reads off the position axis;
  // stays insensitive when the cache is off or the trace has no media flows.
  ResultHull result_hull;
  const ResultHullScope hull_scope(result_cache != nullptr ? &result_hull : nullptr);

  // Consult the shared prefix cache before paying for the per-packet stages;
  // on a miss, compute and publish so later repeats (this engine or any other
  // sharing the cache) jump straight to the snapshot-dependent search.
  std::shared_ptr<const AnalysisPrefix> prefix;
  AnalysisPrefixCache::Query prefix_query;
  if (prefix_cache != nullptr) {
    prefix_query.fingerprint = fingerprint;
    prefix_query.context = prefix_context_;
    prefix = prefix_cache->Lookup(prefix_query);
  }
  if (prefix == nullptr) {
    std::shared_ptr<AnalysisPrefix> computed;
    if (columns != nullptr) {
      computed = std::make_shared<AnalysisPrefix>(ComputePrefixColumns(*columns));
    } else if (config_.use_columnar) {
      // Transpose lazily — only when the prefix actually has to be
      // recomputed — so warm cache hits never pay for a column build.
      capture::PacketColumns built;
      {
        CSI_SPAN("column_build");
        CSI_TRACE_SPAN_ARGS("column_build", "stage",
                            {"packets", static_cast<int64_t>(trace->size())});
        built = capture::PacketColumns::Build(*trace);
      }
      CSI_TRACE_INSTANT("column_layout", "stage",
                        {"flows", static_cast<int64_t>(built.flow_count())});
      computed = std::make_shared<AnalysisPrefix>(ComputePrefixColumns(built));
    } else {
      computed = std::make_shared<AnalysisPrefix>(ComputePrefixAoS(*trace));
    }
    if (prefix_cache != nullptr) {
      prefix_cache->Insert(prefix_query, computed);
    }
    prefix = std::move(computed);
  }

  if (effective_audit != nullptr) {
    effective_audit->media_flows = prefix->media_flows;
  }
  if (prefix->media_flows == 0) {
    CSI_COUNTER_INC("csi_analyze_no_media_flow_total");
    CSI_TRACE_INSTANT("analyze_no_media_flow", "stage");
    if (result_cache != nullptr) {
      // Classification never touches the database, so the empty result is
      // valid under every state of the lineage (the hull is insensitive).
      ResultCache::AuditShape shape;
      shape.media_flows = 0;
      result_cache->Insert(result_query, snapshot_, result_hull,
                           std::make_shared<InferenceResult>(), shape);
    }
    return {};
  }

  const bool quic = IsQuic(config_.design);

  GroupSearchConfig group;
  group.k = quic ? config_.k_quic : config_.k_https;
  group.expected_overhead = quic ? config_.expected_overhead_quic
                                 : config_.expected_overhead_https;
  group.expected_fixed_overhead = config_.expected_fixed_overhead;
  group.max_sequences = config_.max_sequences;
  group.max_candidates_per_group = config_.max_candidates_per_group;
  group.other_object_sizes = config_.other_object_sizes;
  group.enable_wildcards = config_.enable_wildcards;
  group.enable_merge_repair = config_.enable_merge_repair;
  group.pool = config_.search_pool;
  group.shared_cache = config_.candidate_cache.get();
  if (!config_.enable_phantom_deficit) {
    group.max_phantom_requests = 0;
  }
  if (!config_.enable_calibrated_ranking) {
    group.expected_overhead = 0.0;
    group.expected_fixed_overhead = 0;
  }

  // Both cases reduce to the same layered search (Fig. 9): for transport MUX
  // the layers are SP1/SP2 traffic groups (already split in the prefix);
  // otherwise every exchange becomes its own single-request group after the
  // snapshot-dependent phantom-merge repair.
  std::vector<TrafficGroup> local_groups;
  // SQ reads the prefix's groups in place (no copy on a warm hit); the non-MUX
  // designs rebuild single-request groups from the repaired exchange list.
  const std::vector<TrafficGroup>* groups = &prefix->groups;
  if (config_.design != DesignType::kSQ) {
    std::vector<EstimatedExchange> exchanges = prefix->exchanges;
    if (quic && config_.enable_merge_repair) {
      MergePhantomSplits(&exchanges, group.k);
    }
    for (const EstimatedExchange& ex : exchanges) {
      TrafficGroup g;
      DetectedRequest req;
      req.time = ex.request_time;
      g.requests.push_back(req);
      g.start_time = ex.request_time;
      g.end_time = ex.last_data_time;
      g.estimated_total = ex.estimated_size;
      local_groups.push_back(std::move(g));
    }
    groups = &local_groups;
  }
  CSI_SPAN("group_search");
  CSI_TRACE_SPAN_ARGS("group_search", "stage",
                      {"groups", static_cast<int64_t>(groups->size())});
  if (effective_audit != nullptr) {
    effective_audit->groups = static_cast<int>(groups->size());
  }
  InferenceResult result = SearchGroupSequences(*groups, snapshot_, group, display);
  if (effective_audit != nullptr) {
    effective_audit->sequences = static_cast<int>(result.sequences.size());
    effective_audit->truncated = result.truncated;
  }
  if (audit != nullptr) {
    // Surface the audit in the trace too, so a Perfetto view of the session
    // carries the explanation without the JSONL side channel.
    CSI_TRACE_INSTANT("inference_audit_stages", "audit",
                      {"media_flows", audit->media_flows},
                      {"groups", audit->groups},
                      {"sequences", audit->sequences},
                      {"truncated", audit->truncated ? 1 : 0});
    CSI_TRACE_INSTANT("inference_audit_enum", "audit",
                      {"enumerations", audit->enumerations},
                      {"candidates", audit->candidates},
                      {"dfs_nodes_expanded", audit->dfs_nodes_expanded},
                      {"dfs_nodes_pruned", audit->dfs_nodes_pruned});
    CSI_TRACE_INSTANT("inference_audit_cache", "audit",
                      {"hits", audit->cache_hits},
                      {"revalidations", audit->cache_revalidations},
                      {"invalidations", audit->cache_invalidations},
                      {"misses", audit->cache_misses});
    if (audit->has_best_cost) {
      CSI_TRACE_INSTANT("inference_audit_scores", "audit",
                        {"best_cost", audit->best_cost},
                        {"runner_up_cost", audit->has_runner_up_cost
                                               ? audit->runner_up_cost
                                               : -1.0});
    }
  }
  if (result_cache != nullptr) {
    // effective_audit is non-null whenever the cache is attached; freeze the
    // shape of the work a future hit will skip alongside the result.
    ResultCache::AuditShape shape;
    shape.media_flows = effective_audit->media_flows;
    shape.groups = effective_audit->groups;
    shape.sequences = effective_audit->sequences;
    shape.truncated = effective_audit->truncated;
    shape.has_best_cost = effective_audit->has_best_cost;
    shape.best_cost = effective_audit->best_cost;
    shape.has_runner_up_cost = effective_audit->has_runner_up_cost;
    shape.runner_up_cost = effective_audit->runner_up_cost;
    auto owned = std::make_shared<InferenceResult>(std::move(result));
    result_cache->Insert(result_query, snapshot_, result_hull, owned, shape);
    return *owned;
  }
  return result;
}

}  // namespace csi::infer
