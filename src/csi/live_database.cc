#include "src/csi/live_database.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"
#include "src/csi/chunk_database.h"

namespace csi::infer {

namespace {

void ValidateUniformManifest(const media::Manifest& manifest) {
  if (manifest.num_video_tracks() >= (1 << 12)) {
    throw std::invalid_argument("LiveChunkDatabase: too many video tracks for packed refs");
  }
  if (manifest.num_positions() > ChunkDatabase::kMaxPositions) {
    throw std::invalid_argument("LiveChunkDatabase: too many positions for packed refs");
  }
  const size_t positions = manifest.video_tracks.empty()
                               ? 0
                               : manifest.video_tracks[0].chunks.size();
  for (const auto& track : manifest.video_tracks) {
    if (track.chunks.size() != positions) {
      throw std::invalid_argument(
          "LiveChunkDatabase: video tracks must have uniform lengths (live edge "
          "advances across the whole ladder)");
    }
  }
}

}  // namespace

LiveChunkDatabase::LiveChunkDatabase(const media::Manifest& initial, Options options)
    : options_(options) {
  ValidateUniformManifest(initial);
  if (options_.pool == nullptr) {
    options_.background_compaction = false;
  }
  auto manifest_version = std::make_shared<const media::Manifest>(initial);
  auto base = std::make_shared<const ChunkDatabase>(
      manifest_version.get(), DbBuildOptions{options_.pool, options_.build_shards});
  num_tracks_ = base->num_video_tracks();

  auto rep = std::make_shared<internal::SnapshotRep>();
  rep->manifest_version = manifest_version;
  rep->base_manifest = std::move(manifest_version);
  rep->base = base.get();
  rep->owned_base = std::move(base);
  rep->audio_sizes = rep->base->audio_sizes();
  rep->num_positions = rep->base->num_positions();
  rep->epoch = 0;
  rep->state_id = internal::NextSnapshotStateId();
  lineage_id_ = rep->state_id;
  rep->lineage_id = lineage_id_;
  Publish(std::move(rep));
}

LiveChunkDatabase::~LiveChunkDatabase() {
  // A background compaction captures `this`; it must finish before teardown.
  // Its exception (if any) has nowhere to go from a destructor.
  try {
    WaitForCompaction();
  } catch (...) {
  }
}

std::shared_ptr<const internal::SnapshotRep> LiveChunkDatabase::Current() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_;
}

DbSnapshot LiveChunkDatabase::Acquire() const { return DbSnapshot(Current()); }

void LiveChunkDatabase::Publish(std::shared_ptr<const internal::SnapshotRep> rep) {
  const size_t delta_chunks = rep->delta.size();
  [[maybe_unused]] const uint64_t epoch = rep->epoch;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    current_ = std::move(rep);
  }
  CSI_COUNTER_INC("csi_db_publishes_total");
  CSI_GAUGE_SET("csi_db_delta_chunks", static_cast<int64_t>(delta_chunks));
  CSI_TRACE_INSTANT("db_publish", "db", {"epoch", epoch},
                    {"delta_chunks", static_cast<int64_t>(delta_chunks)});
}

DbSnapshot LiveChunkDatabase::ApplyRefresh(const ManifestRefresh& refresh) {
  std::shared_ptr<const internal::SnapshotRep> published;
  std::shared_ptr<const media::Manifest> manifest_version;
  bool trigger_compaction = false;
  {
    std::lock_guard<std::mutex> writer(writer_mu_);
    const std::shared_ptr<const internal::SnapshotRep> old = Current();

    if (static_cast<int>(refresh.video_appends.size()) != num_tracks_) {
      throw std::invalid_argument(
          "ManifestRefresh: video_appends must cover every video track (got " +
          std::to_string(refresh.video_appends.size()) + ", want " +
          std::to_string(num_tracks_) + ")");
    }
    const size_t appended = refresh.video_appends.empty() ? 0 : refresh.video_appends[0].size();
    for (const auto& track_appends : refresh.video_appends) {
      if (track_appends.size() != appended) {
        throw std::invalid_argument(
            "ManifestRefresh: ragged append — the live edge must advance uniformly "
            "across the ladder");
      }
    }
    if (appended == 0) {
      return DbSnapshot(old);  // nothing changed; keep the current epoch
    }
    if (old->num_positions + static_cast<int>(appended) > ChunkDatabase::kMaxPositions) {
      throw std::invalid_argument("ManifestRefresh: position limit exceeded");
    }

    // New manifest version: pinned snapshots keep reading the old one.
    auto manifest = std::make_shared<media::Manifest>(*old->manifest_version);
    for (int t = 0; t < num_tracks_; ++t) {
      auto& chunks = manifest->video_tracks[static_cast<size_t>(t)].chunks;
      const auto& appends = refresh.video_appends[static_cast<size_t>(t)];
      chunks.insert(chunks.end(), appends.begin(), appends.end());
    }
    // Audio is CBR: the live edge repeats each track's constant chunk.
    for (auto& track : manifest->audio_tracks) {
      if (!track.chunks.empty()) {
        track.chunks.insert(track.chunks.end(), appended, track.chunks[0]);
      }
    }

    // Fresh delta entries, sorted and merged into the existing buffer under
    // the shared (size, packed) total order.
    std::vector<internal::DeltaEntry> fresh;
    fresh.reserve(appended * static_cast<size_t>(num_tracks_));
    for (size_t r = 0; r < appended; ++r) {
      for (int t = 0; t < num_tracks_; ++t) {
        fresh.push_back(internal::DeltaEntry{
            refresh.video_appends[static_cast<size_t>(t)][r].size,
            ChunkDatabase::PackRef(t, old->num_positions + static_cast<int>(r))});
      }
    }
    std::sort(fresh.begin(), fresh.end());

    auto rep = std::make_shared<internal::SnapshotRep>();
    rep->manifest_version = manifest;
    rep->base_manifest = old->base_manifest;
    rep->owned_base = old->owned_base;
    rep->base = old->base;
    rep->delta.resize(old->delta.size() + fresh.size());
    std::merge(old->delta.begin(), old->delta.end(), fresh.begin(), fresh.end(),
               rep->delta.begin());
    rep->delta_min_at = old->delta_min_at;
    rep->delta_max_at = old->delta_max_at;
    rep->delta_size_of = old->delta_size_of;
    for (size_t r = 0; r < appended; ++r) {
      Bytes min_size = refresh.video_appends[0][r].size;
      Bytes max_size = min_size;
      for (int t = 0; t < num_tracks_; ++t) {
        const Bytes size = refresh.video_appends[static_cast<size_t>(t)][r].size;
        rep->delta_size_of.push_back(size);
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
      }
      rep->delta_min_at.push_back(min_size);
      rep->delta_max_at.push_back(max_size);
    }
    rep->audio_sizes = old->audio_sizes;
    rep->num_positions = old->num_positions + static_cast<int>(appended);
    rep->epoch = old->epoch + 1;
    rep->state_id = internal::NextSnapshotStateId();
    rep->lineage_id = lineage_id_;

    published = rep;
    manifest_version = std::move(manifest);
    trigger_compaction = rep->delta.size() >= options_.compact_after_delta_chunks;
    Publish(std::move(rep));
  }

  if (trigger_compaction) {
    if (options_.background_compaction) {
      StartBackgroundCompaction(std::move(manifest_version));
    } else {
      CompactFrom(std::move(manifest_version));
    }
  }
  return DbSnapshot(std::move(published));
}

void LiveChunkDatabase::CompactFrom(std::shared_ptr<const media::Manifest> manifest_version) {
  // The expensive rebuild happens outside every lock; readers keep acquiring
  // and writers keep refreshing while it runs.
  std::shared_ptr<const ChunkDatabase> base;
  {
    CSI_SPAN("db_compaction");
    CSI_TRACE_SPAN("db_compaction", "db");
    base = std::make_shared<const ChunkDatabase>(
        manifest_version.get(), DbBuildOptions{options_.pool, options_.build_shards});
  }
  CSI_COUNTER_INC("csi_db_compactions_total");

  std::lock_guard<std::mutex> writer(writer_mu_);
  const std::shared_ptr<const internal::SnapshotRep> old = Current();
  const int covered = base->num_positions();
  const int old_base_positions = old->base->num_positions();
  if (covered <= old_base_positions) {
    return;  // a newer base already covers at least as much; splicing would regress
  }

  auto rep = std::make_shared<internal::SnapshotRep>();
  rep->manifest_version = old->manifest_version;
  rep->base_manifest = std::move(manifest_version);
  rep->base = base.get();
  rep->owned_base = std::move(base);
  // Delta entries the new base now covers are dropped; later appends survive
  // (refs are absolute, so they stay valid against the bigger base).
  for (const internal::DeltaEntry& e : old->delta) {
    if (ChunkDatabase::IndexOfPacked(e.packed) >= covered) {
      rep->delta.push_back(e);
    }
  }
  const size_t drop = static_cast<size_t>(covered - old_base_positions);
  rep->delta_min_at.assign(old->delta_min_at.begin() + static_cast<ptrdiff_t>(drop),
                           old->delta_min_at.end());
  rep->delta_max_at.assign(old->delta_max_at.begin() + static_cast<ptrdiff_t>(drop),
                           old->delta_max_at.end());
  rep->delta_size_of.assign(
      old->delta_size_of.begin() + static_cast<ptrdiff_t>(drop * static_cast<size_t>(num_tracks_)),
      old->delta_size_of.end());
  rep->audio_sizes = rep->base->audio_sizes();
  rep->num_positions = old->num_positions;
  rep->epoch = old->epoch + 1;
  rep->state_id = internal::NextSnapshotStateId();
  rep->lineage_id = lineage_id_;
  Publish(std::move(rep));
}

void LiveChunkDatabase::StartBackgroundCompaction(
    std::shared_ptr<const media::Manifest> manifest_version) {
  if (compaction_running_.exchange(true)) {
    return;  // one compaction in flight at a time; the next trigger re-checks
  }
  std::lock_guard<std::mutex> lock(compaction_mu_);
  // Flow event tying the submitting thread to the worker that eventually
  // runs the compaction, so the rebuild nests under its trigger in a viewer.
  uint64_t flow_id = 0;
  if (trace::Enabled()) {
    flow_id = trace::NewFlowId();
    trace::EmitFlow('s', "background_compaction", flow_id);
  }
  // Replacing a finished future whose exception nobody collected drops that
  // exception; WaitForCompaction is the way to observe failures.
  compaction_ =
      options_.pool->Submit([this, mv = std::move(manifest_version), flow_id]() {
        struct ClearFlag {
          std::atomic<bool>* flag;
          ~ClearFlag() { flag->store(false); }
        } clear{&compaction_running_};
        CSI_TRACE_SPAN("background_compaction", "db");
        if (flow_id != 0 && trace::Enabled()) {
          trace::EmitFlow('t', "background_compaction", flow_id);
        }
        CompactFrom(mv);
        if (flow_id != 0 && trace::Enabled()) {
          trace::EmitFlow('f', "background_compaction", flow_id);
        }
      });
}

DbSnapshot LiveChunkDatabase::CompactNow() {
  WaitForCompaction();
  const std::shared_ptr<const internal::SnapshotRep> current = Current();
  if (current->delta.empty()) {
    return DbSnapshot(current);
  }
  CompactFrom(current->manifest_version);
  return Acquire();
}

void LiveChunkDatabase::WaitForCompaction() {
  std::future<void> pending;
  {
    std::lock_guard<std::mutex> lock(compaction_mu_);
    if (compaction_.valid()) {
      pending = std::move(compaction_);
    }
  }
  if (pending.valid()) {
    pending.get();
  }
}

}  // namespace csi::infer
