// Snapshot-keyed end-to-end cache of complete inference results.
//
// The prefix cache (PR 8) skips the per-packet stages and the candidate cache
// (PR 6) skips per-group enumerations, but a warm `--follow-manifests` repeat
// still pays for classification dispatch, group-by-group cache probes, merge
// repair and the full chain/beam sequence search on every trace. ResultCache
// is the top tier that collapses all of it: a sharded, concurrent,
// byte-budgeted cache mapping
//
//   (128-bit trace fingerprint, interned full-config context,
//    database lineage)
//
// to the immutable `InferenceResult` Analyze produced, anchored to the
// snapshot state it was produced at. A hit returns the finished result —
// nothing downstream of the fingerprint runs.
//
// Snapshot awareness reuses the candidate cache's delta-revalidation idea one
// level up. While Analyze computes a result, a thread-local ResultHull
// collector (installed by the engine) folds in every way the computation
// touched the position axis:
//
//   * each group enumeration contributes the same concrete/growth conditions
//     GroupCandidateCache::Revalidate would check for it, evaluated at
//     analyze time (RecordEnumerationForResultCache), and
//   * each merge-repair size probe contributes its admissible window
//     [AdmissibleLow(estimate, k), estimate] (RecordSizeProbeForResultCache).
//
// The union is a single window [probe_lo, probe_hi] plus an `unsafe` bit for
// enumerations whose per-start DFS budgets were above the floor (those shift
// whenever the live edge moves, so no window can prove identity). An entry
// computed at state A revalidates under a later state B of the same lineage
// with one DbSnapshot::DeltaHasSizeInWindow probe: if no appended chunk's
// size lands in the window (and no compaction hid the appends), every stage
// would have produced byte-identical output, so the cached result *is* the
// result — and the entry re-anchors to B (O(1) from then on). Anything not
// provable invalidates and falls through to a full analyze.
//
// Entries also carry the audit shape of the skipped work (media flows,
// groups, sequence count, best/runner-up costs) so a hit can fill the
// caller's InferenceAudit; per-stage work counters stay zero, which is how a
// replayed audit line is recognizable as served-from-cache.
//
// Hits share the result by pointer internally; lookups with non-empty
// display constraints bypass the cache (the engine keys only on the
// constraint-free path). Eviction is per-shard second-chance (clock) over a
// byte budget via the shared ShardedClockStore (cache_common.h). Force-off
// escape hatches: CSI_RESULT_CACHE=off or the unified CSI_CACHE=result:off
// turn every lookup into a miss and every insert into a no-op.

#ifndef CSI_SRC_CSI_RESULT_CACHE_H_
#define CSI_SRC_CSI_RESULT_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/csi/cache_common.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/db_snapshot.h"
#include "src/csi/prefix_cache.h"
#include "src/csi/splitter.h"
#include "src/csi/types.h"

namespace csi::infer {

// Everything one Analyze call's output depended on along the position axis,
// folded into a single invalidation test. Widened monotonically; wider is
// always sound (more invalidation, never a missed one).
struct ResultHull {
  // False until the first contribution: the computation never read the
  // position axis and the result is valid under every state of the lineage.
  bool sensitive = false;
  // Some enumeration's output could shift with the live edge in a way no size
  // window can rule out (per-start DFS budget above the floor); the entry
  // only ever hits at the exact state it was computed at.
  bool unsafe = false;
  // Union of all probe windows on true chunk-byte sizes.
  Bytes probe_lo = 0;
  Bytes probe_hi = 0;

  void Widen(Bytes lo, Bytes hi) {
    if (!sensitive) {
      sensitive = true;
      probe_lo = lo;
      probe_hi = hi;
      return;
    }
    probe_lo = std::min(probe_lo, lo);
    probe_hi = std::max(probe_hi, hi);
  }

  friend bool operator==(const ResultHull&, const ResultHull&) = default;
};

// Thread-local collector the engine installs around the compute path of one
// Analyze. Same shape as AuditScope: scopes nest, null is a valid no-op
// target, and the previous collector is restored on destruction.
class ResultHullScope {
 public:
  explicit ResultHullScope(ResultHull* hull);
  ~ResultHullScope();

  ResultHullScope(const ResultHullScope&) = delete;
  ResultHullScope& operator=(const ResultHullScope&) = delete;

 private:
  ResultHull* previous_;
};

// The collector installed on this thread, or null. Record* helpers below are
// the intended writers; exposed for tests.
ResultHull* CurrentResultHull();

// Folds one group enumeration's snapshot dependence into the active collector
// (no-op without one, or when the enumeration has no video split). Mirrors
// the conditions GroupCandidateCache::Revalidate checks for the entry this
// enumeration would produce, evaluated at analyze time: `canonical_start_hi`
// must already be canonicalized (GroupCandidateCache::kOpenHi when the range
// reached the live edge), `positions` is the analyze-time snapshot's count.
void RecordEnumerationForResultCache(const CandidateSetHull& hull, int start_lo,
                                     int canonical_start_hi, int positions,
                                     int64_t max_dfs_nodes);

// Folds one merge-repair size probe into the active collector (no-op without
// one): the probe's answer can only flip if an appended chunk lands in the
// admissible window [AdmissibleLow(estimated, k), estimated].
void RecordSizeProbeForResultCache(Bytes estimated, double k);

class ResultCache {
 public:
  static constexpr int kDefaultShards = 16;

  // Unified stats block shared by every cache tier (cache_common.h).
  using Stats = CacheStats;

  // The result-relevant subset of InferenceConfig, interned with full
  // structural equality. Thread pools, db-build knobs and the cache pointers
  // themselves are excluded: results are byte-identical across those by
  // construction.
  struct Context {
    DesignType design = DesignType::kCH;
    std::string host_suffix;
    SplitterConfig splitter;
    double k_https = 0.0;
    double k_quic = 0.0;
    double expected_overhead_https = 0.0;
    double expected_overhead_quic = 0.0;
    Bytes expected_fixed_overhead = 0;
    int max_sequences = 0;
    int max_candidates_per_group = 0;
    bool enable_wildcards = false;
    bool enable_merge_repair = false;
    bool enable_phantom_deficit = false;
    bool enable_calibrated_ranking = false;
    std::vector<Bytes> other_object_sizes;

    friend bool operator==(const Context&, const Context&) = default;
  };

  struct Query {
    TraceFingerprint fingerprint;
    uint32_t context = 0;
    uint64_t lineage = 0;

    friend bool operator==(const Query&, const Query&) = default;
  };

  // Audit shape of the work a hit skips, replayed into the caller's
  // InferenceAudit so replayed audit lines stay meaningful. Per-stage work
  // counters (enumerations, DFS nodes, chain nodes, ...) are deliberately
  // absent: a hit did none of that work and reports zeros.
  struct AuditShape {
    int media_flows = 0;
    int groups = 0;
    int sequences = 0;
    bool truncated = false;
    bool has_best_cost = false;
    double best_cost = 0.0;
    bool has_runner_up_cost = false;
    double runner_up_cost = 0.0;
  };

  explicit ResultCache(size_t budget_bytes, int shards = kDefaultShards);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // True when CSI_RESULT_CACHE=off|OFF|0|none or the unified
  // CSI_CACHE=result:off override forces the cache out of the picture
  // (environment checked once per process), or a test forced it via
  // ForceEnvOffForTest. Engines treat the cache as absent; a constructed
  // cache stays empty.
  static bool EnvForcesOff();
  // Recognizer behind the env override, exposed so tests can pin the accepted
  // spellings without re-execing under a modified environment.
  static bool IsOffValue(const std::string& value);
  // Test seam simulating CSI_RESULT_CACHE=off in-process (the real env read
  // is cached in a static). Always reset to false before the test returns.
  static void ForceEnvOffForTest(bool off);

  // Interns a result context and returns a process-stable id (>= 1). Full
  // structural equality — never a lossy hash. The engine interns once at
  // construction.
  uint32_t InternContext(const Context& context);

  // Assembles a key from an already-computed fingerprint (the engine shares
  // one FingerprintTrace pass with the prefix cache) and `db`'s lineage.
  static Query MakeQuery(const TraceFingerprint& fingerprint, uint32_t context,
                         const DbSnapshot& db);

  // Returns the cached result when a valid entry exists for `query` under
  // `db`'s state, else null. An entry computed at an older state of the same
  // lineage is revalidated against `db`'s delta buffer (and re-anchored on
  // success); one that provably cannot be revalidated is dropped and counted
  // as an invalidation. Fills `shape` (if non-null) on a hit.
  std::shared_ptr<const InferenceResult> Lookup(const Query& query, const DbSnapshot& db,
                                                AuditShape* shape = nullptr);

  // Publishes a result computed against `db` with the hull its computation
  // collected. Replaces any existing entry for the key; results larger than a
  // whole shard's budget are not admitted. No-op when the env forces the
  // cache off.
  void Insert(const Query& query, const DbSnapshot& db, const ResultHull& hull,
              std::shared_ptr<const InferenceResult> result, const AuditShape& shape);

  // Drops every entry (stats survive). Test/bench seam for cold-start runs.
  void Clear();

  Stats stats() const;
  size_t budget_bytes() const { return store_.budget_bytes(); }
  int shards() const { return store_.shards(); }

 private:
  struct QueryHash {
    size_t operator()(const Query& q) const;
  };

  struct Entry {
    Query query;
    // Published state this entry's output is exact for; revalidation
    // re-anchors both fields forward.
    uint64_t state_id = 0;
    int positions_at = 0;
    ResultHull hull;
    std::shared_ptr<const InferenceResult> result;
    AuditShape shape;
    size_t bytes = 0;
    // Second-chance bit, guarded by the shard mutex.
    bool referenced = false;
  };

  // True when the entry's output is byte-identical under `db`; re-anchors the
  // entry on success. Caller holds the shard mutex.
  static bool Revalidate(Entry& entry, const DbSnapshot& db);
  static size_t ApproxBytes(const InferenceResult& result);

  internal::ShardedClockStore<Query, Entry, QueryHash> store_;

  mutable std::mutex contexts_mu_;
  std::vector<Context> contexts_;

  // Lock-free tallies (bytes/entries live in the shards and are summed on
  // demand).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_RESULT_CACHE_H_
