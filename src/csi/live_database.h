// Incrementally updatable chunk database for live manifests.
//
// Live HLS/DASH manifests grow while a session is being watched: the crawler
// refreshes metadata continuously and each refresh appends chunks to every
// track of the ladder. Rebuilding the full ChunkDatabase per refresh is a
// stop-the-world swap; LiveChunkDatabase instead accumulates appends in the
// snapshot's sorted delta buffer and publishes a new immutable DbSnapshot
// RCU-style — Acquire() hands out the current version, readers keep their
// pinned epoch until they finish, and nobody ever blocks on a writer.
//
// Once the delta grows past a threshold, a compaction rebuilds the full flat
// index (the PR 3 sharded build, fanned over the ThreadPool) from the pinned
// manifest version and splices it in under the writer lock: delta entries the
// new base now covers are dropped, later appends survive. Every publish —
// refresh or compaction — bumps the epoch, and every snapshot answers queries
// byte-identically to a full rebuild at its refresh point (the determinism
// contract; see tests/live_database_test.cc).

#ifndef CSI_SRC_CSI_LIVE_DATABASE_H_
#define CSI_SRC_CSI_LIVE_DATABASE_H_

#include <atomic>
#include <cstddef>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/csi/db_snapshot.h"
#include "src/media/manifest.h"

namespace csi::infer {

// One live-manifest metadata refresh: the chunks the live edge appended since
// the previous refresh. `video_appends[t]` are the new chunks of video track
// t; the outer size must equal the database's video track count and all inner
// vectors must have the same length (the live edge advances uniformly across
// the ladder — required for incremental-vs-full byte identity, and what real
// live ladders do). Audio tracks grow by the same chunk count, repeating each
// track's constant (CBR) chunk.
struct ManifestRefresh {
  std::vector<std::vector<media::Chunk>> video_appends;
};

// Tuning knobs for LiveChunkDatabase. Namespace-scope (not nested) so it is
// a complete type when used as a defaulted constructor argument.
struct LiveDbOptions {
  // Pool the compaction rebuild shards over; null builds serially.
  ThreadPool* pool = nullptr;
  // Shard count for compaction rebuilds (DbBuildOptions::shards).
  int build_shards = 0;
  // Delta size (in chunks) at which a refresh triggers compaction. 0
  // compacts after every refresh; SIZE_MAX never compacts automatically.
  size_t compact_after_delta_chunks = 4096;
  // Run triggered compactions on `pool` in the background (publishes when
  // done); false compacts inline inside ApplyRefresh before it returns.
  // Ignored (treated as false) when `pool` is null.
  bool background_compaction = true;
};

// Thread-safe owner of the evolving database. All members are safe to call
// concurrently; writers (ApplyRefresh / CompactNow) serialize among
// themselves, readers (Acquire and everything on a DbSnapshot) never block.
class LiveChunkDatabase {
 public:
  using Options = LiveDbOptions;

  // Builds the initial full snapshot (epoch 0) from a copy of `initial`.
  // Throws std::invalid_argument if the video tracks have non-uniform lengths
  // or the manifest exceeds the packed-ref limits (4096 tracks, 2^20
  // positions).
  explicit LiveChunkDatabase(const media::Manifest& initial, Options options = {});
  ~LiveChunkDatabase();

  LiveChunkDatabase(const LiveChunkDatabase&) = delete;
  LiveChunkDatabase& operator=(const LiveChunkDatabase&) = delete;

  // The current published snapshot. O(1); never blocks on writers beyond the
  // pointer-swap critical section.
  DbSnapshot Acquire() const;

  // Appends `refresh` to the live manifest, publishes a new snapshot (epoch +
  // 1), and returns it. May trigger a compaction per Options. Throws
  // std::invalid_argument on ragged appends or track-count mismatch; the
  // database is unchanged in that case.
  DbSnapshot ApplyRefresh(const ManifestRefresh& refresh);

  // Waits for any in-flight background compaction, then compacts the current
  // delta inline (no-op when the delta is empty) and returns the resulting
  // snapshot.
  DbSnapshot CompactNow();

  // Blocks until the background compaction that was in flight (if any)
  // published. Propagates an exception the compaction threw.
  void WaitForCompaction();

  uint64_t epoch() const { return Current()->epoch; }
  size_t delta_chunks() const { return Current()->delta.size(); }
  int num_video_tracks() const { return num_tracks_; }
  int num_positions() const { return Current()->num_positions; }

 private:
  std::shared_ptr<const internal::SnapshotRep> Current() const;
  // Swaps in `rep` as the current snapshot and records publish telemetry.
  void Publish(std::shared_ptr<const internal::SnapshotRep> rep);
  // Builds a full ChunkDatabase from `manifest_version` and splices it in as
  // the new base. Skipped (stale) if a newer base already covers as much.
  void CompactFrom(std::shared_ptr<const media::Manifest> manifest_version);
  // Called under writer_mu_; starts a background compaction of the current
  // manifest version unless one is already running.
  void StartBackgroundCompaction(std::shared_ptr<const media::Manifest> manifest_version);

  Options options_;
  int num_tracks_ = 0;
  // Process-unique id shared by every state this database publishes; cache
  // layers use it to know two snapshots differ only by appends.
  uint64_t lineage_id_ = 0;

  // Guards `current_` only; held for pointer swaps, never while building.
  mutable std::mutex state_mu_;
  std::shared_ptr<const internal::SnapshotRep> current_;

  // Serializes writers (refresh publishes and compaction splices).
  std::mutex writer_mu_;

  // Background compaction bookkeeping.
  std::mutex compaction_mu_;
  std::future<void> compaction_;
  std::atomic<bool> compaction_running_{false};
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_LIVE_DATABASE_H_
