#include "src/csi/size_estimator.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "src/common/simd.h"

namespace csi::infer {
namespace {

// Two uplink TCP data packets closer than this are segments of one request
// message (requests themselves are separated by at least a response RTT).
constexpr TimeUs kRequestMergeGap = 25 * kUsPerMs;

// First-occurrence flags for downlink data packets of an HTTPS flow
// (duplicate TCP sequence numbers = retransmissions, removed per §3.2).
std::vector<bool> FirstOccurrenceDownlink(const std::vector<capture::PacketRecord>& flow) {
  std::vector<bool> first(flow.size(), false);
  std::set<uint64_t> seen;
  for (size_t i = 0; i < flow.size(); ++i) {
    const auto& p = flow[i];
    if (p.from_client || p.payload <= 0) {
      continue;
    }
    first[i] = seen.insert(p.tcp_seq).second;
  }
  return first;
}

// Per-thread scratch for the columnar path: candidate indices from the SIMD
// prefilter, the QUIC effective-payload column, and data-packet masks. Reused
// across calls so the cold batch loop does not churn the allocator.
struct ColumnScratch {
  std::vector<uint32_t> indices;
  std::vector<int64_t> eff;
  std::vector<uint8_t> mask;
};

ColumnScratch& Scratch() {
  static thread_local ColumnScratch scratch;
  return scratch;
}

// First-occurrence mask over a flow view: mask[i] = 1 exactly when packet i is
// the first downlink data packet with its TCP sequence number (same flags the
// AoS FirstOccurrenceDownlink computes, as 0/1 bytes for the SIMD kernels).
void FirstOccurrenceMask(const capture::FlowView& flow,
                         std::vector<uint8_t>* mask) {
  const size_t n = flow.size();
  mask->assign(n, 0);
  const uint8_t* dir = flow.from_client();
  const int64_t* payload = flow.payloads();
  const uint64_t* seq = flow.tcp_seqs();
  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < n; ++i) {
    if (dir[i] != 0 || payload[i] <= 0) {
      continue;
    }
    (*mask)[i] = seen.insert(seq[i]).second ? 1 : 0;
  }
}

}  // namespace

std::vector<DetectedRequest> DetectRequests(const std::vector<capture::PacketRecord>& flow,
                                            bool quic) {
  std::vector<DetectedRequest> requests;
  if (quic) {
    for (const auto& p : flow) {
      if (p.from_client && p.payload >= kQuicRequestThreshold) {
        requests.push_back(DetectedRequest{p.timestamp, !p.sni.empty()});
      }
    }
    return requests;
  }
  // HTTPS: uplink packets with payload, de-duplicated by sequence number and
  // merged when contiguous in sequence and near-simultaneous (multi-segment
  // request messages).
  std::set<uint64_t> seen;
  uint64_t last_end_seq = 0;
  TimeUs last_time = -kUsPerSec;
  bool last_sni = false;
  bool have_last = false;
  for (const auto& p : flow) {
    if (!p.from_client || p.payload <= 0) {
      continue;
    }
    if (!seen.insert(p.tcp_seq).second) {
      continue;  // retransmission
    }
    const bool contiguous = have_last && p.tcp_seq == last_end_seq;
    const bool near = p.timestamp - last_time <= kRequestMergeGap;
    if (contiguous && near) {
      // Continuation of the previous request message.
      last_end_seq = p.tcp_seq + static_cast<uint64_t>(p.payload);
      last_time = p.timestamp;
      if (!p.sni.empty()) {
        requests.back().carries_sni = true;
      }
      continue;
    }
    requests.push_back(DetectedRequest{p.timestamp, !p.sni.empty()});
    last_end_seq = p.tcp_seq + static_cast<uint64_t>(p.payload);
    last_time = p.timestamp;
    last_sni = !p.sni.empty();
    have_last = true;
  }
  (void)last_sni;
  return requests;
}

Bytes EstimateDownlinkBytes(const std::vector<capture::PacketRecord>& flow, bool quic,
                            TimeUs begin, TimeUs end) {
  Bytes total = 0;
  if (quic) {
    for (const auto& p : flow) {
      if (p.from_client || p.payload <= 0) {
        continue;
      }
      if (p.timestamp <= begin || (end >= 0 && p.timestamp > end)) {
        continue;
      }
      total += std::max<Bytes>(p.payload - net::kQuicHeaderBytes, 0);
    }
    return total;
  }
  const std::vector<bool> first = FirstOccurrenceDownlink(flow);
  for (size_t i = 0; i < flow.size(); ++i) {
    if (!first[i]) {
      continue;
    }
    const auto& p = flow[i];
    if (p.timestamp <= begin || (end >= 0 && p.timestamp > end)) {
      continue;
    }
    total += p.payload;
  }
  return total;
}

std::vector<EstimatedExchange> EstimateExchanges(const std::vector<capture::PacketRecord>& flow,
                                                 bool quic) {
  const std::vector<DetectedRequest> requests = DetectRequests(flow, quic);
  std::vector<EstimatedExchange> exchanges;
  exchanges.reserve(requests.size());
  const std::vector<bool> first =
      quic ? std::vector<bool>() : FirstOccurrenceDownlink(flow);
  for (size_t r = 0; r < requests.size(); ++r) {
    const TimeUs begin = requests[r].time;
    const TimeUs end = r + 1 < requests.size() ? requests[r + 1].time : -1;
    EstimatedExchange ex;
    ex.request_time = begin;
    ex.last_data_time = begin;
    ex.carries_sni = requests[r].carries_sni;
    for (size_t i = 0; i < flow.size(); ++i) {
      const auto& p = flow[i];
      if (p.from_client || p.payload <= 0) {
        continue;
      }
      if (p.timestamp <= begin || (end >= 0 && p.timestamp > end)) {
        continue;
      }
      if (quic) {
        ex.estimated_size += std::max<Bytes>(p.payload - net::kQuicHeaderBytes, 0);
      } else {
        if (!first[i]) {
          continue;
        }
        ex.estimated_size += p.payload;
      }
      ex.last_data_time = std::max(ex.last_data_time, p.timestamp);
    }
    exchanges.push_back(ex);
  }
  return exchanges;
}

std::vector<DetectedRequest> DetectRequests(const capture::FlowView& flow,
                                            bool quic) {
  const size_t n = flow.size();
  const int64_t* ts = flow.timestamps();
  const int64_t* payload = flow.payloads();
  const uint8_t* dir = flow.from_client();
  ColumnScratch& scratch = Scratch();
  scratch.indices.resize(n);
  std::vector<DetectedRequest> requests;
  if (quic) {
    // Uplink packets at or above the request threshold, straight from the
    // SIMD boundary scan.
    const size_t hits = simd::CollectIndices(
        dir, 1, payload, kQuicRequestThreshold, n, scratch.indices.data());
    requests.reserve(hits);
    for (size_t h = 0; h < hits; ++h) {
      const uint32_t i = scratch.indices[h];
      requests.push_back(DetectedRequest{ts[i], flow.has_sni(i)});
    }
    return requests;
  }
  // HTTPS: SIMD prefilter to uplink data packets, then the same stateful
  // dedup/merge walk as the AoS path over the (few) candidates.
  const size_t hits =
      simd::CollectIndices(dir, 1, payload, 1, n, scratch.indices.data());
  const uint64_t* seq = flow.tcp_seqs();
  std::unordered_set<uint64_t> seen;
  uint64_t last_end_seq = 0;
  TimeUs last_time = -kUsPerSec;
  bool have_last = false;
  for (size_t h = 0; h < hits; ++h) {
    const uint32_t i = scratch.indices[h];
    if (!seen.insert(seq[i]).second) {
      continue;  // retransmission
    }
    const bool contiguous = have_last && seq[i] == last_end_seq;
    const bool near = ts[i] - last_time <= kRequestMergeGap;
    if (contiguous && near) {
      last_end_seq = seq[i] + static_cast<uint64_t>(payload[i]);
      last_time = ts[i];
      if (flow.has_sni(i)) {
        requests.back().carries_sni = true;
      }
      continue;
    }
    requests.push_back(DetectedRequest{ts[i], flow.has_sni(i)});
    last_end_seq = seq[i] + static_cast<uint64_t>(payload[i]);
    last_time = ts[i];
    have_last = true;
  }
  return requests;
}

Bytes EstimateDownlinkBytes(const capture::FlowView& flow, bool quic,
                            TimeUs begin, TimeUs end) {
  const size_t n = flow.size();
  const int64_t* ts = flow.timestamps();
  const int64_t* payload = flow.payloads();
  const uint8_t* dir = flow.from_client();
  ColumnScratch& scratch = Scratch();
  scratch.eff.resize(n);
  if (quic) {
    // max(payload - header, 0) is already 0 for uplink and non-data packets,
    // so one masked transform plus one windowed sum reproduces the AoS loop.
    simd::MaskedQuicPayload(dir, payload, n, net::kQuicHeaderBytes,
                            scratch.eff.data());
  } else {
    FirstOccurrenceMask(flow, &scratch.mask);
    for (size_t i = 0; i < n; ++i) {
      scratch.eff[i] = scratch.mask[i] != 0 ? payload[i] : 0;
    }
  }
  return simd::SumInWindow(ts, scratch.eff.data(), n, begin, end);
}

std::vector<EstimatedExchange> EstimateExchanges(const capture::FlowView& flow,
                                                 bool quic) {
  const std::vector<DetectedRequest> requests = DetectRequests(flow, quic);
  const size_t n = flow.size();
  const int64_t* ts = flow.timestamps();
  const int64_t* payload = flow.payloads();
  const uint8_t* dir = flow.from_client();
  ColumnScratch& scratch = Scratch();
  scratch.eff.resize(n);
  if (quic) {
    simd::MaskedQuicPayload(dir, payload, n, net::kQuicHeaderBytes,
                            scratch.eff.data());
    // The AoS loop advances last_data_time for every downlink data packet in
    // the window, even when the header strip leaves 0 bytes — so the time
    // mask is downlink && payload > 0, independent of the size column.
    scratch.mask.resize(n);
    for (size_t i = 0; i < n; ++i) {
      scratch.mask[i] = (dir[i] == 0 && payload[i] > 0) ? 1 : 0;
    }
  } else {
    // HTTPS counts (and timestamps) first-occurrence downlink packets only.
    FirstOccurrenceMask(flow, &scratch.mask);
    for (size_t i = 0; i < n; ++i) {
      scratch.eff[i] = scratch.mask[i] != 0 ? payload[i] : 0;
    }
  }
  std::vector<EstimatedExchange> exchanges;
  exchanges.reserve(requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    const TimeUs begin = requests[r].time;
    const TimeUs end = r + 1 < requests.size() ? requests[r + 1].time : -1;
    EstimatedExchange ex;
    ex.request_time = begin;
    ex.carries_sni = requests[r].carries_sni;
    ex.estimated_size = simd::SumInWindow(ts, scratch.eff.data(), n, begin, end);
    const int64_t last =
        simd::MaxTsInWindow(ts, scratch.mask.data(), n, begin, end);
    ex.last_data_time = last == INT64_MIN ? begin : last;
    exchanges.push_back(ex);
  }
  return exchanges;
}

}  // namespace csi::infer
