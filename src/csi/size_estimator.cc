#include "src/csi/size_estimator.h"

#include <algorithm>
#include <set>

namespace csi::infer {
namespace {

// Two uplink TCP data packets closer than this are segments of one request
// message (requests themselves are separated by at least a response RTT).
constexpr TimeUs kRequestMergeGap = 25 * kUsPerMs;

// First-occurrence flags for downlink data packets of an HTTPS flow
// (duplicate TCP sequence numbers = retransmissions, removed per §3.2).
std::vector<bool> FirstOccurrenceDownlink(const std::vector<capture::PacketRecord>& flow) {
  std::vector<bool> first(flow.size(), false);
  std::set<uint64_t> seen;
  for (size_t i = 0; i < flow.size(); ++i) {
    const auto& p = flow[i];
    if (p.from_client || p.payload <= 0) {
      continue;
    }
    first[i] = seen.insert(p.tcp_seq).second;
  }
  return first;
}

}  // namespace

std::vector<DetectedRequest> DetectRequests(const std::vector<capture::PacketRecord>& flow,
                                            bool quic) {
  std::vector<DetectedRequest> requests;
  if (quic) {
    for (const auto& p : flow) {
      if (p.from_client && p.payload >= kQuicRequestThreshold) {
        requests.push_back(DetectedRequest{p.timestamp, !p.sni.empty()});
      }
    }
    return requests;
  }
  // HTTPS: uplink packets with payload, de-duplicated by sequence number and
  // merged when contiguous in sequence and near-simultaneous (multi-segment
  // request messages).
  std::set<uint64_t> seen;
  uint64_t last_end_seq = 0;
  TimeUs last_time = -kUsPerSec;
  bool last_sni = false;
  bool have_last = false;
  for (const auto& p : flow) {
    if (!p.from_client || p.payload <= 0) {
      continue;
    }
    if (!seen.insert(p.tcp_seq).second) {
      continue;  // retransmission
    }
    const bool contiguous = have_last && p.tcp_seq == last_end_seq;
    const bool near = p.timestamp - last_time <= kRequestMergeGap;
    if (contiguous && near) {
      // Continuation of the previous request message.
      last_end_seq = p.tcp_seq + static_cast<uint64_t>(p.payload);
      last_time = p.timestamp;
      if (!p.sni.empty()) {
        requests.back().carries_sni = true;
      }
      continue;
    }
    requests.push_back(DetectedRequest{p.timestamp, !p.sni.empty()});
    last_end_seq = p.tcp_seq + static_cast<uint64_t>(p.payload);
    last_time = p.timestamp;
    last_sni = !p.sni.empty();
    have_last = true;
  }
  (void)last_sni;
  return requests;
}

Bytes EstimateDownlinkBytes(const std::vector<capture::PacketRecord>& flow, bool quic,
                            TimeUs begin, TimeUs end) {
  Bytes total = 0;
  if (quic) {
    for (const auto& p : flow) {
      if (p.from_client || p.payload <= 0) {
        continue;
      }
      if (p.timestamp <= begin || (end >= 0 && p.timestamp > end)) {
        continue;
      }
      total += std::max<Bytes>(p.payload - net::kQuicHeaderBytes, 0);
    }
    return total;
  }
  const std::vector<bool> first = FirstOccurrenceDownlink(flow);
  for (size_t i = 0; i < flow.size(); ++i) {
    if (!first[i]) {
      continue;
    }
    const auto& p = flow[i];
    if (p.timestamp <= begin || (end >= 0 && p.timestamp > end)) {
      continue;
    }
    total += p.payload;
  }
  return total;
}

std::vector<EstimatedExchange> EstimateExchanges(const std::vector<capture::PacketRecord>& flow,
                                                 bool quic) {
  const std::vector<DetectedRequest> requests = DetectRequests(flow, quic);
  std::vector<EstimatedExchange> exchanges;
  exchanges.reserve(requests.size());
  const std::vector<bool> first =
      quic ? std::vector<bool>() : FirstOccurrenceDownlink(flow);
  for (size_t r = 0; r < requests.size(); ++r) {
    const TimeUs begin = requests[r].time;
    const TimeUs end = r + 1 < requests.size() ? requests[r + 1].time : -1;
    EstimatedExchange ex;
    ex.request_time = begin;
    ex.last_data_time = begin;
    ex.carries_sni = requests[r].carries_sni;
    for (size_t i = 0; i < flow.size(); ++i) {
      const auto& p = flow[i];
      if (p.from_client || p.payload <= 0) {
        continue;
      }
      if (p.timestamp <= begin || (end >= 0 && p.timestamp > end)) {
        continue;
      }
      if (quic) {
        ex.estimated_size += std::max<Bytes>(p.payload - net::kQuicHeaderBytes, 0);
      } else {
        if (!first[i]) {
          continue;
        }
        ex.estimated_size += p.payload;
      }
      ex.last_data_time = std::max(ex.last_data_time, p.timestamp);
    }
    exchanges.push_back(ex);
  }
  return exchanges;
}

}  // namespace csi::infer
