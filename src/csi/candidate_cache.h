// Shared snapshot-keyed cache of ranked group-candidate sets.
//
// The SQ group search dominates per-trace inference cost, and a batch of
// captures from the same service re-enumerates identical (group signature,
// start range) candidate sets thousands of times — every trace, every
// engine session, every --follow-manifests repeat starts cold.
// GroupCandidateCache is the cross-trace/cross-session amortization layer: a
// sharded, concurrent, byte-budgeted cache mapping
//
//   (database lineage, interned config+display context,
//    request count, estimated total bytes, canonical start range)
//
// to the immutable ranked output of EnumerateGroupCandidateSet. The key
// canonicalizes exactly what the enumeration depends on, so structurally
// identical groups from different captures hit.
//
// Snapshot awareness (the part that makes --follow-manifests warm-start):
// entries are NOT dropped wholesale when a LiveChunkDatabase publishes.
// Within one lineage, refreshes only ever append positions — existing chunk
// sizes never change and audio is CBR — so an entry computed at state A stays
// byte-identical at a later state B unless one of the appended chunks could
// have entered the enumeration's output. Each entry therefore records the
// state it was computed at plus the *size hulls* of its object splits, and is
// lazily revalidated on first access under a newer state with one
// DbSnapshot::DeltaHasSizeInWindow probe (O(log delta)): if no appended
// chunk's size intersects the hull, the DFS would have pruned every run
// touching the new positions before expanding a single node and the
// single-chunk index filter excludes them outright, so the cached output is
// the output — and the entry is re-anchored to B (O(1) checks from then on,
// transitive across refreshes). Compaction past the entry's refresh point
// folds the appends into the base where they can no longer be probed; such
// entries conservatively invalidate.
//
// Hits return a shared_ptr to an immutable GroupCandidateSet — readers never
// copy candidate vectors and never block behind a publish. Eviction is
// per-shard second-chance (clock) over a byte budget via the shared
// ShardedClockStore (cache_common.h); an entry's cost is the heap footprint
// of its candidate vectors. Force-off escape hatches: CSI_CANDIDATE_CACHE=off
// or the unified CSI_CACHE=candidate:off turn every lookup into a miss and
// every insert into a no-op, for A/B runs and bypass-path CI.

#ifndef CSI_SRC_CSI_CANDIDATE_CACHE_H_
#define CSI_SRC_CSI_CANDIDATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/csi/cache_common.h"
#include "src/csi/db_snapshot.h"
#include "src/csi/group_search.h"
#include "src/csi/path_search.h"

namespace csi::infer {

// Immutable ranked output of one (group, start range) enumeration: the
// candidates plus whether a cap truncated them. Shared by pointer between the
// cache and every searcher that hits it.
struct GroupCandidateSet {
  std::vector<GroupCandidate> candidates;
  bool truncated = false;
};

// Size hulls of the object splits an enumeration ran with, recorded per entry
// for cross-state revalidation. All windows are on *true video byte sums*.
struct CandidateSetHull {
  // True when some split asks for at least one video chunk. Entries without
  // any video split never touch the position axis and revalidate trivially.
  bool has_video_split = false;
  // Largest video run length any split asks for.
  int v_max = 0;
  // Hull of the single-chunk (v == 1) split windows: a chunk whose size lies
  // outside [hull1_lo, hull1_hi] can never become a new single-chunk
  // candidate.
  bool has_v1 = false;
  Bytes hull1_lo = 0;
  Bytes hull1_hi = 0;
  // Max upper bound over multi-chunk (v >= 2) split windows: an appended
  // chunk with size > hull2_hi makes every run through it prunable
  // (MinSum > video_hi) before the DFS expands a node.
  Bytes hull2_hi = 0;
  // Max upper bound over all video splits (v >= 1).
  Bytes hull_all_hi = 0;
};

class GroupCandidateCache {
 public:
  // Canonical "up to the live edge" upper start bound: a caller whose raw
  // start_hi reaches its snapshot's last position stores/looks up under this
  // sentinel, so chain-root ranges hit across refreshes that move the edge.
  static constexpr int kOpenHi = std::numeric_limits<int>::max();
  static constexpr int kDefaultShards = 16;
  // Per-start DFS budget floor, mirroring group_search.cc's enumeration. The
  // growth-range revalidation (here and in the result cache) leans on budgets
  // flooring identically at both states.
  static constexpr int64_t kPerStartNodeFloor = 1 << 16;

  // Unified stats block shared by every cache tier (cache_common.h).
  using Stats = CacheStats;

  // Everything a cache key needs. Build one with MakeQuery so the start range
  // is canonicalized consistently.
  struct Query {
    uint64_t lineage = 0;
    uint32_t context = 0;
    int requests = 0;
    Bytes estimated_total = 0;
    int start_lo = 0;
    int start_hi = 0;

    friend bool operator==(const Query&, const Query&) = default;
  };

  explicit GroupCandidateCache(size_t budget_bytes, int shards = kDefaultShards);

  GroupCandidateCache(const GroupCandidateCache&) = delete;
  GroupCandidateCache& operator=(const GroupCandidateCache&) = delete;

  // True when CSI_CANDIDATE_CACHE=off|OFF|0|none or the unified
  // CSI_CACHE=candidate:off override forces the cache out of the picture
  // (environment checked once per process), or a test forced it via
  // ForceEnvOffForTest. Enumeration treats the cache as absent; a constructed
  // cache stays empty.
  static bool EnvForcesOff();
  // Recognizer behind the env override, exposed so tests can pin the accepted
  // spellings without re-execing under a modified environment.
  static bool IsOffValue(const std::string& value);
  // Test seam simulating CSI_CANDIDATE_CACHE=off in-process (the real env
  // read is cached in a static). Always reset to false before the test
  // returns.
  static void ForceEnvOffForTest(bool off);

  // Interns the enumeration-relevant subset of (config, display) and returns
  // a process-stable id (>= 1) for use in queries. Full structural equality —
  // never a lossy hash — so two contexts share an id only when every knob the
  // enumeration reads is identical. Cheap to call repeatedly; callers that
  // run many enumerations should still intern once up front.
  uint32_t InternContext(const GroupSearchConfig& config, const DisplayConstraints& display);

  // Canonicalizes a raw admissible start range against `db` and assembles the
  // key: lo clamps to 0, hi becomes kOpenHi when it reaches the snapshot's
  // last position.
  static Query MakeQuery(const DbSnapshot& db, uint32_t context, int requests,
                         Bytes estimated_total, int start_lo, int start_hi);

  // Returns the cached set when a valid entry exists for `query` under `db`'s
  // state, else null. An entry computed at an older state of the same lineage
  // is revalidated against `db`'s delta buffer (and re-anchored on success);
  // one that provably cannot be revalidated is dropped and counted as an
  // invalidation. `config` must be the config `query.context` was interned
  // from (its DFS budget feeds the growth-range check). On a hit, `hull_out`
  // (when non-null) receives the entry's recorded size hulls so the caller
  // can fold the skipped enumeration into the result-tier hull.
  std::shared_ptr<const GroupCandidateSet> Lookup(const Query& query, const DbSnapshot& db,
                                                  const GroupSearchConfig& config,
                                                  CandidateSetHull* hull_out = nullptr);

  // Publishes an enumeration result computed against `db`. Replaces any
  // existing entry for the key; sets larger than a whole shard's budget are
  // not admitted. No-op when the env forces the cache off.
  void Insert(const Query& query, const DbSnapshot& db, const CandidateSetHull& hull,
              std::shared_ptr<const GroupCandidateSet> set);

  // Drops every entry (stats survive). Test/bench seam for cold-start runs.
  void Clear();

  Stats stats() const;
  size_t budget_bytes() const { return store_.budget_bytes(); }
  int shards() const { return store_.shards(); }

 private:
  struct QueryHash {
    size_t operator()(const Query& q) const;
  };

  struct Entry {
    Query query;
    // Published state this entry's output is exact for; revalidation
    // re-anchors both fields forward.
    uint64_t state_id = 0;
    int positions_at = 0;
    CandidateSetHull hull;
    std::shared_ptr<const GroupCandidateSet> set;
    size_t bytes = 0;
    // Second-chance bit, guarded by the shard mutex.
    bool referenced = false;
  };

  // The interned enumeration-relevant context fields (see InternContext).
  struct Context {
    double k = 0.0;
    double expected_overhead = 0.0;
    Bytes expected_fixed_overhead = 0;
    int max_candidates_per_group = 0;
    int64_t max_dfs_nodes = 0;
    int max_group_requests = 0;
    int max_phantom_requests = 0;
    std::vector<Bytes> other_object_sizes;
    bool enable_wildcards = false;
    DisplayConstraints display;

    friend bool operator==(const Context&, const Context&) = default;
  };

  // True when the entry's output is byte-identical under `db`; re-anchors the
  // entry on success. Caller holds the shard mutex.
  static bool Revalidate(Entry& entry, const DbSnapshot& db, const GroupSearchConfig& config);
  static size_t ApproxBytes(const GroupCandidateSet& set);

  internal::ShardedClockStore<Query, Entry, QueryHash> store_;

  mutable std::mutex contexts_mu_;
  std::vector<Context> contexts_;

  // Lock-free tallies (bytes/entries live in the shards and are summed on
  // demand).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_CANDIDATE_CACHE_H_
