// CSI inference engine: encrypted capture -> candidate chunk sequences.
//
// Orchestrates the full pipeline of paper §5.3 for all four design types
// (Table 2): flow classification by SNI (Step 1.1), request detection and
// size estimation (Step 1.2; with SP1/SP2 traffic splitting for SQ), and the
// two-level candidate/graph search (Step 2). Optionally applies
// displayed-chunk constraints gathered from screen analysis (§4.2).

#ifndef CSI_SRC_CSI_INFERENCE_H_
#define CSI_SRC_CSI_INFERENCE_H_

#include <memory>
#include <string>

#include "src/capture/packet_columns.h"
#include "src/capture/packet_record.h"
#include "src/csi/audit.h"
#include "src/csi/chunk_database.h"
#include "src/csi/db_snapshot.h"
#include "src/csi/group_search.h"
#include "src/csi/path_search.h"
#include "src/csi/prefix_cache.h"
#include "src/csi/result_cache.h"
#include "src/csi/splitter.h"
#include "src/csi/types.h"

namespace csi::infer {

struct InferenceConfig {
  DesignType design = DesignType::kCH;
  // Hostname suffix identifying the service's media flows.
  std::string host_suffix;
  double k_https = 0.01;
  double k_quic = 0.05;
  // Calibrated overhead model for candidate ranking (§3.2 measurements):
  // TLS record framing + HTTP headers for HTTPS; QUIC frame headers +
  // undetectable retransmissions for QUIC.
  double expected_overhead_https = 0.0015;
  double expected_overhead_quic = 0.006;
  Bytes expected_fixed_overhead = 180;
  int max_sequences = 512;
  SplitterConfig splitter;
  int max_candidates_per_group = 5000;
  // Run the per-packet cold stages over the columnar (SoA) capture layout
  // with the SIMD column kernels. Output is byte-identical either way (the
  // cold-path differential test locks this in), so the knob is deliberately
  // excluded from the prefix/result cache contexts — cached entries are
  // interchangeable between layouts. Off = the legacy AoS reference path.
  bool use_columnar = true;
  // Ablation switches (see bench_ablation_robustness).
  bool enable_wildcards = true;
  bool enable_merge_repair = true;
  bool enable_phantom_deficit = true;
  bool enable_calibrated_ranking = true;
  // Sizes of known non-media objects (manifest etc.) for SQ group matching.
  // Auto-filled with the manifest size when empty.
  std::vector<Bytes> other_object_sizes;
  // Optional worker pool for the SQ candidate enumeration (see
  // GroupSearchConfig::pool). Results are identical with or without it.
  // Caller keeps the pool alive for the engine's lifetime.
  ThreadPool* search_pool = nullptr;
  // Optional pool + shard count for the ChunkDatabase build (see
  // DbBuildOptions). The pool is used only during engine construction; the
  // index is byte-identical for every pool/shard combination.
  ThreadPool* db_build_pool = nullptr;
  int db_build_shards = 0;
  // Deprecated alias of caches.candidate (see below); either spelling may be
  // set and the engine reconciles them at construction, a non-null alias
  // winning. Optional shared group-candidate result cache (candidate_cache.h)
  // consulted by the SQ enumeration. Shared ownership: several engines (or a
  // BatchAnalyzer plus standalone engines) may point at one cache and warm
  // each other up. Results are byte-identical with or without it. Null: no
  // cross-trace caching.
  std::shared_ptr<GroupCandidateCache> candidate_cache;
  // Deprecated alias of caches.prefix, reconciled like candidate_cache.
  // Optional shared analysis-prefix cache (see prefix_cache.h), consulted
  // before the per-packet stages (flow classification, size estimation,
  // traffic splitting). Keyed on a trace fingerprint + interned config
  // context, and snapshot-independent: entries stay valid across
  // UpdateSnapshot / LiveChunkDatabase publishes. Shared ownership like
  // candidate_cache; results are byte-identical with or without it. Null: the
  // prefix is recomputed per Analyze.
  std::shared_ptr<AnalysisPrefixCache> prefix_cache;
  // The unified cache block: one struct naming every tier, in pipeline order
  // from outermost to innermost. `result` (result_cache.h) memoizes whole
  // InferenceResults keyed on (trace fingerprint, config context, database
  // lineage) — a hit skips classification, splitting, enumeration and the
  // sequence search outright; calls with display constraints bypass it. All
  // three tiers are share-owned, optional, and byte-transparent: results are
  // identical with any subset attached. The legacy per-tier fields above
  // remain as aliases; after construction both spellings agree.
  struct Caches {
    std::shared_ptr<AnalysisPrefixCache> prefix;
    std::shared_ptr<GroupCandidateCache> candidate;
    std::shared_ptr<ResultCache> result;
  };
  Caches caches;
};

class InferenceEngine {
 public:
  // Primary constructor: the engine queries `snapshot` — an immutable,
  // epoch-tagged database version (see db_snapshot.h / live_database.h). The
  // snapshot's manifest fills config defaults (host suffix, manifest object
  // size).
  InferenceEngine(DbSnapshot snapshot, InferenceConfig config);

  // Deprecated adapter: builds a full database from `manifest` (caller keeps
  // it alive) using config's db_build_pool/db_build_shards, then behaves like
  // the snapshot constructor with that database at epoch 0.
  InferenceEngine(const media::Manifest* manifest, InferenceConfig config);

  // Runs the inference on a capture. `display` optionally carries
  // (index -> track) constraints from screen analysis. `audit`, when
  // non-null, is filled with the per-trace explanation record (see audit.h);
  // collecting it never changes the result.
  InferenceResult Analyze(const capture::CaptureTrace& trace,
                          const DisplayConstraints& display = {},
                          InferenceAudit* audit = nullptr) const;

  // Columnar entry point: analyzes a pre-built PacketColumns (see
  // capture/packet_columns.h) without ever touching an AoS trace — the
  // fingerprint mixes over the columns and the cold stages consume FlowViews.
  // Byte-identical to Analyze on the trace the columns were built from;
  // callers that analyze the same capture repeatedly (csi_batch --repeat,
  // --follow-manifests) build the columns once and skip the per-call
  // transpose entirely.
  InferenceResult Analyze(const capture::PacketColumns& columns,
                          const DisplayConstraints& display = {},
                          InferenceAudit* audit = nullptr) const;

  // Re-points the engine at a newer database version (e.g. after a
  // LiveChunkDatabase publish). Config stays frozen — defaults derived from
  // the construction-time manifest are not recomputed. NOT safe to call while
  // an Analyze is in flight on another thread: callers that fan Analyze out
  // (BatchAnalyzer) must quiesce first.
  void UpdateSnapshot(DbSnapshot snapshot);

  const DbSnapshot& snapshot() const { return snapshot_; }
  // Deprecated: the snapshot's base database (does not see the delta buffer).
  const ChunkDatabase& db() const { return snapshot_.base(); }
  const InferenceConfig& config() const { return config_; }

 private:
  // Shared tail of both constructors: config defaults derived from manifest_.
  void FinishConfig();
  // Shared body of both Analyze overloads: exactly one of trace/columns is
  // non-null. The fingerprint and (on a prefix-cache miss) the cold stages
  // run off whichever representation the caller provided; the trace flavor
  // transposes to columns lazily — only when the prefix actually has to be
  // recomputed — so warm cache hits never pay for a column build.
  InferenceResult AnalyzeImpl(const capture::CaptureTrace* trace,
                              const capture::PacketColumns* columns,
                              const DisplayConstraints& display,
                              InferenceAudit* audit) const;
  // The snapshot-independent front of Analyze: flow classification plus — for
  // the dominant media flow — SP1/SP2 traffic splitting (SQ) or SNI-filtered
  // per-exchange size estimation (pre-merge-repair). A pure function of
  // (capture, design, host_suffix, splitter); what the prefix cache memoizes.
  // Two byte-identical implementations: the legacy AoS walk (the differential
  // reference, reachable via use_columnar = false) and the columnar one.
  AnalysisPrefix ComputePrefixAoS(const capture::CaptureTrace& trace) const;
  AnalysisPrefix ComputePrefixColumns(
      const capture::PacketColumns& columns) const;
  // True if `estimate` satisfies Property (1) for some video chunk, audio
  // chunk, or known non-media object.
  bool MatchesSomething(Bytes estimate, double k) const;
  // Repairs exchanges split in two by retransmitted QUIC request packets.
  void MergePhantomSplits(std::vector<EstimatedExchange>* exchanges, double k) const;

  const media::Manifest* manifest_;
  InferenceConfig config_;
  DbSnapshot snapshot_;
  // Interned prefix-cache context id for this engine's (design, host_suffix,
  // splitter) triple; 0 when no prefix cache is attached.
  uint32_t prefix_context_ = 0;
  // Interned result-cache context id for this engine's full result-relevant
  // config; 0 when no result cache is attached.
  uint32_t result_context_ = 0;
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_INFERENCE_H_
