// Common machinery behind the three cache tiers (prefix / candidate /
// result): the unified budget/enable knob, the shared stats block and its
// summary formatter, the CSI_CACHE env override, and the sharded
// second-chance (clock) store that used to be copy-pasted between
// prefix_cache.cc and candidate_cache.cc.
//
// Each tier keeps its own Query/Entry/Lookup semantics (the prefix cache has
// no revalidation, the candidate and result caches revalidate against the
// snapshot delta buffer); what lives here is everything that must behave
// identically across tiers so operators see one coherent cache surface.

#ifndef CSI_SRC_CSI_CACHE_COMMON_H_
#define CSI_SRC_CSI_CACHE_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace csi::infer {

// Budget/enable knob for one cache tier — the unit of the unified `caches`
// block in InferenceConfig/BatchConfig and of the `--cache` / `--cache-mb`
// tool flags. `enabled == false` beats any budget.
struct CacheOptions {
  int budget_mb = 0;
  bool enabled = true;

  int effective_budget_mb() const { return enabled ? budget_mb : 0; }

  friend bool operator==(const CacheOptions&, const CacheOptions&) = default;
};

// Unified stats block every cache tier reports. Tiers without a revalidation
// step simply leave `invalidations` at zero.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  // Entries dropped because a newer state's appends (or a compaction that hid
  // them) could have changed their output.
  uint64_t invalidations = 0;
  uint64_t bytes = 0;
  uint64_t entries = 0;
  uint64_t contexts = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_ratio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// The one summary line per tier both csi_batch and csi_analyze print.
inline std::string FormatCacheSummary(const std::string& name, const CacheStats& stats) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s cache: %.1f%% hit ratio (%llu hit(s), %llu miss(es)), "
                "%llu invalidation(s), %llu eviction(s), %.1f MiB in %llu entries",
                name.c_str(), 100.0 * stats.hit_ratio(),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.invalidations),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<double>(stats.bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(stats.entries));
  return buffer;
}

// The "off" spellings every cache env override accepts.
inline bool CacheOffSpelling(const std::string& value) {
  return value == "off" || value == "OFF" || value == "0" || value == "none";
}

// True when CSI_CACHE disables the named tier. The value is a comma-separated
// list of <name>:off entries (= also accepted as the separator), e.g.
// CSI_CACHE=prefix:off,result:off; <name> is prefix, candidate, result, or
// all. Reads the environment on every call — the per-cache EnvForcesOff
// wrappers latch the result in a function-local static.
inline bool CsiCacheEnvDisables(const char* name) {
  const char* env = std::getenv("CSI_CACHE");
  if (env == nullptr) {
    return false;
  }
  const std::string spec(env);
  const std::string want(name);
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string token = spec.substr(pos, comma - pos);
    size_t sep = token.find(':');
    if (sep == std::string::npos) {
      sep = token.find('=');
    }
    if (sep != std::string::npos) {
      const std::string key = token.substr(0, sep);
      if ((key == want || key == "all") && CacheOffSpelling(token.substr(sep + 1))) {
        return true;
      }
    }
    pos = comma + 1;
  }
  return false;
}

namespace internal {

// Sharded second-chance (clock) store over a byte budget. Entry must expose
// `query`, `bytes` and `referenced` fields; Lookup-side semantics (plain hit,
// delta revalidation, eager invalidation drops) stay in each cache, which
// locks the shard it gets from ShardFor and walks index/entries directly.
template <typename Query, typename Entry, typename Hash>
class ShardedClockStore {
 public:
  struct Shard {
    mutable std::mutex mu;
    // Clock order: front is next eviction victim; a referenced victim gets
    // its bit cleared and one more trip to the back.
    std::list<Entry> entries;
    std::unordered_map<Query, typename std::list<Entry>::iterator, Hash> index;
    size_t bytes = 0;
  };

  ShardedClockStore(size_t budget_bytes, int shards) : budget_bytes_(budget_bytes) {
    const int n = std::max(shards, 1);
    shard_budget_ = budget_bytes_ / static_cast<size_t>(n);
    shards_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ShardedClockStore(const ShardedClockStore&) = delete;
  ShardedClockStore& operator=(const ShardedClockStore&) = delete;

  Shard& ShardFor(const Query& query) {
    const size_t h = Hash{}(query);
    // The map consumes the low bits; pick the shard from the high ones.
    return *shards_[(h >> 17) % shards_.size()];
  }

  // Publishes `entry`, replacing any existing entry for its key, then runs
  // the clock sweep. Returns the number of entries evicted, or -1 when the
  // entry is bigger than a whole shard's budget and was refused.
  int64_t InsertAndEvict(Entry entry) {
    if (entry.bytes > shard_budget_) {
      return -1;  // would evict a whole shard and still not fit
    }
    Shard& shard = ShardFor(entry.query);
    int64_t evicted = 0;
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(entry.query);
    if (it != shard.index.end()) {
      // Replace in place (a racing thread recomputed the same key, or a
      // fresher state supersedes a stale entry).
      shard.bytes -= it->second->bytes;
      shard.entries.erase(it->second);
      shard.index.erase(it);
    }
    shard.bytes += entry.bytes;
    const Query query = entry.query;
    shard.entries.push_back(std::move(entry));
    shard.index.emplace(query, std::prev(shard.entries.end()));
    while (shard.bytes > shard_budget_ && shard.entries.size() > 1) {
      Entry& victim = shard.entries.front();
      if (victim.referenced) {
        victim.referenced = false;
        shard.entries.splice(shard.entries.end(), shard.entries, shard.entries.begin());
        shard.index[victim.query] = std::prev(shard.entries.end());
        continue;
      }
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.query);
      shard.entries.pop_front();
      ++evicted;
    }
    return evicted;
  }

  // Drops every entry (caller-side stats survive).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->entries.clear();
      shard->index.clear();
      shard->bytes = 0;
    }
  }

  // Adds the live per-shard byte/entry totals into `stats`.
  void AccumulateShards(CacheStats* stats) const {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      stats->bytes += shard->bytes;
      stats->entries += shard->entries.size();
    }
  }

  size_t budget_bytes() const { return budget_bytes_; }
  size_t shard_budget() const { return shard_budget_; }
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  size_t budget_bytes_ = 0;
  size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace internal

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_CACHE_COMMON_H_
