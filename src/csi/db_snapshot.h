// Snapshot-versioned view of the chunk database.
//
// A DbSnapshot is the handle every searcher queries: an immutable, epoch-
// tagged view of the fingerprint dictionary, pinned by shared_ptr so a reader
// that acquired it keeps exactly that version until it finishes — publishes
// and compactions happening concurrently (see live_database.h) never block or
// mutate it (RCU-style readers).
//
// A snapshot is a *base* ChunkDatabase (the flat SIMD-scanned size index)
// plus a small sorted delta buffer of (size, packed ref) entries appended by
// live-manifest refreshes after the base was built. Queries binary-narrow the
// base index as before and merge the delta window in (size, ref) order, so
// the candidate lists are byte-identical to a full rebuild at the same
// refresh point — the determinism contract locked in by
// tests/live_database_test.cc.
//
// Deprecated adapter: DbSnapshot is implicitly constructible from
// `const ChunkDatabase&` (non-owning, epoch 0, empty delta), so code written
// against the old `const ChunkDatabase&` API keeps compiling while call sites
// migrate.

#ifndef CSI_SRC_CSI_DB_SNAPSHOT_H_
#define CSI_SRC_CSI_DB_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/csi/chunk_database.h"
#include "src/media/manifest.h"

namespace csi::infer {

namespace internal {

// One flat-index slot appended after the snapshot's base was built. Ordered
// by (size, packed) — the same strict total order as the base index, so a
// merge of base window and delta window reproduces the full-build order.
struct DeltaEntry {
  Bytes size = 0;
  uint32_t packed = 0;

  friend bool operator<(const DeltaEntry& a, const DeltaEntry& b) {
    if (a.size != b.size) {
      return a.size < b.size;
    }
    return a.packed < b.packed;
  }
};

// The immutable state one snapshot pins. Built once by LiveChunkDatabase (or
// the adapters below) and never mutated afterwards; concurrent readers share
// it freely.
struct SnapshotRep {
  // Manifest version this snapshot describes. Null only for the deprecated
  // non-owning adapter, where base->manifest() is the caller's manifest.
  std::shared_ptr<const media::Manifest> manifest_version;
  // Manifest version `base` was built from (kept alive because the base holds
  // a raw pointer into it). May lag manifest_version by the delta appends.
  std::shared_ptr<const media::Manifest> base_manifest;
  std::shared_ptr<const ChunkDatabase> owned_base;
  // Always valid; == owned_base.get() unless the rep is a non-owning view.
  const ChunkDatabase* base = nullptr;
  // Entries appended after `base` was built, sorted by (size, packed). All
  // packed refs name positions >= base->num_positions(), so base and delta
  // are disjoint.
  std::vector<DeltaEntry> delta;
  // Per appended position p (absolute index base->num_positions() + r):
  // min/max video chunk size across tracks.
  std::vector<Bytes> delta_min_at;
  std::vector<Bytes> delta_max_at;
  // Position-major sizes of appended chunks:
  // delta_size_of[r * num_tracks + t] is the size of chunk (t, base_pos + r).
  std::vector<Bytes> delta_size_of;
  // Constant per-track audio chunk sizes at this version (audio is CBR).
  std::vector<Bytes> audio_sizes;
  int num_positions = 0;
  uint64_t epoch = 0;
  // Process-unique id of this published state: two reps never share one, and
  // SameStateAs equality implies state-id equality. Cache keys use it instead
  // of the rep pointer (pointers can be reused after a rep dies).
  uint64_t state_id = 0;
  // Process-unique id of the evolving database this state belongs to (one per
  // LiveChunkDatabase; standalone full-build reps get their own). Two states
  // of the same lineage differ only by appends — positions are never resized
  // or resized downward and existing chunk sizes never change — which is what
  // makes cross-state cache revalidation sound (see candidate_cache.h).
  uint64_t lineage_id = 0;
};

// Next process-unique snapshot state id (atomic counter, starts at 1).
uint64_t NextSnapshotStateId();

}  // namespace internal

// Value-semantic handle over one immutable database version. Cheap to copy
// (one shared_ptr); safe to share across threads once constructed. All query
// methods mirror ChunkDatabase and require a non-empty handle.
class DbSnapshot {
 public:
  DbSnapshot() = default;  // empty handle; valid() is false

  // Deprecated adapter: non-owning view of a caller-kept database, epoch 0,
  // no delta. Implicit on purpose so `const ChunkDatabase&` call sites keep
  // compiling during the migration. The database must outlive the snapshot.
  // NOLINTNEXTLINE(google-explicit-constructor)
  DbSnapshot(const ChunkDatabase& db);

  // Owning snapshot of a full database (no delta). The snapshot keeps the
  // database alive; `epoch` tags it for cache keying.
  explicit DbSnapshot(std::shared_ptr<const ChunkDatabase> db, uint64_t epoch = 0);

  // Internal: wraps a prebuilt rep (LiveChunkDatabase publishes these).
  explicit DbSnapshot(std::shared_ptr<const internal::SnapshotRep> rep)
      : rep_(std::move(rep)) {}

  bool valid() const { return rep_ != nullptr; }
  uint64_t epoch() const { return rep_->epoch; }
  // Process-unique id of the pinned published state (see SnapshotRep).
  uint64_t state_id() const { return rep_->state_id; }
  // Process-unique id of the evolving database this state belongs to.
  uint64_t lineage_id() const { return rep_->lineage_id; }
  // Number of chunks in the delta buffer (0 for full-build snapshots).
  size_t delta_chunks() const { return rep_->delta.size(); }
  // Positions covered by the compacted base index (delta entries all name
  // positions >= this).
  int base_positions() const { return rep_->base->num_positions(); }
  // True when both handles pin the exact same published state.
  bool SameStateAs(const DbSnapshot& other) const { return rep_ == other.rep_; }

  // Validity probe for cross-state cache revalidation: true iff some delta
  // chunk at absolute position >= min_index has size in [lo, hi]. O(log d) to
  // narrow the sorted delta buffer plus a scan of the in-window entries.
  bool DeltaHasSizeInWindow(Bytes lo, Bytes hi, int min_index) const;

  // The compacted base index. Deprecated escape hatch for code that still
  // wants a raw ChunkDatabase; it does NOT see the delta buffer.
  const ChunkDatabase& base() const { return *rep_->base; }
  // Manifest version this snapshot describes.
  const media::Manifest* manifest() const {
    return rep_->manifest_version != nullptr ? rep_->manifest_version.get()
                                             : rep_->base->manifest();
  }

  // --- Query API (mirrors ChunkDatabase; results are byte-identical to a
  // --- full build at this snapshot's refresh point) -----------------------
  std::vector<media::ChunkRef> VideoCandidates(Bytes estimated, double k) const;
  std::vector<media::ChunkRef> VideoCandidatesInSizeRange(Bytes lo, Bytes hi) const;
  bool HasVideoCandidate(Bytes estimated, double k) const;
  bool AudioPossible(Bytes estimated, double k) const;
  int MatchingAudioTrack(Bytes estimated, double k) const;
  const std::vector<Bytes>& audio_sizes() const { return rep_->audio_sizes; }

  Bytes VideoSize(int track, int index) const {
    const internal::SnapshotRep& rep = *rep_;
    const int base_positions = rep.base->num_positions();
    if (index < base_positions) {
      return rep.base->VideoSize(track, index);
    }
    return rep.delta_size_of[static_cast<size_t>(index - base_positions) *
                                 static_cast<size_t>(rep.base->num_video_tracks()) +
                             static_cast<size_t>(track)];
  }
  int num_video_tracks() const { return rep_->base->num_video_tracks(); }
  int num_positions() const { return rep_->num_positions; }
  Bytes MinSizeAt(int index) const {
    const internal::SnapshotRep& rep = *rep_;
    const int base_positions = rep.base->num_positions();
    return index < base_positions
               ? rep.base->MinSizeAt(index)
               : rep.delta_min_at[static_cast<size_t>(index - base_positions)];
  }
  Bytes MaxSizeAt(int index) const {
    const internal::SnapshotRep& rep = *rep_;
    const int base_positions = rep.base->num_positions();
    return index < base_positions
               ? rep.base->MaxSizeAt(index)
               : rep.delta_max_at[static_cast<size_t>(index - base_positions)];
  }

 private:
  // [first, last) window of the delta buffer with size in [lo, hi].
  std::pair<size_t, size_t> DeltaRange(Bytes lo, Bytes hi) const;

  std::shared_ptr<const internal::SnapshotRep> rep_;
};

// Memo cache for repeated size-range queries against one DbSnapshot.
//
// Real traces repeat sizes heavily (CBR audio chunks, re-downloaded and
// co-sized video chunks), so candidate queries for the same (estimate, k) —
// equivalently the same admissible byte window — recur many times within one
// analysis. The cache is deliberately *per analysis call*, not per database:
// it is single-threaded by construction, which keeps the shared snapshot free
// of mutable state and race-free under batch inference.
//
// Epoch keying: every entry belongs to the snapshot the cache is bound to.
// Rebind() re-points the cache at a newer snapshot and drops all entries
// unless the new handle pins the exact same published state — a memoized
// window can therefore never serve candidates from a stale database.
//
// Bounded: each memo holds at most `max_entries_per_memo` windows; inserting
// past the cap evicts the oldest entry (FIFO), so an arbitrarily long session
// cannot grow the cache without limit. A returned reference is therefore only
// valid until the next call on the same cache.
class CandidateQueryCache {
 public:
  static constexpr size_t kDefaultMaxEntriesPerMemo = 4096;

  explicit CandidateQueryCache(DbSnapshot snapshot,
                               size_t max_entries_per_memo = kDefaultMaxEntriesPerMemo)
      : snapshot_(std::move(snapshot)),
        max_entries_per_memo_(max_entries_per_memo == 0 ? 1 : max_entries_per_memo) {}

  // Deprecated adapter: binds to a non-owning epoch-0 view of `db`.
  explicit CandidateQueryCache(const ChunkDatabase* db,
                               size_t max_entries_per_memo = kDefaultMaxEntriesPerMemo)
      : CandidateQueryCache(DbSnapshot(*db), max_entries_per_memo) {}

  // Re-points the cache at `snapshot`. Entries survive only when the new
  // handle pins the same published state (SameStateAs); otherwise both memos
  // are cleared so no stale window can be served.
  void Rebind(DbSnapshot snapshot);

  // Cached DbSnapshot::VideoCandidates(estimated, k).
  const std::vector<media::ChunkRef>& VideoCandidates(Bytes estimated, double k);
  // Cached DbSnapshot::VideoCandidatesInSizeRange(lo, hi).
  const std::vector<media::ChunkRef>& VideoCandidatesInSizeRange(Bytes lo, Bytes hi);

  const DbSnapshot& snapshot() const { return snapshot_; }
  uint64_t epoch() const { return snapshot_.epoch(); }
  // Deprecated: the bound snapshot's base database.
  const ChunkDatabase& db() const { return snapshot_.base(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }
  // Total entries currently held across both memos.
  size_t size() const {
    return track_ordered_memo_.map.size() + flat_ordered_memo_.map.size();
  }
  size_t max_entries_per_memo() const { return max_entries_per_memo_; }

 private:
  using Window = std::pair<Bytes, Bytes>;

  struct WindowHash {
    size_t operator()(const Window& w) const {
      return std::hash<Bytes>()(w.first) ^ (std::hash<Bytes>()(w.second) * 0x9E3779B97F4A7C15ull);
    }
  };

  // One memo plus its FIFO eviction order.
  struct Memo {
    std::unordered_map<Window, std::vector<media::ChunkRef>, WindowHash> map;
    std::deque<Window> order;
  };

  template <typename Fetch>
  const std::vector<media::ChunkRef>& Lookup(Memo* memo, const Window& window,
                                             const Fetch& fetch);

  DbSnapshot snapshot_;
  size_t max_entries_per_memo_;
  // Keyed on the admissible byte window [lo, hi]; a (estimate, k) query maps
  // to ([AdmissibleLow(estimate, k), estimate]). Two memos because the two
  // entry points guarantee different orderings.
  Memo track_ordered_memo_;
  Memo flat_ordered_memo_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_DB_SNAPSHOT_H_
