// Step 1.2: detect requests and estimate downloaded object sizes from
// encrypted packets (paper §3.2, §5.3.1).
//
// HTTPS: uplink packets with TCP payload are requests (pure ACKs carry no
// payload); retransmissions — both directions — are removed via duplicate
// sequence numbers; the response size estimate is the sum of de-duplicated
// downlink TCP payload bytes (the TLS record stream) between consecutive
// requests.
//
// QUIC: uplink packets with UDP payload >= 80 bytes are requests (ACK-only
// packets are smaller, §5.3.1); retransmissions cannot be removed (new packet
// numbers); the estimate sums downlink QUIC payloads (UDP payload minus the
// public header) between requests. Both estimators satisfy Property (1):
// S <= S~ <= (1+k)S with k ~ 1% (HTTPS) / 5% (QUIC).

#ifndef CSI_SRC_CSI_SIZE_ESTIMATOR_H_
#define CSI_SRC_CSI_SIZE_ESTIMATOR_H_

#include <vector>

#include "src/capture/packet_columns.h"
#include "src/capture/packet_record.h"
#include "src/csi/types.h"

namespace csi::infer {

// Request detection threshold for QUIC uplink packets (paper §5.3.1).
inline constexpr Bytes kQuicRequestThreshold = 80;

// Detected request packets of a flow (timestamps, de-duplicated for HTTPS).
struct DetectedRequest {
  TimeUs time = 0;
  bool carries_sni = false;  // the ClientHello (never an HTTP request)
};

std::vector<DetectedRequest> DetectRequests(const std::vector<capture::PacketRecord>& flow,
                                            bool quic);

// Per-exchange size estimates for designs without transport MUX: downlink
// traffic between consecutive requests is one object (§5.3.1 Step 1.2).
std::vector<EstimatedExchange> EstimateExchanges(const std::vector<capture::PacketRecord>& flow,
                                                 bool quic);

// Total estimated downlink object bytes in the half-open time window
// [begin, end). Set end < 0 for "until the end of the flow".
Bytes EstimateDownlinkBytes(const std::vector<capture::PacketRecord>& flow, bool quic,
                            TimeUs begin, TimeUs end);

// Columnar overloads: identical semantics (and byte-identical output — the
// cold-path differential test locks this in) over a zero-copy FlowView,
// with the per-packet scans running through the SIMD column kernels.
std::vector<DetectedRequest> DetectRequests(const capture::FlowView& flow,
                                            bool quic);
std::vector<EstimatedExchange> EstimateExchanges(const capture::FlowView& flow,
                                                 bool quic);
Bytes EstimateDownlinkBytes(const capture::FlowView& flow, bool quic,
                            TimeUs begin, TimeUs end);

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_SIZE_ESTIMATOR_H_
