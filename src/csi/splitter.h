// Step 1.2 for transport-MUX designs (SQ): split traffic into groups of
// complete chunks (paper §5.3.2, Fig. 8).
//
// Two kinds of split points:
//   SP1 — an OFF period: an idle gap in the flow's activity longer than a
//         threshold (the player's buffer-full pause);
//   SP2 — two requests issued at the same instant with no intervening
//         downlink data: only possible when all prior downloads finished.
// Each resulting group carries its request count and the total estimated
// bytes of the objects downloaded in it.

#ifndef CSI_SRC_CSI_SPLITTER_H_
#define CSI_SRC_CSI_SPLITTER_H_

#include <vector>

#include "src/capture/packet_columns.h"
#include "src/capture/packet_record.h"
#include "src/csi/size_estimator.h"
#include "src/csi/types.h"

namespace csi::infer {

struct SplitterConfig {
  // SP1: minimum idle gap identifying an OFF period.
  TimeUs idle_threshold = 1 * kUsPerSec;
  // SP2: maximum spacing for "two requests at the same time".
  TimeUs simultaneity_window = 100 * kUsPerMs;
  // Ablation switches for the two split-point types.
  bool enable_sp1 = true;
  bool enable_sp2 = true;

  // Structural equality: the prefix cache interns splitter configs and must
  // never conflate two engines whose splits could differ.
  friend bool operator==(const SplitterConfig&, const SplitterConfig&) = default;
};

struct TrafficGroup {
  std::vector<DetectedRequest> requests;
  TimeUs start_time = 0;         // first request of the group
  TimeUs end_time = 0;           // start of the next group (or end of flow)
  Bytes estimated_total = 0;     // sum of estimated object bytes in the group
  int num_requests() const { return static_cast<int>(requests.size()); }
};

// Splits a QUIC flow into traffic groups.
std::vector<TrafficGroup> SplitIntoGroups(const std::vector<capture::PacketRecord>& flow,
                                          const SplitterConfig& config = {});

// Columnar overload: identical split decisions and group totals (byte-exact,
// checked by the cold-path differential test) over a zero-copy FlowView; the
// downlink-data scan and per-group byte sums run through the SIMD kernels.
std::vector<TrafficGroup> SplitIntoGroups(const capture::FlowView& flow,
                                          const SplitterConfig& config = {});

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_SPLITTER_H_
