#include "src/csi/splitter.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/simd.h"
#include "src/common/telemetry.h"

namespace csi::infer {
namespace {

// The split algorithm itself, shared verbatim by the AoS and columnar entry
// points so split decisions, telemetry counters and group construction cannot
// drift apart. The flavors differ only in how they produced `requests` and
// `downlink_times` and in how a group's downlink bytes are summed
// (`estimate(start, end)`).
template <typename EstimateFn>
std::vector<TrafficGroup> SplitCore(std::vector<DetectedRequest> requests,
                                    const std::vector<TimeUs>& downlink_times,
                                    bool have_packets, TimeUs last_packet_time,
                                    const SplitterConfig& config,
                                    EstimateFn&& estimate) {
  // The padded Initial (ClientHello) clears the request-size threshold but is
  // handshake, not HTTP: drop it so the first group starts at the first real
  // request and the server's handshake flight stays outside every group
  // window.
  std::erase_if(requests, [](const DetectedRequest& r) { return r.carries_sni; });
  std::vector<TrafficGroup> groups;
  if (requests.empty()) {
    return groups;
  }

  // Any downlink data strictly inside (lo, hi)? Simultaneous request pairs
  // (lo == hi) therefore always pass: data arriving at the same instant the
  // requests go out belongs to the downloads that just completed.
  auto downlink_in = [&downlink_times](TimeUs lo, TimeUs hi) {
    auto it = std::upper_bound(downlink_times.begin(), downlink_times.end(), lo);
    return it != downlink_times.end() && *it < hi;
  };
  auto last_activity_before = [&](TimeUs t, size_t req_idx) {
    TimeUs last = -1;
    auto it = std::lower_bound(downlink_times.begin(), downlink_times.end(), t);
    if (it != downlink_times.begin()) {
      last = *std::prev(it);
    }
    if (req_idx > 0) {
      last = std::max(last, requests[req_idx - 1].time);
    }
    return last;
  };

  // A request starts a new group if it follows an OFF gap (SP1) or begins a
  // simultaneous pair with no downlink data in between (SP2).
  std::vector<size_t> boundaries;
  boundaries.push_back(0);
  int64_t sp1_splits = 0;
  int64_t sp2_splits = 0;
  int64_t ambiguous_splits = 0;
  for (size_t i = 1; i < requests.size(); ++i) {
    const TimeUs t = requests[i].time;
    const TimeUs last = last_activity_before(t, i);
    const bool sp1 =
        config.enable_sp1 && last >= 0 && t - last >= config.idle_threshold;
    const bool sp2 = config.enable_sp2 && i + 1 < requests.size() &&
                     requests[i + 1].time - t <= config.simultaneity_window &&
                     !downlink_in(t, requests[i + 1].time);
    if (sp1 || sp2) {
      sp1_splits += sp1 ? 1 : 0;
      sp2_splits += sp2 ? 1 : 0;
      // Both signals firing on the same request: the paper treats SP1 and
      // SP2 as distinct evidence; agreement is expected, but tracking it
      // shows how often the split decision was over-determined vs. marginal.
      ambiguous_splits += (sp1 && sp2) ? 1 : 0;
      if (boundaries.back() != i) {
        boundaries.push_back(i);
      }
    }
  }
  CSI_COUNTER_INC("csi_splitter_flows_total");
  CSI_COUNTER_ADD("csi_splitter_requests_total", requests.size());
  CSI_COUNTER_ADD("csi_splitter_sp1_splits_total", sp1_splits);
  CSI_COUNTER_ADD("csi_splitter_sp2_splits_total", sp2_splits);
  CSI_COUNTER_ADD("csi_splitter_ambiguous_splits_total", ambiguous_splits);
  CSI_COUNTER_ADD("csi_splitter_groups_total", boundaries.size());

  for (size_t b = 0; b < boundaries.size(); ++b) {
    const size_t first = boundaries[b];
    const size_t next = b + 1 < boundaries.size() ? boundaries[b + 1] : requests.size();
    TrafficGroup group;
    group.requests.assign(requests.begin() + static_cast<long>(first),
                          requests.begin() + static_cast<long>(next));
    group.start_time = requests[first].time;
    group.end_time = next < requests.size() ? requests[next].time : -1;
    group.estimated_total = estimate(group.start_time, group.end_time);
    if (group.end_time < 0 && have_packets) {
      group.end_time = last_packet_time;
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

// Per-thread scratch for the columnar entry point (indices from the SIMD
// downlink scan, the effective-payload column, the gathered timestamps).
struct SplitterScratch {
  std::vector<uint32_t> indices;
  std::vector<int64_t> eff;
  std::vector<TimeUs> downlink_times;
};

SplitterScratch& Scratch() {
  static thread_local SplitterScratch scratch;
  return scratch;
}

}  // namespace

std::vector<TrafficGroup> SplitIntoGroups(const std::vector<capture::PacketRecord>& flow,
                                          const SplitterConfig& config) {
  // Timestamps of downlink data packets, for idle detection and the SP2
  // "no data in between" check.
  std::vector<TimeUs> downlink_times;
  for (const auto& p : flow) {
    if (!p.from_client && p.payload > net::kQuicHeaderBytes) {
      downlink_times.push_back(p.timestamp);
    }
  }
  return SplitCore(
      DetectRequests(flow, /*quic=*/true), downlink_times, !flow.empty(),
      flow.empty() ? 0 : flow.back().timestamp, config,
      [&flow](TimeUs begin, TimeUs end) {
        return EstimateDownlinkBytes(flow, /*quic=*/true, begin, end);
      });
}

std::vector<TrafficGroup> SplitIntoGroups(const capture::FlowView& flow,
                                          const SplitterConfig& config) {
  const size_t n = flow.size();
  const int64_t* ts = flow.timestamps();
  const int64_t* payload = flow.payloads();
  const uint8_t* dir = flow.from_client();
  SplitterScratch& scratch = Scratch();

  // Downlink data packet timestamps via the SIMD boundary scan
  // (payload > header bytes, i.e. >= header + 1).
  scratch.indices.resize(n);
  const size_t hits = simd::CollectIndices(
      dir, 0, payload, net::kQuicHeaderBytes + 1, n, scratch.indices.data());
  scratch.downlink_times.resize(hits);
  for (size_t h = 0; h < hits; ++h) {
    scratch.downlink_times[h] = ts[scratch.indices[h]];
  }

  // Hoist the QUIC effective-payload column once; each group's byte total is
  // then a single windowed SIMD sum.
  scratch.eff.resize(n);
  simd::MaskedQuicPayload(dir, payload, n, net::kQuicHeaderBytes,
                          scratch.eff.data());

  return SplitCore(DetectRequests(flow, /*quic=*/true), scratch.downlink_times,
                   n > 0, n > 0 ? ts[n - 1] : 0, config,
                   [&](TimeUs begin, TimeUs end) {
                     return simd::SumInWindow(ts, scratch.eff.data(), n, begin,
                                              end);
                   });
}

}  // namespace csi::infer
