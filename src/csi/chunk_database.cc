#include "src/csi/chunk_database.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/telemetry.h"

namespace csi::infer {

ChunkDatabase::ChunkDatabase(const media::Manifest* manifest) : manifest_(manifest) {
  num_tracks_ = manifest->num_video_tracks();
  num_positions_ = manifest->num_positions();
  const size_t total = static_cast<size_t>(num_tracks_) * static_cast<size_t>(num_positions_);
  size_of_.resize(total);
  min_at_.assign(static_cast<size_t>(num_positions_), 0);
  max_at_.assign(static_cast<size_t>(num_positions_), 0);
  sizes_.resize(total);
  packed_refs_.resize(total);
  size_t flat = 0;
  for (int t = 0; t < num_tracks_; ++t) {
    const auto& chunks = manifest->video_tracks[static_cast<size_t>(t)].chunks;
    for (int i = 0; i < num_positions_; ++i) {
      const Bytes size = chunks[static_cast<size_t>(i)].size;
      size_of_[static_cast<size_t>(t) * static_cast<size_t>(num_positions_) +
               static_cast<size_t>(i)] = size;
      sizes_[flat] = size;
      packed_refs_[flat] = PackRef(t, i);
      ++flat;
      if (t == 0) {
        min_at_[static_cast<size_t>(i)] = size;
        max_at_[static_cast<size_t>(i)] = size;
      } else {
        min_at_[static_cast<size_t>(i)] = std::min(min_at_[static_cast<size_t>(i)], size);
        max_at_[static_cast<size_t>(i)] = std::max(max_at_[static_cast<size_t>(i)], size);
      }
    }
  }
  // Sort both arrays together by (size, track, index). Packed refs were
  // emitted track-major, so for equal sizes the packed word itself is the
  // (track, index) tiebreak.
  std::vector<uint32_t> order(total);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    if (sizes_[a] != sizes_[b]) {
      return sizes_[a] < sizes_[b];
    }
    return packed_refs_[a] < packed_refs_[b];
  });
  std::vector<Bytes> sorted_sizes(total);
  std::vector<uint32_t> sorted_refs(total);
  for (size_t i = 0; i < total; ++i) {
    sorted_sizes[i] = sizes_[order[i]];
    sorted_refs[i] = packed_refs_[order[i]];
  }
  sizes_ = std::move(sorted_sizes);
  packed_refs_ = std::move(sorted_refs);

  for (const auto& track : manifest->audio_tracks) {
    audio_sizes_.push_back(track.chunks.empty() ? 0 : track.chunks[0].size);
  }
}

Bytes ChunkDatabase::AdmissibleLow(Bytes estimated, double k) {
  return static_cast<Bytes>(std::ceil(static_cast<double>(estimated) / (1.0 + k)));
}

std::pair<size_t, size_t> ChunkDatabase::FlatRange(Bytes lo, Bytes hi) const {
  const auto first = std::lower_bound(sizes_.begin(), sizes_.end(), lo);
  const auto last = std::upper_bound(first, sizes_.end(), hi);
  return {static_cast<size_t>(first - sizes_.begin()),
          static_cast<size_t>(last - sizes_.begin())};
}

std::vector<media::ChunkRef> ChunkDatabase::VideoCandidatesInSizeRange(Bytes lo,
                                                                       Bytes hi) const {
  std::vector<media::ChunkRef> out;
  const auto [first, last] = FlatRange(lo, hi);
  CSI_COUNTER_INC("csi_candidate_queries_total");
  CSI_HISTOGRAM_OBSERVE("csi_candidates_per_query", telemetry::CountBuckets(),
                        last - first);
  out.reserve(last - first);
  for (size_t i = first; i < last; ++i) {
    const uint32_t packed = packed_refs_[i];
    out.push_back(
        media::ChunkRef{media::MediaType::kVideo, TrackOfPacked(packed), IndexOfPacked(packed)});
  }
  return out;
}

std::vector<media::ChunkRef> ChunkDatabase::VideoCandidates(Bytes estimated, double k) const {
  std::vector<media::ChunkRef> out = VideoCandidatesInSizeRange(AdmissibleLow(estimated, k),
                                                                estimated);
  // Historical (track-major) ordering: downstream path-search enumeration
  // order, and therefore output sequence order, depends on it.
  std::stable_sort(out.begin(), out.end(),
                   [](const media::ChunkRef& a, const media::ChunkRef& b) {
                     return a.track < b.track;
                   });
  return out;
}

bool ChunkDatabase::HasVideoCandidate(Bytes estimated, double k) const {
  const auto [first, last] = FlatRange(AdmissibleLow(estimated, k), estimated);
  CSI_COUNTER_INC("csi_candidate_probes_total");
  return first < last;
}

bool ChunkDatabase::AudioPossible(Bytes estimated, double k) const {
  return MatchingAudioTrack(estimated, k) >= 0;
}

int ChunkDatabase::MatchingAudioTrack(Bytes estimated, double k) const {
  for (size_t a = 0; a < audio_sizes_.size(); ++a) {
    const double size = static_cast<double>(audio_sizes_[a]);
    if (size <= static_cast<double>(estimated) &&
        static_cast<double>(estimated) <= (1.0 + k) * size) {
      return static_cast<int>(a);
    }
  }
  return -1;
}

const std::vector<media::ChunkRef>& CandidateQueryCache::VideoCandidates(Bytes estimated,
                                                                         double k) {
  const std::pair<Bytes, Bytes> window{ChunkDatabase::AdmissibleLow(estimated, k), estimated};
  auto it = track_ordered_memo_.find(window);
  if (it != track_ordered_memo_.end()) {
    ++hits_;
    CSI_COUNTER_INC("csi_candidate_cache_hits_total");
    return it->second;
  }
  ++misses_;
  CSI_COUNTER_INC("csi_candidate_cache_misses_total");
  return track_ordered_memo_.emplace(window, db_->VideoCandidates(estimated, k))
      .first->second;
}

const std::vector<media::ChunkRef>& CandidateQueryCache::VideoCandidatesInSizeRange(Bytes lo,
                                                                                    Bytes hi) {
  const std::pair<Bytes, Bytes> window{lo, hi};
  auto it = flat_ordered_memo_.find(window);
  if (it != flat_ordered_memo_.end()) {
    ++hits_;
    CSI_COUNTER_INC("csi_candidate_cache_hits_total");
    return it->second;
  }
  ++misses_;
  CSI_COUNTER_INC("csi_candidate_cache_misses_total");
  return flat_ordered_memo_.emplace(window, db_->VideoCandidatesInSizeRange(lo, hi))
      .first->second;
}

}  // namespace csi::infer
