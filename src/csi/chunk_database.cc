#include "src/csi/chunk_database.h"

#include <algorithm>
#include <cmath>

namespace csi::infer {

ChunkDatabase::ChunkDatabase(const media::Manifest* manifest) : manifest_(manifest) {
  num_tracks_ = manifest->num_video_tracks();
  num_positions_ = manifest->num_positions();
  by_size_.resize(static_cast<size_t>(num_tracks_));
  min_at_.assign(static_cast<size_t>(num_positions_), 0);
  max_at_.assign(static_cast<size_t>(num_positions_), 0);
  for (int t = 0; t < num_tracks_; ++t) {
    const auto& chunks = manifest->video_tracks[static_cast<size_t>(t)].chunks;
    auto& list = by_size_[static_cast<size_t>(t)];
    list.reserve(chunks.size());
    for (int i = 0; i < num_positions_; ++i) {
      const Bytes size = chunks[static_cast<size_t>(i)].size;
      list.emplace_back(size, i);
      if (t == 0) {
        min_at_[static_cast<size_t>(i)] = size;
        max_at_[static_cast<size_t>(i)] = size;
      } else {
        min_at_[static_cast<size_t>(i)] = std::min(min_at_[static_cast<size_t>(i)], size);
        max_at_[static_cast<size_t>(i)] = std::max(max_at_[static_cast<size_t>(i)], size);
      }
    }
    std::sort(list.begin(), list.end());
  }
  for (const auto& track : manifest->audio_tracks) {
    audio_sizes_.push_back(track.chunks.empty() ? 0 : track.chunks[0].size);
  }
}

std::vector<media::ChunkRef> ChunkDatabase::VideoCandidates(Bytes estimated, double k) const {
  std::vector<media::ChunkRef> out;
  const Bytes lo =
      static_cast<Bytes>(std::ceil(static_cast<double>(estimated) / (1.0 + k)));
  const Bytes hi = estimated;
  for (int t = 0; t < num_tracks_; ++t) {
    const auto& list = by_size_[static_cast<size_t>(t)];
    auto first = std::lower_bound(list.begin(), list.end(), std::make_pair(lo, -1));
    for (auto it = first; it != list.end() && it->first <= hi; ++it) {
      out.push_back(media::ChunkRef{media::MediaType::kVideo, t, it->second});
    }
  }
  return out;
}

bool ChunkDatabase::AudioPossible(Bytes estimated, double k) const {
  return MatchingAudioTrack(estimated, k) >= 0;
}

int ChunkDatabase::MatchingAudioTrack(Bytes estimated, double k) const {
  for (size_t a = 0; a < audio_sizes_.size(); ++a) {
    const double size = static_cast<double>(audio_sizes_[a]);
    if (size <= static_cast<double>(estimated) &&
        static_cast<double>(estimated) <= (1.0 + k) * size) {
      return static_cast<int>(a);
    }
  }
  return -1;
}

Bytes ChunkDatabase::VideoSize(int track, int index) const {
  return manifest_->video_tracks[static_cast<size_t>(track)]
      .chunks[static_cast<size_t>(index)]
      .size;
}

}  // namespace csi::infer
