#include "src/csi/chunk_database.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/simd.h"
#include "src/common/telemetry.h"
#include "src/common/tracing.h"
#include "src/common/thread_pool.h"

namespace csi::infer {

namespace {

// One slot of the flat index during construction. Sorted by (size, packed);
// packed words are unique, so the order is a strict total order and any
// correct merge of sorted runs reproduces the full sort exactly.
struct FlatEntry {
  Bytes size = 0;
  uint32_t packed = 0;

  friend bool operator<(const FlatEntry& a, const FlatEntry& b) {
    if (a.size != b.size) {
      return a.size < b.size;
    }
    return a.packed < b.packed;
  }
};

int ResolveShards(const DbBuildOptions& options, size_t total) {
  int shards = options.shards;
  if (shards <= 0) {
    shards = options.pool != nullptr ? options.pool->num_workers() + 1 : 1;
  }
  // More shards than entries only manufactures empty runs.
  if (total > 0 && static_cast<size_t>(shards) > total) {
    shards = static_cast<int>(total);
  }
  return std::clamp(shards, 1, 256);
}

// Merges the sorted runs delimited by `bounds` into one sorted sequence with
// rounds of pairwise merges. Pairs within a round touch disjoint ranges, so
// they fan out over the pool; the pairing itself is fixed, and the comparator
// is total, so the result does not depend on scheduling.
void MergeSortedRuns(std::vector<FlatEntry>* entries, std::vector<size_t> bounds,
                     ThreadPool* pool) {
  if (bounds.size() <= 2) {
    return;
  }
  std::vector<FlatEntry> buffer(entries->size());
  std::vector<FlatEntry>* src = entries;
  std::vector<FlatEntry>* dst = &buffer;
  while (bounds.size() > 2) {
    const size_t runs = bounds.size() - 1;
    const int64_t pairs = static_cast<int64_t>(runs / 2);
    ParallelFor(pool, pairs, [&](int64_t p) {
      const size_t lo = bounds[static_cast<size_t>(2 * p)];
      const size_t mid = bounds[static_cast<size_t>(2 * p) + 1];
      const size_t hi = bounds[static_cast<size_t>(2 * p) + 2];
      std::merge(src->begin() + static_cast<ptrdiff_t>(lo),
                 src->begin() + static_cast<ptrdiff_t>(mid),
                 src->begin() + static_cast<ptrdiff_t>(mid),
                 src->begin() + static_cast<ptrdiff_t>(hi),
                 dst->begin() + static_cast<ptrdiff_t>(lo));
    });
    if (runs % 2 == 1) {  // odd run count: the tail run carries over as-is
      const size_t lo = bounds[runs - 1];
      std::copy(src->begin() + static_cast<ptrdiff_t>(lo), src->end(),
                dst->begin() + static_cast<ptrdiff_t>(lo));
    }
    std::vector<size_t> next;
    next.reserve(runs / 2 + 2);
    for (size_t i = 0; i < runs; i += 2) {
      next.push_back(bounds[i]);
    }
    next.push_back(bounds.back());
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != entries) {
    *entries = std::move(*src);
  }
}

}  // namespace

ChunkDatabase::ChunkDatabase(const media::Manifest* manifest)
    : ChunkDatabase(manifest, DbBuildOptions{}) {}

ChunkDatabase::ChunkDatabase(const media::Manifest* manifest, const DbBuildOptions& options)
    : manifest_(manifest) {
  CSI_SPAN("db_build");
  num_tracks_ = manifest->num_video_tracks();
  num_positions_ = manifest->num_positions();
  CSI_TRACE_SPAN_ARGS("db_build", "db", {"tracks", num_tracks_},
                      {"positions", num_positions_});
  const size_t total = static_cast<size_t>(num_tracks_) * static_cast<size_t>(num_positions_);
  size_of_.assign(total, 0);
  min_at_.assign(static_cast<size_t>(num_positions_), 0);
  max_at_.assign(static_cast<size_t>(num_positions_), 0);

  // Row-major size table, one disjoint row per track. Tracks shorter than
  // num_positions() keep size-0 entries (a well-formed manifest has uniform
  // track lengths; the clamp just keeps a ragged one deterministic and UB-free).
  ParallelFor(options.pool, num_tracks_, [&](int64_t t) {
    const auto& chunks = manifest->video_tracks[static_cast<size_t>(t)].chunks;
    const size_t limit =
        std::min(chunks.size(), static_cast<size_t>(num_positions_));
    Bytes* row = size_of_.data() + static_cast<size_t>(t) * static_cast<size_t>(num_positions_);
    for (size_t i = 0; i < limit; ++i) {
      row[i] = chunks[i].size;
    }
  });
  for (int t = 0; t < num_tracks_; ++t) {
    const Bytes* row =
        size_of_.data() + static_cast<size_t>(t) * static_cast<size_t>(num_positions_);
    for (int i = 0; i < num_positions_; ++i) {
      if (t == 0) {
        min_at_[static_cast<size_t>(i)] = row[i];
        max_at_[static_cast<size_t>(i)] = row[i];
      } else {
        min_at_[static_cast<size_t>(i)] = std::min(min_at_[static_cast<size_t>(i)], row[i]);
        max_at_[static_cast<size_t>(i)] = std::max(max_at_[static_cast<size_t>(i)], row[i]);
      }
    }
  }

  // Sharded flat-index build: each shard owns a contiguous slice of the
  // track-major (size, ref) domain, fills and sorts it independently, and the
  // sorted runs merge in fixed pair order. size_of_ is laid out track-major,
  // so slot f describes chunk (f / positions, f % positions) directly.
  build_shards_ = ResolveShards(options, total);
  CSI_COUNTER_INC("csi_db_builds_total");
  CSI_COUNTER_ADD("csi_db_build_shards_total", build_shards_);
  std::vector<FlatEntry> entries(total);
  std::vector<size_t> bounds(static_cast<size_t>(build_shards_) + 1);
  for (int s = 0; s <= build_shards_; ++s) {
    bounds[static_cast<size_t>(s)] =
        total * static_cast<size_t>(s) / static_cast<size_t>(build_shards_);
  }
  ParallelFor(options.pool, build_shards_, [&](int64_t s) {
    CSI_SPAN("db_build_shard");
    const size_t lo = bounds[static_cast<size_t>(s)];
    const size_t hi = bounds[static_cast<size_t>(s) + 1];
    for (size_t f = lo; f < hi; ++f) {
      const int t = static_cast<int>(f / static_cast<size_t>(num_positions_));
      const int i = static_cast<int>(f % static_cast<size_t>(num_positions_));
      entries[f] = FlatEntry{size_of_[f], PackRef(t, i)};
    }
    std::sort(entries.begin() + static_cast<ptrdiff_t>(lo),
              entries.begin() + static_cast<ptrdiff_t>(hi));
  });
  MergeSortedRuns(&entries, std::move(bounds), options.pool);

  sizes_.resize(total);
  packed_refs_.resize(total);
  for (size_t i = 0; i < total; ++i) {
    sizes_[i] = entries[i].size;
    packed_refs_[i] = entries[i].packed;
  }

  for (const auto& track : manifest->audio_tracks) {
    audio_sizes_.push_back(track.chunks.empty() ? 0 : track.chunks[0].size);
  }
}

Bytes ChunkDatabase::AdmissibleLow(Bytes estimated, double k) {
  return static_cast<Bytes>(std::ceil(static_cast<double>(estimated) / (1.0 + k)));
}

std::pair<size_t, size_t> ChunkDatabase::FlatRange(Bytes lo, Bytes hi) const {
  // Hybrid scan: binary steps narrow the sorted array until a window this
  // small remains, then one SIMD count pass resolves the exact boundary. The
  // last levels of a binary search are branch-miss-dominated; a linear
  // compare-count over a couple of cache lines beats them, and the result is
  // identical to lower_bound/upper_bound by construction.
  constexpr size_t kScanWindow = 128;
  const Bytes* data = sizes_.data();
  const size_t n = sizes_.size();

  // Invariant: sizes_[i] < lo for all i < a; sizes_[i] >= lo for all i >= b.
  size_t a = 0;
  size_t b = n;
  while (b - a > kScanWindow) {
    const size_t mid = a + (b - a) / 2;
    if (data[mid] < lo) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  const size_t first = a + simd::CountBelow(data + a, b - a, lo);

  // Upper bound for hi, started at `first` so last >= first even when the
  // window is empty (hi < lo) — same contract as the old equal_range pair.
  size_t c = first;
  size_t d = n;
  while (d - c > kScanWindow) {
    const size_t mid = c + (d - c) / 2;
    if (data[mid] <= hi) {
      c = mid + 1;
    } else {
      d = mid;
    }
  }
  const size_t last = c + simd::CountAtOrBelow(data + c, d - c, hi);

  if (simd::ActiveBackend() != simd::Backend::kScalar) {
    CSI_COUNTER_INC("csi_simd_window_scans_total");
  } else {
    CSI_COUNTER_INC("csi_scalar_window_scans_total");
  }
  return {first, last};
}

std::vector<media::ChunkRef> ChunkDatabase::VideoCandidatesInSizeRange(Bytes lo,
                                                                       Bytes hi) const {
  std::vector<media::ChunkRef> out;
  const auto [first, last] = FlatRange(lo, hi);
  CSI_COUNTER_INC("csi_candidate_queries_total");
  CSI_HISTOGRAM_OBSERVE("csi_candidates_per_query", telemetry::CountBuckets(),
                        last - first);
  out.reserve(last - first);
  for (size_t i = first; i < last; ++i) {
    const uint32_t packed = packed_refs_[i];
    out.push_back(
        media::ChunkRef{media::MediaType::kVideo, TrackOfPacked(packed), IndexOfPacked(packed)});
  }
  return out;
}

std::vector<media::ChunkRef> ChunkDatabase::VideoCandidates(Bytes estimated, double k) const {
  std::vector<media::ChunkRef> out = VideoCandidatesInSizeRange(AdmissibleLow(estimated, k),
                                                                estimated);
  // Historical (track-major) ordering: downstream path-search enumeration
  // order, and therefore output sequence order, depends on it.
  std::stable_sort(out.begin(), out.end(),
                   [](const media::ChunkRef& a, const media::ChunkRef& b) {
                     return a.track < b.track;
                   });
  return out;
}

bool ChunkDatabase::HasVideoCandidate(Bytes estimated, double k) const {
  const auto [first, last] = FlatRange(AdmissibleLow(estimated, k), estimated);
  CSI_COUNTER_INC("csi_candidate_probes_total");
  return first < last;
}

bool ChunkDatabase::AudioPossible(Bytes estimated, double k) const {
  return MatchingAudioTrack(estimated, k) >= 0;
}

int ChunkDatabase::MatchingAudioTrack(Bytes estimated, double k) const {
  for (size_t a = 0; a < audio_sizes_.size(); ++a) {
    const double size = static_cast<double>(audio_sizes_[a]);
    if (size <= static_cast<double>(estimated) &&
        static_cast<double>(estimated) <= (1.0 + k) * size) {
      return static_cast<int>(a);
    }
  }
  return -1;
}

}  // namespace csi::infer
