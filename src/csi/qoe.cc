#include "src/csi/qoe.h"

#include <algorithm>

namespace csi::infer {

QoeReport AnalyzeQoe(const InferredSequence& sequence, const media::Manifest& manifest,
                     const QoeConfig& config) {
  QoeReport report;
  report.track_time_fraction.assign(static_cast<size_t>(manifest.num_video_tracks()), 0.0);

  // Collect video slots in playback order and account for data usage.
  std::vector<const InferredSlot*> video;
  for (const auto& slot : sequence.slots) {
    if (slot.kind == SlotKind::kVideo) {
      video.push_back(&slot);
      report.data_usage += manifest.SizeOf(slot.chunk);
    } else if (slot.kind == SlotKind::kAudio &&
               slot.chunk.track < manifest.num_audio_tracks()) {
      const auto& track = manifest.audio_tracks[static_cast<size_t>(slot.chunk.track)];
      if (!track.chunks.empty()) {
        report.data_usage += track.chunks[0].size;
      }
    }
  }
  std::sort(video.begin(), video.end(), [](const InferredSlot* a, const InferredSlot* b) {
    return a->chunk.index < b->chunk.index;
  });
  if (video.empty()) {
    return report;
  }

  TimeUs content_total = 0;
  double bit_weighted = 0.0;
  int prev_track = -1;
  for (const InferredSlot* slot : video) {
    const media::Chunk& chunk = manifest.ChunkOf(slot->chunk);
    content_total += chunk.duration;
    report.track_time_fraction[static_cast<size_t>(slot->chunk.track)] +=
        static_cast<double>(chunk.duration);
    bit_weighted +=
        manifest.TrackOf(slot->chunk).nominal_bitrate * UsToSeconds(chunk.duration);
    if (prev_track >= 0 && slot->chunk.track != prev_track) {
      ++report.track_switches;
    }
    prev_track = slot->chunk.track;
  }
  for (double& f : report.track_time_fraction) {
    f /= static_cast<double>(content_total);
  }
  report.avg_bitrate = bit_weighted / UsToSeconds(content_total);

  // --- Playback reconstruction ---
  // Startup: playback begins once `startup_buffer` of content is downloaded.
  TimeUs buffered = 0;
  size_t start_chunk = 0;
  TimeUs play_start = video.front()->done_time;
  for (size_t i = 0; i < video.size(); ++i) {
    buffered += manifest.ChunkOf(video[i]->chunk).duration;
    play_start = std::max(play_start, video[i]->done_time);
    start_chunk = i;
    if (buffered >= config.startup_buffer) {
      break;
    }
  }
  (void)start_chunk;
  report.startup_delay = play_start - sequence.slots.front().request_time;

  // Walk chunks: each displays as soon as the previous one finished and its
  // own download completed; gaps are stalls.
  TimeUs display_end = play_start;
  std::vector<std::pair<TimeUs, TimeUs>> display_windows;  // (start, end) per chunk
  for (const InferredSlot* slot : video) {
    const TimeUs dur = manifest.ChunkOf(slot->chunk).duration;
    TimeUs start = std::max(display_end, slot->done_time);
    if (slot->done_time > display_end && display_end > play_start) {
      ++report.stall_count;
      report.total_stall += slot->done_time - display_end;
    }
    display_windows.emplace_back(start, start + dur);
    display_end = start + dur;
  }

  // Buffer occupancy curve: downloaded content minus played content.
  const TimeUs t0 = sequence.slots.front().request_time;
  const TimeUs t1 = display_end;
  size_t done_cursor = 0;
  std::vector<std::pair<TimeUs, TimeUs>> done_times;  // (done_time, duration)
  for (const InferredSlot* slot : video) {
    done_times.emplace_back(slot->done_time, manifest.ChunkOf(slot->chunk).duration);
  }
  std::sort(done_times.begin(), done_times.end());
  TimeUs downloaded = 0;
  for (TimeUs t = t0; t <= t1; t += config.sample_step) {
    while (done_cursor < done_times.size() && done_times[done_cursor].first <= t) {
      downloaded += done_times[done_cursor].second;
      ++done_cursor;
    }
    // Played content by time t.
    TimeUs played = 0;
    for (const auto& [start, end] : display_windows) {
      if (t >= end) {
        played += end - start;
      } else if (t > start) {
        played += t - start;
      } else {
        break;
      }
    }
    report.buffer_curve.push_back(BufferSample{t, std::max<TimeUs>(downloaded - played, 0)});
  }
  return report;
}

}  // namespace csi::infer
