// QoE analysis over an inferred chunk sequence (paper §4.3).
//
// From the inferred identities and download completion times, CSI
// reconstructs the client buffer occupancy over time and derives the QoE
// metrics the paper's use case needs: per-track viewing-time distribution
// (Fig. 10a/c), data usage (Fig. 10b/d), stalls, startup delay, track
// switches, and average delivered bitrate.

#ifndef CSI_SRC_CSI_QOE_H_
#define CSI_SRC_CSI_QOE_H_

#include <vector>

#include "src/csi/types.h"
#include "src/media/manifest.h"

namespace csi::infer {

struct QoeConfig {
  // Playback starts once this much content is buffered (matching the
  // player's startup behaviour).
  TimeUs startup_buffer = 10 * kUsPerSec;
  TimeUs rebuffer_target = 5 * kUsPerSec;
  // Buffer sampling step for the occupancy curve.
  TimeUs sample_step = kUsPerSec;
};

struct BufferSample {
  TimeUs time = 0;
  TimeUs level = 0;  // buffered content ahead of the playhead
};

struct QoeReport {
  // Fraction of *content time* delivered from each video track.
  std::vector<double> track_time_fraction;
  // Bytes downloaded (true chunk sizes of the inferred chunks).
  Bytes data_usage = 0;
  // Average delivered video bitrate, weighted by chunk duration.
  BitsPerSec avg_bitrate = 0;
  int track_switches = 0;
  int stall_count = 0;
  TimeUs total_stall = 0;
  TimeUs startup_delay = 0;
  std::vector<BufferSample> buffer_curve;
};

// Analyzes one inferred sequence. Only video slots drive playback metrics;
// audio contributes to data usage.
QoeReport AnalyzeQoe(const InferredSequence& sequence, const media::Manifest& manifest,
                     const QoeConfig& config = {});

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_QOE_H_
