#include "src/csi/group_search.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <map>
#include <queue>
#include <tuple>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"
#include "src/csi/audit.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/result_cache.h"

namespace csi::infer {
namespace {

// Prefix sums of per-position min/max video chunk sizes, for DFS pruning.
// Arena-backed: rebuilt per enumeration, dropped wholesale at the next reset.
struct SizeBounds {
  ArenaVector<Bytes> min_prefix;  // min_prefix[i] = sum of MinSizeAt(0..i-1)
  ArenaVector<Bytes> max_prefix;

  SizeBounds(const DbSnapshot& db, MonotonicArena* arena)
      : min_prefix(ArenaAllocator<Bytes>(arena)),
        max_prefix(ArenaAllocator<Bytes>(arena)) {
    const int p = db.num_positions();
    min_prefix.assign(static_cast<size_t>(p) + 1, 0);
    max_prefix.assign(static_cast<size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i) {
      min_prefix[static_cast<size_t>(i) + 1] =
          min_prefix[static_cast<size_t>(i)] + db.MinSizeAt(i);
      max_prefix[static_cast<size_t>(i) + 1] =
          max_prefix[static_cast<size_t>(i)] + db.MaxSizeAt(i);
    }
  }
  Bytes MinSum(int lo, int hi_exclusive) const {
    return min_prefix[static_cast<size_t>(hi_exclusive)] - min_prefix[static_cast<size_t>(lo)];
  }
  Bytes MaxSum(int lo, int hi_exclusive) const {
    return max_prefix[static_cast<size_t>(hi_exclusive)] - max_prefix[static_cast<size_t>(lo)];
  }
};

// One (other-object mask, phantom deficit) interpretation of a group: how
// many audio chunks and which known objects accompany the video run, and the
// admissible window for the total *true* video bytes (Property (1)).
struct ObjectSplit {
  int audio_count = 0;
  int other_count = 0;
  Bytes other_bytes = 0;
  Bytes video_lo = 0;  // window for the video-byte sum; lo may be <= 0
  Bytes video_hi = 0;
  int video_count = 0;
};

// All (mask, deficit, v) splits of the group's requests, in the fixed
// enumeration order (mask outer, then deficit, then video count). Splits
// depend only on the group and config, never on the start range — computing
// them once up front is what lets per-start work be partitioned freely.
ArenaVector<ObjectSplit> EnumerateObjectSplits(const TrafficGroup& group,
                                               const DbSnapshot& db,
                                               const GroupSearchConfig& config,
                                               MonotonicArena* arena) {
  ArenaVector<ObjectSplit> splits{ArenaAllocator<ObjectSplit>(arena)};
  const int n_req = group.num_requests();
  const Bytes audio_size = db.audio_sizes().empty() ? 0 : db.audio_sizes()[0];
  const int num_others = static_cast<int>(config.other_object_sizes.size());
  const int num_masks = 1 << std::min(num_others, 8);
  for (int mask = 0; mask < num_masks; ++mask) {
    Bytes other_bytes = 0;
    int other_count = 0;
    for (int b = 0; b < num_others; ++b) {
      if ((mask >> b) & 1) {
        other_bytes += config.other_object_sizes[static_cast<size_t>(b)];
        ++other_count;
      }
    }
    if (other_count > n_req) {
      continue;
    }
    const int max_deficit = std::min(config.max_phantom_requests, n_req - other_count);
    for (int deficit = 0; deficit <= max_deficit; ++deficit) {
      const int n_objects = n_req - deficit;
      for (int v = 0; v + other_count <= n_objects; ++v) {
        const int a = n_objects - other_count - v;
        if (a > 0 && audio_size <= 0) {
          continue;  // no audio tracks to explain these requests
        }
        const double estimate = static_cast<double>(group.estimated_total);
        ObjectSplit split;
        split.audio_count = a;
        split.other_count = other_count;
        split.other_bytes = other_bytes;
        split.video_count = v;
        split.video_hi = static_cast<Bytes>(estimate) - other_bytes - a * audio_size;
        split.video_lo = static_cast<Bytes>(std::ceil(estimate / (1.0 + config.k))) -
                         other_bytes - a * audio_size;
        if (split.video_hi < 0) {
          continue;
        }
        splits.push_back(split);
      }
    }
  }
  return splits;
}

// DFS over per-position track choices for one (start, split). Plain struct
// recursion: this is the innermost hot loop and a std::function-based
// closure costs an indirect call per node.
struct RunDfs {
  const DbSnapshot& db;
  const SizeBounds& bounds;
  const DisplayConstraints& display;
  const ObjectSplit& split;
  int start = 0;
  int tracks = 0;
  Bytes audio_size = 0;
  int64_t node_budget = 0;
  int candidate_budget = 0;
  std::vector<GroupCandidate>* out = nullptr;
  std::vector<int> chosen;
  bool capped = false;
  // Telemetry tallies, flushed to global counters once per DFS run so the
  // inner loop touches no atomics.
  int64_t pruned = 0;

  // Returns false to unwind (budget exhausted).
  bool Walk(int depth, Bytes acc) {
    if (--node_budget < 0) {
      capped = true;
      return false;
    }
    const int v = split.video_count;
    if (depth == v) {
      if (acc >= split.video_lo && acc <= split.video_hi) {
        GroupCandidate c;
        c.video_start = start;
        c.tracks = chosen;
        c.audio_count = split.audio_count;
        c.other_count = split.other_count;
        c.implied_total = acc + split.audio_count * audio_size + split.other_bytes;
        out->push_back(std::move(c));
        if (static_cast<int>(out->size()) >= candidate_budget) {
          capped = true;
          return false;
        }
      }
      return true;
    }
    const int index = start + depth;
    const Bytes rem_min = bounds.MinSum(index + 1, start + v);
    const Bytes rem_max = bounds.MaxSum(index + 1, start + v);
    auto constraint = display.find(index);
    for (int t = 0; t < tracks; ++t) {
      if (constraint != display.end() && constraint->second != t) {
        continue;
      }
      const Bytes total = acc + db.VideoSize(t, index);
      if (total + rem_min > split.video_hi || total + rem_max < split.video_lo) {
        ++pruned;
        continue;
      }
      chosen[static_cast<size_t>(depth)] = t;
      if (!Walk(depth + 1, total)) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

std::shared_ptr<const GroupCandidateSet> EnumerateGroupCandidateSet(
    const TrafficGroup& group, const DbSnapshot& db, const GroupSearchConfig& config,
    const DisplayConstraints& display, int start_lo, int start_hi,
    CandidateQueryCache* cache, MonotonicArena* arena, uint32_t context_id) {
  auto set = std::make_shared<GroupCandidateSet>();
  const int n_req = group.num_requests();
  if (n_req == 0) {
    return set;
  }
  CSI_SPAN("candidate_enum");
  CSI_TRACE_SPAN_ARGS("candidate_enum", "search", {"requests", n_req},
                      {"start_lo", start_lo}, {"start_hi", start_hi},
                      {"estimated_total", group.estimated_total});
  CSI_COUNTER_INC("csi_group_enumerations_total");
  InferenceAudit* const audit = CurrentAudit();
  if (audit != nullptr) {
    ++audit->enumerations;
  }
  if (n_req > config.max_group_requests) {
    if (config.enable_wildcards) {
      CSI_COUNTER_INC("csi_group_wildcards_total");
      if (audit != nullptr) {
        ++audit->wildcards;
      }
      GroupCandidate wild;
      wild.wildcard = true;
      set->candidates.push_back(wild);
    }
    return set;
  }

  // Canonical start range, shared by the candidate-cache key and the
  // result-tier hull record: lo clamps to 0, hi becomes kOpenHi when it
  // reaches the snapshot's live edge.
  const int canon_lo = std::max(start_lo, 0);
  const int canon_hi =
      start_hi >= db.num_positions() - 1 ? GroupCandidateCache::kOpenHi : start_hi;

  // Consult the shared cross-trace cache before doing any work. The two
  // early-outs above are cheaper than a cache probe and stay uncached.
  GroupCandidateCache* shared = config.shared_cache;
  if (shared != nullptr && GroupCandidateCache::EnvForcesOff()) {
    shared = nullptr;
  }
  GroupCandidateCache::Query query;
  if (shared != nullptr) {
    if (context_id == 0) {
      context_id = shared->InternContext(config, display);
    }
    query = GroupCandidateCache::MakeQuery(db, context_id, n_req, group.estimated_total,
                                           start_lo, start_hi);
    CandidateSetHull cached_hull;
    if (std::shared_ptr<const GroupCandidateSet> hit =
            shared->Lookup(query, db, config, &cached_hull)) {
      if (audit != nullptr) {
        audit->candidates += static_cast<int64_t>(hit->candidates.size());
        if (hit->truncated) {
          ++audit->enum_truncations;
        }
      }
      // A hit skipped the enumeration but the result still depends on it:
      // fold the entry's recorded hulls into the result-tier collector
      // exactly as the computed path below would.
      RecordEnumerationForResultCache(cached_hull, canon_lo, canon_hi, db.num_positions(),
                                      config.max_dfs_nodes);
      return hit;
    }
  }

  // Every allocation below that does not cross a thread boundary lands in the
  // arena: it is scratch, reclaimed wholesale by the reset at the next call.
  MonotonicArena local_arena;
  MonotonicArena* scratch = arena != nullptr ? arena : &local_arena;
  scratch->Reset();
  ArenaVector<GroupCandidate> candidates{ArenaAllocator<GroupCandidate>(scratch)};
  const Bytes audio_size = db.audio_sizes().empty() ? 0 : db.audio_sizes()[0];
  const int positions = db.num_positions();
  const int tracks = db.num_video_tracks();
  start_lo = std::max(start_lo, 0);
  start_hi = std::min(start_hi, positions - 1);

  const ArenaVector<ObjectSplit> splits =
      EnumerateObjectSplits(group, db, config, scratch);
  bool capped_flag = false;

  // Size hulls of the splits, recorded with the cache entry so later states
  // can prove the output unchanged (see candidate_cache.h).
  CandidateSetHull hull;
  for (const ObjectSplit& split : splits) {
    if (split.video_count < 1) {
      continue;
    }
    hull.has_video_split = true;
    hull.v_max = std::max(hull.v_max, split.video_count);
    hull.hull_all_hi = std::max(hull.hull_all_hi, split.video_hi);
    if (split.video_count == 1) {
      const Bytes lo = std::max<Bytes>(split.video_lo, 0);
      hull.hull1_lo = hull.has_v1 ? std::min(hull.hull1_lo, lo) : lo;
      hull.hull1_hi = std::max(hull.hull1_hi, split.video_hi);
      hull.has_v1 = true;
    } else {
      hull.hull2_hi = std::max(hull.hull2_hi, split.video_hi);
    }
  }

  // Video-free explanations (start-agnostic): valid when the window admits
  // zero video bytes.
  for (const ObjectSplit& split : splits) {
    if (split.video_count == 0 && split.video_lo <= 0) {
      GroupCandidate c;
      c.audio_count = split.audio_count;
      c.other_count = split.other_count;
      c.implied_total = split.audio_count * audio_size + split.other_bytes;
      candidates.push_back(std::move(c));
    }
  }

  // Single-chunk runs: the flat size index answers "which chunks have true
  // size inside this window" in one lower_bound/upper_bound pair, replacing
  // the per-start-per-track scan. This is the whole video enumeration for
  // non-MUX designs (every exchange is a 1-request group).
  for (const ObjectSplit& split : splits) {
    if (split.video_count != 1 || start_lo > start_hi) {
      continue;
    }
    const Bytes lo = std::max<Bytes>(split.video_lo, 0);
    std::vector<media::ChunkRef> hits_storage;
    const std::vector<media::ChunkRef>* hits;
    if (cache != nullptr) {
      hits = &cache->VideoCandidatesInSizeRange(lo, split.video_hi);
    } else {
      hits_storage = db.VideoCandidatesInSizeRange(lo, split.video_hi);
      hits = &hits_storage;
    }
    ArenaVector<media::ChunkRef> admitted{ArenaAllocator<media::ChunkRef>(scratch)};
    admitted.reserve(hits->size());
    for (const media::ChunkRef& ref : *hits) {
      if (ref.index < start_lo || ref.index > start_hi) {
        continue;
      }
      auto constraint = display.find(ref.index);
      if (constraint != display.end() && constraint->second != ref.track) {
        continue;
      }
      admitted.push_back(ref);
    }
    // Flat-index order is (size, track, index); emit in (start, track) order
    // so the pre-rank ordering matches the longer-run enumeration below.
    std::sort(admitted.begin(), admitted.end(),
              [](const media::ChunkRef& a, const media::ChunkRef& b) {
                if (a.index != b.index) {
                  return a.index < b.index;
                }
                return a.track < b.track;
              });
    for (const media::ChunkRef& ref : admitted) {
      GroupCandidate c;
      c.video_start = ref.index;
      c.tracks = {ref.track};
      c.audio_count = split.audio_count;
      c.other_count = split.other_count;
      c.implied_total =
          db.VideoSize(ref.track, ref.index) + split.audio_count * audio_size + split.other_bytes;
      candidates.push_back(std::move(c));
    }
  }

  // Multi-chunk runs: DFS per start index. Each start gets budgets that are a
  // function of the query alone (never of the partitioning), so the
  // per-start outputs — and hence the merged list — are identical whether
  // the starts run serially or fan out across config.pool workers.
  bool any_multi = false;
  for (const ObjectSplit& split : splits) {
    any_multi = any_multi || split.video_count >= 2;
  }
  if (any_multi && start_lo <= start_hi) {
    const SizeBounds bounds(db, scratch);
    const int range = start_hi - start_lo + 1;
    const int64_t per_start_nodes =
        std::max<int64_t>(config.max_dfs_nodes / range, 1 << 16);
    // Per-start outputs are written by pool workers, so they stay on the
    // default allocator — the single-threaded arena must not cross threads.
    std::vector<std::vector<GroupCandidate>> per_start(static_cast<size_t>(range));
    std::vector<char> start_capped(static_cast<size_t>(range), 0);
    // Per-job tallies merged by the calling thread: the audit collector is
    // thread-local to the analyzing thread, and one flush per enumeration
    // also touches fewer counter atomics than one per job.
    std::vector<int64_t> job_expanded(static_cast<size_t>(range), 0);
    std::vector<int64_t> job_pruned(static_cast<size_t>(range), 0);
    ParallelFor(config.pool, range, [&](int64_t job) {
      const int s = start_lo + static_cast<int>(job);
      std::vector<GroupCandidate>& out = per_start[static_cast<size_t>(job)];
      int64_t nodes_expanded = 0;
      int64_t nodes_pruned = 0;
      for (const ObjectSplit& split : splits) {
        const int v = split.video_count;
        if (v < 2 || s + v > positions) {
          continue;
        }
        if (bounds.MinSum(s, s + v) > split.video_hi ||
            bounds.MaxSum(s, s + v) < split.video_lo) {
          ++nodes_pruned;
          continue;
        }
        RunDfs dfs{db,     bounds,          display,
                   split,  s,               tracks,
                   audio_size, per_start_nodes, config.max_candidates_per_group,
                   &out,   std::vector<int>(static_cast<size_t>(v), 0),
                   false};
        dfs.Walk(0, 0);
        nodes_expanded += per_start_nodes - std::max<int64_t>(dfs.node_budget, 0);
        nodes_pruned += dfs.pruned;
        if (dfs.capped) {
          start_capped[static_cast<size_t>(job)] = 1;
          break;
        }
      }
      job_expanded[static_cast<size_t>(job)] = nodes_expanded;
      job_pruned[static_cast<size_t>(job)] = nodes_pruned;
    });
    int64_t total_expanded = 0;
    int64_t total_pruned = 0;
    for (int job = 0; job < range; ++job) {
      auto& out = per_start[static_cast<size_t>(job)];
      candidates.insert(candidates.end(), std::make_move_iterator(out.begin()),
                        std::make_move_iterator(out.end()));
      capped_flag = capped_flag || start_capped[static_cast<size_t>(job)] != 0;
      total_expanded += job_expanded[static_cast<size_t>(job)];
      total_pruned += job_pruned[static_cast<size_t>(job)];
    }
    CSI_COUNTER_ADD("csi_dfs_nodes_expanded_total", total_expanded);
    CSI_COUNTER_ADD("csi_dfs_nodes_pruned_total", total_pruned);
    if (audit != nullptr) {
      audit->dfs_nodes_expanded += total_expanded;
      audit->dfs_nodes_pruned += total_pruned;
    }
  }

  // Enumeration order decides which sequences the bounded chain search finds
  // first. Rank by how close the candidate's predicted estimate (under the
  // calibrated overhead model) is to the observation: the ground-truth
  // explanation sits almost exactly there, while spurious combinations
  // scatter across the admissible window. stable_sort over the fixed
  // concatenation order keeps ties deterministic.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&group, &config](const GroupCandidate& x, const GroupCandidate& y) {
                     return CandidateCost(x, group.estimated_total, group.num_requests(),
                                          config) <
                            CandidateCost(y, group.estimated_total, group.num_requests(),
                                          config);
                   });
  // The global cap now falls on the *worst-ranked* candidates (the serial
  // seed capped in enumeration order); parallel and serial agree because both
  // rank first and truncate after.
  if (static_cast<int>(candidates.size()) > config.max_candidates_per_group) {
    candidates.resize(static_cast<size_t>(config.max_candidates_per_group));
    capped_flag = true;
  }
  if (capped_flag) {
    CSI_COUNTER_INC("csi_group_enum_truncated_total");
  }
  CSI_HISTOGRAM_OBSERVE("csi_group_candidates_per_enum", telemetry::CountBuckets(),
                        candidates.size());
  if (audit != nullptr) {
    audit->candidates += static_cast<int64_t>(candidates.size());
    if (capped_flag) {
      ++audit->enum_truncations;
    }
  }
  CSI_TRACE_INSTANT("candidate_enum_result", "search",
                    {"candidates", static_cast<int64_t>(candidates.size())},
                    {"truncated", capped_flag ? 1 : 0});
  // Degrade to a wildcard only when the group cannot be explained at all
  // (oversized, corrupted estimate, or enumeration cut short before finding
  // anything). A wildcard alongside real candidates would flood the chain
  // search with low-information sequences.
  if (candidates.empty() && config.enable_wildcards) {
    CSI_COUNTER_INC("csi_group_wildcards_total");
    if (audit != nullptr) {
      ++audit->wildcards;
    }
    GroupCandidate wild;
    wild.wildcard = true;
    candidates.push_back(wild);
  }
  // The survivors move out to caller-owned storage; everything else the
  // enumeration touched dies with the arena at the next reset.
  set->truncated = capped_flag;
  set->candidates.reserve(candidates.size());
  std::move(candidates.begin(), candidates.end(), std::back_inserter(set->candidates));
  CSI_GAUGE_SET("csi_group_search_arena_bytes", scratch->peak_bytes());
  if (shared != nullptr) {
    shared->Insert(query, db, hull, set);
  }
  RecordEnumerationForResultCache(hull, canon_lo, canon_hi, db.num_positions(),
                                  config.max_dfs_nodes);
  return set;
}

std::vector<GroupCandidate> EnumerateGroupCandidates(const TrafficGroup& group,
                                                     const DbSnapshot& db,
                                                     const GroupSearchConfig& config,
                                                     const DisplayConstraints& display,
                                                     int start_lo, int start_hi,
                                                     bool* truncated,
                                                     CandidateQueryCache* cache,
                                                     MonotonicArena* arena) {
  const std::shared_ptr<const GroupCandidateSet> set = EnumerateGroupCandidateSet(
      group, db, config, display, start_lo, start_hi, cache, arena, /*context_id=*/0);
  if (set->truncated && truncated != nullptr) {
    *truncated = true;
  }
  return set->candidates;
}

double CandidateCost(const GroupCandidate& candidate, Bytes estimated_total,
                     int group_requests, const GroupSearchConfig& config) {
  if (candidate.wildcard) {
    return 1.0 * group_requests;
  }
  const int objects = static_cast<int>(candidate.tracks.size()) + candidate.audio_count +
                      candidate.other_count;
  const double predicted =
      static_cast<double>(candidate.implied_total) * (1.0 + config.expected_overhead) +
      static_cast<double>(objects) * static_cast<double>(config.expected_fixed_overhead);
  return std::abs(static_cast<double>(estimated_total) - predicted) /
         std::max(static_cast<double>(estimated_total), 1.0);
}

namespace {

class GroupSequenceSearcher {
 public:
  GroupSequenceSearcher(const std::vector<TrafficGroup>& groups, const DbSnapshot& db,
                        const GroupSearchConfig& config, const DisplayConstraints& display)
      : groups_(groups),
        db_(db),
        config_(config),
        display_(display),
        positions_(db.num_positions()),
        query_cache_(db_) {
    // Intern the shared-cache context once per search instead of per
    // enumeration (it is identical for every group of this run).
    if (config_.shared_cache != nullptr && !GroupCandidateCache::EnvForcesOff()) {
      context_id_ = config_.shared_cache->InternContext(config_, display_);
    }
  }

  InferenceResult Run() {
    CSI_SPAN("sequence_chain");
    CSI_TRACE_SPAN_ARGS("sequence_chain", "search",
                        {"groups", static_cast<int64_t>(groups_.size())});
    InferenceResult result;
    for (const auto& g : groups_) {
      result.group_sizes.push_back(g.num_requests());
    }
    if (groups_.empty()) {
      return result;
    }
    // Beam search over the group layers: the paper frames Step 2.2 as a
    // shortest-path problem; we weight each candidate by the deviation of its
    // implied size from the overhead-calibrated estimate and keep the
    // lowest-cost partial explanations at every layer. Wildcards carry a
    // large penalty and act as a last resort, so the most plausible complete
    // sequences surface first in the output.
    struct PathNode {
      int g = -1;       // group this node's candidate covers (start)
      int next_g = 0;   // first uncovered group (g+1, or g+2 for a merge)
      int lo = 0;
      int hi = 0;
      const GroupCandidate* cand = nullptr;
      bool merged = false;  // candidate explains groups g and g+1 jointly
      int parent = -1;
      double cost = 0.0;
    };
    std::vector<PathNode> arena;
    std::vector<int> frontier;
    {
      PathNode root;
      root.lo = 0;
      root.hi = positions_;
      arena.push_back(root);
      frontier.push_back(0);
    }
    const int beam_width = std::max(config_.max_sequences * 4, 2048);
    const int max_expansions_per_node = 768;

    // Because a merge advances two layers at once, frontiers are kept per
    // "first uncovered group" and processed in order.
    std::vector<std::vector<int>> frontiers(groups_.size() + 2);
    frontiers[0] = frontier;
    for (int g = 0; g < static_cast<int>(groups_.size()); ++g) {
      std::vector<std::pair<double, int>> next;
      auto expand_with = [&](int idx, const std::vector<GroupCandidate>& cands,
                             const TrafficGroup& group, bool merged, int next_g) {
        const PathNode parent = arena[static_cast<size_t>(idx)];
        int expansions = 0;
        for (const GroupCandidate& c : cands) {
          if (expansions >= max_expansions_per_node) {
            truncated_ = true;
            break;
          }
          Transition tr;
          if (c.wildcard) {
            tr.feasible = true;
            tr.lo = parent.lo;
            tr.hi = std::min(parent.hi + group.num_requests(), positions_);
          } else if (c.video_start < 0) {
            tr.feasible = true;
            tr.lo = parent.lo;
            tr.hi = parent.hi;
          } else if (c.video_start >= parent.lo && c.video_start <= parent.hi) {
            tr.feasible = true;
            tr.lo = c.video_end() + 1;
            tr.hi = tr.lo;
          }
          if (!tr.feasible) {
            continue;
          }
          const double step_cost =
              CandidateCost(c, group.estimated_total, group.num_requests(), config_);
          PathNode node;
          node.g = g;
          node.next_g = next_g;
          node.lo = tr.lo;
          node.hi = tr.hi;
          node.cand = &c;
          node.merged = merged;
          node.parent = idx;
          node.cost = parent.cost + step_cost;
          arena.push_back(node);
          next.emplace_back(node.cost, static_cast<int>(arena.size()) - 1);
          ++expansions;
        }
      };

      for (int idx : frontiers[static_cast<size_t>(g)]) {
        const PathNode parent = arena[static_cast<size_t>(idx)];
        expand_with(idx, CandidatesFor(g, parent.lo, parent.hi),
                    groups_[static_cast<size_t>(g)], /*merged=*/false, g + 1);
        // Merge interpretation: a retransmitted request split one object's
        // traffic into two single-request groups (QUIC phantoms, §2); the
        // joint group explains both requests with a one-object deficit. The
        // beam ranks this against the unmerged reading by cost.
        if (config_.enable_merge_repair && g + 1 < static_cast<int>(groups_.size()) &&
            groups_[static_cast<size_t>(g)].num_requests() == 1 &&
            groups_[static_cast<size_t>(g) + 1].num_requests() == 1) {
          expand_with(idx, MergedCandidatesFor(g, parent.lo, parent.hi),
                      MergedGroup(g), /*merged=*/true, g + 2);
        }
      }
      std::sort(next.begin(), next.end(), [](const auto& a, const auto& b) {
        return a.first < b.first;
      });
      if (static_cast<int>(next.size()) > beam_width) {
        next.resize(static_cast<size_t>(beam_width));
        truncated_ = true;
      }
      for (const auto& [cost, idx] : next) {
        frontiers[static_cast<size_t>(arena[static_cast<size_t>(idx)].next_g)].push_back(idx);
      }
    }
    frontier = frontiers[groups_.size()];
    // Keep the final frontier sorted by cost.
    std::sort(frontier.begin(), frontier.end(), [&arena](int a, int b) {
      return arena[static_cast<size_t>(a)].cost < arena[static_cast<size_t>(b)].cost;
    });

    // Emit the lowest-cost complete explanations. A sequence is *clean* when
    // every group is fully explained (no wildcards, no phantom deficits) —
    // i.e. it satisfies Properties (1) and (2) outright, which is the paper's
    // notion of a matching sequence. When clean sequences exist, degraded
    // ones are withheld (they would only pad the output with
    // low-information interpretations).
    std::vector<std::vector<SlotAssignment>> clean;
    std::vector<std::vector<SlotAssignment>> degraded;
    // Path costs parallel to clean/degraded, kept for the audit record
    // (chosen vs runner-up explanation scores).
    std::vector<double> clean_costs;
    std::vector<double> degraded_costs;
    for (int idx : frontier) {
      std::vector<SlotAssignment> assignment;
      int cursor = idx;
      while (cursor > 0) {
        const PathNode& node = arena[static_cast<size_t>(cursor)];
        assignment.push_back(SlotAssignment{node.g, node.cand, node.merged});
        cursor = node.parent;
      }
      std::reverse(assignment.begin(), assignment.end());
      bool is_clean = true;
      for (const SlotAssignment& sa : assignment) {
        const GroupCandidate& c = *sa.cand;
        const int objects = static_cast<int>(c.tracks.size()) + c.audio_count + c.other_count;
        int requests = groups_[static_cast<size_t>(sa.g)].num_requests();
        if (sa.merged) {
          requests += groups_[static_cast<size_t>(sa.g) + 1].num_requests();
          // A merge explains two detected requests with one real object: the
          // expected phantom pattern, counted as clean with deficit 1.
          if (c.wildcard || objects != requests - 1) {
            is_clean = false;
            break;
          }
          continue;
        }
        if (c.wildcard || objects != requests) {
          is_clean = false;
          break;
        }
      }
      (is_clean ? clean : degraded).push_back(std::move(assignment));
      (is_clean ? clean_costs : degraded_costs)
          .push_back(arena[static_cast<size_t>(idx)].cost);
    }
    auto& chosen = clean.empty() ? degraded : clean;
    const auto& chosen_costs = clean.empty() ? degraded_costs : clean_costs;
    if (static_cast<int>(chosen.size()) > config_.max_sequences) {
      chosen.resize(static_cast<size_t>(config_.max_sequences));
      truncated_ = true;
    }
    sequences_ = std::move(chosen);

    for (const auto& assignment : sequences_) {
      result.sequences.push_back(BuildSequence(assignment));
    }
    result.truncated = truncated_;
    CSI_COUNTER_ADD("csi_chain_nodes_total", arena.size());
    if (truncated_) {
      CSI_COUNTER_INC("csi_chain_truncated_total");
    }
    if (InferenceAudit* audit = CurrentAudit()) {
      audit->chain_nodes += static_cast<int64_t>(arena.size());
      if (!chosen_costs.empty()) {
        audit->has_best_cost = true;
        audit->best_cost = chosen_costs[0];
      }
      if (chosen_costs.size() > 1) {
        audit->has_runner_up_cost = true;
        audit->runner_up_cost = chosen_costs[1];
      }
    }
    return result;
  }

 private:
  struct Transition {
    bool feasible = false;
    int lo = 0;
    int hi = 0;
  };

  struct SlotAssignment {
    int g = 0;
    const GroupCandidate* cand = nullptr;
    bool merged = false;
  };

  // Two adjacent single-request groups viewed as one (phantom repair).
  TrafficGroup MergedGroup(int g) const {
    const TrafficGroup& a = groups_[static_cast<size_t>(g)];
    const TrafficGroup& b = groups_[static_cast<size_t>(g) + 1];
    TrafficGroup merged;
    merged.requests = a.requests;
    merged.requests.insert(merged.requests.end(), b.requests.begin(), b.requests.end());
    merged.start_time = a.start_time;
    merged.end_time = b.end_time;
    merged.estimated_total = a.estimated_total + b.estimated_total;
    return merged;
  }

  const std::vector<GroupCandidate>& MergedCandidatesFor(int g, int lo, int hi) {
    const auto key = std::make_tuple(g, lo, hi);
    auto it = merged_cand_cache_.find(key);
    if (it != merged_cand_cache_.end()) {
      return it->second;
    }
    const std::shared_ptr<const GroupCandidateSet> set =
        EnumerateGroupCandidateSet(MergedGroup(g), db_, config_, display_, lo, hi,
                                   &query_cache_, &enum_arena_, context_id_);
    // Only the one-object-deficit explanations make sense for a merge (two
    // requests, one real object); the filtered copy stays local — the shared
    // cache keeps the unfiltered set for other consumers of the same key.
    std::vector<GroupCandidate> cands;
    for (const GroupCandidate& c : set->candidates) {
      if (c.wildcard ||
          static_cast<int>(c.tracks.size()) + c.audio_count + c.other_count != 1) {
        continue;
      }
      cands.push_back(c);
    }
    truncated_ = truncated_ || set->truncated;
    return merged_cand_cache_.emplace(key, std::move(cands)).first->second;
  }

  // Lazy, cached per-(group, start-range) candidate enumeration. The range
  // conditioning is what keeps the per-group search space tractable. Sets are
  // held by pointer: a shared-cache hit is never copied into the searcher.
  const std::vector<GroupCandidate>& CandidatesFor(int g, int lo, int hi) {
    const auto key = std::make_tuple(g, lo, hi);
    auto it = cand_cache_.find(key);
    if (it != cand_cache_.end()) {
      return it->second->candidates;
    }
    std::shared_ptr<const GroupCandidateSet> set = EnumerateGroupCandidateSet(
        groups_[static_cast<size_t>(g)], db_, config_, display_, lo, hi,
        &query_cache_, &enum_arena_, context_id_);
    truncated_ = truncated_ || set->truncated;
    return cand_cache_.emplace(key, std::move(set)).first->second->candidates;
  }

  Transition Apply(const GroupCandidate& c, int g, int lo, int hi) const {
    Transition tr;
    if (c.wildcard) {
      tr.feasible = true;
      tr.lo = lo;
      tr.hi = std::min(hi + groups_[static_cast<size_t>(g)].num_requests(), positions_);
      return tr;
    }
    if (c.video_start < 0) {
      tr.feasible = true;
      tr.lo = lo;
      tr.hi = hi;
      return tr;
    }
    if (c.video_start < lo || c.video_start > hi) {
      return tr;
    }
    tr.feasible = true;
    tr.lo = c.video_end() + 1;
    tr.hi = tr.lo;
    return tr;
  }

  bool CanComplete(int g, int lo, int hi) {
    if (g == static_cast<int>(groups_.size())) {
      return true;
    }
    const auto key = std::make_tuple(g, lo, hi);
    auto memo = can_memo_.find(key);
    if (memo != can_memo_.end()) {
      return memo->second;
    }
    can_memo_[key] = false;
    bool ok = false;
    const std::vector<GroupCandidate>& cands = CandidatesFor(g, lo, hi);
    for (const GroupCandidate& c : cands) {
      const Transition tr = Apply(c, g, lo, hi);
      if (tr.feasible && CanComplete(g + 1, tr.lo, tr.hi)) {
        ok = true;
        break;
      }
    }
    can_memo_[key] = ok;
    return ok;
  }

  InferredSequence BuildSequence(const std::vector<SlotAssignment>& assignment) const {
    InferredSequence seq;
    // Audio indexes also grow contiguously; anchor them to the video index
    // progression (the audio pipeline trails the video pipeline by one chunk,
    // so a group whose video run starts at s carries audio from index s-1).
    // The anchor re-synchronizes after wildcard groups.
    int audio_next = -1;
    for (const SlotAssignment& sa : assignment) {
      const GroupCandidate& c = *sa.cand;
      const TrafficGroup group =
          sa.merged ? MergedGroup(sa.g) : groups_[static_cast<size_t>(sa.g)];
      if (c.wildcard) {
        for (int r = 0; r < group.num_requests(); ++r) {
          InferredSlot slot;
          slot.kind = SlotKind::kOther;
          slot.request_time = group.start_time;
          slot.done_time = group.end_time;
          seq.slots.push_back(slot);
        }
        continue;
      }
      for (size_t j = 0; j < c.tracks.size(); ++j) {
        InferredSlot slot;
        slot.kind = SlotKind::kVideo;
        slot.chunk = media::ChunkRef{media::MediaType::kVideo, c.tracks[j],
                                     c.video_start + static_cast<int>(j)};
        slot.request_time = group.start_time;
        slot.done_time = group.end_time;
        seq.slots.push_back(slot);
      }
      if (c.video_start >= 0) {
        audio_next = std::max(audio_next, std::max(c.video_start - 1, 0));
      }
      for (int a = 0; a < c.audio_count; ++a) {
        InferredSlot slot;
        slot.kind = SlotKind::kAudio;
        const int audio_index = std::max(audio_next, 0);
        slot.chunk = media::ChunkRef{media::MediaType::kAudio, 0, audio_index};
        audio_next = audio_index + 1;
        slot.request_time = group.start_time;
        slot.done_time = group.end_time;
        seq.slots.push_back(slot);
      }
      for (int o = 0; o < c.other_count; ++o) {
        InferredSlot slot;
        slot.kind = SlotKind::kOther;
        slot.request_time = group.start_time;
        slot.done_time = group.end_time;
        seq.slots.push_back(slot);
      }
    }
    return seq;
  }

  const std::vector<TrafficGroup>& groups_;
  // Held by value: the snapshot pins its database version for the whole
  // search even if a live publish lands mid-run.
  DbSnapshot db_;
  const GroupSearchConfig& config_;
  const DisplayConstraints& display_;
  int positions_ = 0;
  // Shared-cache context id, interned once in the constructor (0 = no shared
  // cache; the enumeration then ignores it).
  uint32_t context_id_ = 0;
  std::map<std::tuple<int, int, int>, std::shared_ptr<const GroupCandidateSet>> cand_cache_;
  std::map<std::tuple<int, int, int>, std::vector<GroupCandidate>> merged_cand_cache_;
  // Thread-confined: one searcher runs one trace, on one thread. The arena
  // backs each enumeration's scratch and is reset at every call.
  CandidateQueryCache query_cache_;
  MonotonicArena enum_arena_;
  std::map<std::tuple<int, int, int>, bool> can_memo_;
  std::vector<std::vector<SlotAssignment>> sequences_;
  bool truncated_ = false;
};

}  // namespace

InferenceResult SearchGroupSequences(const std::vector<TrafficGroup>& groups,
                                     const DbSnapshot& db, const GroupSearchConfig& config,
                                     const DisplayConstraints& display) {
  GroupSequenceSearcher searcher(groups, db, config, display);
  return searcher.Run();
}

}  // namespace csi::infer
