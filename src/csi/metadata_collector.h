// Pre-measurement metadata collection (paper §4.1).
//
// Before a campaign CSI needs the sizes of all chunks of the test video.
// Many manifests carry explicit sizes; others only list URLs, in which case
// CSI issues HTTP HEAD requests and reads each chunk's Content-Length. This
// module implements that collector against an origin server over a real
// (simulated) connection: given a size-less manifest skeleton, it fills in
// every chunk size via HEAD probes and returns the completed chunk-size
// database input.

#ifndef CSI_SRC_CSI_METADATA_COLLECTOR_H_
#define CSI_SRC_CSI_METADATA_COLLECTOR_H_

#include <functional>

#include "src/http/http_session.h"
#include "src/media/manifest.h"
#include "src/sim/simulator.h"

namespace csi::infer {

// Returns `manifest` with all chunk sizes erased (URL-only manifest) — what a
// size-less HLS playlist gives the collector to start from.
media::Manifest StripSizes(const media::Manifest& manifest);

// Answers a HEAD probe: the Content-Length the origin would advertise for
// the resource tag.
using HeadOracle = std::function<Bytes(const std::string& tag)>;

struct CollectorStats {
  int head_requests = 0;
  TimeUs elapsed = 0;
};

// Fills in every chunk size of `skeleton` by issuing HEAD requests through
// `session` (which must already be connected or connecting). Runs the
// simulator until collection completes. The origin answers via the session's
// registered handler; `oracle` maps the completed HEAD exchange back to the
// advertised length (Content-Length travels in response headers, which the
// *requester* sees even though a passive observer would not).
media::Manifest CollectChunkSizes(sim::Simulator* sim, http::HttpSession* session,
                                  const media::Manifest& skeleton, const HeadOracle& oracle,
                                  CollectorStats* stats = nullptr);

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_METADATA_COLLECTOR_H_
