#include "src/csi/prefix_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iterator>
#include <utility>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"

namespace csi::infer {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// The two independent mixes behind the 128-bit fingerprint: a word-granular
// FNV-1a (lo) and the boost-style combine the candidate cache uses (hi). They
// share no structure, so a collision requires both to collide on the same
// field stream.
inline uint64_t FnvStep(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

inline uint64_t MixStep(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

// In-process override simulating CSI_PREFIX_CACHE=off (the real env read is
// latched in a function-local static and cannot be flipped after first use).
std::atomic<bool> g_force_env_off{false};

// Accumulates the two mixes over the observer-visible field stream. The AoS
// and columnar fingerprints both feed packets through AbsorbPacket in capture
// order, so they cannot drift apart field-by-field.
struct Mixer {
  uint64_t lo = kFnvOffset;
  uint64_t hi = 0x9AE16A3B2F90404Full;  // arbitrary odd seed, distinct from lo

  void Absorb(uint64_t v) {
    lo = FnvStep(lo, v);
    hi = MixStep(hi, v);
  }

  void AbsorbPacket(TimeUs timestamp, const capture::FlowKey& key,
                    bool from_client, Bytes payload, Bytes wire_size,
                    uint64_t tcp_seq, uint64_t tcp_ack,
                    uint64_t quic_packet_number, const std::string& sni) {
    Absorb(static_cast<uint64_t>(timestamp));
    // Pack the small fields into one word so short traces still stir both
    // accumulators per packet instead of feeding runs of near-zero words.
    Absorb((static_cast<uint64_t>(key.client_port) << 48) |
           (static_cast<uint64_t>(key.server_port) << 32) |
           (static_cast<uint64_t>(static_cast<uint8_t>(key.transport)) << 8) |
           static_cast<uint64_t>(from_client ? 1 : 0));
    Absorb((static_cast<uint64_t>(key.client_ip) << 32) |
           static_cast<uint64_t>(key.server_ip));
    Absorb(static_cast<uint64_t>(payload));
    Absorb(static_cast<uint64_t>(wire_size));
    Absorb(tcp_seq);
    Absorb(tcp_ack);
    Absorb(quic_packet_number);
    Absorb(static_cast<uint64_t>(sni.size()));
    for (const char c : sni) {
      Absorb(static_cast<uint64_t>(static_cast<uint8_t>(c)));
    }
  }
};

}  // namespace

TraceFingerprint FingerprintTrace(const capture::CaptureTrace& trace) {
  Mixer mixer;
  mixer.Absorb(static_cast<uint64_t>(trace.size()));
  for (const capture::PacketRecord& p : trace) {
    mixer.AbsorbPacket(p.timestamp, FlowKeyOf(p), p.from_client, p.payload,
                       p.wire_size, p.tcp_seq, p.tcp_ack, p.quic_packet_number,
                       p.sni);
  }
  return TraceFingerprint{mixer.lo, mixer.hi};
}

TraceFingerprint FingerprintColumns(const capture::PacketColumns& columns) {
  Mixer mixer;
  const size_t n = columns.packet_count();
  mixer.Absorb(static_cast<uint64_t>(n));
  // Replay the original capture order through the (flow, slot) maps so the
  // field stream matches FingerprintTrace exactly.
  const uint32_t* flow_of = columns.capture_flow();
  const uint32_t* slot_of = columns.capture_slot();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t slot = slot_of[i];
    mixer.AbsorbPacket(columns.timestamps()[slot],
                       columns.flow_key(flow_of[i]),
                       columns.from_client()[slot] != 0,
                       columns.payloads()[slot], columns.wire_sizes()[slot],
                       columns.tcp_seqs()[slot], columns.tcp_acks()[slot],
                       columns.quic_packet_numbers()[slot],
                       columns.sni_at(slot));
  }
  return TraceFingerprint{mixer.lo, mixer.hi};
}

size_t AnalysisPrefixCache::QueryHash::operator()(const Query& q) const {
  uint64_t h = q.fingerprint.lo;
  h = MixStep(h, q.fingerprint.hi);
  h = MixStep(h, q.context);
  return static_cast<size_t>(h);
}

AnalysisPrefixCache::AnalysisPrefixCache(size_t budget_bytes, int shards)
    : store_(budget_bytes, shards) {}

bool AnalysisPrefixCache::IsOffValue(const std::string& value) {
  return CacheOffSpelling(value);
}

bool AnalysisPrefixCache::EnvForcesOff() {
  static const bool off = [] {
    const char* env = std::getenv("CSI_PREFIX_CACHE");
    return (env != nullptr && IsOffValue(env)) || CsiCacheEnvDisables("prefix");
  }();
  return off || g_force_env_off.load(std::memory_order_relaxed);
}

void AnalysisPrefixCache::ForceEnvOffForTest(bool off) {
  g_force_env_off.store(off, std::memory_order_relaxed);
}

uint32_t AnalysisPrefixCache::InternContext(DesignType design, const std::string& host_suffix,
                                            const SplitterConfig& splitter) {
  Context ctx;
  ctx.design = design;
  ctx.host_suffix = host_suffix;
  // The splitter only runs for SQ, but interning it unconditionally is free
  // and keeps the id a function of the full knob set.
  ctx.splitter = splitter;

  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i] == ctx) {
      return static_cast<uint32_t>(i) + 1;
    }
  }
  contexts_.push_back(std::move(ctx));
  return static_cast<uint32_t>(contexts_.size());
}

AnalysisPrefixCache::Query AnalysisPrefixCache::MakeQuery(const capture::CaptureTrace& trace,
                                                          uint32_t context) {
  Query q;
  q.fingerprint = FingerprintTrace(trace);
  q.context = context;
  return q;
}

AnalysisPrefixCache::Query AnalysisPrefixCache::MakeQuery(
    const capture::PacketColumns& columns, uint32_t context) {
  Query q;
  q.fingerprint = FingerprintColumns(columns);
  q.context = context;
  return q;
}

size_t AnalysisPrefixCache::ApproxBytes(const AnalysisPrefix& prefix) {
  size_t bytes = sizeof(Entry) + sizeof(AnalysisPrefix) +
                 prefix.groups.capacity() * sizeof(TrafficGroup) +
                 prefix.exchanges.capacity() * sizeof(EstimatedExchange);
  for (const TrafficGroup& g : prefix.groups) {
    bytes += g.requests.capacity() * sizeof(DetectedRequest);
  }
  return bytes;
}

std::shared_ptr<const AnalysisPrefix> AnalysisPrefixCache::Lookup(const Query& query) {
  if (EnvForcesOff()) {
    return nullptr;
  }
  CSI_SPAN("prefix_cache_lookup");
  CSI_TRACE_SPAN("prefix_cache_lookup", "cache");
  auto& shard = store_.ShardFor(query);
  std::shared_ptr<const AnalysisPrefix> hit;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(query);
    if (it != shard.index.end()) {
      it->second->referenced = true;
      hit = it->second->prefix;
    }
  }
  CSI_COUNTER_INC("csi_prefix_cache_lookups_total");
  if (hit != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    CSI_COUNTER_INC("csi_prefix_cache_hits_total");
    CSI_TRACE_INSTANT("prefix_cache", "cache", {"outcome", "hit"},
                      {"reason", "fingerprint_match"});
    return hit;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CSI_COUNTER_INC("csi_prefix_cache_misses_total");
  CSI_TRACE_INSTANT("prefix_cache", "cache", {"outcome", "miss"}, {"reason", "absent"});
  return nullptr;
}

void AnalysisPrefixCache::Insert(const Query& query,
                                 std::shared_ptr<const AnalysisPrefix> prefix) {
  if (EnvForcesOff() || prefix == nullptr) {
    return;
  }
  Entry entry;
  entry.query = query;
  entry.bytes = ApproxBytes(*prefix);
  entry.prefix = std::move(prefix);
  // A replaced entry means a racing thread computed the same trace; values
  // are deterministic, so either copy serves — the store keeps the fresher.
  const int64_t evicted = store_.InsertAndEvict(std::move(entry));
  if (evicted < 0) {
    return;  // bigger than a whole shard's budget; refused
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  CSI_COUNTER_INC("csi_prefix_cache_inserts_total");
  if (evicted > 0) {
    evictions_.fetch_add(static_cast<uint64_t>(evicted), std::memory_order_relaxed);
    CSI_COUNTER_ADD("csi_prefix_cache_evictions_total", evicted);
  }
  // Per-shard drift between inserts is fine for a gauge; exact totals come
  // from stats().
  CSI_GAUGE_SET("csi_prefix_cache_bytes", static_cast<int64_t>(stats().bytes));
}

void AnalysisPrefixCache::Clear() { store_.Clear(); }

AnalysisPrefixCache::Stats AnalysisPrefixCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  store_.AccumulateShards(&s);
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    s.contexts = contexts_.size();
  }
  return s;
}

}  // namespace csi::infer
