#include "src/csi/metadata_collector.h"

#include <deque>

#include "src/app/resource.h"

namespace csi::infer {

media::Manifest StripSizes(const media::Manifest& manifest) {
  media::Manifest skeleton = manifest;
  for (auto* tracks : {&skeleton.video_tracks, &skeleton.audio_tracks}) {
    for (media::Track& t : *tracks) {
      for (media::Chunk& c : t.chunks) {
        c.size = 0;
      }
    }
  }
  return skeleton;
}

media::Manifest CollectChunkSizes(sim::Simulator* sim, http::HttpSession* session,
                                  const media::Manifest& skeleton, const HeadOracle& oracle,
                                  CollectorStats* stats) {
  media::Manifest filled = skeleton;
  const TimeUs start = sim->Now();

  // Work list of every chunk reference.
  std::deque<media::ChunkRef> work;
  for (int t = 0; t < filled.num_video_tracks(); ++t) {
    for (int i = 0; i < filled.num_positions(); ++i) {
      work.push_back(media::ChunkRef{media::MediaType::kVideo, t, i});
    }
  }
  for (int t = 0; t < filled.num_audio_tracks(); ++t) {
    for (int i = 0;
         i < static_cast<int>(filled.audio_tracks[static_cast<size_t>(t)].chunks.size());
         ++i) {
      work.push_back(media::ChunkRef{media::MediaType::kAudio, t, i});
    }
  }

  int completed = 0;
  const int total = static_cast<int>(work.size());
  int issued = 0;

  // Issue HEAD probes with a small pipeline depth so collection is fast but
  // does not flood the connection.
  constexpr int kPipelineDepth = 4;
  std::function<void()> pump = [&]() {
    while (issued - completed < kPipelineDepth && !work.empty()) {
      const media::ChunkRef ref = work.front();
      work.pop_front();
      ++issued;
      const std::string tag = app::Resource::HeadOf(filled.asset_id, ref).ToTag();
      session->Get(tag, 340, [&, ref, tag](const http::FetchResult&) {
        // A HEAD response has no body; the advertised Content-Length is
        // visible to the requester in the response headers.
        const Bytes advertised = oracle(tag);
        auto& tracks = ref.type == media::MediaType::kVideo ? filled.video_tracks
                                                            : filled.audio_tracks;
        tracks[static_cast<size_t>(ref.track)].chunks[static_cast<size_t>(ref.index)].size =
            advertised;
        ++completed;
        pump();
      });
    }
  };
  pump();
  // Drive the simulation until every probe answered (bounded for safety).
  const TimeUs deadline = sim->Now() + 3600 * kUsPerSec;
  while (completed < total && sim->Now() < deadline && sim->pending_events() > 0) {
    sim->Run(1024);
  }

  if (stats != nullptr) {
    stats->head_requests = issued;
    stats->elapsed = sim->Now() - start;
  }
  return filled;
}

}  // namespace csi::infer
