// Core types of the CSI inference engine.

#ifndef CSI_SRC_CSI_TYPES_H_
#define CSI_SRC_CSI_TYPES_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/media/manifest.h"

namespace csi::infer {

// The four ABR system design types of paper Table 2: Combined/Separate audio
// crossed with HTTPS/QUIC. Only SQ multiplexes transport streams.
enum class DesignType { kCH, kSH, kCQ, kSQ };

std::string DesignTypeName(DesignType type);
bool IsQuic(DesignType type);
bool HasSeparateAudio(DesignType type);

// One detected HTTP exchange: a request packet and the estimated size of the
// response downloaded before the next request (Step 1 output, §3.1).
struct EstimatedExchange {
  TimeUs request_time = 0;
  TimeUs last_data_time = 0;  // timestamp of the final attributed data packet
  Bytes estimated_size = 0;   // S~_i
  // The "request" is the ClientHello/Initial (observable via the SNI): a
  // handshake exchange, not an HTTP request.
  bool carries_sni = false;

  friend bool operator==(const EstimatedExchange&, const EstimatedExchange&) = default;
};

// What a request was inferred to be.
enum class SlotKind {
  kVideo,  // a specific video chunk
  kAudio,  // an audio chunk (CBR; identified by position in audio order)
  kOther,  // non-media exchange (handshake tail, manifest, telemetry)
};

// Inference output for one request slot.
struct InferredSlot {
  SlotKind kind = SlotKind::kOther;
  media::ChunkRef chunk;  // valid for kVideo and kAudio
  TimeUs request_time = 0;
  TimeUs done_time = 0;
  Bytes estimated_size = 0;

  friend bool operator==(const InferredSlot&, const InferredSlot&) = default;
};

// One candidate chunk sequence matching the whole session (the paper's
// algorithm may output several; see Table 4 best/worst columns).
struct InferredSequence {
  std::vector<InferredSlot> slots;

  friend bool operator==(const InferredSequence&, const InferredSequence&) = default;
};

// Full inference result.
struct InferenceResult {
  std::vector<InferredSequence> sequences;
  // True if enumeration hit the cap and `sequences` is a subset.
  bool truncated = false;
  // Estimated exchanges the sequences are built over (diagnostics).
  std::vector<EstimatedExchange> exchanges;
  // SQ only: sizes (request counts) of the traffic groups after splitting.
  std::vector<int> group_sizes;

  friend bool operator==(const InferenceResult&, const InferenceResult&) = default;
};

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_TYPES_H_
