#include "src/csi/path_search.h"

#include <algorithm>
#include <functional>

#include "src/common/telemetry.h"

namespace csi::infer {

std::vector<SlotOptions> BuildSlotOptions(const std::vector<EstimatedExchange>& exchanges,
                                          const ChunkDatabase& db, double k,
                                          const DisplayConstraints& display) {
  CSI_SPAN("slot_options");
  std::vector<SlotOptions> options;
  options.reserve(exchanges.size());
  for (const auto& ex : exchanges) {
    SlotOptions slot;
    slot.video_candidates = db.VideoCandidates(ex.estimated_size, k);
    if (!display.empty()) {
      std::erase_if(slot.video_candidates, [&display](const media::ChunkRef& c) {
        auto it = display.find(c.index);
        return it != display.end() && it->second != c.track;
      });
    }
    slot.audio_track = db.MatchingAudioTrack(ex.estimated_size, k);
    slot.other_ok = slot.video_candidates.empty() && slot.audio_track < 0;
    options.push_back(std::move(slot));
  }
  return options;
}

namespace {

struct NodeId {
  int layer = -1;
  int cand = -1;
};

class Searcher {
 public:
  Searcher(const std::vector<EstimatedExchange>& exchanges,
           const std::vector<SlotOptions>& options, const ChunkDatabase& db,
           const PathSearchConfig& config)
      : exchanges_(exchanges), options_(options), db_(db), config_(config) {
    const int n = static_cast<int>(options_.size());
    // suffix_skippable_[i]: every layer >= i is skippable.
    suffix_skippable_.assign(static_cast<size_t>(n) + 1, true);
    for (int i = n - 1; i >= 0; --i) {
      suffix_skippable_[static_cast<size_t>(i)] =
          suffix_skippable_[static_cast<size_t>(i) + 1] && options_[static_cast<size_t>(i)].skippable();
    }
    prefix_skippable_.assign(static_cast<size_t>(n) + 1, true);
    for (int i = 0; i < n; ++i) {
      prefix_skippable_[static_cast<size_t>(i) + 1] =
          prefix_skippable_[static_cast<size_t>(i)] && options_[static_cast<size_t>(i)].skippable();
    }
    // Index lookup per layer.
    by_index_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto& cands = options_[static_cast<size_t>(i)].video_candidates;
      for (int c = 0; c < static_cast<int>(cands.size()); ++c) {
        by_index_[static_cast<size_t>(i)][cands[static_cast<size_t>(c)].index].push_back(c);
      }
    }
    reach_memo_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      reach_memo_[static_cast<size_t>(i)].assign(
          options_[static_cast<size_t>(i)].video_candidates.size(), -1);
    }
  }

  InferenceResult Run() {
    CSI_SPAN("path_search");
    InferenceResult result;
    result.exchanges = exchanges_;
    const int n = static_cast<int>(options_.size());
    if (n == 0) {
      return result;
    }
    std::vector<NodeId> path;
    // Start nodes: all layers reachable through a skippable prefix.
    for (int i = 0; i < n && !truncated_; ++i) {
      if (!prefix_skippable_[static_cast<size_t>(i)]) {
        break;
      }
      const auto& cands = options_[static_cast<size_t>(i)].video_candidates;
      for (int c = 0; c < static_cast<int>(cands.size()) && !truncated_; ++c) {
        if (CanReachSink(i, c)) {
          path.push_back(NodeId{i, c});
          Dfs(path);
          path.pop_back();
        }
      }
    }
    // Degenerate all-non-video interpretation, only if nothing else exists.
    if (sequences_.empty() && suffix_skippable_[0]) {
      sequences_.push_back({});
    }
    for (const auto& assignment : sequences_) {
      result.sequences.push_back(BuildSequence(assignment));
    }
    result.truncated = truncated_;
    CSI_COUNTER_ADD("csi_path_nodes_expanded_total", nodes_expanded_);
    if (truncated_) {
      CSI_COUNTER_INC("csi_path_truncated_total");
    }
    return result;
  }

 private:
  // Last layer a node at `layer` may connect forward to: the first
  // non-skippable layer after it (inclusive), or the final layer.
  int LastReachableLayer(int layer) const {
    const int n = static_cast<int>(options_.size());
    for (int j = layer + 1; j < n; ++j) {
      if (!options_[static_cast<size_t>(j)].skippable()) {
        return j;
      }
    }
    return n - 1;
  }

  bool CanReachSink(int layer, int cand) {
    int8_t& memo = reach_memo_[static_cast<size_t>(layer)][static_cast<size_t>(cand)];
    if (memo != -1) {
      return memo != 0;
    }
    memo = 0;
    const int n = static_cast<int>(options_.size());
    if (suffix_skippable_[static_cast<size_t>(layer) + 1]) {
      memo = 1;
      return true;
    }
    const int index =
        options_[static_cast<size_t>(layer)].video_candidates[static_cast<size_t>(cand)].index;
    const int last = LastReachableLayer(layer);
    for (int j = layer + 1; j <= last && j < n; ++j) {
      auto it = by_index_[static_cast<size_t>(j)].find(index + 1);
      if (it == by_index_[static_cast<size_t>(j)].end()) {
        continue;
      }
      for (int c2 : it->second) {
        if (CanReachSink(j, c2)) {
          memo = 1;
          return true;
        }
      }
    }
    return false;
  }

  void Dfs(std::vector<NodeId>& path) {
    if (truncated_) {
      return;
    }
    ++nodes_expanded_;
    const NodeId node = path.back();
    const int n = static_cast<int>(options_.size());
    // Terminal: the remaining layers are all skippable.
    if (suffix_skippable_[static_cast<size_t>(node.layer) + 1]) {
      if (static_cast<int>(sequences_.size()) >= config_.max_sequences) {
        truncated_ = true;
        return;
      }
      sequences_.push_back(path);
    }
    const int index = options_[static_cast<size_t>(node.layer)]
                          .video_candidates[static_cast<size_t>(node.cand)]
                          .index;
    const int last = LastReachableLayer(node.layer);
    for (int j = node.layer + 1; j <= last && j < n && !truncated_; ++j) {
      auto it = by_index_[static_cast<size_t>(j)].find(index + 1);
      if (it == by_index_[static_cast<size_t>(j)].end()) {
        continue;
      }
      for (int c2 : it->second) {
        if (!CanReachSink(j, c2)) {
          continue;
        }
        path.push_back(NodeId{j, c2});
        Dfs(path);
        path.pop_back();
        if (truncated_) {
          return;
        }
      }
    }
  }

  InferredSequence BuildSequence(const std::vector<NodeId>& assignment) const {
    InferredSequence seq;
    const int n = static_cast<int>(options_.size());
    seq.slots.resize(static_cast<size_t>(n));
    std::vector<int> video_at(static_cast<size_t>(n), -1);
    for (const NodeId& node : assignment) {
      video_at[static_cast<size_t>(node.layer)] = node.cand;
    }
    // Audio indexes grow contiguously too; anchor them at the sequence's
    // first video index (sessions start audio and video at the same playback
    // position).
    int audio_base = 0;
    if (!assignment.empty()) {
      audio_base = options_[static_cast<size_t>(assignment.front().layer)]
                       .video_candidates[static_cast<size_t>(assignment.front().cand)]
                       .index;
    }
    int audio_ordinal = 0;
    for (int i = 0; i < n; ++i) {
      InferredSlot& slot = seq.slots[static_cast<size_t>(i)];
      slot.request_time = exchanges_[static_cast<size_t>(i)].request_time;
      slot.done_time = exchanges_[static_cast<size_t>(i)].last_data_time;
      slot.estimated_size = exchanges_[static_cast<size_t>(i)].estimated_size;
      if (video_at[static_cast<size_t>(i)] >= 0) {
        slot.kind = SlotKind::kVideo;
        slot.chunk = options_[static_cast<size_t>(i)]
                         .video_candidates[static_cast<size_t>(video_at[static_cast<size_t>(i)])];
      } else if (options_[static_cast<size_t>(i)].audio_track >= 0) {
        slot.kind = SlotKind::kAudio;
        slot.chunk = media::ChunkRef{media::MediaType::kAudio,
                                     options_[static_cast<size_t>(i)].audio_track,
                                     audio_base + audio_ordinal};
        ++audio_ordinal;
      } else {
        slot.kind = SlotKind::kOther;
      }
    }
    return seq;
  }

  const std::vector<EstimatedExchange>& exchanges_;
  const std::vector<SlotOptions>& options_;
  const ChunkDatabase& db_;
  const PathSearchConfig& config_;

  std::vector<bool> suffix_skippable_;
  std::vector<bool> prefix_skippable_;
  std::vector<std::map<int, std::vector<int>>> by_index_;
  std::vector<std::vector<int8_t>> reach_memo_;
  std::vector<std::vector<NodeId>> sequences_;
  bool truncated_ = false;
  int64_t nodes_expanded_ = 0;
};

}  // namespace

InferenceResult SearchSequences(const std::vector<EstimatedExchange>& exchanges,
                                const std::vector<SlotOptions>& options,
                                const ChunkDatabase& db, const PathSearchConfig& config) {
  Searcher searcher(exchanges, options, db, config);
  return searcher.Run();
}

}  // namespace csi::infer
