#include "src/csi/db_snapshot.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"

namespace csi::infer {

namespace internal {

uint64_t NextSnapshotStateId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

namespace {

std::shared_ptr<const internal::SnapshotRep> MakeFullRep(
    std::shared_ptr<const ChunkDatabase> owned, const ChunkDatabase* base, uint64_t epoch) {
  auto rep = std::make_shared<internal::SnapshotRep>();
  rep->owned_base = std::move(owned);
  rep->base = base;
  rep->audio_sizes = base->audio_sizes();
  rep->num_positions = base->num_positions();
  rep->epoch = epoch;
  rep->state_id = internal::NextSnapshotStateId();
  // Standalone full builds are their own (single-state) lineage.
  rep->lineage_id = rep->state_id;
  return rep;
}

}  // namespace

DbSnapshot::DbSnapshot(const ChunkDatabase& db) : rep_(MakeFullRep(nullptr, &db, 0)) {}

DbSnapshot::DbSnapshot(std::shared_ptr<const ChunkDatabase> db, uint64_t epoch) {
  const ChunkDatabase* base = db.get();
  rep_ = MakeFullRep(std::move(db), base, epoch);
}

std::pair<size_t, size_t> DbSnapshot::DeltaRange(Bytes lo, Bytes hi) const {
  const std::vector<internal::DeltaEntry>& delta = rep_->delta;
  const auto first = std::lower_bound(
      delta.begin(), delta.end(), lo,
      [](const internal::DeltaEntry& e, Bytes bound) { return e.size < bound; });
  const auto last = std::upper_bound(
      first, delta.end(), hi,
      [](Bytes bound, const internal::DeltaEntry& e) { return bound < e.size; });
  // Same contract as ChunkDatabase::FlatRange: last >= first even when the
  // window is inverted (hi < lo).
  return {static_cast<size_t>(first - delta.begin()),
          std::max(static_cast<size_t>(first - delta.begin()),
                   static_cast<size_t>(last - delta.begin()))};
}

bool DbSnapshot::DeltaHasSizeInWindow(Bytes lo, Bytes hi, int min_index) const {
  const auto [first, last] = DeltaRange(lo, hi);
  const std::vector<internal::DeltaEntry>& delta = rep_->delta;
  for (size_t i = first; i < last; ++i) {
    if (ChunkDatabase::IndexOfPacked(delta[i].packed) >= min_index) {
      return true;
    }
  }
  return false;
}

std::vector<media::ChunkRef> DbSnapshot::VideoCandidatesInSizeRange(Bytes lo, Bytes hi) const {
  const internal::SnapshotRep& rep = *rep_;
  if (rep.delta.empty()) {
    std::vector<media::ChunkRef> out = rep.base->VideoCandidatesInSizeRange(lo, hi);
    CSI_TRACE_INSTANT("db_query", "db", {"lo", lo}, {"hi", hi},
                      {"candidates", static_cast<int64_t>(out.size())});
    return out;
  }

  const auto [bfirst, blast] = rep.base->FlatRange(lo, hi);
  const auto [dfirst, dlast] = DeltaRange(lo, hi);
  CSI_COUNTER_INC("csi_candidate_queries_total");
  CSI_HISTOGRAM_OBSERVE("csi_candidates_per_query", telemetry::CountBuckets(),
                        (blast - bfirst) + (dlast - dfirst));

  // Two-pointer merge of the base window and the delta window in the shared
  // (size, packed) order. The sets are disjoint (delta positions all lie past
  // the base), so this reproduces exactly the flat-index order a full rebuild
  // would produce — the byte-identity contract.
  const std::vector<Bytes>& base_sizes = rep.base->flat_sizes();
  const std::vector<uint32_t>& base_packed = rep.base->flat_packed_refs();
  std::vector<media::ChunkRef> out;
  out.reserve((blast - bfirst) + (dlast - dfirst));
  auto push = [&out](uint32_t packed) {
    out.push_back(media::ChunkRef{media::MediaType::kVideo,
                                  ChunkDatabase::TrackOfPacked(packed),
                                  ChunkDatabase::IndexOfPacked(packed)});
  };
  size_t b = bfirst;
  size_t d = dfirst;
  while (b < blast && d < dlast) {
    const internal::DeltaEntry& e = rep.delta[d];
    if (base_sizes[b] < e.size || (base_sizes[b] == e.size && base_packed[b] < e.packed)) {
      push(base_packed[b++]);
    } else {
      push(e.packed);
      ++d;
    }
  }
  for (; b < blast; ++b) {
    push(base_packed[b]);
  }
  for (; d < dlast; ++d) {
    push(rep.delta[d].packed);
  }
  CSI_TRACE_INSTANT("db_query", "db", {"lo", lo}, {"hi", hi},
                    {"candidates", static_cast<int64_t>(out.size())});
  return out;
}

std::vector<media::ChunkRef> DbSnapshot::VideoCandidates(Bytes estimated, double k) const {
  if (rep_->delta.empty()) {
    return rep_->base->VideoCandidates(estimated, k);
  }
  std::vector<media::ChunkRef> out =
      VideoCandidatesInSizeRange(ChunkDatabase::AdmissibleLow(estimated, k), estimated);
  // Historical (track-major) ordering, matching ChunkDatabase::VideoCandidates.
  std::stable_sort(out.begin(), out.end(),
                   [](const media::ChunkRef& a, const media::ChunkRef& b) {
                     return a.track < b.track;
                   });
  return out;
}

bool DbSnapshot::HasVideoCandidate(Bytes estimated, double k) const {
  const internal::SnapshotRep& rep = *rep_;
  if (rep.delta.empty()) {
    return rep.base->HasVideoCandidate(estimated, k);
  }
  const Bytes lo = ChunkDatabase::AdmissibleLow(estimated, k);
  const auto [bfirst, blast] = rep.base->FlatRange(lo, estimated);
  CSI_COUNTER_INC("csi_candidate_probes_total");
  if (bfirst < blast) {
    return true;
  }
  const auto [dfirst, dlast] = DeltaRange(lo, estimated);
  return dfirst < dlast;
}

bool DbSnapshot::AudioPossible(Bytes estimated, double k) const {
  return MatchingAudioTrack(estimated, k) >= 0;
}

int DbSnapshot::MatchingAudioTrack(Bytes estimated, double k) const {
  const std::vector<Bytes>& sizes = rep_->audio_sizes;
  for (size_t a = 0; a < sizes.size(); ++a) {
    const double size = static_cast<double>(sizes[a]);
    if (size <= static_cast<double>(estimated) &&
        static_cast<double>(estimated) <= (1.0 + k) * size) {
      return static_cast<int>(a);
    }
  }
  return -1;
}

void CandidateQueryCache::Rebind(DbSnapshot snapshot) {
  if (!snapshot_.valid() || !snapshot_.SameStateAs(snapshot)) {
    track_ordered_memo_ = Memo{};
    flat_ordered_memo_ = Memo{};
  }
  snapshot_ = std::move(snapshot);
}

template <typename Fetch>
const std::vector<media::ChunkRef>& CandidateQueryCache::Lookup(Memo* memo,
                                                                const Window& window,
                                                                const Fetch& fetch) {
  auto it = memo->map.find(window);
  if (it != memo->map.end()) {
    ++hits_;
    CSI_COUNTER_INC("csi_candidate_cache_hits_total");
    return it->second;
  }
  ++misses_;
  CSI_COUNTER_INC("csi_candidate_cache_misses_total");
  if (memo->map.size() >= max_entries_per_memo_) {
    // FIFO eviction: drop the oldest window. Erasing one entry leaves every
    // other entry's storage in place, so only references to the evicted
    // window die — hence the "valid until the next call" contract.
    memo->map.erase(memo->order.front());
    memo->order.pop_front();
    ++evictions_;
    CSI_COUNTER_INC("csi_candidate_cache_evictions_total");
  }
  memo->order.push_back(window);
  return memo->map.emplace(window, fetch()).first->second;
}

const std::vector<media::ChunkRef>& CandidateQueryCache::VideoCandidates(Bytes estimated,
                                                                         double k) {
  const Window window{ChunkDatabase::AdmissibleLow(estimated, k), estimated};
  return Lookup(&track_ordered_memo_, window,
                [&]() { return snapshot_.VideoCandidates(estimated, k); });
}

const std::vector<media::ChunkRef>& CandidateQueryCache::VideoCandidatesInSizeRange(Bytes lo,
                                                                                    Bytes hi) {
  const Window window{lo, hi};
  return Lookup(&flat_ordered_memo_, window,
                [&]() { return snapshot_.VideoCandidatesInSizeRange(lo, hi); });
}

}  // namespace csi::infer
