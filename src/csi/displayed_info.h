// Displayed-chunk information from screen analysis (paper §4.2).
//
// Players expose the currently displayed track on screen (YouTube
// stats-for-nerds, Netflix test patterns); CSI can OCR it periodically. We
// model the OCR as sampling the player's display log every `period`: any
// chunk displayed for at least one sampling period yields an
// (index -> track) constraint, which prunes inference candidates (§6.2).

#ifndef CSI_SRC_CSI_DISPLAYED_INFO_H_
#define CSI_SRC_CSI_DISPLAYED_INFO_H_

#include <vector>

#include "src/csi/path_search.h"
#include "src/player/abr_player.h"

namespace csi::infer {

struct OcrConfig {
  // Screen sampling period.
  TimeUs period = kUsPerSec;
  // Fraction of samples the OCR fails to read (noise).
  double miss_rate = 0.0;
};

// Builds constraints from the player's display log (the simulated screen).
DisplayConstraints SampleDisplayedChunks(const std::vector<player::DisplayRecord>& displays,
                                         TimeUs session_end, const OcrConfig& config,
                                         Rng& rng);

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_DISPLAYED_INFO_H_
