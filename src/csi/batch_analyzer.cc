#include "src/csi/batch_analyzer.h"

#include <thread>

namespace csi::infer {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

BatchAnalyzer::BatchAnalyzer(const media::Manifest* manifest, InferenceConfig config,
                             BatchConfig batch)
    : batch_(batch),
      pool_(ResolveThreads(batch.threads)),
      engine_(manifest,
              [&]() {
                if (batch.parallel_group_search) {
                  config.search_pool = &pool_;
                }
                return std::move(config);
              }()) {}

std::vector<InferenceResult> BatchAnalyzer::AnalyzeAll(
    const std::vector<const capture::CaptureTrace*>& traces) {
  std::vector<InferenceResult> results(traces.size());
  pool_.ParallelFor(static_cast<int64_t>(traces.size()), [&](int64_t i) {
    results[static_cast<size_t>(i)] = engine_.Analyze(*traces[static_cast<size_t>(i)]);
  });
  return results;
}

std::vector<InferenceResult> BatchAnalyzer::AnalyzeAll(
    const std::vector<capture::CaptureTrace>& traces) {
  std::vector<const capture::CaptureTrace*> pointers;
  pointers.reserve(traces.size());
  for (const capture::CaptureTrace& trace : traces) {
    pointers.push_back(&trace);
  }
  return AnalyzeAll(pointers);
}

}  // namespace csi::infer
