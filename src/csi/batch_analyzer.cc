#include "src/csi/batch_analyzer.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"
#include "src/csi/candidate_cache.h"

namespace csi::infer {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// A tier's budget: the deprecated per-tier alias wins when set (>= 0, with 0
// still meaning "disabled"); otherwise the unified CacheOptions decides.
int ResolveBudgetMb(int legacy_mb, const CacheOptions& options) {
  return legacy_mb >= 0 ? legacy_mb : options.effective_budget_mb();
}

// Creates the batch-wide shared candidate cache unless the caller brought
// their own (either config spelling), disabled the tier, or the env forces it
// off.
void ResolveCandidateCache(InferenceConfig* config, const BatchConfig& batch) {
  const int budget_mb = ResolveBudgetMb(batch.candidate_cache_mb, batch.caches.candidate);
  if (config->candidate_cache != nullptr || config->caches.candidate != nullptr ||
      budget_mb <= 0 || GroupCandidateCache::EnvForcesOff()) {
    return;
  }
  config->candidate_cache =
      std::make_shared<GroupCandidateCache>(static_cast<size_t>(budget_mb) * 1024 * 1024);
}

// Same resolution for the analysis-prefix cache.
void ResolvePrefixCache(InferenceConfig* config, const BatchConfig& batch) {
  const int budget_mb = ResolveBudgetMb(batch.prefix_cache_mb, batch.caches.prefix);
  if (config->prefix_cache != nullptr || config->caches.prefix != nullptr ||
      budget_mb <= 0 || AnalysisPrefixCache::EnvForcesOff()) {
    return;
  }
  config->prefix_cache =
      std::make_shared<AnalysisPrefixCache>(static_cast<size_t>(budget_mb) * 1024 * 1024);
}

// Same resolution for the whole-result cache (no legacy alias).
void ResolveResultCache(InferenceConfig* config, const BatchConfig& batch) {
  const int budget_mb = batch.caches.result.effective_budget_mb();
  if (config->caches.result != nullptr || budget_mb <= 0 || ResultCache::EnvForcesOff()) {
    return;
  }
  config->caches.result =
      std::make_shared<ResultCache>(static_cast<size_t>(budget_mb) * 1024 * 1024);
}

}  // namespace

InferenceEngine BatchAnalyzer::MakeEngine(const media::Manifest* manifest,
                                          InferenceConfig config, const BatchConfig& batch,
                                          ThreadPool* pool) {
  if (batch.parallel_group_search) {
    config.search_pool = pool;
  }
  // The shared database builds once, before any trace runs, so the batch
  // pool is idle and free to take the shard jobs.
  if (config.db_build_pool == nullptr) {
    config.db_build_pool = pool;
  }
  if (config.db_build_shards == 0) {
    config.db_build_shards = batch.db_build_shards;
  }
  ResolveCandidateCache(&config, batch);
  ResolvePrefixCache(&config, batch);
  ResolveResultCache(&config, batch);
  return InferenceEngine(manifest, std::move(config));
}

InferenceEngine BatchAnalyzer::MakeEngine(DbSnapshot snapshot, InferenceConfig config,
                                          const BatchConfig& batch, ThreadPool* pool) {
  if (batch.parallel_group_search) {
    config.search_pool = pool;
  }
  ResolveCandidateCache(&config, batch);
  ResolvePrefixCache(&config, batch);
  ResolveResultCache(&config, batch);
  return InferenceEngine(std::move(snapshot), std::move(config));
}

BatchAnalyzer::BatchAnalyzer(const media::Manifest* manifest, InferenceConfig config,
                             BatchConfig batch)
    : batch_(std::move(batch)),
      pool_(ResolveThreads(batch_.threads)),
      engine_(MakeEngine(manifest, std::move(config), batch_, &pool_)) {}

BatchAnalyzer::BatchAnalyzer(DbSnapshot snapshot, InferenceConfig config, BatchConfig batch)
    : batch_(std::move(batch)),
      pool_(ResolveThreads(batch_.threads)),
      engine_(MakeEngine(std::move(snapshot), std::move(config), batch_, &pool_)) {}

std::vector<InferenceResult> BatchAnalyzer::RunBatch(
    size_t total,
    const std::function<InferenceResult(size_t index, InferenceAudit* audit)>& analyze_one,
    std::vector<double>* trace_seconds, std::vector<std::string>* trace_errors,
    std::vector<InferenceAudit>* audits) {
  std::vector<InferenceResult> results(total);
  if (trace_seconds != nullptr) {
    trace_seconds->assign(total, 0.0);
  }
  if (trace_errors != nullptr) {
    trace_errors->assign(total, std::string());
  }
  if (audits != nullptr) {
    audits->assign(total, InferenceAudit{});
  }
  CSI_TRACE_SPAN_ARGS("batch_analyze_all", "batch",
                      {"traces", static_cast<int64_t>(total)});
  std::atomic<size_t> completed{0};
  std::mutex progress_mu;
  pool_.ParallelFor(static_cast<int64_t>(total), [&](int64_t i) {
    // One clock pair per trace is noise next to Analyze itself; reading it
    // unconditionally keeps the timing slots available with telemetry off.
    const auto start = std::chrono::steady_clock::now();
    CSI_TRACE_SPAN_ARGS("batch_trace", "batch", {"index", i});
    // A throwing trace must not take its siblings down with it: the slot
    // keeps a default result and the error is reported by index. Letting the
    // exception escape would make ParallelFor abort the remaining traces.
    try {
      InferenceAudit* const audit =
          audits != nullptr ? &(*audits)[static_cast<size_t>(i)] : nullptr;
      results[static_cast<size_t>(i)] = analyze_one(static_cast<size_t>(i), audit);
    } catch (const std::exception& e) {
      if (trace_errors != nullptr) {
        (*trace_errors)[static_cast<size_t>(i)] = e.what();
      }
      CSI_COUNTER_INC("csi_batch_trace_analyze_failures_total");
      trace::TraceSession::Global().DumpFlightRecord(
          "batch trace " + std::to_string(i), e.what());
    } catch (...) {
      if (trace_errors != nullptr) {
        (*trace_errors)[static_cast<size_t>(i)] = "unknown error";
      }
      CSI_COUNTER_INC("csi_batch_trace_analyze_failures_total");
      trace::TraceSession::Global().DumpFlightRecord(
          "batch trace " + std::to_string(i), "unknown error");
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (trace_seconds != nullptr) {
      (*trace_seconds)[static_cast<size_t>(i)] = seconds;
    }
    CSI_HISTOGRAM_OBSERVE("csi_batch_trace_duration_seconds",
                          telemetry::DurationBuckets(), seconds);
    CSI_COUNTER_INC("csi_batch_traces_total");
    const size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
    CSI_GAUGE_SET("csi_batch_traces_in_flight", total - done);
    if (batch_.progress && batch_.progress_every > 0 &&
        (done % batch_.progress_every == 0 || done == total)) {
      std::lock_guard<std::mutex> lock(progress_mu);
      batch_.progress(done, total);
    }
  });
  return results;
}

std::vector<InferenceResult> BatchAnalyzer::AnalyzeAll(
    const std::vector<const capture::CaptureTrace*>& traces,
    std::vector<double>* trace_seconds, std::vector<std::string>* trace_errors,
    std::vector<InferenceAudit>* audits) {
  return RunBatch(
      traces.size(),
      [&](size_t i, InferenceAudit* audit) {
        const capture::CaptureTrace& trace = *traces[i];
        return batch_.analyze_override ? batch_.analyze_override(trace)
                                       : engine_.Analyze(trace, {}, audit);
      },
      trace_seconds, trace_errors, audits);
}

std::vector<InferenceResult> BatchAnalyzer::AnalyzeAll(
    const std::vector<capture::CaptureTrace>& traces, std::vector<double>* trace_seconds,
    std::vector<std::string>* trace_errors, std::vector<InferenceAudit>* audits) {
  std::vector<const capture::CaptureTrace*> pointers;
  pointers.reserve(traces.size());
  for (const capture::CaptureTrace& trace : traces) {
    pointers.push_back(&trace);
  }
  return AnalyzeAll(pointers, trace_seconds, trace_errors, audits);
}

std::vector<InferenceResult> BatchAnalyzer::AnalyzeAll(
    const std::vector<const capture::PacketColumns*>& columns,
    std::vector<double>* trace_seconds, std::vector<std::string>* trace_errors,
    std::vector<InferenceAudit>* audits) {
  return RunBatch(
      columns.size(),
      [&](size_t i, InferenceAudit* audit) {
        return engine_.Analyze(*columns[i], {}, audit);
      },
      trace_seconds, trace_errors, audits);
}

std::vector<InferenceResult> BatchAnalyzer::AnalyzeAll(
    const std::vector<capture::PacketColumns>& columns, std::vector<double>* trace_seconds,
    std::vector<std::string>* trace_errors, std::vector<InferenceAudit>* audits) {
  std::vector<const capture::PacketColumns*> pointers;
  pointers.reserve(columns.size());
  for (const capture::PacketColumns& c : columns) {
    pointers.push_back(&c);
  }
  return AnalyzeAll(pointers, trace_seconds, trace_errors, audits);
}

}  // namespace csi::infer
