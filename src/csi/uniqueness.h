// Fingerprint-feasibility analysis (paper §3.3 and §6.1).
//
// Quantifies how identifiable chunks are from (error-bounded) size estimates:
//   * two chunks are *similar* under bound k when each could be the other's
//     estimate source: S_i <= (1+k) S_j and S_j <= (1+k) S_i;
//   * a chunk is *unique* if no other chunk in any video track is similar;
//   * a chunk sequence (contiguous indexes, one track choice per position) is
//     unique if no other sequence is elementwise similar.
// Single-chunk uniqueness is computed exactly; sequence uniqueness is an
// exact test applied to a uniform sample of sequences (the full space is
// O(P * T^L)), giving an unbiased estimate of the paper's percentages.

#ifndef CSI_SRC_CSI_UNIQUENESS_H_
#define CSI_SRC_CSI_UNIQUENESS_H_

#include "src/common/rng.h"
#include "src/media/manifest.h"

namespace csi::infer {

// True if sizes a and b are similar under bound k.
bool SizesSimilar(Bytes a, Bytes b, double k);

// Exact fraction of video chunks (across all tracks) with no similar peer.
double UniqueSingleChunkFraction(const media::Manifest& manifest, double k);

// Estimated fraction of unique length-`length` sequences, from `samples`
// uniformly drawn sequences each tested exactly against the full space.
double UniqueSequenceFraction(const media::Manifest& manifest, int length, double k,
                              int samples, Rng& rng);

}  // namespace csi::infer

#endif  // CSI_SRC_CSI_UNIQUENESS_H_
