#include "src/csi/audit.h"

#include <cinttypes>
#include <cstdio>

namespace csi::infer {

namespace {

thread_local InferenceAudit* t_current_audit = nullptr;

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendInt(std::string* out, const char* key, int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRId64, key, value);
  out->append(buf);
}

void AppendDoubleOrNull(std::string* out, const char* key, bool present,
                        double value) {
  char buf[96];
  if (present) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.9g", key, value);
  } else {
    std::snprintf(buf, sizeof(buf), ",\"%s\":null", key);
  }
  out->append(buf);
}

}  // namespace

InferenceAudit* CurrentAudit() { return t_current_audit; }

AuditScope::AuditScope(InferenceAudit* audit) : previous_(t_current_audit) {
  if (audit != nullptr) {
    t_current_audit = audit;
  }
}

AuditScope::~AuditScope() { t_current_audit = previous_; }

std::string InferenceAudit::ToJsonLine(const std::string& label) const {
  std::string out = "{\"trace\":\"";
  AppendEscaped(&out, label);
  out.push_back('"');
  AppendInt(&out, "media_flows", media_flows);
  AppendInt(&out, "groups", groups);
  AppendInt(&out, "enumerations", enumerations);
  AppendInt(&out, "candidates", candidates);
  AppendInt(&out, "enum_truncations", enum_truncations);
  AppendInt(&out, "wildcards", wildcards);
  AppendInt(&out, "dfs_nodes_expanded", dfs_nodes_expanded);
  AppendInt(&out, "dfs_nodes_pruned", dfs_nodes_pruned);
  AppendInt(&out, "cache_hits", cache_hits);
  AppendInt(&out, "cache_revalidations", cache_revalidations);
  AppendInt(&out, "cache_invalidations", cache_invalidations);
  AppendInt(&out, "cache_misses", cache_misses);
  AppendInt(&out, "chain_nodes", chain_nodes);
  AppendInt(&out, "sequences", sequences);
  out.append(",\"truncated\":");
  out.append(truncated ? "true" : "false");
  AppendDoubleOrNull(&out, "best_cost", has_best_cost, best_cost);
  AppendDoubleOrNull(&out, "runner_up_cost", has_runner_up_cost, runner_up_cost);
  out.push_back('}');
  return out;
}

}  // namespace csi::infer
