#include "src/csi/flow_classifier.h"

#include <map>

namespace csi::infer {
namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::vector<Flow> SplitFlows(const capture::CaptureTrace& trace) {
  std::vector<Flow> flows;
  std::map<capture::FlowKey, size_t> index;
  for (const auto& record : trace) {
    const capture::FlowKey key = FlowKeyOf(record);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, flows.size()).first;
      flows.push_back(Flow{key, {}, {}, 0});
    }
    Flow& flow = flows[it->second];
    if (!record.sni.empty() && flow.sni.empty()) {
      flow.sni = record.sni;
    }
    if (!record.from_client) {
      flow.downlink_bytes += record.payload;
    }
    flow.packets.push_back(record);
  }
  return flows;
}

std::vector<Flow> ClassifyMediaFlows(const capture::CaptureTrace& trace,
                                     const std::string& host_suffix,
                                     const std::set<uint32_t>& known_server_ips) {
  std::vector<Flow> media;
  for (Flow& flow : SplitFlows(trace)) {
    const bool sni_match = !flow.sni.empty() && HasSuffix(flow.sni, host_suffix);
    const bool ip_match =
        flow.sni.empty() && known_server_ips.count(flow.key.server_ip) > 0;
    if (sni_match || ip_match) {
      media.push_back(std::move(flow));
    }
  }
  return media;
}

}  // namespace csi::infer
