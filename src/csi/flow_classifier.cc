#include "src/csi/flow_classifier.h"

#include <cstddef>
#include <map>
#include <utility>

namespace csi::infer {
namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The paper §5.3.1 rule: SNI suffix match, or known server IP when the flow
// never showed an SNI.
bool IsMediaFlow(const std::string& sni, uint32_t server_ip,
                 const std::string& host_suffix,
                 const std::set<uint32_t>& known_server_ips) {
  const bool sni_match = !sni.empty() && HasSuffix(sni, host_suffix);
  const bool ip_match = sni.empty() && known_server_ips.count(server_ip) > 0;
  return sni_match || ip_match;
}

}  // namespace

std::vector<Flow> SplitFlows(const capture::CaptureTrace& trace) {
  std::vector<Flow> flows;
  std::map<capture::FlowKey, size_t> index;
  for (const auto& record : trace) {
    const capture::FlowKey key = FlowKeyOf(record);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, flows.size()).first;
      flows.push_back(Flow{key, {}, {}, 0});
    }
    Flow& flow = flows[it->second];
    if (!record.sni.empty() && flow.sni.empty()) {
      flow.sni = record.sni;
    }
    if (!record.from_client) {
      flow.downlink_bytes += record.payload;
    }
    flow.packets.push_back(record);
  }
  return flows;
}

std::vector<Flow> ClassifyMediaFlows(const capture::CaptureTrace& trace,
                                     const std::string& host_suffix,
                                     const std::set<uint32_t>& known_server_ips) {
  // Pass 1: per-flow metadata only — key, first non-empty SNI, downlink
  // bytes, packet count. No packets are copied yet.
  struct Meta {
    std::string sni;
    Bytes downlink_bytes = 0;
    size_t packet_count = 0;
  };
  std::map<capture::FlowKey, size_t> index;
  std::vector<capture::FlowKey> keys;
  std::vector<Meta> metas;
  for (const auto& record : trace) {
    const capture::FlowKey key = FlowKeyOf(record);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, metas.size()).first;
      keys.push_back(key);
      metas.emplace_back();
    }
    Meta& meta = metas[it->second];
    if (!record.sni.empty() && meta.sni.empty()) {
      meta.sni = record.sni;
    }
    if (!record.from_client) {
      meta.downlink_bytes += record.payload;
    }
    ++meta.packet_count;
  }

  // Classify on the metadata, materializing Flow entries (in first-appearance
  // order, exactly sized) for media flows only.
  std::vector<Flow> media;
  std::vector<ptrdiff_t> media_slot(metas.size(), -1);
  for (size_t f = 0; f < metas.size(); ++f) {
    if (IsMediaFlow(metas[f].sni, keys[f].server_ip, host_suffix,
                    known_server_ips)) {
      media_slot[f] = static_cast<ptrdiff_t>(media.size());
      media.push_back(
          Flow{keys[f], std::move(metas[f].sni), {}, metas[f].downlink_bytes});
      media.back().packets.reserve(metas[f].packet_count);
    }
  }
  if (media.empty()) {
    return media;
  }

  // Pass 2: copy packets into the media flows only.
  for (const auto& record : trace) {
    const ptrdiff_t slot = media_slot[index.find(FlowKeyOf(record))->second];
    if (slot >= 0) {
      media[slot].packets.push_back(record);
    }
  }
  return media;
}

std::vector<uint32_t> ClassifyMediaFlowIds(
    const capture::PacketColumns& columns, const std::string& host_suffix,
    const std::set<uint32_t>& known_server_ips) {
  std::vector<uint32_t> media;
  for (uint32_t f = 0; f < columns.flow_count(); ++f) {
    if (IsMediaFlow(columns.flow_sni(f), columns.flow_key(f).server_ip,
                    host_suffix, known_server_ips)) {
      media.push_back(f);
    }
  }
  return media;
}

}  // namespace csi::infer
