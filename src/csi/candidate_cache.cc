#include "src/csi/candidate_cache.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <string>
#include <utility>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"
#include "src/csi/audit.h"

namespace csi::infer {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

// In-process override simulating CSI_CANDIDATE_CACHE=off (the real env read
// is latched in a function-local static and cannot be flipped after first
// use).
std::atomic<bool> g_force_env_off{false};

}  // namespace

size_t GroupCandidateCache::QueryHash::operator()(const Query& q) const {
  uint64_t h = q.lineage;
  h = Mix(h, q.context);
  h = Mix(h, static_cast<uint64_t>(q.requests));
  h = Mix(h, static_cast<uint64_t>(q.estimated_total));
  h = Mix(h, static_cast<uint64_t>(q.start_lo));
  h = Mix(h, static_cast<uint64_t>(q.start_hi));
  return static_cast<size_t>(h);
}

GroupCandidateCache::GroupCandidateCache(size_t budget_bytes, int shards)
    : store_(budget_bytes, shards) {}

bool GroupCandidateCache::IsOffValue(const std::string& value) {
  return CacheOffSpelling(value);
}

bool GroupCandidateCache::EnvForcesOff() {
  static const bool off = [] {
    const char* env = std::getenv("CSI_CANDIDATE_CACHE");
    return (env != nullptr && IsOffValue(env)) || CsiCacheEnvDisables("candidate");
  }();
  return off || g_force_env_off.load(std::memory_order_relaxed);
}

void GroupCandidateCache::ForceEnvOffForTest(bool off) {
  g_force_env_off.store(off, std::memory_order_relaxed);
}

uint32_t GroupCandidateCache::InternContext(const GroupSearchConfig& config,
                                            const DisplayConstraints& display) {
  // Only the knobs EnumerateGroupCandidateSet reads. pool is excluded (output
  // is pool-independent by construction), and max_sequences /
  // enable_merge_repair steer the sequence chain, not the per-group
  // enumeration.
  Context ctx;
  ctx.k = config.k;
  ctx.expected_overhead = config.expected_overhead;
  ctx.expected_fixed_overhead = config.expected_fixed_overhead;
  ctx.max_candidates_per_group = config.max_candidates_per_group;
  ctx.max_dfs_nodes = config.max_dfs_nodes;
  ctx.max_group_requests = config.max_group_requests;
  ctx.max_phantom_requests = config.max_phantom_requests;
  ctx.other_object_sizes = config.other_object_sizes;
  ctx.enable_wildcards = config.enable_wildcards;
  ctx.display = display;

  std::lock_guard<std::mutex> lock(contexts_mu_);
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i] == ctx) {
      return static_cast<uint32_t>(i) + 1;
    }
  }
  contexts_.push_back(std::move(ctx));
  return static_cast<uint32_t>(contexts_.size());
}

GroupCandidateCache::Query GroupCandidateCache::MakeQuery(const DbSnapshot& db,
                                                          uint32_t context, int requests,
                                                          Bytes estimated_total, int start_lo,
                                                          int start_hi) {
  Query q;
  q.lineage = db.lineage_id();
  q.context = context;
  q.requests = requests;
  q.estimated_total = estimated_total;
  q.start_lo = std::max(start_lo, 0);
  // "Reaches the live edge" ranges share one key across refreshes; the
  // concrete-hi invariant (hi < positions at every state the entry is
  // anchored to) is what lets non-growth revalidation treat the clamped range
  // as fixed.
  q.start_hi = start_hi >= db.num_positions() - 1 ? kOpenHi : start_hi;
  return q;
}

// Decides whether `entry` (computed at state A := entry.state_id with
// positions_at =: P_A) yields byte-identical output under `db` (state B with
// P_B positions). Sound because a lineage only ever appends: sizes of
// positions < P_A are immutable, so the enumeration can only diverge through
// (a) new single-chunk candidates drawn from appended positions, (b) DFS runs
// that touch an appended position, or (c) per-start node budgets shifting
// with the clamped range. Each case is ruled out in turn; anything not
// provably identical returns false.
bool GroupCandidateCache::Revalidate(Entry& entry, const DbSnapshot& db,
                                     const GroupSearchConfig& config) {
  if (db.state_id() == entry.state_id) {
    return true;
  }
  const int pa = entry.positions_at;
  const int pb = db.num_positions();
  const auto anchor = [&entry, &db, pb] {
    entry.state_id = db.state_id();
    entry.positions_at = pb;
    return true;
  };
  if (pb == pa) {
    // Same data, different publish (e.g. a compaction): identical output.
    return anchor();
  }
  if (pb < pa) {
    // A reader pinning an older state than the entry was computed at (a
    // publish raced the batch). The entry is not wrong — just not provable
    // from this snapshot — so miss without dropping it.
    return false;
  }

  // P_B > P_A: positions were appended since the entry was computed.
  const CandidateSetHull& hull = entry.hull;
  if (!hull.has_video_split) {
    // Only video-free (and wildcard-fallback) explanations exist; they never
    // read the position axis.
    return anchor();
  }

  const bool growth = entry.query.start_hi == kOpenHi;
  if (!growth) {
    // Concrete hi < P_A - 1 <= P_B - 1: the clamped start range — and with it
    // every per-start budget — is identical at both states, and the
    // single-chunk path drops appended refs via its index > start_hi filter.
    // Only multi-chunk runs that start inside the range but extend past P_A
    // can differ.
    const int req_hi = entry.query.start_hi;
    if (hull.v_max <= 1 || entry.query.start_lo > req_hi ||
        req_hi + hull.v_max <= pa) {
      return anchor();
    }
    if (db.base_positions() > pa) {
      // A compaction folded the appends into the base; they can no longer be
      // probed one-sidedly against P_A.
      return false;
    }
    // A crossing run is pruned before its DFS expands a node iff its minimum
    // sum already exceeds the split's window — guaranteed when every appended
    // chunk alone is bigger than every multi-chunk upper bound.
    return db.DeltaHasSizeInWindow(0, hull.hull2_hi, pa) ? false : anchor();
  }

  // Growth: the range ran to the live edge at A and runs further at B. New
  // start positions >= P_A join the range; their candidates must all be
  // pruned/filtered, and surviving old starts must keep their exact budgets.
  if (db.base_positions() > pa) {
    return false;
  }
  const int range_a = pa - entry.query.start_lo;  // starts enumerated at A
  if (hull.v_max >= 2 && range_a >= 1 &&
      config.max_dfs_nodes / range_a > kPerStartNodeFloor) {
    // The per-start budget at A exceeded the floor, so widening the range at
    // B would shrink it — same inputs, different cutoff.
    return false;
  }
  // An appended chunk inside the probe window could seed a new single-chunk
  // candidate (v == 1 hull) or let a run through it survive the MinSum prune
  // (any chunk <= the v >= 2 bound keeps the minimum sum under it).
  const Bytes probe_lo = hull.v_max >= 2 ? 0 : hull.hull1_lo;
  return db.DeltaHasSizeInWindow(probe_lo, hull.hull_all_hi, pa) ? false : anchor();
}

size_t GroupCandidateCache::ApproxBytes(const GroupCandidateSet& set) {
  size_t bytes = sizeof(Entry) + sizeof(GroupCandidateSet) +
                 set.candidates.capacity() * sizeof(GroupCandidate);
  for (const GroupCandidate& c : set.candidates) {
    bytes += c.tracks.capacity() * sizeof(int);
  }
  return bytes;
}

std::shared_ptr<const GroupCandidateSet> GroupCandidateCache::Lookup(
    const Query& query, const DbSnapshot& db, const GroupSearchConfig& config,
    CandidateSetHull* hull_out) {
  if (EnvForcesOff()) {
    return nullptr;
  }
  CSI_SPAN("group_cache_lookup");
  auto& shard = store_.ShardFor(query);
  std::shared_ptr<const GroupCandidateSet> hit;
  [[maybe_unused]] bool found = false;
  bool same_state = false;
  [[maybe_unused]] bool stale_snapshot = false;
  bool invalidated = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(query);
    if (it != shard.index.end()) {
      found = true;
      Entry& entry = *it->second;
      same_state = entry.state_id == db.state_id();
      if (Revalidate(entry, db, config)) {
        entry.referenced = true;
        hit = entry.set;
        if (hull_out != nullptr) {
          *hull_out = entry.hull;
        }
      } else if (db.num_positions() > entry.positions_at) {
        // Provably unusable under every state from here on (appends intersect
        // its windows, or a compaction hid them): drop it now instead of
        // letting it rot until eviction.
        shard.bytes -= entry.bytes;
        shard.entries.erase(it->second);
        shard.index.erase(it);
        invalidated = true;
      } else {
        // The probing snapshot is older than the entry (a publish raced the
        // batch): miss without dropping — the entry stays right for newer
        // snapshots.
        stale_snapshot = true;
      }
    }
  }
  InferenceAudit* const audit = CurrentAudit();
  if (hit != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    CSI_COUNTER_INC("csi_group_cache_hits_total");
    if (audit != nullptr) {
      ++(same_state ? audit->cache_hits : audit->cache_revalidations);
    }
    CSI_TRACE_INSTANT("group_cache", "cache",
                      {"outcome", same_state ? "hit" : "revalidated"},
                      {"reason", same_state ? "same_state" : "delta_proven_disjoint"});
    return hit;
  }
  if (invalidated) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    CSI_COUNTER_INC("csi_group_cache_invalidations_total");
    if (audit != nullptr) {
      ++audit->cache_invalidations;
    }
    CSI_TRACE_INSTANT("group_cache", "cache", {"outcome", "invalidated"},
                      {"reason", "delta_in_window_or_compaction"});
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CSI_COUNTER_INC("csi_group_cache_misses_total");
  if (audit != nullptr) {
    ++audit->cache_misses;
  }
  CSI_TRACE_INSTANT("group_cache", "cache", {"outcome", "miss"},
                    {"reason", !found          ? "absent"
                               : stale_snapshot ? "stale_snapshot"
                                                : "invalidated"});
  return nullptr;
}

void GroupCandidateCache::Insert(const Query& query, const DbSnapshot& db,
                                 const CandidateSetHull& hull,
                                 std::shared_ptr<const GroupCandidateSet> set) {
  if (EnvForcesOff() || set == nullptr) {
    return;
  }
  Entry entry;
  entry.query = query;
  entry.state_id = db.state_id();
  entry.positions_at = db.num_positions();
  entry.hull = hull;
  entry.bytes = ApproxBytes(*set);
  entry.set = std::move(set);
  const int64_t evicted = store_.InsertAndEvict(std::move(entry));
  if (evicted < 0) {
    return;  // bigger than a whole shard's budget; refused
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) {
    evictions_.fetch_add(static_cast<uint64_t>(evicted), std::memory_order_relaxed);
    CSI_COUNTER_ADD("csi_group_cache_evictions_total", evicted);
  }
  // Per-shard drift between publishes is fine for a gauge; exact totals come
  // from stats().
  CSI_GAUGE_SET("csi_group_cache_bytes", static_cast<int64_t>(stats().bytes));
}

void GroupCandidateCache::Clear() { store_.Clear(); }

GroupCandidateCache::Stats GroupCandidateCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  store_.AccumulateShards(&s);
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    s.contexts = contexts_.size();
  }
  return s;
}

}  // namespace csi::infer
