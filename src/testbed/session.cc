#include "src/testbed/session.h"

#include <memory>
#include <utility>

#include "src/app/origin_server.h"
#include "src/capture/capture.h"
#include "src/csi/inference.h"
#include "src/http/http_session.h"
#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace csi::testbed {

SessionResult RunStreamingSession(const SessionConfig& config) {
  sim::Simulator sim;
  Rng rng(config.seed);

  app::OriginServer origin;
  origin.Host(config.manifest);

  http::SessionConfig session_config;
  session_config.protocol =
      infer::IsQuic(config.design) ? http::Protocol::kQuic : http::Protocol::kHttps;
  session_config.sni = config.manifest->host;
  session_config.flow_id = 1;

  capture::GatewayTap tap(&sim);

  // The pieces reference each other through sinks; build bottom-up.
  std::unique_ptr<http::HttpSession> session;

  // Downlink: server -> [shaper] -> emulated link -> tap -> client.
  net::PacketSink to_client = tap.Tap([&session](const net::Packet& p) {
    session->DeliverToClient(p);
  });
  net::LinkConfig downlink_config;
  downlink_config.trace = &config.downlink;
  downlink_config.propagation_delay = config.downlink_delay;
  auto downlink = std::make_unique<net::Link>(
      &sim, downlink_config,
      config.downlink_loss > 0
          ? std::unique_ptr<net::LossModel>(new net::BernoulliLoss(config.downlink_loss))
          : std::unique_ptr<net::LossModel>(new net::NoLoss()),
      rng.Fork(), std::move(to_client));
  std::unique_ptr<net::TokenBucket> shaper;
  net::PacketSink server_out = [&downlink](const net::Packet& p) { downlink->Send(p); };
  if (config.shaper.has_value()) {
    shaper = std::make_unique<net::TokenBucket>(&sim, *config.shaper, server_out);
    server_out = [&shaper](const net::Packet& p) { shaper->Send(p); };
  }

  // Uplink: client -> tap -> fast link -> server.
  net::LinkConfig uplink_config;
  uplink_config.trace = nullptr;  // uplink is not the bottleneck
  uplink_config.propagation_delay = config.uplink_delay;
  auto uplink = std::make_unique<net::Link>(
      &sim, uplink_config, std::make_unique<net::NoLoss>(), rng.Fork(),
      [&session](const net::Packet& p) { session->DeliverToServer(p); });
  net::PacketSink client_out = tap.Tap([&uplink](const net::Packet& p) { uplink->Send(p); });

  session = std::make_unique<http::HttpSession>(
      &sim, session_config, std::move(client_out), std::move(server_out),
      [&origin](const std::string& tag) { return origin.ResponseBytesFor(tag); });

  player::PlayerConfig player_config = config.player;
  player_config.transport_mux = config.design == infer::DesignType::kSQ;
  player::AbrPlayer player(&sim, player_config, config.manifest,
                           player::MakeAdaptation(config.adaptation), session.get(),
                           rng.Fork());
  player.Start();

  sim.RunUntil(config.duration);

  SessionResult result;
  result.capture = tap.TakeTrace();
  result.downloads = player.downloads();
  result.displays = player.displays();
  result.stalls = player.stalls();
  result.total_bytes = player.total_bytes_downloaded();
  result.duration = config.duration;
  result.final_throughput_estimate = player.est_throughput();
  return result;
}

}  // namespace csi::testbed
