#include "src/testbed/experiment.h"

#include <algorithm>
#include <chrono>

#include "src/csi/displayed_info.h"

namespace csi::testbed {

media::Manifest MakeAssetForDesign(infer::DesignType design, int genre_seed,
                                   TimeUs duration, double target_pasr) {
  media::EncoderConfig config;
  config.target_pasr = target_pasr;
  // Genres differ in scene dynamics: faster cuts and higher variance for
  // action-like content, flatter for talking heads.
  config.scene.scene_change_prob = 0.08 + 0.05 * (genre_seed % 4);
  config.scene.scene_sigma = 0.35 + 0.1 * (genre_seed % 3);
  if (infer::HasSeparateAudio(design)) {
    config.audio_bitrates = {128 * kKbps};
  }
  Rng rng(0xC0FFEE00 + static_cast<uint64_t>(genre_seed));
  return media::EncodeAsset("asset-" + std::to_string(genre_seed), "cdn.example", duration,
                            config, rng);
}

EvalRun RunAndScore(const SessionConfig& session_config) {
  EvalRun run;
  const SessionResult session = RunStreamingSession(session_config);

  infer::InferenceConfig inference_config;
  inference_config.design = session_config.design;
  const infer::InferenceEngine engine(session_config.manifest, inference_config);

  const auto t0 = std::chrono::steady_clock::now();
  const infer::InferenceResult plain = engine.Analyze(session.capture);
  const auto t1 = std::chrono::steady_clock::now();
  run.analysis_time_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  run.without_display = ScoreInference(plain, session.downloads);
  run.group_sizes = plain.group_sizes;

  Rng ocr_rng(session_config.seed ^ 0x5eed);
  const infer::DisplayConstraints display = infer::SampleDisplayedChunks(
      session.displays, session.duration, infer::OcrConfig{}, ocr_rng);
  const infer::InferenceResult constrained = engine.Analyze(session.capture, display);
  run.with_display = ScoreInference(constrained, session.downloads);
  return run;
}

AccuracyAggregate Aggregate(const std::vector<AccuracyResult>& runs, bool best) {
  AccuracyAggregate agg;
  if (runs.empty()) {
    return agg;
  }
  std::vector<double> values;
  int full = 0;
  int above95 = 0;
  for (const auto& r : runs) {
    const double a = best ? r.best : r.worst;
    values.push_back(a);
    if (a >= 1.0 - 1e-9) {
      ++full;
    }
    if (a > 0.95) {
      ++above95;
    }
  }
  const double n = static_cast<double>(runs.size());
  agg.pct_100_match = 100.0 * full / n;
  agg.pct_above_95 = 100.0 * above95 / n;
  agg.pct5_accuracy = 100.0 * Percentile(values, 5.0);
  return agg;
}

}  // namespace csi::testbed
