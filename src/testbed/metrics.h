// Inference-accuracy scoring against instrumented-player ground truth
// (paper §6.2 methodology).
//
// The accuracy of one inferred sequence is the fraction of the ground-truth
// media downloads whose identity it recovers: a video download (index i,
// track t) counts when the sequence contains a video chunk with the same
// index and track; an audio download (index i) counts when the sequence
// contains an audio chunk with that index. The engine may emit several
// candidate sequences; as in Table 4 we report the best and worst.

#ifndef CSI_SRC_TESTBED_METRICS_H_
#define CSI_SRC_TESTBED_METRICS_H_

#include <vector>

#include "src/csi/types.h"
#include "src/player/abr_player.h"

namespace csi::testbed {

struct AccuracyResult {
  double best = 0.0;
  double worst = 0.0;
  int num_sequences = 0;
  bool found_ground_truth = false;  // some sequence scores 100%
  bool unique_output = false;       // exactly one sequence emitted
  bool truncated = false;
};

// Accuracy of one sequence against the ground-truth download log.
double SequenceAccuracy(const infer::InferredSequence& sequence,
                        const std::vector<player::DownloadRecord>& ground_truth);

AccuracyResult ScoreInference(const infer::InferenceResult& result,
                              const std::vector<player::DownloadRecord>& ground_truth);

}  // namespace csi::testbed

#endif  // CSI_SRC_TESTBED_METRICS_H_
