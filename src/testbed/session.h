// End-to-end streaming session runner (the paper's Fig. 6 testbed).
//
// Wires together: origin server <- (optional token-bucket shaper) <-
// trace-driven emulated downlink <- capture tap <- ABR player over
// HTTPS/QUIC, runs the session for a fixed duration, and returns both the
// encrypted capture (what CSI sees) and the instrumented-player ground truth
// (what CSI is scored against).

#ifndef CSI_SRC_TESTBED_SESSION_H_
#define CSI_SRC_TESTBED_SESSION_H_

#include <optional>
#include <string>
#include <vector>

#include "src/capture/packet_record.h"
#include "src/csi/types.h"
#include "src/media/manifest.h"
#include "src/net/token_bucket.h"
#include "src/nettrace/bandwidth_trace.h"
#include "src/player/abr_player.h"

namespace csi::testbed {

struct SessionConfig {
  infer::DesignType design = infer::DesignType::kCH;
  // Manifest must match the design: separate audio tracks for S* designs,
  // none for C* designs (see MakeAssetForDesign in experiment.h).
  const media::Manifest* manifest = nullptr;
  // Downlink bandwidth emulation (the gateway's `tc`).
  nettrace::BandwidthTrace downlink;
  // Optional upstream token-bucket shaper (§7).
  std::optional<net::TokenBucketConfig> shaper;
  // Adaptation policy name (see player::MakeAdaptation).
  std::string adaptation = "hybrid";
  player::PlayerConfig player;
  // Wall-clock duration of the streaming test.
  TimeUs duration = 600 * kUsPerSec;
  // Random downlink packet loss (in addition to queue drops).
  double downlink_loss = 0.002;
  TimeUs downlink_delay = 15 * kUsPerMs;
  TimeUs uplink_delay = 15 * kUsPerMs;
  uint64_t seed = 1;
};

struct SessionResult {
  capture::CaptureTrace capture;
  std::vector<player::DownloadRecord> downloads;  // ground truth
  std::vector<player::DisplayRecord> displays;
  std::vector<player::StallRecord> stalls;
  Bytes total_bytes = 0;
  TimeUs duration = 0;
  BitsPerSec final_throughput_estimate = 0;
};

SessionResult RunStreamingSession(const SessionConfig& config);

}  // namespace csi::testbed

#endif  // CSI_SRC_TESTBED_SESSION_H_
