// Experiment helpers shared by the Table 4 / Fig. 10 / Fig. 11 benchmarks.

#ifndef CSI_SRC_TESTBED_EXPERIMENT_H_
#define CSI_SRC_TESTBED_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/csi/inference.h"
#include "src/media/encoder.h"
#include "src/testbed/metrics.h"
#include "src/testbed/session.h"

namespace csi::testbed {

// Encodes one test asset appropriate for `design` (separate audio for S*,
// muxed for C*). `genre_seed` varies scene statistics across the paper's
// "5 videos covering different genres".
media::Manifest MakeAssetForDesign(infer::DesignType design, int genre_seed,
                                   TimeUs duration = 15 * 60 * kUsPerSec,
                                   double target_pasr = 1.6);

// One full evaluation run: stream, capture, infer (with and without
// displayed-chunk info), score.
struct EvalRun {
  AccuracyResult without_display;
  AccuracyResult with_display;
  std::vector<int> group_sizes;  // SQ only
  TimeUs analysis_time_us = 0;   // inference wall-clock (without display)
};

EvalRun RunAndScore(const SessionConfig& session_config);

// Aggregate Table 4 style statistics over many runs.
struct AccuracyAggregate {
  double pct_100_match = 0;     // % of runs where the output hits 100%
  double pct_above_95 = 0;      // % of runs with accuracy > 95%
  double pct5_accuracy = 0;     // 5th percentile of accuracy across runs
};

// Aggregates one column family (best or worst outputs).
AccuracyAggregate Aggregate(const std::vector<AccuracyResult>& runs, bool best);

}  // namespace csi::testbed

#endif  // CSI_SRC_TESTBED_EXPERIMENT_H_
