#include "src/testbed/metrics.h"

#include <algorithm>
#include <map>
#include <set>

namespace csi::testbed {

double SequenceAccuracy(const infer::InferredSequence& sequence,
                        const std::vector<player::DownloadRecord>& ground_truth) {
  // Ground truth: per-index video track, and the set of audio indexes.
  std::map<int, int> gt_video;
  std::set<int> gt_audio;
  int total = 0;
  for (const auto& d : ground_truth) {
    if (d.chunk.type == media::MediaType::kVideo) {
      gt_video[d.chunk.index] = d.chunk.track;
    } else {
      gt_audio.insert(d.chunk.index);
    }
    ++total;
  }
  if (total == 0) {
    return 0.0;
  }
  std::set<int> video_credited;
  std::set<int> audio_credited;
  for (const auto& slot : sequence.slots) {
    if (slot.kind == infer::SlotKind::kVideo) {
      auto it = gt_video.find(slot.chunk.index);
      if (it != gt_video.end() && it->second == slot.chunk.track) {
        video_credited.insert(slot.chunk.index);
      }
    } else if (slot.kind == infer::SlotKind::kAudio) {
      if (gt_audio.count(slot.chunk.index) > 0) {
        audio_credited.insert(slot.chunk.index);
      }
    }
  }
  return static_cast<double>(video_credited.size() + audio_credited.size()) /
         static_cast<double>(total);
}

AccuracyResult ScoreInference(const infer::InferenceResult& result,
                              const std::vector<player::DownloadRecord>& ground_truth) {
  AccuracyResult acc;
  acc.num_sequences = static_cast<int>(result.sequences.size());
  acc.truncated = result.truncated;
  acc.unique_output = acc.num_sequences == 1;
  if (result.sequences.empty()) {
    return acc;
  }
  acc.best = 0.0;
  acc.worst = 1.0;
  for (const auto& sequence : result.sequences) {
    const double a = SequenceAccuracy(sequence, ground_truth);
    acc.best = std::max(acc.best, a);
    acc.worst = std::min(acc.worst, a);
  }
  acc.found_ground_truth = acc.best >= 1.0 - 1e-9;
  return acc;
}

}  // namespace csi::testbed
