// Bandwidth traces for trace-driven network emulation.
//
// The paper replays 30 throughput traces collected in commercial mobile
// networks through a `tc`-shaped gateway (§6.2). Here a `BandwidthTrace` is a
// piecewise-constant rate function of time that the simulated link consults;
// generators below synthesize cellular-like traces spanning the paper's range
// (0.6-40 Mbps average, varied variability) plus the B1/B2 conditions of §7.

#ifndef CSI_SRC_NETTRACE_BANDWIDTH_TRACE_H_
#define CSI_SRC_NETTRACE_BANDWIDTH_TRACE_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace csi::nettrace {

class BandwidthTrace {
 public:
  struct Segment {
    TimeUs start = 0;       // segment start time
    BitsPerSec rate = 0.0;  // rate from `start` until the next segment
  };

  BandwidthTrace() = default;
  BandwidthTrace(std::string name, std::vector<Segment> segments);

  // Rate at simulated time `t`. Times beyond the last segment repeat the
  // trace cyclically (the paper loops traces for long sessions).
  BitsPerSec RateAt(TimeUs t) const;

  // Time at which the rate next changes after `t` (respecting cycling).
  TimeUs NextChangeAfter(TimeUs t) const;

  // Average rate over one trace period.
  BitsPerSec AverageRate() const;

  // Duration of one period of the trace.
  TimeUs Period() const;

  const std::string& name() const { return name_; }
  const std::vector<Segment>& segments() const { return segments_; }

  // Text round-trip ("<start_us> <rate_bps>" per line).
  std::string Serialize() const;
  static BandwidthTrace Parse(const std::string& name, const std::string& text);

 private:
  std::string name_;
  std::vector<Segment> segments_;  // sorted by start; first start is 0
  TimeUs period_ = 0;
};

// Constant-rate trace.
BandwidthTrace StableTrace(const std::string& name, BitsPerSec rate);

// Alternates between `high` and `low`, `high_duration`/`low_duration` each.
BandwidthTrace SquareWaveTrace(const std::string& name, BitsPerSec high, BitsPerSec low,
                               TimeUs high_duration, TimeUs low_duration);

// Cellular-like trace: Markov-modulated log-normal rates with the given mean
// and coefficient of variation, changing every `granularity`.
BandwidthTrace CellularTrace(const std::string& name, BitsPerSec mean_rate,
                             double coeff_variation, TimeUs duration, TimeUs granularity,
                             Rng& rng);

// The §7 conditions: B1 = stable 10 Mbps; B2 = 10 Mbps with occasional drops
// to 1 Mbps.
BandwidthTrace ConditionB1();
BandwidthTrace ConditionB2();

// A library of `count` cellular traces covering 0.6-40 Mbps averages with
// varied variability, as in the paper's §6.2 replay corpus.
std::vector<BandwidthTrace> CellularTraceLibrary(int count, TimeUs duration, Rng& rng);

}  // namespace csi::nettrace

#endif  // CSI_SRC_NETTRACE_BANDWIDTH_TRACE_H_
