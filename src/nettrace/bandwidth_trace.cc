#include "src/nettrace/bandwidth_trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace csi::nettrace {

BandwidthTrace::BandwidthTrace(std::string name, std::vector<Segment> segments)
    : name_(std::move(name)), segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("BandwidthTrace: no segments");
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });
  if (segments_.front().start != 0) {
    throw std::invalid_argument("BandwidthTrace: first segment must start at 0");
  }
  // The trace period extends the last segment by the mean preceding segment
  // length (or 1 s for a single-segment trace).
  if (segments_.size() == 1) {
    period_ = segments_.back().start + kUsPerSec;
  } else {
    const TimeUs mean_len = segments_.back().start / static_cast<TimeUs>(segments_.size() - 1);
    period_ = segments_.back().start + std::max<TimeUs>(mean_len, 1);
  }
}

BitsPerSec BandwidthTrace::RateAt(TimeUs t) const {
  const TimeUs local = t % period_;
  // Last segment whose start <= local.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), local,
      [](TimeUs value, const Segment& s) { return value < s.start; });
  return std::prev(it)->rate;
}

TimeUs BandwidthTrace::NextChangeAfter(TimeUs t) const {
  const TimeUs cycle = t / period_;
  const TimeUs local = t % period_;
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), local,
      [](TimeUs value, const Segment& s) { return value < s.start; });
  if (it == segments_.end()) {
    return (cycle + 1) * period_;  // wraps to the start of the next cycle
  }
  return cycle * period_ + it->start;
}

BitsPerSec BandwidthTrace::AverageRate() const {
  double weighted = 0.0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const TimeUs end = i + 1 < segments_.size() ? segments_[i + 1].start : period_;
    weighted += segments_[i].rate * static_cast<double>(end - segments_[i].start);
  }
  return weighted / static_cast<double>(period_);
}

TimeUs BandwidthTrace::Period() const { return period_; }

std::string BandwidthTrace::Serialize() const {
  std::ostringstream out;
  for (const Segment& s : segments_) {
    out << s.start << " " << static_cast<int64_t>(s.rate) << "\n";
  }
  return out.str();
}

BandwidthTrace BandwidthTrace::Parse(const std::string& name, const std::string& text) {
  std::istringstream in(text);
  std::vector<Segment> segments;
  TimeUs start = 0;
  int64_t rate = 0;
  while (in >> start >> rate) {
    segments.push_back(Segment{start, static_cast<BitsPerSec>(rate)});
  }
  return BandwidthTrace(name, std::move(segments));
}

BandwidthTrace StableTrace(const std::string& name, BitsPerSec rate) {
  return BandwidthTrace(name, {{0, rate}});
}

BandwidthTrace SquareWaveTrace(const std::string& name, BitsPerSec high, BitsPerSec low,
                               TimeUs high_duration, TimeUs low_duration) {
  std::vector<BandwidthTrace::Segment> segments;
  segments.push_back({0, high});
  segments.push_back({high_duration, low});
  segments.push_back({high_duration + low_duration, high});
  return BandwidthTrace(name, std::move(segments));
}

BandwidthTrace CellularTrace(const std::string& name, BitsPerSec mean_rate,
                             double coeff_variation, TimeUs duration, TimeUs granularity,
                             Rng& rng) {
  // Log-normal marginal with AR(1) temporal correlation in log space.
  const double cv2 = coeff_variation * coeff_variation;
  const double sigma = std::sqrt(std::log(1.0 + cv2));
  const double mu = std::log(mean_rate) - 0.5 * sigma * sigma;
  const double ar = 0.7;
  std::vector<BandwidthTrace::Segment> segments;
  double z = rng.Normal();
  for (TimeUs t = 0; t < duration; t += granularity) {
    z = ar * z + std::sqrt(1.0 - ar * ar) * rng.Normal();
    const double rate = std::exp(mu + sigma * z);
    segments.push_back({t, std::max(rate, 50.0 * kKbps)});
  }
  return BandwidthTrace(name, std::move(segments));
}

BandwidthTrace ConditionB1() { return StableTrace("B1-stable-10Mbps", 10 * kMbps); }

BandwidthTrace ConditionB2() {
  // Mostly 10 Mbps with occasional dips to 1 Mbps (Fig. 11's B2 profile):
  // 50 s high, 15 s low.
  std::vector<BandwidthTrace::Segment> segments;
  TimeUs t = 0;
  for (int i = 0; i < 4; ++i) {
    segments.push_back({t, 10 * kMbps});
    t += 50 * kUsPerSec;
    segments.push_back({t, 1 * kMbps});
    t += 15 * kUsPerSec;
  }
  return BandwidthTrace("B2-10Mbps-dips", std::move(segments));
}

std::vector<BandwidthTrace> CellularTraceLibrary(int count, TimeUs duration, Rng& rng) {
  std::vector<BandwidthTrace> traces;
  traces.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Geometric spread of mean rates over 0.6..40 Mbps, alternating low and
    // high variability.
    const double frac = count > 1 ? static_cast<double>(i) / (count - 1) : 0.0;
    const BitsPerSec mean = 0.6 * kMbps * std::pow(40.0 / 0.6, frac);
    const double cv = (i % 3 == 0) ? 0.25 : (i % 3 == 1) ? 0.5 : 0.9;
    traces.push_back(CellularTrace("cell-" + std::to_string(i), mean, cv, duration,
                                   2 * kUsPerSec, rng));
  }
  return traces;
}

}  // namespace csi::nettrace
