// Packet-loss models for the simulated link.

#ifndef CSI_SRC_NET_LOSS_MODEL_H_
#define CSI_SRC_NET_LOSS_MODEL_H_

#include <memory>

#include "src/common/rng.h"

namespace csi::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  // Returns true if the current packet should be dropped.
  virtual bool ShouldDrop(Rng& rng) = 0;
};

// Independent (Bernoulli) loss with a fixed probability.
class BernoulliLoss : public LossModel {
 public:
  explicit BernoulliLoss(double probability) : probability_(probability) {}
  bool ShouldDrop(Rng& rng) override { return rng.Chance(probability_); }

 private:
  double probability_;
};

// Two-state Gilbert-Elliott bursty loss: a good state with low loss and a bad
// state with high loss, with geometric dwell times.
class GilbertElliottLoss : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good, double loss_good,
                     double loss_bad)
      : p_good_to_bad_(p_good_to_bad),
        p_bad_to_good_(p_bad_to_good),
        loss_good_(loss_good),
        loss_bad_(loss_bad) {}

  bool ShouldDrop(Rng& rng) override {
    if (in_bad_state_) {
      if (rng.Chance(p_bad_to_good_)) {
        in_bad_state_ = false;
      }
    } else {
      if (rng.Chance(p_good_to_bad_)) {
        in_bad_state_ = true;
      }
    }
    return rng.Chance(in_bad_state_ ? loss_bad_ : loss_good_);
  }

 private:
  double p_good_to_bad_;
  double p_bad_to_good_;
  double loss_good_;
  double loss_bad_;
  bool in_bad_state_ = false;
};

// No loss.
class NoLoss : public LossModel {
 public:
  bool ShouldDrop(Rng&) override { return false; }
};

}  // namespace csi::net

#endif  // CSI_SRC_NET_LOSS_MODEL_H_
