// Unidirectional emulated link.
//
// Models the gateway's `tc`-driven emulation (paper §4.2): packets are
// serialized at the rate a `BandwidthTrace` dictates at dequeue time, pass
// through a drop-tail queue of bounded byte depth, suffer optional random
// loss, and arrive after a fixed propagation delay. A tap callback observes
// every delivered packet (used by the capture module).

#ifndef CSI_SRC_NET_LINK_H_
#define CSI_SRC_NET_LINK_H_

#include <deque>
#include <memory>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/net/loss_model.h"
#include "src/net/packet.h"
#include "src/nettrace/bandwidth_trace.h"
#include "src/sim/simulator.h"

namespace csi::net {

struct LinkConfig {
  // Rate source. If null the link is infinitely fast.
  const nettrace::BandwidthTrace* trace = nullptr;
  // One-way propagation delay.
  TimeUs propagation_delay = 20 * kUsPerMs;
  // Drop-tail queue depth in bytes (0 = unbounded).
  Bytes queue_limit = 192 * kKiB;
};

class Link {
 public:
  // `sink` receives packets that survive the link. `loss` may be null (no
  // loss).
  Link(sim::Simulator* sim, LinkConfig config, std::unique_ptr<LossModel> loss, Rng rng,
       PacketSink sink);

  // Entry point: enqueue a packet for transmission.
  void Send(const Packet& packet);

  // Statistics.
  int64_t packets_delivered() const { return packets_delivered_; }
  int64_t packets_dropped() const { return packets_dropped_; }
  Bytes queued_bytes() const { return queued_bytes_; }

 private:
  void ScheduleNextDeparture();

  sim::Simulator* sim_;
  LinkConfig config_;
  std::unique_ptr<LossModel> loss_;
  Rng rng_;
  PacketSink sink_;

  std::deque<Packet> queue_;
  Bytes queued_bytes_ = 0;
  bool transmitting_ = false;
  int64_t packets_delivered_ = 0;
  int64_t packets_dropped_ = 0;
};

}  // namespace csi::net

#endif  // CSI_SRC_NET_LINK_H_
