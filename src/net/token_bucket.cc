#include "src/net/token_bucket.h"

#include <algorithm>
#include <utility>

namespace csi::net {

TokenBucket::TokenBucket(sim::Simulator* sim, TokenBucketConfig config, PacketSink sink)
    : sim_(sim),
      config_(config),
      sink_(std::move(sink)),
      tokens_(static_cast<double>(config.bucket_size)),
      last_refill_(sim->Now()) {}

void TokenBucket::Refill() {
  const TimeUs now = sim_->Now();
  const double earned = config_.rate / 8.0 * UsToSeconds(now - last_refill_);
  tokens_ = std::min(tokens_ + earned, static_cast<double>(config_.bucket_size));
  last_refill_ = now;
}

Bytes TokenBucket::TokensAvailable() {
  Refill();
  return static_cast<Bytes>(tokens_);
}

void TokenBucket::Send(const Packet& packet) {
  if (config_.queue_limit > 0 && queued_bytes_ + packet.WireSize() > config_.queue_limit) {
    ++packets_dropped_;
    return;
  }
  queue_.push_back(packet);
  queued_bytes_ += packet.WireSize();
  TryDrain();
}

void TokenBucket::TryDrain() {
  Refill();
  while (!queue_.empty()) {
    const Bytes need = queue_.front().WireSize();
    if (tokens_ < static_cast<double>(need)) {
      break;
    }
    tokens_ -= static_cast<double>(need);
    const Packet packet = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= need;
    if (sink_) {
      sink_(packet);
    }
  }
  if (!queue_.empty() && pending_event_ == 0) {
    // Wake when enough tokens exist for the head packet.
    const double deficit = static_cast<double>(queue_.front().WireSize()) - tokens_;
    const TimeUs wait = config_.rate > 0.0
                            ? SecondsToUs(deficit * 8.0 / config_.rate) + 1
                            : kUsPerSec;
    pending_event_ = sim_->ScheduleAfter(wait, [this] {
      pending_event_ = 0;
      TryDrain();
    });
  }
}

}  // namespace csi::net
