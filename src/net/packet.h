// The simulated on-the-wire packet.
//
// A `Packet` carries exactly the information a passive observer of encrypted
// traffic can see (paper Fig. 2): IP/port addressing, direction, sizes, the
// TCP sequence number (HTTPS), the QUIC packet number region (sizes only —
// payload is encrypted), and the SNI on the ClientHello. Application payload
// is never materialized; messages are modeled as byte counts.

#ifndef CSI_SRC_NET_PACKET_H_
#define CSI_SRC_NET_PACKET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace csi::net {

enum class Transport { kTcp, kUdp };

// Header sizes used for wire accounting.
inline constexpr Bytes kIpHeaderBytes = 20;
inline constexpr Bytes kTcpHeaderBytes = 20;
inline constexpr Bytes kUdpHeaderBytes = 8;
// Short-header QUIC public header: flags (1) + connection id (8) + packet
// number (4).
inline constexpr Bytes kQuicHeaderBytes = 13;
// TCP maximum segment size (payload bytes per segment).
inline constexpr Bytes kTcpMss = 1448;
// Maximum QUIC packet payload (post-header), mirroring Cronet defaults.
inline constexpr Bytes kQuicMaxPayload = 1350;

struct Packet {
  // Identity of the connection this packet belongs to (simulator-level; the
  // observable equivalent is the 5-tuple below).
  uint64_t flow_id = 0;
  bool from_client = false;
  Transport transport = Transport::kTcp;

  uint32_t client_ip = 0;
  uint32_t server_ip = 0;
  uint16_t client_port = 0;
  uint16_t server_port = 443;

  // Transport payload carried by this packet (TCP payload bytes / UDP payload
  // bytes). Zero for pure ACKs.
  Bytes payload = 0;

  // TCP-only: sequence number of the packet's first payload byte. A
  // retransmission reuses the original sequence number.
  uint64_t tcp_seq = 0;
  // TCP-only: cumulative acknowledgment carried by this packet (every TCP
  // packet carries one; a "pure ACK" is a packet with payload == 0).
  uint64_t tcp_ack = 0;

  // QUIC-only: monotonically increasing packet number; retransmitted data is
  // carried under a *new* packet number (paper §2).
  uint64_t quic_packet_number = 0;

  // Non-empty on the TLS/QUIC ClientHello: the Server Name Indication.
  std::string sni;

  // --- Simulation-internal semantics (encrypted on a real wire; the capture
  // module never copies these into observer-visible records) ---

  // TCP SACK blocks: received byte ranges above the cumulative ack (real
  // stacks carry these in TCP options; we model the semantics only).
  std::vector<std::pair<uint64_t, uint64_t>> sim_tcp_sack;

  // QUIC STREAM frames carried by this packet.
  struct QuicFrame {
    uint64_t stream_id = 0;
    uint64_t offset = 0;
    Bytes len = 0;
  };
  std::vector<QuicFrame> sim_quic_frames;
  // QUIC ACK frame contents: packet numbers newly acknowledged.
  std::vector<uint64_t> sim_quic_acks;

  // Debug-only ground truth (never read by the CSI inference): true if this
  // packet repeats previously transmitted data.
  bool debug_is_retransmission = false;

  Bytes WireSize() const {
    const Bytes transport_header =
        transport == Transport::kTcp ? kTcpHeaderBytes : kUdpHeaderBytes;
    return kIpHeaderBytes + transport_header + payload;
  }
};

// Receiving end of a packet hop.
using PacketSink = std::function<void(const Packet&)>;

}  // namespace csi::net

#endif  // CSI_SRC_NET_PACKET_H_
