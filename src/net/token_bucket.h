// Token-bucket traffic shaper (the `tc tbf` analogue of paper §7).
//
// Tokens (bytes) accrue at rate `r` up to bucket size `N`. A packet departs
// immediately if the bucket holds enough tokens for its wire size; otherwise
// it queues until tokens accumulate. The two parameters r and N are exactly
// the knobs explored in Fig. 10.

#ifndef CSI_SRC_NET_TOKEN_BUCKET_H_
#define CSI_SRC_NET_TOKEN_BUCKET_H_

#include <deque>

#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace csi::net {

struct TokenBucketConfig {
  BitsPerSec rate = 1.5 * kMbps;  // token generation rate r
  Bytes bucket_size = 50 * kKB;   // bucket size N
  // Shaper queue depth in bytes (0 = unbounded). `tc tbf` uses a finite
  // limit; overflow drops.
  Bytes queue_limit = 0;
};

class TokenBucket {
 public:
  TokenBucket(sim::Simulator* sim, TokenBucketConfig config, PacketSink sink);

  void Send(const Packet& packet);

  int64_t packets_dropped() const { return packets_dropped_; }
  // Tokens currently available (refreshed to now).
  Bytes TokensAvailable();

 private:
  void Refill();
  void TryDrain();

  sim::Simulator* sim_;
  TokenBucketConfig config_;
  PacketSink sink_;

  double tokens_;          // bytes
  TimeUs last_refill_ = 0;
  std::deque<Packet> queue_;
  Bytes queued_bytes_ = 0;
  uint64_t pending_event_ = 0;
  int64_t packets_dropped_ = 0;
};

}  // namespace csi::net

#endif  // CSI_SRC_NET_TOKEN_BUCKET_H_
