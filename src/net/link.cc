#include "src/net/link.h"

#include <utility>

namespace csi::net {

Link::Link(sim::Simulator* sim, LinkConfig config, std::unique_ptr<LossModel> loss, Rng rng,
           PacketSink sink)
    : sim_(sim),
      config_(config),
      loss_(std::move(loss)),
      rng_(rng),
      sink_(std::move(sink)) {}

void Link::Send(const Packet& packet) {
  if (loss_ != nullptr && loss_->ShouldDrop(rng_)) {
    ++packets_dropped_;
    return;
  }
  if (config_.queue_limit > 0 && queued_bytes_ + packet.WireSize() > config_.queue_limit) {
    ++packets_dropped_;  // drop-tail
    return;
  }
  queue_.push_back(packet);
  queued_bytes_ += packet.WireSize();
  if (!transmitting_) {
    ScheduleNextDeparture();
  }
}

void Link::ScheduleNextDeparture() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const Packet packet = queue_.front();
  // Serialization time at the rate in force when transmission starts. Trace
  // granularity (seconds) dwarfs per-packet times (sub-millisecond), so
  // sampling the rate once per packet is accurate.
  TimeUs serialization = 0;
  if (config_.trace != nullptr) {
    serialization = TransmissionTimeUs(packet.WireSize(), config_.trace->RateAt(sim_->Now()));
  }
  sim_->ScheduleAfter(serialization, [this] {
    const Packet sent = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= sent.WireSize();
    ++packets_delivered_;
    sim_->ScheduleAfter(config_.propagation_delay, [this, sent] {
      if (sink_) {
        sink_(sent);
      }
    });
    ScheduleNextDeparture();
  });
}

}  // namespace csi::net
