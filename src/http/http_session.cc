#include "src/http/http_session.h"

#include <utility>

namespace csi::http {

HttpSession::HttpSession(sim::Simulator* sim, SessionConfig config, net::PacketSink client_out,
                         net::PacketSink server_out, ServerHandler handler)
    : sim_(sim), config_(std::move(config)), handler_(std::move(handler)) {
  if (config_.protocol == Protocol::kHttps) {
    transport::TcpConfig tcp;
    tcp.flow_id = config_.flow_id;
    tcp.client_ip = config_.client_ip;
    tcp.server_ip = config_.server_ip;
    tcp.client_port = config_.client_port;
    tcp.server_port = config_.server_port;
    tcp.sni = config_.sni;
    connection_ = std::make_unique<transport::TcpTlsConnection>(
        sim_, tcp, std::move(client_out), std::move(server_out), MakeCallbacks());
  } else {
    transport::QuicConfig quic;
    quic.flow_id = config_.flow_id;
    quic.client_ip = config_.client_ip;
    quic.server_ip = config_.server_ip;
    quic.client_port = config_.client_port;
    quic.server_port = config_.server_port;
    quic.sni = config_.sni;
    connection_ = std::make_unique<transport::QuicConnection>(
        sim_, quic, std::move(client_out), std::move(server_out), MakeCallbacks());
  }
}

transport::ConnectionCallbacks HttpSession::MakeCallbacks() {
  transport::ConnectionCallbacks cb;
  cb.on_ready = [this] {
    if (on_ready_) {
      on_ready_();
    }
  };
  cb.on_request = [this](uint64_t exchange_id, Bytes) {
    // Server side: resolve the tag and respond after the think time. If the
    // request arrived synchronously (zero-hop test wiring) the client-side
    // bookkeeping may not be in place yet; retry on the next event round.
    auto it = pending_.find(exchange_id);
    if (it == pending_.end()) {
      sim_->ScheduleAfter(0, [this, exchange_id] {
        auto retry = pending_.find(exchange_id);
        if (retry == pending_.end()) {
          return;
        }
        const Bytes body = handler_ ? handler_(retry->second.tag) : 0;
        retry->second.body_bytes = body;
        sim_->ScheduleAfter(config_.server_delay, [this, exchange_id, body] {
          connection_->SendResponse(exchange_id, body);
        });
      });
      return;
    }
    const Bytes body = handler_ ? handler_(it->second.tag) : 0;
    it->second.body_bytes = body;
    sim_->ScheduleAfter(config_.server_delay, [this, exchange_id, body] {
      connection_->SendResponse(exchange_id, body);
    });
  };
  cb.on_response = [this](uint64_t exchange_id) {
    auto it = pending_.find(exchange_id);
    if (it == pending_.end()) {
      return;
    }
    FetchResult result;
    result.tag = it->second.tag;
    result.request_time = it->second.request_time;
    result.done_time = sim_->Now();
    result.body_bytes = it->second.body_bytes;
    DoneCallback done = std::move(it->second.done);
    pending_.erase(it);
    if (done) {
      done(result);
    }
  };
  cb.on_progress = [this](uint64_t exchange_id, Bytes received, Bytes total) {
    auto it = pending_.find(exchange_id);
    if (it != pending_.end() && it->second.progress) {
      it->second.progress(received, total);
    }
  };
  return cb;
}

void HttpSession::Connect(std::function<void()> on_ready) {
  on_ready_ = std::move(on_ready);
  connection_->Connect();
}

uint64_t HttpSession::Get(std::string tag, Bytes request_bytes, DoneCallback done,
                          ProgressCallback progress) {
  const uint64_t exchange_id = connection_->SendRequest(request_bytes);
  PendingFetch fetch;
  fetch.tag = std::move(tag);
  fetch.request_time = sim_->Now();
  fetch.done = std::move(done);
  fetch.progress = std::move(progress);
  pending_.emplace(exchange_id, std::move(fetch));
  return exchange_id;
}

void HttpSession::DeliverToClient(const net::Packet& packet) {
  if (config_.protocol == Protocol::kHttps) {
    static_cast<transport::TcpTlsConnection*>(connection_.get())->DeliverToClient(packet);
  } else {
    static_cast<transport::QuicConnection*>(connection_.get())->DeliverToClient(packet);
  }
}

void HttpSession::DeliverToServer(const net::Packet& packet) {
  if (config_.protocol == Protocol::kHttps) {
    static_cast<transport::TcpTlsConnection*>(connection_.get())->DeliverToServer(packet);
  } else {
    static_cast<transport::QuicConnection*>(connection_.get())->DeliverToServer(packet);
  }
}

}  // namespace csi::http
