// One HTTP client/server exchange channel over an encrypted transport.
//
// `HttpSession` owns a transport connection (HTTPS or QUIC) plus the exchange
// bookkeeping both ends need: the client issues `Get(tag, ...)` requests
// (where `tag` stands in for the URL — on a real wire it is encrypted and
// invisible to observers), the registered server handler maps the tag to a
// response body size, and completion/progress callbacks fire at the client.
// Because the simulation is one process, the session also plays the role of
// the origin server's request dispatcher.

#ifndef CSI_SRC_HTTP_HTTP_SESSION_H_
#define CSI_SRC_HTTP_HTTP_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/transport/connection.h"
#include "src/transport/quic_connection.h"
#include "src/transport/tcp_connection.h"

namespace csi::http {

enum class Protocol { kHttps, kQuic };

struct SessionConfig {
  Protocol protocol = Protocol::kHttps;
  uint64_t flow_id = 1;
  uint32_t client_ip = 0x0A000002;
  uint32_t server_ip = 0xC0A80001;
  uint16_t client_port = 50000;
  uint16_t server_port = 443;
  std::string sni = "cdn.example";
  // Server think time before a response starts flowing.
  TimeUs server_delay = 3 * kUsPerMs;
};

// Maps a request tag to the response body size.
using ServerHandler = std::function<Bytes(const std::string& tag)>;

struct FetchResult {
  std::string tag;
  TimeUs request_time = 0;
  TimeUs done_time = 0;
  Bytes body_bytes = 0;
};

using DoneCallback = std::function<void(const FetchResult&)>;
using ProgressCallback = std::function<void(Bytes received, Bytes total)>;

class HttpSession {
 public:
  // `client_out` / `server_out` are the packet entry points of the uplink and
  // downlink network paths.
  HttpSession(sim::Simulator* sim, SessionConfig config, net::PacketSink client_out,
              net::PacketSink server_out, ServerHandler handler);

  // Starts the transport handshake; `on_ready` fires when requests can flow.
  void Connect(std::function<void()> on_ready);

  // Issues a GET. `request_bytes` models the encrypted request size.
  uint64_t Get(std::string tag, Bytes request_bytes, DoneCallback done,
               ProgressCallback progress = nullptr);

  // Packet delivery entry points for the network paths.
  void DeliverToClient(const net::Packet& packet);
  void DeliverToServer(const net::Packet& packet);

  bool ready() const { return connection_->ready(); }
  const SessionConfig& config() const { return config_; }
  // Number of requests issued but not yet completed.
  int outstanding() const { return static_cast<int>(pending_.size()); }

 private:
  struct PendingFetch {
    std::string tag;
    TimeUs request_time = 0;
    Bytes body_bytes = 0;
    DoneCallback done;
    ProgressCallback progress;
  };

  transport::ConnectionCallbacks MakeCallbacks();

  sim::Simulator* sim_;
  SessionConfig config_;
  ServerHandler handler_;
  std::function<void()> on_ready_;
  std::unique_ptr<transport::Connection> connection_;
  // The transport owns exchange ids; we key our state on them.
  std::map<uint64_t, PendingFetch> pending_;
  std::map<uint64_t, std::string> tags_in_flight_;  // exchange -> tag (server side)
};

}  // namespace csi::http

#endif  // CSI_SRC_HTTP_HTTP_SESSION_H_
