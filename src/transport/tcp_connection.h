// HTTPS transport: TLS 1.3 over a reduced-order but packet-accurate TCP.
//
// What CSI needs from this model (paper §2, §3.2, §5.3.1) and what we
// therefore reproduce faithfully:
//   * data segments carry real sequence numbers, and a retransmission reuses
//     the original sequence number — so an observer can de-duplicate;
//   * pure ACKs have zero payload, so uplink request packets (payload > 0)
//     are distinguishable by sequence advance;
//   * TLS record framing inflates app bytes by ~0.13%, and HTTP headers ride
//     inside the same stream — bounding the size-estimation error k at ~1%;
//   * responses on one connection are strictly serialized (no multiplexing):
//     HTTP/1.1 semantics, enforced here by FIFO response ordering;
//   * congestion control (slow start + AIMD, fast retransmit, RTO) produces
//     realistic throughput dynamics over the emulated links.

#ifndef CSI_SRC_TRANSPORT_TCP_CONNECTION_H_
#define CSI_SRC_TRANSPORT_TCP_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/transport/connection.h"
#include "src/transport/interval_set.h"

namespace csi::transport {

struct TcpConfig {
  uint64_t flow_id = 1;
  uint32_t client_ip = 0x0A000002;  // 10.0.0.2
  uint32_t server_ip = 0xC0A80001;
  uint16_t client_port = 50000;
  uint16_t server_port = 443;
  std::string sni = "cdn.example";
  Bytes initial_cwnd = 10 * net::kTcpMss;
  TimeUs min_rto = 200 * kUsPerMs;
  TimeUs max_rto = 3 * kUsPerSec;
  // Fixed per-request HTTP header overhead modeled inside the TLS stream.
  Bytes response_header_bytes = 160;
};

class TcpTlsConnection : public Connection {
 public:
  // `client_out` carries packets from the client endpoint into the uplink
  // path; `server_out` from the server endpoint into the downlink path.
  TcpTlsConnection(sim::Simulator* sim, TcpConfig config, net::PacketSink client_out,
                   net::PacketSink server_out, ConnectionCallbacks callbacks);

  // Wire -> endpoint delivery (invoked by the network paths).
  void DeliverToClient(const net::Packet& packet);
  void DeliverToServer(const net::Packet& packet);

  void Connect() override;
  uint64_t SendRequest(Bytes app_bytes) override;
  void SendResponse(uint64_t exchange_id, Bytes app_bytes) override;
  bool ready() const override { return ready_; }

  const TcpConfig& config() const { return config_; }

 private:
  // Per-direction sender/receiver state. "owner is client" == uplink data.
  struct Half {
    bool is_client = false;

    // --- Sender ---
    struct Message {
      uint64_t exchange_id = 0;       // 0 for handshake-internal messages
      Bytes app_bytes = 0;
      uint64_t wire_start = 0;
      uint64_t wire_end = 0;
      bool carries_sni = false;
    };
    std::deque<Message> messages;  // not yet fully delivered to the peer app
    uint64_t stream_end = 0;       // total wire bytes queued so far
    uint64_t snd_una = 0;
    uint64_t snd_nxt = 0;
    double cwnd = 0;
    double ssthresh = 1e18;
    int dup_acks = 0;
    uint64_t recovery_end = 0;  // snd_nxt when loss was detected
    bool in_recovery = false;
    // seq -> (len, send_time, was_retransmitted, sacked)
    struct InFlight {
      Bytes len = 0;
      TimeUs send_time = 0;
      bool retransmitted = false;
      bool sacked = false;  // receiver reported it via SACK
    };
    std::map<uint64_t, InFlight> inflight;
    Bytes sacked_bytes = 0;          // total bytes currently marked sacked
    uint64_t highest_sacked = 0;     // highest sacked end-seq

    // Bytes actually outstanding in the network (SACKed data has left it).
    Bytes FlightBytes() const {
      return static_cast<Bytes>(snd_nxt - snd_una) - sacked_bytes;
    }
    uint64_t rto_event = 0;
    TimeUs srtt = 0;
    TimeUs rto = kUsPerSec;

    // --- Receiver state for the *opposite* direction's data ---
    uint64_t rcv_nxt = 0;
    IntervalSet received;
  };

  void QueueMessage(Half& half, uint64_t exchange_id, Bytes app_bytes, Bytes wire_bytes,
                    bool carries_sni);
  void TrySend(Half& half);
  void EmitSegment(Half& half, uint64_t seq, Bytes len, bool retransmission);
  void OnPacket(Half& data_half, const net::Packet& packet);
  void OnAck(Half& half, const net::Packet& packet);
  // Retransmits unSACKed holes below the highest SACKed sequence.
  void RepairHoles(Half& half);
  void ArmRto(Half& half);
  void ScheduleSynRetry();
  void OnRto(Half& half);
  void SendPureAck(Half& receiver_side);
  void DeliverAppProgress(Half& half);
  net::Packet MakePacket(bool from_client, Bytes payload);

  sim::Simulator* sim_;
  TcpConfig config_;
  net::PacketSink client_out_;
  net::PacketSink server_out_;
  ConnectionCallbacks callbacks_;

  Half uplink_;    // client -> server data
  Half downlink_;  // server -> client data

  bool ready_ = false;
  int handshake_stage_ = 0;  // 0 idle, 1 syn sent, 2 CH sent, 3 server flight, 4 done
  uint64_t next_exchange_id_ = 1;

  // HTTP/1.1 response serialization: responses go out in request order.
  std::deque<uint64_t> pending_response_order_;
  std::map<uint64_t, Bytes> ready_responses_;
};

}  // namespace csi::transport

#endif  // CSI_SRC_TRANSPORT_TCP_CONNECTION_H_
