#include "src/transport/tcp_connection.h"

#include <algorithm>
#include <utility>

#include "src/transport/tls.h"

namespace csi::transport {

using net::kTcpMss;
using net::Packet;

TcpTlsConnection::TcpTlsConnection(sim::Simulator* sim, TcpConfig config,
                                   net::PacketSink client_out, net::PacketSink server_out,
                                   ConnectionCallbacks callbacks)
    : sim_(sim),
      config_(std::move(config)),
      client_out_(std::move(client_out)),
      server_out_(std::move(server_out)),
      callbacks_(std::move(callbacks)) {
  uplink_.is_client = true;
  downlink_.is_client = false;
  uplink_.cwnd = static_cast<double>(config_.initial_cwnd);
  downlink_.cwnd = static_cast<double>(config_.initial_cwnd);
}

Packet TcpTlsConnection::MakePacket(bool from_client, Bytes payload) {
  Packet p;
  p.flow_id = config_.flow_id;
  p.from_client = from_client;
  p.transport = net::Transport::kTcp;
  p.client_ip = config_.client_ip;
  p.server_ip = config_.server_ip;
  p.client_port = config_.client_port;
  p.server_port = config_.server_port;
  p.payload = payload;
  return p;
}

void TcpTlsConnection::Connect() {
  handshake_stage_ = 1;
  client_out_(MakePacket(/*from_client=*/true, 0));  // SYN
  // SYN / SYN-ACK carry no stream data, so the data-path RTO cannot recover
  // them; retry until the handshake advances.
  ScheduleSynRetry();
}

void TcpTlsConnection::ScheduleSynRetry() {
  sim_->ScheduleAfter(kUsPerSec, [this] {
    if (handshake_stage_ == 1) {
      client_out_(MakePacket(/*from_client=*/true, 0));
      ScheduleSynRetry();
    }
  });
}

void TcpTlsConnection::QueueMessage(Half& half, uint64_t exchange_id, Bytes app_bytes,
                                    Bytes wire_bytes, bool carries_sni) {
  Half::Message msg;
  msg.exchange_id = exchange_id;
  msg.app_bytes = app_bytes;
  msg.wire_start = half.stream_end;
  msg.wire_end = half.stream_end + static_cast<uint64_t>(wire_bytes);
  msg.carries_sni = carries_sni;
  half.stream_end = msg.wire_end;
  half.messages.push_back(msg);
  TrySend(half);
}

uint64_t TcpTlsConnection::SendRequest(Bytes app_bytes) {
  const uint64_t id = next_exchange_id_++;
  pending_response_order_.push_back(id);
  QueueMessage(uplink_, id, app_bytes, TlsWrappedSize(app_bytes), /*carries_sni=*/false);
  return id;
}

void TcpTlsConnection::SendResponse(uint64_t exchange_id, Bytes app_bytes) {
  ready_responses_[exchange_id] = app_bytes;
  // HTTP/1.1: responses leave in request order.
  while (!pending_response_order_.empty()) {
    auto it = ready_responses_.find(pending_response_order_.front());
    if (it == ready_responses_.end()) {
      break;
    }
    const Bytes total_app = it->second + config_.response_header_bytes;
    QueueMessage(downlink_, it->first, total_app, TlsWrappedSize(total_app),
                 /*carries_sni=*/false);
    ready_responses_.erase(it);
    pending_response_order_.pop_front();
  }
}

void TcpTlsConnection::TrySend(Half& half) {
  while (half.snd_nxt < half.stream_end) {
    const Bytes len =
        std::min<Bytes>(kTcpMss, static_cast<Bytes>(half.stream_end - half.snd_nxt));
    if (static_cast<double>(half.FlightBytes() + len) > half.cwnd) {
      break;
    }
    EmitSegment(half, half.snd_nxt, len, /*retransmission=*/false);
    half.snd_nxt += static_cast<uint64_t>(len);
  }
}

void TcpTlsConnection::EmitSegment(Half& half, uint64_t seq, Bytes len, bool retransmission) {
  Packet p = MakePacket(half.is_client, len);
  p.tcp_seq = seq;
  Half& other = half.is_client ? downlink_ : uplink_;
  p.tcp_ack = other.rcv_nxt;
  p.debug_is_retransmission = retransmission;
  // The SNI rides in the ClientHello: the first uplink handshake bytes.
  if (half.is_client && seq == 0 && handshake_stage_ <= 2) {
    p.sni = config_.sni;
  }
  auto [it, inserted] = half.inflight.try_emplace(seq);
  it->second.len = len;
  it->second.send_time = sim_->Now();
  if (!inserted || retransmission) {
    it->second.retransmitted = true;
  }
  ArmRto(half);
  (half.is_client ? client_out_ : server_out_)(p);
}

void TcpTlsConnection::ArmRto(Half& half) {
  if (half.rto_event != 0) {
    return;
  }
  half.rto_event = sim_->ScheduleAfter(half.rto, [this, &half] {
    half.rto_event = 0;
    OnRto(half);
  });
}

void TcpTlsConnection::OnRto(Half& half) {
  if (half.inflight.empty()) {
    return;
  }
  const Bytes flight = static_cast<Bytes>(half.snd_nxt - half.snd_una);
  half.ssthresh = std::max(static_cast<double>(flight) / 2.0, 2.0 * kTcpMss);
  half.cwnd = 1.0 * kTcpMss;
  half.rto = std::min<TimeUs>(half.rto * 2, config_.max_rto);
  half.in_recovery = true;
  half.recovery_end = half.snd_nxt;
  const auto first = half.inflight.begin();
  EmitSegment(half, first->first, first->second.len, /*retransmission=*/true);
}

void TcpTlsConnection::RepairHoles(Half& half) {
  if (half.highest_sacked == 0) {
    return;
  }
  // Retransmit unSACKed segments below the highest SACKed byte, at most two
  // per ack event and not more often than once per RTT per segment.
  int budget = 2;
  const TimeUs now = sim_->Now();
  const TimeUs min_gap = std::max<TimeUs>(half.srtt, 10 * kUsPerMs);
  for (auto& [seq, entry] : half.inflight) {
    if (budget == 0 || seq >= half.highest_sacked) {
      break;
    }
    if (entry.sacked || now - entry.send_time < min_gap) {
      continue;
    }
    EmitSegment(half, seq, entry.len, /*retransmission=*/true);
    --budget;
  }
}

void TcpTlsConnection::OnAck(Half& half, const net::Packet& packet) {
  const uint64_t ack = packet.tcp_ack;
  bool sack_progress = false;
  // Process SACK blocks: segments inside advertised ranges left the network.
  for (const auto& [lo, hi] : packet.sim_tcp_sack) {
    for (auto it = half.inflight.lower_bound(lo);
         it != half.inflight.end() && it->first < hi; ++it) {
      if (!it->second.sacked &&
          it->first + static_cast<uint64_t>(it->second.len) <= hi) {
        it->second.sacked = true;
        half.sacked_bytes += it->second.len;
        sack_progress = true;
      }
    }
    half.highest_sacked = std::max(half.highest_sacked, hi);
  }

  if (ack > half.snd_una) {
    // New data acknowledged.
    bool rtt_sampled = false;
    auto it = half.inflight.begin();
    while (it != half.inflight.end() && it->first < ack) {
      if (!rtt_sampled && !it->second.retransmitted) {
        const TimeUs sample = sim_->Now() - it->second.send_time;
        half.srtt = half.srtt == 0 ? sample : (7 * half.srtt + sample) / 8;
        half.rto = std::clamp<TimeUs>(2 * half.srtt, config_.min_rto, config_.max_rto);
        rtt_sampled = true;
      }
      const Bytes acked = it->second.len;
      if (it->second.sacked) {
        half.sacked_bytes -= acked;
      }
      if (half.cwnd < half.ssthresh) {
        half.cwnd += static_cast<double>(acked);  // slow start
      } else {
        half.cwnd += static_cast<double>(kTcpMss) * static_cast<double>(kTcpMss) / half.cwnd;
      }
      it = half.inflight.erase(it);
    }
    half.snd_una = ack;
    half.dup_acks = 0;
    if (half.highest_sacked <= ack) {
      half.highest_sacked = 0;
    }
    if (half.in_recovery && ack >= half.recovery_end) {
      half.in_recovery = false;
    }
    RepairHoles(half);
    if (half.rto_event != 0) {
      sim_->Cancel(half.rto_event);
      half.rto_event = 0;
    }
    if (!half.inflight.empty()) {
      ArmRto(half);
    }
    TrySend(half);
  } else if (ack == half.snd_una && half.snd_nxt > half.snd_una &&
             (packet.payload == 0 || sack_progress)) {
    ++half.dup_acks;
    if (half.dup_acks == 3 && !half.in_recovery) {
      half.ssthresh = std::max(static_cast<double>(half.FlightBytes()) / 2.0, 2.0 * kTcpMss);
      half.cwnd = half.ssthresh;
      half.in_recovery = true;
      half.recovery_end = half.snd_nxt;
      auto it = half.inflight.find(half.snd_una);
      if (it != half.inflight.end() && !it->second.sacked) {
        EmitSegment(half, it->first, it->second.len, /*retransmission=*/true);
      }
    } else if (half.in_recovery) {
      RepairHoles(half);
      TrySend(half);
    }
  }
}

void TcpTlsConnection::SendPureAck(Half& data_half) {
  // ACK for `data_half`'s data travels in the opposite direction.
  const bool from_client = !data_half.is_client;
  Packet p = MakePacket(from_client, 0);
  Half& own_data = from_client ? uplink_ : downlink_;
  p.tcp_seq = own_data.snd_nxt;
  p.tcp_ack = data_half.rcv_nxt;
  // SACK: advertise out-of-order ranges above the cumulative ack.
  for (const auto& [lo, hi] : data_half.received.Ranges()) {
    if (hi <= data_half.rcv_nxt) {
      continue;
    }
    p.sim_tcp_sack.emplace_back(std::max(lo, data_half.rcv_nxt), hi);
    if (p.sim_tcp_sack.size() >= 16) {
      break;
    }
  }
  (from_client ? client_out_ : server_out_)(p);
}

void TcpTlsConnection::DeliverAppProgress(Half& half) {
  while (!half.messages.empty() && half.rcv_nxt >= half.messages.front().wire_end) {
    const Half::Message msg = half.messages.front();
    half.messages.pop_front();
    if (msg.exchange_id != 0) {
      if (half.is_client) {
        if (callbacks_.on_request) {
          callbacks_.on_request(msg.exchange_id, msg.app_bytes);
        }
      } else {
        if (callbacks_.on_response) {
          callbacks_.on_response(msg.exchange_id);
        }
      }
      continue;
    }
    // Handshake progression.
    if (half.is_client && handshake_stage_ == 2) {
      // Server got the ClientHello: send the server flight.
      handshake_stage_ = 3;
      QueueMessage(downlink_, 0, 0, kTlsServerFlightBytes, /*carries_sni=*/false);
    } else if (!half.is_client && handshake_stage_ == 3) {
      // Client got the server flight: send Finished; connection usable.
      handshake_stage_ = 4;
      QueueMessage(uplink_, 0, 0, kTlsClientFinishedBytes, /*carries_sni=*/false);
      ready_ = true;
      if (callbacks_.on_ready) {
        callbacks_.on_ready();
      }
    }
  }
  // Partial-progress report for the (client-side) response being received.
  if (!half.is_client && !half.messages.empty() && callbacks_.on_progress) {
    const Half::Message& msg = half.messages.front();
    if (msg.exchange_id != 0 && half.rcv_nxt > msg.wire_start) {
      const Bytes received = std::min<Bytes>(
          msg.app_bytes, static_cast<Bytes>(half.rcv_nxt - msg.wire_start));
      callbacks_.on_progress(msg.exchange_id, received, msg.app_bytes);
    }
  }
}

void TcpTlsConnection::OnPacket(Half& data_half, const net::Packet& packet) {
  // The ACK field acknowledges *our* data flowing the other way.
  Half& our_send_half = data_half.is_client ? downlink_ : uplink_;
  (void)our_send_half;
  if (packet.payload > 0) {
    data_half.received.Add(packet.tcp_seq, packet.tcp_seq + static_cast<uint64_t>(packet.payload));
    data_half.rcv_nxt = data_half.received.ContiguousPrefix();
    SendPureAck(data_half);
    DeliverAppProgress(data_half);
  }
}

void TcpTlsConnection::DeliverToClient(const net::Packet& packet) {
  if (handshake_stage_ == 1 && packet.payload == 0) {
    // SYN-ACK: reply with the final handshake ACK + ClientHello.
    handshake_stage_ = 2;
    client_out_(MakePacket(/*from_client=*/true, 0));
    QueueMessage(uplink_, 0, 0, kTlsClientHelloBytes, /*carries_sni=*/true);
    return;
  }
  OnAck(uplink_, packet);
  OnPacket(downlink_, packet);
}

void TcpTlsConnection::DeliverToServer(const net::Packet& packet) {
  if (handshake_stage_ == 1 && packet.payload == 0 && uplink_.stream_end == 0) {
    // SYN: reply SYN-ACK.
    server_out_(MakePacket(/*from_client=*/false, 0));
    return;
  }
  OnAck(downlink_, packet);
  OnPacket(uplink_, packet);
}

}  // namespace csi::transport
