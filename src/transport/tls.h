// TLS record-layer size accounting.
//
// We never encrypt real bytes; what matters for CSI is how TLS inflates the
// byte counts a passive observer measures. Application data is carried in
// records of at most 16 KiB plaintext, each adding a 5-byte record header and
// a 16-byte AEAD tag. This ~0.13% inflation (plus HTTP response headers) is
// the source of the paper's k = 1% HTTPS estimation-error bound (§3.2).

#ifndef CSI_SRC_TRANSPORT_TLS_H_
#define CSI_SRC_TRANSPORT_TLS_H_

#include "src/common/units.h"

namespace csi::transport {

inline constexpr Bytes kTlsMaxRecordPayload = 16 * 1024;
inline constexpr Bytes kTlsRecordHeaderBytes = 5;
inline constexpr Bytes kTlsAeadTagBytes = 16;
inline constexpr Bytes kTlsPerRecordOverhead = kTlsRecordHeaderBytes + kTlsAeadTagBytes;

// Handshake flight sizes (wire bytes), approximating TLS 1.3.
inline constexpr Bytes kTlsClientHelloBytes = 330;   // carries the SNI
inline constexpr Bytes kTlsServerFlightBytes = 3200; // ServerHello..Finished, cert chain
inline constexpr Bytes kTlsClientFinishedBytes = 90;

// Wire bytes of `app_bytes` of application data after record framing.
constexpr Bytes TlsWrappedSize(Bytes app_bytes) {
  if (app_bytes <= 0) {
    return 0;
  }
  const Bytes records = (app_bytes + kTlsMaxRecordPayload - 1) / kTlsMaxRecordPayload;
  return app_bytes + records * kTlsPerRecordOverhead;
}

}  // namespace csi::transport

#endif  // CSI_SRC_TRANSPORT_TLS_H_
