#include "src/transport/quic_connection.h"

#include <algorithm>
#include <utility>

namespace csi::transport {

using net::kQuicMaxPayload;
using net::Packet;

namespace {
// Handshake message sizes (stream 0).
constexpr Bytes kClientInitialBytes = 1200;  // padded Initial carrying the SNI
constexpr Bytes kServerFlightBytes = 3000;   // ServerHello..Finished + certs
// ACK frame size: fixed part + 2 bytes per reported range (capped).
constexpr Bytes AckFrameBytes(size_t count) {
  return 16 + 2 * static_cast<Bytes>(std::min<size_t>(count, 8));
}
}  // namespace

uint64_t QuicConnection::StreamSend::PendingBytes() const {
  uint64_t pending = total - next_offset;
  for (const auto& [lo, hi] : retx) {
    pending += hi - lo;
  }
  return pending;
}

QuicConnection::QuicConnection(sim::Simulator* sim, QuicConfig config,
                               net::PacketSink client_out, net::PacketSink server_out,
                               ConnectionCallbacks callbacks)
    : sim_(sim),
      config_(std::move(config)),
      client_out_(std::move(client_out)),
      server_out_(std::move(server_out)),
      callbacks_(std::move(callbacks)) {
  client_.is_client = true;
  server_.is_client = false;
  client_.cwnd = static_cast<double>(config_.initial_cwnd);
  server_.cwnd = static_cast<double>(config_.initial_cwnd);
}

Packet QuicConnection::MakePacket(bool from_client) {
  Packet p;
  p.flow_id = config_.flow_id;
  p.from_client = from_client;
  p.transport = net::Transport::kUdp;
  p.client_ip = config_.client_ip;
  p.server_ip = config_.server_ip;
  p.client_port = config_.client_port;
  p.server_port = config_.server_port;
  return p;
}

void QuicConnection::Connect() {
  handshake_stage_ = 1;
  server_.recv_streams[0].expected = kClientInitialBytes;
  QueueStreamBytes(client_, 0, kClientInitialBytes);
}

uint64_t QuicConnection::SendRequest(Bytes app_bytes) {
  const uint64_t stream_id = next_stream_id_;
  next_stream_id_ += 4;
  request_sizes_[stream_id] = app_bytes;
  server_.recv_streams[stream_id].expected = static_cast<uint64_t>(app_bytes);
  QueueStreamBytes(client_, stream_id, app_bytes);
  return stream_id;
}

void QuicConnection::SendResponse(uint64_t exchange_id, Bytes app_bytes) {
  const Bytes total = app_bytes + config_.response_header_bytes;
  client_.recv_streams[exchange_id].expected = static_cast<uint64_t>(total);
  QueueStreamBytes(server_, exchange_id, total);
}

void QuicConnection::QueueStreamBytes(Endpoint& ep, uint64_t stream_id, Bytes bytes) {
  auto [it, inserted] = ep.send_streams.try_emplace(stream_id);
  if (inserted) {
    ep.streams_rr.push_back(stream_id);
  }
  it->second.total += static_cast<uint64_t>(bytes);
  PumpSend(ep);
}

void QuicConnection::EmitPacket(Endpoint& ep, Packet packet, bool retransmittable) {
  packet.quic_packet_number = ep.next_packet_number++;
  if (ep.is_client && handshake_stage_ <= 1 && packet.quic_packet_number == 1) {
    packet.sni = config_.sni;  // ClientHello in the Initial
  }
  if (retransmittable) {
    SentPacket sent;
    sent.frames = packet.sim_quic_frames;
    sent.payload = packet.payload;
    sent.send_time = sim_->Now();
    sent.retransmission = packet.debug_is_retransmission;
    ep.sent.emplace(packet.quic_packet_number, std::move(sent));
    ep.bytes_in_flight += packet.payload;
    ArmRto(ep);
  }
  (ep.is_client ? client_out_ : server_out_)(packet);
}

void QuicConnection::PumpSend(Endpoint& ep) {
  for (int guard = 0; guard < 4096; ++guard) {
    if (static_cast<double>(ep.bytes_in_flight) >= ep.cwnd) {
      return;
    }
    Packet p = MakePacket(ep.is_client);
    Bytes payload = 0;
    // Piggyback any pending ACK frame.
    if (!ep.pending_acks.empty()) {
      payload += AckFrameBytes(ep.pending_acks.size());
      p.sim_quic_acks = std::move(ep.pending_acks);
      ep.pending_acks.clear();
      if (ep.ack_event != 0) {
        sim_->Cancel(ep.ack_event);
        ep.ack_event = 0;
      }
    }
    // Periodic client flow-control update (encrypted signalling overhead).
    if (ep.is_client && ep.packets_since_max_data >= 32) {
      payload += config_.max_data_frame_bytes;
      ep.packets_since_max_data = 0;
    }
    // Fill with stream frames, round-robin across active streams.
    bool any_data = false;
    bool is_retx = false;
    const size_t nstreams = ep.streams_rr.size();
    for (size_t scan = 0; scan < nstreams; ++scan) {
      const uint64_t sid = ep.streams_rr[(ep.rr_cursor + scan) % nstreams];
      StreamSend& ss = ep.send_streams[sid];
      while (ss.PendingBytes() > 0 &&
             payload + config_.frame_header_bytes < kQuicMaxPayload) {
        const Bytes space = kQuicMaxPayload - payload - config_.frame_header_bytes;
        Packet::QuicFrame frame;
        frame.stream_id = sid;
        if (!ss.retx.empty()) {
          auto& [lo, hi] = ss.retx.front();
          frame.offset = lo;
          frame.len = std::min<Bytes>(space, static_cast<Bytes>(hi - lo));
          lo += static_cast<uint64_t>(frame.len);
          if (lo >= hi) {
            ss.retx.pop_front();
          }
          is_retx = true;
        } else {
          frame.offset = ss.next_offset;
          frame.len = std::min<Bytes>(space, static_cast<Bytes>(ss.total - ss.next_offset));
          ss.next_offset += static_cast<uint64_t>(frame.len);
        }
        if (frame.len <= 0) {
          break;
        }
        payload += frame.len + config_.frame_header_bytes;
        p.sim_quic_frames.push_back(frame);
        any_data = true;
      }
      if (payload + config_.frame_header_bytes >= kQuicMaxPayload) {
        break;
      }
      // Clients flush each request as its own datagram (as real HTTP/3
      // stacks do) — this keeps simultaneous audio+video requests visible as
      // two packets, the SP2 signal of paper §5.3.2.
      if (ep.is_client && any_data) {
        break;
      }
    }
    if (nstreams > 0) {
      ep.rr_cursor = (ep.rr_cursor + 1) % nstreams;
    }
    if (payload == 0) {
      return;  // nothing to send
    }
    p.payload = net::kQuicHeaderBytes + payload;
    p.debug_is_retransmission = is_retx;
    EmitPacket(ep, std::move(p), any_data);
    if (!any_data) {
      return;  // ACK-only packet; no data left
    }
  }
}

void QuicConnection::FlushAcks(Endpoint& ep, bool allow_standalone) {
  PumpSend(ep);  // may piggyback
  if (ep.pending_acks.empty() || !allow_standalone) {
    return;
  }
  Packet p = MakePacket(ep.is_client);
  Bytes payload = AckFrameBytes(ep.pending_acks.size());
  p.sim_quic_acks = std::move(ep.pending_acks);
  ep.pending_acks.clear();
  if (ep.ack_event != 0) {
    sim_->Cancel(ep.ack_event);
    ep.ack_event = 0;
  }
  if (ep.is_client && ep.packets_since_max_data >= 32) {
    payload += config_.max_data_frame_bytes;
    ep.packets_since_max_data = 0;
  }
  p.payload = net::kQuicHeaderBytes + payload;
  EmitPacket(ep, std::move(p), /*retransmittable=*/false);
}

void QuicConnection::ArmRto(Endpoint& ep) {
  if (ep.rto_event != 0) {
    return;
  }
  ep.rto_event = sim_->ScheduleAfter(ep.rto, [this, &ep] {
    ep.rto_event = 0;
    OnRto(ep);
  });
}

void QuicConnection::OnRto(Endpoint& ep) {
  if (ep.sent.empty()) {
    return;
  }
  const uint64_t oldest = ep.sent.begin()->first;
  MarkLost(ep, oldest);
  ep.cwnd = 2.0 * kQuicMaxPayload;
  ep.ssthresh = std::max(ep.cwnd, 2.0 * kQuicMaxPayload);
  ep.rto = std::min<TimeUs>(ep.rto * 2, config_.max_rto);
  ArmRto(ep);
  PumpSend(ep);
}

void QuicConnection::MarkLost(Endpoint& ep, uint64_t packet_number) {
  auto it = ep.sent.find(packet_number);
  if (it == ep.sent.end()) {
    return;
  }
  ep.bytes_in_flight -= it->second.payload;
  for (const auto& frame : it->second.frames) {
    ep.send_streams[frame.stream_id].retx.emplace_back(
        frame.offset, frame.offset + static_cast<uint64_t>(frame.len));
  }
  // Halve the window once per recovery epoch.
  if (packet_number > ep.recovery_until) {
    ep.cwnd = std::max(ep.cwnd / 2.0, 2.0 * kQuicMaxPayload);
    ep.ssthresh = ep.cwnd;
    ep.recovery_until = ep.next_packet_number;
  }
  ep.sent.erase(it);
}

void QuicConnection::DetectLosses(Endpoint& ep) {
  // Packet-threshold loss detection: anything 3 below the largest
  // acknowledged packet number is deemed lost.
  std::vector<uint64_t> lost;
  for (const auto& [num, pkt] : ep.sent) {
    if (num + 3 <= ep.largest_acked) {
      lost.push_back(num);
    } else {
      break;  // map is ordered
    }
  }
  for (uint64_t num : lost) {
    MarkLost(ep, num);
  }
}

void QuicConnection::OnStreamComplete(Endpoint& ep, uint64_t stream_id) {
  if (stream_id == 0) {
    if (!ep.is_client && handshake_stage_ == 1) {
      // Server got the Initial: send its flight.
      handshake_stage_ = 2;
      client_.recv_streams[0].expected = kServerFlightBytes;
      QueueStreamBytes(server_, 0, kServerFlightBytes);
    } else if (ep.is_client && handshake_stage_ == 2) {
      handshake_stage_ = 3;
      ready_ = true;
      if (callbacks_.on_ready) {
        callbacks_.on_ready();
      }
    }
    return;
  }
  if (!ep.is_client) {
    if (callbacks_.on_request) {
      callbacks_.on_request(stream_id, request_sizes_[stream_id]);
    }
  } else {
    if (callbacks_.on_response) {
      callbacks_.on_response(stream_id);
    }
  }
}

void QuicConnection::OnPacket(Endpoint& ep, const Packet& packet) {
  // Process acknowledgments of our packets.
  if (!packet.sim_quic_acks.empty()) {
    bool newly_acked = false;
    for (uint64_t num : packet.sim_quic_acks) {
      auto it = ep.sent.find(num);
      if (it == ep.sent.end()) {
        continue;
      }
      newly_acked = true;
      ep.largest_acked = std::max(ep.largest_acked, num);
      ep.bytes_in_flight -= it->second.payload;
      if (!it->second.retransmission) {
        const TimeUs sample = sim_->Now() - it->second.send_time;
        ep.srtt = ep.srtt == 0 ? sample : (7 * ep.srtt + sample) / 8;
        ep.rto = std::clamp<TimeUs>(2 * ep.srtt, config_.min_rto, config_.max_rto);
      }
      if (ep.cwnd < ep.ssthresh) {
        ep.cwnd += static_cast<double>(it->second.payload);
      } else {
        ep.cwnd += static_cast<double>(kQuicMaxPayload) *
                   static_cast<double>(it->second.payload) / ep.cwnd;
      }
      ep.sent.erase(it);
    }
    if (newly_acked) {
      DetectLosses(ep);
      if (ep.rto_event != 0) {
        sim_->Cancel(ep.rto_event);
        ep.rto_event = 0;
      }
      if (!ep.sent.empty()) {
        ArmRto(ep);
      }
      PumpSend(ep);
    }
  }

  // Process stream data.
  if (!packet.sim_quic_frames.empty()) {
    for (const auto& frame : packet.sim_quic_frames) {
      StreamRecv& rs = ep.recv_streams[frame.stream_id];
      rs.received.Add(frame.offset, frame.offset + static_cast<uint64_t>(frame.len));
      if (!rs.completed && rs.expected > 0 &&
          rs.received.ContiguousPrefix() >= rs.expected) {
        rs.completed = true;
        OnStreamComplete(ep, frame.stream_id);
      } else if (ep.is_client && !rs.completed && frame.stream_id != 0 &&
                 callbacks_.on_progress) {
        callbacks_.on_progress(frame.stream_id,
                               static_cast<Bytes>(std::min<uint64_t>(
                                   rs.received.ContiguousPrefix(), rs.expected)),
                               static_cast<Bytes>(rs.expected));
      }
    }
    // Retransmittable packet: schedule an acknowledgment.
    ep.pending_acks.push_back(packet.quic_packet_number);
    if (ep.is_client) {
      ++ep.packets_since_max_data;
    }
    if (ep.pending_acks.size() >= 2) {
      FlushAcks(ep, /*allow_standalone=*/true);
    } else if (ep.ack_event == 0) {
      ep.ack_event = sim_->ScheduleAfter(config_.ack_delay, [this, &ep] {
        ep.ack_event = 0;
        FlushAcks(ep, /*allow_standalone=*/true);
      });
    }
  }
}

void QuicConnection::DeliverToClient(const Packet& packet) { OnPacket(client_, packet); }

void QuicConnection::DeliverToServer(const Packet& packet) { OnPacket(server_, packet); }

}  // namespace csi::transport
