// Common interface for the two encrypted transports (HTTPS = TLS-over-TCP,
// and QUIC).
//
// The HTTP layer exchanges *messages*: a client message (an HTTP request)
// opens an exchange; the server replies with one message on the same
// exchange. Message payloads are modeled as byte counts only — the simulation
// never materializes content, mirroring the fact that a passive observer of
// encrypted traffic cannot see it either.

#ifndef CSI_SRC_TRANSPORT_CONNECTION_H_
#define CSI_SRC_TRANSPORT_CONNECTION_H_

#include <cstdint>
#include <functional>

#include "src/common/units.h"

namespace csi::transport {

// Application-visible connection events.
struct ConnectionCallbacks {
  // Client side: handshake finished; requests may be sent.
  std::function<void()> on_ready;
  // Server side: a client message (request) fully arrived.
  std::function<void(uint64_t exchange_id, Bytes app_bytes)> on_request;
  // Client side: a server message (response) fully arrived.
  std::function<void(uint64_t exchange_id)> on_response;
  // Client side: response download progress (app bytes received so far).
  std::function<void(uint64_t exchange_id, Bytes received, Bytes total)> on_progress;
};

class Connection {
 public:
  virtual ~Connection() = default;

  // Starts the handshake. `on_ready` fires when requests may flow.
  virtual void Connect() = 0;

  // Sends a client->server message; returns the exchange id.
  virtual uint64_t SendRequest(Bytes app_bytes) = 0;

  // Sends the server->client reply for `exchange_id`.
  virtual void SendResponse(uint64_t exchange_id, Bytes app_bytes) = 0;

  // True once the handshake completed.
  virtual bool ready() const = 0;
};

}  // namespace csi::transport

#endif  // CSI_SRC_TRANSPORT_CONNECTION_H_
