// QUIC transport with stream multiplexing.
//
// The properties CSI's analysis depends on (paper §2, §3.2, §5.3.2) are all
// reproduced by this model:
//   * every packet — including one carrying retransmitted data — gets a new,
//     monotonically increasing packet number, so an observer cannot
//     de-duplicate retransmissions;
//   * congestion/flow-control signalling (ACK frames, MAX_DATA) lives inside
//     the encrypted payload and inflates the observable byte counts;
//     together with frame headers and retransmissions this bounds the
//     size-estimation error at the paper's k = 5%;
//   * multiple streams (audio + video chunks) are multiplexed round-robin on
//     one connection — the transport-MUX property of design SQ;
//   * client ACK-only packets stay below 80 bytes of UDP payload while
//     request packets are several hundred bytes, which is the heuristic CSI
//     uses to find QUIC requests (§5.3.1 Step 1.2).

#ifndef CSI_SRC_TRANSPORT_QUIC_CONNECTION_H_
#define CSI_SRC_TRANSPORT_QUIC_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/transport/connection.h"
#include "src/transport/interval_set.h"

namespace csi::transport {

struct QuicConfig {
  uint64_t flow_id = 1;
  uint32_t client_ip = 0x0A000002;
  uint32_t server_ip = 0xC0A80001;
  uint16_t client_port = 50001;
  uint16_t server_port = 443;
  std::string sni = "cdn.example";
  Bytes initial_cwnd = 10 * net::kQuicMaxPayload;
  TimeUs min_rto = 200 * kUsPerMs;
  TimeUs max_rto = 3 * kUsPerSec;
  TimeUs ack_delay = 25 * kUsPerMs;
  // HTTP/3 response HEADERS-frame overhead preceding each body.
  Bytes response_header_bytes = 220;
  // Frame header cost charged per STREAM frame.
  Bytes frame_header_bytes = 8;
  // Client flow-control (MAX_DATA) frame size, sent periodically.
  Bytes max_data_frame_bytes = 12;
};

class QuicConnection : public Connection {
 public:
  QuicConnection(sim::Simulator* sim, QuicConfig config, net::PacketSink client_out,
                 net::PacketSink server_out, ConnectionCallbacks callbacks);

  void DeliverToClient(const net::Packet& packet);
  void DeliverToServer(const net::Packet& packet);

  void Connect() override;
  uint64_t SendRequest(Bytes app_bytes) override;
  void SendResponse(uint64_t exchange_id, Bytes app_bytes) override;
  bool ready() const override { return ready_; }

  const QuicConfig& config() const { return config_; }

 private:
  // Sending state of one direction of one stream.
  struct StreamSend {
    uint64_t total = 0;        // bytes queued so far
    uint64_t next_offset = 0;  // next fresh byte to send
    std::deque<std::pair<uint64_t, uint64_t>> retx;  // lost [lo, hi) ranges
    uint64_t PendingBytes() const;
  };
  struct StreamRecv {
    IntervalSet received;
    uint64_t expected = 0;  // complete when prefix >= expected (> 0)
    bool completed = false;
  };

  struct SentPacket {
    std::vector<net::Packet::QuicFrame> frames;
    Bytes payload = 0;
    TimeUs send_time = 0;
    bool retransmission = false;
  };

  struct Endpoint {
    bool is_client = false;
    uint64_t next_packet_number = 1;
    double cwnd = 0;
    double ssthresh = 1e18;
    Bytes bytes_in_flight = 0;
    uint64_t largest_acked = 0;
    uint64_t recovery_until = 0;  // cwnd already halved for losses <= this
    std::map<uint64_t, SentPacket> sent;  // unacked retransmittable packets
    std::map<uint64_t, StreamSend> send_streams;
    std::map<uint64_t, StreamRecv> recv_streams;
    std::vector<uint64_t> streams_rr;  // round-robin order of active streams
    size_t rr_cursor = 0;
    std::vector<uint64_t> pending_acks;  // peer packet numbers to acknowledge
    uint64_t ack_event = 0;
    uint64_t rto_event = 0;
    TimeUs srtt = 0;
    TimeUs rto = kUsPerSec;
    int packets_since_max_data = 0;
  };

  Endpoint& endpoint(bool client) { return client ? client_ : server_; }
  void QueueStreamBytes(Endpoint& ep, uint64_t stream_id, Bytes bytes);
  void PumpSend(Endpoint& ep);
  void FlushAcks(Endpoint& ep, bool allow_standalone);
  void OnPacket(Endpoint& ep, const net::Packet& packet);
  void OnStreamComplete(Endpoint& ep, uint64_t stream_id);
  void DetectLosses(Endpoint& ep);
  void MarkLost(Endpoint& ep, uint64_t packet_number);
  void ArmRto(Endpoint& ep);
  void OnRto(Endpoint& ep);
  net::Packet MakePacket(bool from_client);
  void EmitPacket(Endpoint& ep, net::Packet packet, bool retransmittable);

  sim::Simulator* sim_;
  QuicConfig config_;
  net::PacketSink client_out_;
  net::PacketSink server_out_;
  ConnectionCallbacks callbacks_;

  Endpoint client_;
  Endpoint server_;

  bool ready_ = false;
  int handshake_stage_ = 0;
  uint64_t next_stream_id_ = 4;  // stream 0 reserved for the handshake
  std::map<uint64_t, Bytes> request_sizes_;  // stream -> request app bytes
};

}  // namespace csi::transport

#endif  // CSI_SRC_TRANSPORT_QUIC_CONNECTION_H_
