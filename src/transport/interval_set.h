// Interval bookkeeping for received byte ranges.
//
// Used by the TCP receiver (out-of-order segments) and QUIC stream reassembly
// to track which half-open byte ranges [lo, hi) have arrived.

#ifndef CSI_SRC_TRANSPORT_INTERVAL_SET_H_
#define CSI_SRC_TRANSPORT_INTERVAL_SET_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace csi::transport {

class IntervalSet {
 public:
  // Inserts [lo, hi), merging with adjacent/overlapping intervals.
  void Add(uint64_t lo, uint64_t hi) {
    if (lo >= hi) {
      return;
    }
    auto it = intervals_.upper_bound(lo);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= lo) {
        lo = prev->first;
        hi = hi > prev->second ? hi : prev->second;
        it = intervals_.erase(prev);
      }
    }
    while (it != intervals_.end() && it->first <= hi) {
      hi = hi > it->second ? hi : it->second;
      it = intervals_.erase(it);
    }
    intervals_.emplace(lo, hi);
  }

  // True if every byte in [lo, hi) is present.
  bool Contains(uint64_t lo, uint64_t hi) const {
    if (lo >= hi) {
      return true;
    }
    auto it = intervals_.upper_bound(lo);
    if (it == intervals_.begin()) {
      return false;
    }
    --it;
    return it->first <= lo && it->second >= hi;
  }

  // Highest `hi` such that [0, hi) is fully present (0 if byte 0 missing).
  uint64_t ContiguousPrefix() const {
    auto it = intervals_.find(0);
    if (it == intervals_.end()) {
      auto first = intervals_.begin();
      if (first == intervals_.end() || first->first != 0) {
        return 0;
      }
      it = first;
    }
    return it->second;
  }

  // Total bytes covered.
  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& [lo, hi] : intervals_) {
      total += hi - lo;
    }
    return total;
  }

  bool empty() const { return intervals_.empty(); }

  // All disjoint intervals, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> Ranges() const {
    return {intervals_.begin(), intervals_.end()};
  }

 private:
  std::map<uint64_t, uint64_t> intervals_;  // lo -> hi, disjoint, sorted
};

}  // namespace csi::transport

#endif  // CSI_SRC_TRANSPORT_INTERVAL_SET_H_
