#include "src/capture/capture.h"

#include <utility>

namespace csi::capture {

PacketRecord RecordFrom(const net::Packet& packet, TimeUs now) {
  PacketRecord r;
  r.timestamp = now;
  r.from_client = packet.from_client;
  r.transport = packet.transport;
  r.client_ip = packet.client_ip;
  r.server_ip = packet.server_ip;
  r.client_port = packet.client_port;
  r.server_port = packet.server_port;
  r.payload = packet.payload;
  r.wire_size = packet.WireSize();
  r.tcp_seq = packet.tcp_seq;
  r.tcp_ack = packet.tcp_ack;
  r.quic_packet_number = packet.quic_packet_number;
  r.sni = packet.sni;
  return r;
}

net::PacketSink GatewayTap::Tap(net::PacketSink next) {
  return [this, next = std::move(next)](const net::Packet& packet) {
    trace_.push_back(RecordFrom(packet, sim_->Now()));
    if (next) {
      next(packet);
    }
  };
}

}  // namespace csi::capture
