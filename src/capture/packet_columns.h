// Columnar (structure-of-arrays) view of a capture trace.
//
// A `CaptureTrace` stores one ~88-byte `PacketRecord` struct (plus an
// `std::string sni` that is empty for all but the rare ClientHello) per
// packet. The cold inference path — classify, split, request detection, size
// estimation, fingerprinting — only ever streams a few scalar fields at a
// time, so `PacketColumns` transposes the trace once into parallel flat
// columns that the SIMD kernels in src/common/simd.h can scan directly:
//
//   - int64 timestamp / payload / wire-size columns,
//   - uint64 tcp-seq / tcp-ack / quic-packet-number columns,
//   - a uint8 direction column holding exactly 0 or 1 (1 = client→server),
//   - a small-int SNI reference column pointing into a side table of the few
//     distinct SNI strings (satellite: SNIs are interned once per trace, not
//     copied per packet),
//   - a per-flow side table (5-tuple key, first non-empty SNI, downlink byte
//     total, column span) built from the same single interning pass that
//     `SplitFlows` used to spend materializing per-flow packet vectors.
//
// Storage is *flow-major*: each flow's packets occupy one contiguous span
// `[flow_begin(f), flow_end(f))` in within-flow capture order, and flow ids
// follow first-appearance order — exactly the flow ordering `SplitFlows`
// produces. A `FlowView` is a non-owning {columns, flow, span} triple that the
// estimator/splitter stages consume with zero per-flow packet copies. The
// original capture order is retained as an index pair (flow-of, slot-of) so
// the prefix-cache fingerprint can replay the byte-exact AoS absorption order.
//
// `kPacketLayoutVersion` names this layout in `csi_build_info` so metrics and
// traces identify SoA builds.

#ifndef CSI_SRC_CAPTURE_PACKET_COLUMNS_H_
#define CSI_SRC_CAPTURE_PACKET_COLUMNS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/capture/packet_record.h"

namespace csi::capture {

// Reported by csi_build_info (see src/common/build_info.cc, which duplicates
// the literal to keep csi_common independent of csi_capture).
inline constexpr char kPacketLayoutVersion[] = "soa-v1";

class PacketColumns;

// Non-owning view of one flow's contiguous column span. Pointer accessors are
// already offset to the flow's first packet, so kernels index 0..size().
struct FlowView {
  const PacketColumns* columns = nullptr;
  uint32_t flow = 0;
  size_t begin = 0;  // absolute column index of the flow's first packet
  size_t end = 0;    // one past the flow's last packet

  size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }

  inline const int64_t* timestamps() const;
  inline const int64_t* payloads() const;
  inline const int64_t* wire_sizes() const;
  inline const uint64_t* tcp_seqs() const;
  inline const uint8_t* from_client() const;
  inline bool has_sni(size_t i) const;  // i is view-relative
  inline const FlowKey& key() const;
  inline const std::string& sni() const;  // first non-empty SNI of the flow
};

class PacketColumns {
 public:
  // Transposes `trace` into columns. Two passes: one interning pass assigns
  // flow ids in first-appearance order and counts packets per flow, then a
  // scatter places every packet into its flow's span. When the capture is
  // already flow-contiguous (flow-id run count == flow count) the scatter
  // degenerates to an identity copy.
  static PacketColumns Build(const CaptureTrace& trace);

  size_t packet_count() const { return ts_.size(); }
  size_t flow_count() const { return flow_keys_.size(); }

  // Flow-major columns (size packet_count()).
  const int64_t* timestamps() const { return ts_.data(); }
  const int64_t* payloads() const { return payload_.data(); }
  const int64_t* wire_sizes() const { return wire_.data(); }
  const uint64_t* tcp_seqs() const { return seq_.data(); }
  const uint64_t* tcp_acks() const { return ack_.data(); }
  const uint64_t* quic_packet_numbers() const { return pn_.data(); }
  const uint8_t* from_client() const { return dir_.data(); }

  // SNI reference column: -1 for no SNI, else an index into sni_table().
  const int32_t* sni_refs() const { return sni_ref_.data(); }
  const std::vector<std::string>& sni_table() const { return sni_table_; }
  // The SNI carried by flow-major slot `i` ("" when none).
  const std::string& sni_at(size_t i) const {
    return sni_ref_[i] < 0 ? empty_sni_ : sni_table_[sni_ref_[i]];
  }

  // Per-flow side tables (size flow_count(); ids are first-appearance order).
  const FlowKey& flow_key(uint32_t flow) const { return flow_keys_[flow]; }
  const std::string& flow_sni(uint32_t flow) const { return flow_snis_[flow]; }
  int64_t flow_downlink_bytes(uint32_t flow) const {
    return flow_downlink_[flow];
  }
  size_t flow_begin(uint32_t flow) const { return flow_begin_[flow]; }
  size_t flow_end(uint32_t flow) const { return flow_begin_[flow + 1]; }
  FlowView flow(uint32_t f) const {
    return FlowView{this, f, flow_begin(f), flow_end(f)};
  }

  // Capture-order maps (size packet_count()): capture index i landed in flow
  // capture_flow()[i] at flow-major slot capture_slot()[i]. These let the
  // trace fingerprint replay the original packet order over columns.
  const uint32_t* capture_flow() const { return capture_flow_.data(); }
  const uint32_t* capture_slot() const { return capture_slot_.data(); }

 private:
  std::vector<int64_t> ts_;
  std::vector<int64_t> payload_;
  std::vector<int64_t> wire_;
  std::vector<uint64_t> seq_;
  std::vector<uint64_t> ack_;
  std::vector<uint64_t> pn_;
  std::vector<uint8_t> dir_;
  std::vector<int32_t> sni_ref_;

  std::vector<FlowKey> flow_keys_;
  std::vector<std::string> flow_snis_;
  std::vector<int64_t> flow_downlink_;
  std::vector<size_t> flow_begin_;  // size flow_count() + 1

  std::vector<std::string> sni_table_;
  std::vector<uint32_t> capture_flow_;
  std::vector<uint32_t> capture_slot_;

  static const std::string empty_sni_;
};

inline const int64_t* FlowView::timestamps() const {
  return columns->timestamps() + begin;
}
inline const int64_t* FlowView::payloads() const {
  return columns->payloads() + begin;
}
inline const int64_t* FlowView::wire_sizes() const {
  return columns->wire_sizes() + begin;
}
inline const uint64_t* FlowView::tcp_seqs() const {
  return columns->tcp_seqs() + begin;
}
inline const uint8_t* FlowView::from_client() const {
  return columns->from_client() + begin;
}
inline bool FlowView::has_sni(size_t i) const {
  return columns->sni_refs()[begin + i] >= 0;
}
inline const FlowKey& FlowView::key() const { return columns->flow_key(flow); }
inline const std::string& FlowView::sni() const {
  return columns->flow_sni(flow);
}

}  // namespace csi::capture

#endif  // CSI_SRC_CAPTURE_PACKET_COLUMNS_H_
