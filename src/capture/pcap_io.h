// pcap import/export for capture traces.
//
// `WritePcap` serializes a `CaptureTrace` as a classic libpcap file
// (LINKTYPE_RAW, IPv4), synthesizing IP/TCP/UDP headers and just enough
// payload structure — a TLS record header with the SNI for ClientHellos, and
// a QUIC-style public header carrying the packet number — that `ReadPcap`
// (or external tools like tcpdump/wireshark) can recover every field a real
// capture would expose. Packets are truncated at a tcpdump-style snap length;
// the original length is preserved in the per-packet header, exactly like a
// `tcpdump -s 256` capture of encrypted traffic.

#ifndef CSI_SRC_CAPTURE_PCAP_IO_H_
#define CSI_SRC_CAPTURE_PCAP_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/capture/packet_record.h"

namespace csi::capture {

inline constexpr uint32_t kPcapSnapLen = 256;

// Serializes the trace into pcap bytes.
std::vector<uint8_t> SerializePcap(const CaptureTrace& trace);

// Parses pcap bytes back into a trace. The client side of each flow is the
// endpoint using the ephemeral (non-443) port. Throws std::runtime_error on
// malformed input.
CaptureTrace ParsePcap(const std::vector<uint8_t>& bytes);

// File convenience wrappers.
void WritePcap(const std::string& path, const CaptureTrace& trace);
CaptureTrace ReadPcap(const std::string& path);

}  // namespace csi::capture

#endif  // CSI_SRC_CAPTURE_PCAP_IO_H_
