#include "src/capture/pcap_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace csi::capture {
namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr uint32_t kLinkTypeRaw = 101;       // raw IPv4/IPv6

void Put8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }
void Put16be(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}
void Put32be(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}
void Put32le(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : data_(data) {}
  uint8_t U8() { return data_.at(pos_++); }
  uint16_t U16be() {
    const uint16_t hi = U8();
    return static_cast<uint16_t>(hi << 8 | U8());
  }
  uint32_t U32be() {
    const uint32_t hi = U16be();
    return hi << 16 | U16be();
  }
  uint32_t U32le() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(U8()) << (8 * i);
    }
    return v;
  }
  void Skip(size_t n) {
    if (pos_ + n > data_.size()) {
      throw std::runtime_error("pcap: truncated");
    }
    pos_ += n;
  }
  size_t pos() const { return pos_; }
  void Seek(size_t p) { pos_ = p; }
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializePcap(const CaptureTrace& trace) {
  std::vector<uint8_t> out;
  // Global header.
  Put32le(out, kPcapMagic);
  out.push_back(2);
  out.push_back(0);  // version major = 2 (LE u16)
  out.push_back(4);
  out.push_back(0);  // version minor = 4
  Put32le(out, 0);             // thiszone
  Put32le(out, 0);             // sigfigs
  Put32le(out, kPcapSnapLen);  // snaplen
  Put32le(out, kLinkTypeRaw);  // network

  for (const PacketRecord& r : trace) {
    const bool is_tcp = r.transport == net::Transport::kTcp;
    const uint32_t src_ip = r.from_client ? r.client_ip : r.server_ip;
    const uint32_t dst_ip = r.from_client ? r.server_ip : r.client_ip;
    const uint16_t src_port = r.from_client ? r.client_port : r.server_port;
    const uint16_t dst_port = r.from_client ? r.server_port : r.client_port;

    // Build the (possibly truncated) packet body.
    std::vector<uint8_t> pkt;
    const uint32_t transport_header = is_tcp ? 20u : 8u;
    const uint32_t ip_total = 20u + transport_header + static_cast<uint32_t>(r.payload);
    // IPv4 header.
    Put8(pkt, 0x45);
    Put8(pkt, 0);
    Put16be(pkt, static_cast<uint16_t>(std::min<uint32_t>(ip_total, 0xFFFF)));
    Put16be(pkt, 0);  // id
    Put16be(pkt, 0x4000);  // DF
    Put8(pkt, 64);         // ttl
    Put8(pkt, is_tcp ? 6 : 17);
    Put16be(pkt, 0);  // checksum (unverified)
    Put32be(pkt, src_ip);
    Put32be(pkt, dst_ip);
    if (is_tcp) {
      Put16be(pkt, src_port);
      Put16be(pkt, dst_port);
      Put32be(pkt, static_cast<uint32_t>(r.tcp_seq));
      Put32be(pkt, static_cast<uint32_t>(r.tcp_ack));
      Put8(pkt, 0x50);  // data offset 5
      Put8(pkt, 0x10);  // ACK flag
      Put16be(pkt, 0xFFFF);  // window
      Put16be(pkt, 0);       // checksum
      Put16be(pkt, 0);       // urgent
      if (!r.sni.empty()) {
        // Minimal TLS handshake record exposing the SNI.
        Put8(pkt, 0x16);
        Put8(pkt, 0x03);
        Put8(pkt, 0x01);
        Put16be(pkt, static_cast<uint16_t>(r.sni.size()));
        for (char c : r.sni) {
          Put8(pkt, static_cast<uint8_t>(c));
        }
      }
    } else {
      Put16be(pkt, src_port);
      Put16be(pkt, dst_port);
      Put16be(pkt, static_cast<uint16_t>(std::min<Bytes>(8 + r.payload, 0xFFFF)));
      Put16be(pkt, 0);  // checksum
      // QUIC public header: flags + 8-byte CID + 4-byte packet number.
      Put8(pkt, r.sni.empty() ? 0x40 : 0xC0);
      for (int i = 0; i < 8; ++i) {
        Put8(pkt, 0);
      }
      Put32be(pkt, static_cast<uint32_t>(r.quic_packet_number));
      if (!r.sni.empty()) {
        Put16be(pkt, static_cast<uint16_t>(r.sni.size()));
        for (char c : r.sni) {
          Put8(pkt, static_cast<uint8_t>(c));
        }
      }
    }
    // Zero-fill the rest of the payload up to the snap length.
    const size_t full_len = 20u + transport_header + static_cast<size_t>(r.payload);
    const size_t incl = std::min<size_t>(full_len, kPcapSnapLen);
    if (pkt.size() < incl) {
      pkt.resize(incl, 0);
    } else if (pkt.size() > incl) {
      pkt.resize(incl);
    }

    // Per-packet header.
    Put32le(out, static_cast<uint32_t>(r.timestamp / kUsPerSec));
    Put32le(out, static_cast<uint32_t>(r.timestamp % kUsPerSec));
    Put32le(out, static_cast<uint32_t>(pkt.size()));
    Put32le(out, static_cast<uint32_t>(full_len));
    out.insert(out.end(), pkt.begin(), pkt.end());
  }
  return out;
}

CaptureTrace ParsePcap(const std::vector<uint8_t>& bytes) {
  Reader in(bytes);
  if (in.U32le() != kPcapMagic) {
    throw std::runtime_error("pcap: bad magic");
  }
  in.Skip(2 + 2 + 4 + 4 + 4);  // versions, thiszone, sigfigs, snaplen
  if (in.U32le() != kLinkTypeRaw) {
    throw std::runtime_error("pcap: unsupported link type");
  }

  CaptureTrace trace;
  while (!in.AtEnd()) {
    if (in.Remaining() < 16) {
      throw std::runtime_error("pcap: truncated packet header");
    }
    const uint32_t ts_sec = in.U32le();
    const uint32_t ts_usec = in.U32le();
    const uint32_t incl_len = in.U32le();
    const uint32_t orig_len = in.U32le();
    const size_t pkt_start = in.pos();
    if (in.Remaining() < incl_len) {
      throw std::runtime_error("pcap: truncated packet body");
    }

    PacketRecord r;
    r.timestamp = static_cast<TimeUs>(ts_sec) * kUsPerSec + ts_usec;
    // IPv4 header.
    const uint8_t vihl = in.U8();
    if ((vihl >> 4) != 4) {
      throw std::runtime_error("pcap: not IPv4");
    }
    in.Skip(1 + 2 + 2 + 2 + 1);  // tos, total, id, frag, ttl
    const uint8_t proto = in.U8();
    in.Skip(2);
    const uint32_t src_ip = in.U32be();
    const uint32_t dst_ip = in.U32be();
    const uint16_t src_port = in.U16be();
    const uint16_t dst_port = in.U16be();
    const bool is_tcp = proto == 6;
    r.transport = is_tcp ? net::Transport::kTcp : net::Transport::kUdp;
    // Client side = the endpoint on the ephemeral port.
    r.from_client = dst_port == 443;
    r.client_ip = r.from_client ? src_ip : dst_ip;
    r.server_ip = r.from_client ? dst_ip : src_ip;
    r.client_port = r.from_client ? src_port : dst_port;
    r.server_port = r.from_client ? dst_port : src_port;
    const Bytes transport_header = is_tcp ? 20 : 8;
    r.wire_size = static_cast<Bytes>(orig_len);
    r.payload = static_cast<Bytes>(orig_len) - 20 - transport_header;
    if (is_tcp) {
      r.tcp_seq = in.U32be();
      r.tcp_ack = in.U32be();
      const uint8_t offset_byte = in.U8();
      in.Skip(1 + 2 + 2 + 2);  // flags, window, checksum, urgent
      (void)offset_byte;
      // SNI marker: TLS handshake record.
      if (r.payload > 0 && in.pos() + 5 <= pkt_start + incl_len) {
        const size_t mark = in.pos();
        if (in.U8() == 0x16 && in.U8() == 0x03 && in.U8() == 0x01) {
          const uint16_t sni_len = in.U16be();
          if (sni_len > 0 && in.pos() + sni_len <= pkt_start + incl_len) {
            std::string sni;
            for (uint16_t i = 0; i < sni_len; ++i) {
              sni.push_back(static_cast<char>(in.U8()));
            }
            r.sni = sni;
          }
        } else {
          in.Seek(mark);
        }
      }
    } else {
      in.Skip(2 + 2);  // udp len, checksum
      if (in.pos() + 13 <= pkt_start + incl_len) {
        const uint8_t flags = in.U8();
        in.Skip(8);  // CID
        r.quic_packet_number = in.U32be();
        if ((flags & 0x80) != 0 && in.pos() + 2 <= pkt_start + incl_len) {
          const uint16_t sni_len = in.U16be();
          if (sni_len > 0 && in.pos() + sni_len <= pkt_start + incl_len) {
            std::string sni;
            for (uint16_t i = 0; i < sni_len; ++i) {
              sni.push_back(static_cast<char>(in.U8()));
            }
            r.sni = sni;
          }
        }
      }
    }
    in.Seek(pkt_start + incl_len);
    trace.push_back(std::move(r));
  }
  return trace;
}

void WritePcap(const std::string& path, const CaptureTrace& trace) {
  const std::vector<uint8_t> bytes = SerializePcap(trace);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("pcap: cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

CaptureTrace ReadPcap(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("pcap: cannot open " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return ParsePcap(bytes);
}

}  // namespace csi::capture
