// Observer-visible packet records.
//
// A `PacketRecord` is what tcpdump at the gateway would give an analyst for
// one encrypted packet (paper Fig. 2): timing, addressing, direction, sizes,
// TCP sequence/ack numbers, the QUIC packet number, and the SNI if the packet
// carries a ClientHello. Nothing else from the simulation leaks in — the CSI
// inference consumes only this structure.

#ifndef CSI_SRC_CAPTURE_PACKET_RECORD_H_
#define CSI_SRC_CAPTURE_PACKET_RECORD_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/units.h"
#include "src/net/packet.h"

namespace csi::capture {

struct PacketRecord {
  TimeUs timestamp = 0;
  bool from_client = false;
  net::Transport transport = net::Transport::kTcp;

  uint32_t client_ip = 0;
  uint32_t server_ip = 0;
  uint16_t client_port = 0;
  uint16_t server_port = 0;

  // Transport payload bytes (TCP payload / UDP payload).
  Bytes payload = 0;
  Bytes wire_size = 0;

  uint64_t tcp_seq = 0;
  uint64_t tcp_ack = 0;
  uint64_t quic_packet_number = 0;

  std::string sni;  // non-empty only on a ClientHello
};

// Connection identity as reconstructible from a capture: the 5-tuple.
struct FlowKey {
  net::Transport transport = net::Transport::kTcp;
  uint32_t client_ip = 0;
  uint32_t server_ip = 0;
  uint16_t client_port = 0;
  uint16_t server_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  friend auto operator<=>(const FlowKey& a, const FlowKey& b) {
    return std::tie(a.transport, a.client_ip, a.server_ip, a.client_port, a.server_port) <=>
           std::tie(b.transport, b.client_ip, b.server_ip, b.client_port, b.server_port);
  }
};

inline FlowKey FlowKeyOf(const PacketRecord& r) {
  return FlowKey{r.transport, r.client_ip, r.server_ip, r.client_port, r.server_port};
}

// A full capture session, in timestamp order.
using CaptureTrace = std::vector<PacketRecord>;

// Builds the observer-visible record for a packet crossing the gateway at
// `now`. This is the only place simulation packets are projected into
// observable form.
PacketRecord RecordFrom(const net::Packet& packet, TimeUs now);

}  // namespace csi::capture

#endif  // CSI_SRC_CAPTURE_PACKET_RECORD_H_
