#include "src/capture/packet_columns.h"

#include <map>
#include <numeric>
#include <utility>

#include "src/common/simd.h"

namespace csi::capture {

const std::string PacketColumns::empty_sni_;

PacketColumns PacketColumns::Build(const CaptureTrace& trace) {
  PacketColumns c;
  const size_t n = trace.size();
  c.capture_flow_.resize(n);

  // Pass 1: intern flow keys in first-appearance order (the same order
  // SplitFlows emits), count packets per flow, record first non-empty SNIs,
  // and intern the distinct SNI strings.
  std::map<FlowKey, uint32_t> flow_ids;
  std::map<std::string, int32_t> sni_ids;
  std::vector<uint32_t> counts;
  std::vector<int32_t> capture_sni(n, -1);
  for (size_t i = 0; i < n; ++i) {
    const PacketRecord& r = trace[i];
    const auto [it, inserted] = flow_ids.try_emplace(
        FlowKeyOf(r), static_cast<uint32_t>(c.flow_keys_.size()));
    if (inserted) {
      c.flow_keys_.push_back(it->first);
      c.flow_snis_.emplace_back();
      counts.push_back(0);
    }
    const uint32_t f = it->second;
    c.capture_flow_[i] = f;
    ++counts[f];
    if (!r.sni.empty()) {
      if (c.flow_snis_[f].empty()) {
        c.flow_snis_[f] = r.sni;
      }
      const auto [sit, sni_inserted] = sni_ids.try_emplace(
          r.sni, static_cast<int32_t>(c.sni_table_.size()));
      if (sni_inserted) {
        c.sni_table_.push_back(sit->first);
      }
      capture_sni[i] = sit->second;
    }
  }

  const size_t flows = c.flow_keys_.size();
  c.flow_begin_.resize(flows + 1, 0);
  for (size_t f = 0; f < flows; ++f) {
    c.flow_begin_[f + 1] = c.flow_begin_[f] + counts[f];
  }

  // Scatter map: flow-major slot of each capture index. When every flow's
  // packets are already contiguous, the runs appear in first-appearance (= id)
  // order, so the permutation is the identity and no cursors are needed.
  c.capture_slot_.resize(n);
  if (simd::CountRuns(c.capture_flow_.data(), n) == flows) {
    std::iota(c.capture_slot_.begin(), c.capture_slot_.end(), 0u);
  } else {
    std::vector<size_t> cursor(c.flow_begin_.begin(),
                               c.flow_begin_.begin() + flows);
    for (size_t i = 0; i < n; ++i) {
      c.capture_slot_[i] = static_cast<uint32_t>(cursor[c.capture_flow_[i]]++);
    }
  }

  // Pass 2: scatter the scalar fields into the flow-major columns.
  c.ts_.resize(n);
  c.payload_.resize(n);
  c.wire_.resize(n);
  c.seq_.resize(n);
  c.ack_.resize(n);
  c.pn_.resize(n);
  c.dir_.resize(n);
  c.sni_ref_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const PacketRecord& r = trace[i];
    const uint32_t slot = c.capture_slot_[i];
    c.ts_[slot] = r.timestamp;
    c.payload_[slot] = r.payload;
    c.wire_[slot] = r.wire_size;
    c.seq_[slot] = r.tcp_seq;
    c.ack_[slot] = r.tcp_ack;
    c.pn_[slot] = r.quic_packet_number;
    c.dir_[slot] = r.from_client ? 1 : 0;
    c.sni_ref_[slot] = capture_sni[i];
  }

  // Per-flow downlink totals straight off the columns (matches the sum
  // SplitFlows accumulated while copying packets).
  c.flow_downlink_.resize(flows);
  for (size_t f = 0; f < flows; ++f) {
    const size_t b = c.flow_begin_[f];
    c.flow_downlink_[f] = simd::DirectionMaskedSum(
        c.dir_.data() + b, 0, c.payload_.data() + b, c.flow_begin_[f + 1] - b);
  }
  return c;
}

}  // namespace csi::capture
