// Gateway capture tap.
//
// The testbed inserts a `GatewayTap` where the paper runs tcpdump on the
// gateway (Fig. 6): every packet traversing either direction is projected
// into a `PacketRecord` and appended to the trace.

#ifndef CSI_SRC_CAPTURE_CAPTURE_H_
#define CSI_SRC_CAPTURE_CAPTURE_H_

#include "src/capture/packet_record.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace csi::capture {

class GatewayTap {
 public:
  explicit GatewayTap(sim::Simulator* sim) : sim_(sim) {}

  // Wraps `next` so that packets are recorded as they pass through.
  net::PacketSink Tap(net::PacketSink next);

  const CaptureTrace& trace() const { return trace_; }
  CaptureTrace TakeTrace() { return std::move(trace_); }

 private:
  sim::Simulator* sim_;
  CaptureTrace trace_;
};

}  // namespace csi::capture

#endif  // CSI_SRC_CAPTURE_CAPTURE_H_
