#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/telemetry.h"
#include "src/common/tracing.h"

namespace csi {

namespace {

// Shared by the worker loop and the help-while-waiting path so queue-sourced
// tasks are accounted identically wherever they end up running.
void RunTimedTask(const std::function<void()>& task) {
  {
    CSI_SCOPED_HIST_TIMER("csi_threadpool_task_duration_seconds");
    task();
  }
  CSI_COUNTER_INC("csi_threadpool_tasks_total");
}

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(num_workers, 0)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Post(std::function<void()> task) {
  if (workers_.empty()) {
    RunTimedTask(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    CSI_GAUGE_SET("csi_threadpool_queue_depth", queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping, queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      CSI_GAUGE_SET("csi_threadpool_queue_depth", queue_.size());
    }
    RunTimedTask(task);
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
    CSI_GAUGE_SET("csi_threadpool_queue_depth", queue_.size());
  }
  RunTimedTask(task);
  return true;
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  // Shared per-call state: a claim counter, first-exception capture, and the
  // helper completion count the caller blocks on.
  struct LoopState {
    std::atomic<int64_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t unfinished = 0;
    std::exception_ptr err;
  };
  auto state = std::make_shared<LoopState>();
  auto drain = [state, n, &fn]() {
    while (!state->abort.load(std::memory_order_relaxed)) {
      const int64_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->err) {
          state->err = std::current_exception();
        }
        state->abort.store(true, std::memory_order_relaxed);
      }
    }
  };
  // Trace-context propagation: the caller opens a flow ('s'); every helper
  // that actually runs binds to it with a step ('t') inside its own task
  // span, so the fanned-out work nests under this loop in the trace viewer.
  // The caller closes the flow ('f') after the join.
  uint64_t flow = 0;
  if (trace::Enabled()) {
    flow = trace::NewFlowId();
    trace::EmitBegin("parallel_for", "pool", {{"n", n}});
    trace::EmitFlow('s', "parallel_for", flow);
  }
  // Helpers never outnumber the remaining iterations; a helper that starts
  // after the loop is drained exits immediately.
  const int64_t helpers = std::min<int64_t>(num_workers(), n - 1);
  state->unfinished = helpers;
  for (int64_t h = 0; h < helpers; ++h) {
    Post([state, drain, flow]() {
      {
        const bool traced = flow != 0 && trace::Enabled();
        if (traced) {
          trace::EmitBegin("parallel_for_worker", "pool");
          trace::EmitFlow('t', "parallel_for", flow);
        }
        drain();
        if (traced) {
          trace::EmitEnd("parallel_for_worker", "pool");
        }
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->unfinished == 0) {
        state->done_cv.notify_all();
      }
    });
  }
  drain();  // the calling thread does its share (possibly all of it)
  // Help-while-waiting: a helper we posted may still sit in the queue behind
  // other work — or *be* other work's helper under nesting. Blocking on it
  // without draining the queue deadlocks once every thread waits this way, so
  // the caller keeps executing queued tasks until its own helpers finish.
  // Sleeping is safe only when the queue is empty: then all unfinished
  // helpers are already running on workers that make progress the same way.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->unfinished == 0) {
        break;
      }
    }
    if (!RunOneTask()) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done_cv.wait(lock, [&]() { return state->unfinished == 0; });
      break;
    }
  }
  if (flow != 0 && trace::Enabled()) {
    trace::EmitFlow('f', "parallel_for", flow);
    trace::EmitEnd("parallel_for", "pool");
  }
  if (state->err) {
    std::rethrow_exception(state->err);
  }
}

void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn) {
  if (pool == nullptr || pool->num_workers() == 0) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace csi
