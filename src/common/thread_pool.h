// Fixed-size thread pool for batch inference and intra-search parallelism.
//
// Design constraints, in order of importance:
//   1. No deadlocks under nesting: `ParallelFor` is driven by the *calling*
//      thread (pool workers only help), and a caller waiting on its helpers
//      keeps draining the shared queue instead of sleeping. A task running on
//      a pool worker may therefore itself call `ParallelFor` on the same
//      pool — worst case it runs its iterations on its own thread while the
//      workers are busy.
//   2. Deterministic results: work distribution is dynamic (an atomic index),
//      but callers write into per-index slots, so scheduling never affects
//      the output.
//   3. Zero workers means "run everything inline on the calling thread" —
//      the serial path and the parallel path share all code.

#ifndef CSI_SRC_COMMON_THREAD_POOL_H_
#define CSI_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace csi {

class ThreadPool {
 public:
  // `num_workers` background threads; 0 disables them (inline execution).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Schedules `fn` on a worker (or runs it inline with 0 workers). The
  // returned future carries the result or the thrown exception.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Post([task]() { (*task)(); });
    return result;
  }

  // Runs fn(0) .. fn(n-1) and blocks until all calls finished. The calling
  // thread participates; up to num_workers() workers help. If any call
  // throws, the first exception (in completion order) is rethrown here after
  // the loop drains, and remaining iterations are skipped.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void Post(std::function<void()> task);
  void WorkerLoop();
  // Pops and runs one queued task on the calling thread; false if the queue
  // was empty. Used by ParallelFor to help instead of blocking idle.
  bool RunOneTask();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// `pool` may be null: then the loop runs serially on the calling thread.
void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace csi

#endif  // CSI_SRC_COMMON_THREAD_POOL_H_
