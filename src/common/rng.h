// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (encoder complexity, link loss,
// bandwidth traces, ...) draws from an explicitly seeded `Rng` so that every
// experiment is reproducible from its seed. The generator is xoshiro256**,
// seeded through SplitMix64 as its authors recommend.

#ifndef CSI_SRC_COMMON_RNG_H_
#define CSI_SRC_COMMON_RNG_H_

#include <cstdint>

namespace csi {

class Rng {
 public:
  // Constructs a generator from a 64-bit seed. Two generators built from the
  // same seed produce identical streams.
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal deviate (Box-Muller, cached spare).
  double Normal();

  // Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Log-normal deviate: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Exponential deviate with the given mean. Requires mean > 0.
  double Exponential(double mean);

  // Bernoulli trial with success probability p.
  bool Chance(double p);

  // Derives an independent child generator; useful to give each subsystem its
  // own stream without correlated draws.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace csi

#endif  // CSI_SRC_COMMON_RNG_H_
