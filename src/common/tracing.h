// Structured event tracing: per-thread ring buffers of begin/end/instant/flow
// events collected by a process-wide TraceSession and exported as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Contract, mirroring the telemetry conventions (telemetry.h):
//   1. Tracing must never change what the pipeline computes. Events are
//      write-only from the instrumented code's point of view; inference
//      output is byte-identical tracing-on vs tracing-off vs compiled out
//      (covered by tracing_test).
//   2. Disabled is the default and nearly free: every instrumentation site
//      reduces to one relaxed load and a branch while no session is active.
//      Defining CSI_TRACING_DISABLED (cmake -DCSI_TRACING=OFF) compiles the
//      CSI_TRACE_* macros away entirely; the session API stays linkable so
//      tools build unchanged.
//   3. Bounded memory: each thread owns a fixed-capacity ring and overwrites
//      its own oldest events; a runaway stage can never grow the trace
//      without limit. Writers never contend with each other — each thread
//      appends only to its own buffer; a collector (export or flight dump)
//      briefly takes the per-thread buffer lock, which is otherwise
//      uncontended on the hot path.
//
// Two session modes:
//   * kFull   — large rings, exported to --trace-out at end of run.
//   * kFlight — small rings acting as a post-mortem flight recorder: when a
//     trace analysis throws, the last N events per thread plus a telemetry
//     snapshot and the error are dumped to the configured file
//     (DumpFlightRecord), wired into BatchAnalyzer's trace_errors path.
//
// Cross-thread causality uses Chrome flow events: ParallelFor emits a flow
// 's' (start) on the calling thread and every participating worker emits a
// 't' (step) bound to the same flow id inside its task span, so fanned-out
// work nests under its logical parent in the viewer. Background compaction
// propagates the same way across ThreadPool::Submit.

#ifndef CSI_SRC_COMMON_TRACING_H_
#define CSI_SRC_COMMON_TRACING_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace csi::trace {

// True while a TraceSession is active. One relaxed load; every
// instrumentation helper checks it first. With CSI_TRACING_DISABLED it is a
// compile-time false, so `if (trace::Enabled())` guards dead-code eliminate
// even the non-macro instrumentation sites (ThreadPool flow propagation).
#if defined(CSI_TRACING_DISABLED)
inline constexpr bool Enabled() { return false; }
#else
bool Enabled();
#endif

enum class Mode {
  kFull,    // big rings, export at end of run
  kFlight,  // small rings, dump on analysis failure
};

// One typed argument attached to an event. Keys and string values must be
// string literals (or otherwise outlive the session): the ring stores only
// the pointer, never a copy — that is what keeps a record cheap enough for
// query-level events.
struct TraceArg {
  enum class Kind : uint8_t { kNone = 0, kInt, kDouble, kString };

  TraceArg() = default;
  TraceArg(const char* k, int64_t v) : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(const char* k, int v)
      : key(k), kind(Kind::kInt), int_value(static_cast<int64_t>(v)) {}
  TraceArg(const char* k, uint64_t v)
      : key(k), kind(Kind::kInt), int_value(static_cast<int64_t>(v)) {}
  TraceArg(const char* k, double v) : key(k), kind(Kind::kDouble), double_value(v) {}
  TraceArg(const char* k, const char* v)
      : key(k), kind(Kind::kString), string_value(v) {}

  const char* key = nullptr;
  Kind kind = Kind::kNone;
  int64_t int_value = 0;
  double double_value = 0.0;
  const char* string_value = nullptr;
};

inline constexpr int kMaxTraceArgs = 4;

// One recorded event. `name` and `category` must be string literals (see
// TraceArg). Phases follow the Chrome trace-event format: 'B'/'E' duration
// begin/end, 'i' instant, 's'/'t'/'f' flow start/step/end.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'i';
  int32_t tid = 0;
  int64_t ts_ns = 0;       // nanoseconds since session start
  uint64_t seq = 0;        // per-thread emission order (ties on ts_ns)
  uint64_t flow_id = 0;    // nonzero for 's'/'t'/'f' phases
  uint8_t num_args = 0;
  TraceArg args[kMaxTraceArgs];
};

struct SessionOptions {
  Mode mode = Mode::kFull;
  // Events retained per thread. 0 picks the mode default (32768 full,
  // 4096 flight). Rounded up to a power of two.
  size_t ring_capacity = 0;
  // Flight-recorder dump target. Only the first failure of a session dumps
  // (post-mortems want the original fault, not the last of a cascade).
  std::string flight_dump_path;
};

// Process-wide trace session. Start/Stop are the runtime on/off switch;
// collection and export may happen after Stop (rings survive until the next
// Start). All methods are thread-safe.
class TraceSession {
 public:
  static TraceSession& Global();

  // Clears all rings, applies options, enables recording. Restarting an
  // active session is allowed and starts a fresh trace.
  void Start(const SessionOptions& options);
  void Stop();

  bool active() const;
  Mode mode() const;

  // Snapshot of every thread's ring (oldest first per thread), merged and
  // sorted by (ts_ns, tid, seq). Safe while threads keep recording; each
  // ring is copied under its own lock.
  std::vector<TraceEvent> Collect() const;

  // Events overwritten so far across all rings (ring-buffer drop count).
  uint64_t dropped_events() const;

  // Chrome trace-event JSON, object form: {"traceEvents":[...]}.
  std::string ExportChromeTrace() const;
  bool ExportChromeTrace(const std::string& path, std::string* error) const;

  // Flight-recorder dump: writes {"context","error","droppedEvents",
  // "traceEvents","metrics"} to the configured flight_dump_path. Returns
  // false (without touching the filesystem) unless an active flight-mode
  // session with a dump path exists and this is the session's first dump.
  bool DumpFlightRecord(const std::string& context, const std::string& error);
};

// Pure exporter over an explicit event list — the deterministic core of
// TraceSession::ExportChromeTrace, exposed for golden tests.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

// Allocates a process-unique nonzero flow id.
uint64_t NewFlowId();

// --- Low-level emission (all no-ops while !Enabled()) -----------------------

// Records a fully specified event into the calling thread's ring, stamping
// tid/ts_ns/seq (ts_ns only if the event's ts_ns is 0 — tests pass explicit
// timestamps for deterministic exports).
void Emit(TraceEvent event);

void EmitBegin(const char* name, const char* category,
               std::initializer_list<TraceArg> args = {});
void EmitEnd(const char* name, const char* category);
void EmitInstant(const char* name, const char* category,
                 std::initializer_list<TraceArg> args = {});
// Flow phases: 's' on the producing thread, 't' on each consuming thread,
// 'f' when the logical operation completes.
void EmitFlow(char phase, const char* name, uint64_t flow_id);

// RAII begin/end pair. Captures Enabled() at construction so a session
// starting mid-span cannot emit an 'E' with no matching 'B'; a session
// stopping mid-span leaves an unclosed 'B', which viewers auto-close.
class SpanGuard {
 public:
  SpanGuard(const char* name, const char* category,
            std::initializer_list<TraceArg> args = {})
      : name_(name), category_(category), armed_(Enabled()) {
    if (armed_) {
      EmitBegin(name_, category_, args);
    }
  }
  ~SpanGuard() {
    if (armed_) {
      EmitEnd(name_, category_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool armed_;
};

}  // namespace csi::trace

#define CSI_TRACING_CAT2(a, b) a##b
#define CSI_TRACING_CAT(a, b) CSI_TRACING_CAT2(a, b)

#if defined(CSI_TRACING_DISABLED)

#define CSI_TRACE_SPAN(name, category) \
  do {                                 \
  } while (false)
#define CSI_TRACE_SPAN_ARGS(name, category, ...) \
  do {                                           \
  } while (false)
#define CSI_TRACE_INSTANT(name, category, ...) \
  do {                                         \
  } while (false)

#else

// Duration span covering the enclosing scope.
#define CSI_TRACE_SPAN(name, category) \
  ::csi::trace::SpanGuard CSI_TRACING_CAT(csi_trace_span_, __LINE__)((name), (category))

// Duration span whose 'B' event carries args, e.g.
//   CSI_TRACE_SPAN_ARGS("db_build", "db", {"chunks", total}, {"shards", n});
#define CSI_TRACE_SPAN_ARGS(name, category, ...)                         \
  ::csi::trace::SpanGuard CSI_TRACING_CAT(csi_trace_span_, __LINE__)(    \
      (name), (category), {__VA_ARGS__})

// Instant event with args, e.g.
//   CSI_TRACE_INSTANT("group_cache", "cache", {"outcome", "hit"});
#define CSI_TRACE_INSTANT(name, category, ...) \
  ::csi::trace::EmitInstant((name), (category), {__VA_ARGS__})

#endif  // CSI_TRACING_DISABLED

#endif  // CSI_SRC_COMMON_TRACING_H_
