// Pipeline telemetry: a process-wide metrics registry (counters, gauges,
// fixed-bucket histograms) plus a scoped span timer that records per-stage
// durations, exported as JSON or Prometheus text exposition.
//
// Hot-path contract, in order of importance:
//   1. Telemetry must never change what the pipeline computes. All
//      instrumentation is write-only from the instrumented code's point of
//      view; inference output is byte-identical with telemetry enabled,
//      disabled, or compiled out (covered by telemetry_test).
//   2. Increments are uncontended: every metric is sharded into
//      cache-line-aligned stripes and each thread writes its own stripe
//      (relaxed atomics), so concurrent batch workers never bounce a line
//      and TSan sees only atomic accesses. Stripes are summed on Snapshot().
//   3. The process-wide kill switch (`SetEnabled(false)`) reduces every
//      instrumentation site to one relaxed load and a branch; defining
//      CSI_TELEMETRY_DISABLED compiles the CSI_* macros away entirely.
//
// Instrumentation sites use the CSI_* macros below. Each site resolves its
// metric pointer once (function-local static), so the registry mutex is
// touched once per site per process, never per operation.

#ifndef CSI_SRC_COMMON_TELEMETRY_H_
#define CSI_SRC_COMMON_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace csi::telemetry {

// Runtime kill switch. Defaults to enabled; flipping it affects only whether
// new samples are recorded, never pipeline behavior.
bool Enabled();
void SetEnabled(bool on);

// Label set attached to a metric, e.g. {{"stage", "path_search"}}. Kept
// sorted by key inside the registry so identity and export order are
// canonical.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Number of per-metric shards. Each thread is assigned one stripe
// round-robin; threads only contend when more than kStripes of them share a
// stripe, and even then the operations stay correct (atomic adds).
inline constexpr int kStripes = 16;

// Stripe index of the calling thread.
int ThreadStripe();

namespace internal {

struct alignas(64) PaddedCount {
  std::atomic<int64_t> value{0};
};

// Relaxed atomic add for doubles (pre-C++20-fetch_add portability).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

// Monotonically increasing event count.
class Counter {
 public:
  void Add(int64_t n) {
    if (!Enabled()) {
      return;
    }
    stripes_[ThreadStripe()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  // Sum over stripes; safe to call concurrently with Add.
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset();
  internal::PaddedCount stripes_[kStripes];
};

// Last-write-wins instantaneous value (queue depth, batch progress).
class Gauge {
 public:
  void Set(double v) {
    if (Enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. `bounds` are inclusive upper bounds; an implicit
// +Inf bucket catches the tail. Observations update one stripe's bucket
// count and running sum.
class Histogram {
 public:
  void Observe(double value);
  const std::vector<double>& bounds() const { return bounds_; }
  // Stripe-summed totals; safe to call concurrently with Observe.
  int64_t Count() const;
  double Sum() const;
  // Per-bucket (non-cumulative) counts, bounds().size() + 1 entries.
  std::vector<int64_t> BucketCounts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<int64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Stripe> stripes_;
};

// Canonical duration buckets (seconds) for stage spans and task latencies.
const std::vector<double>& DurationBuckets();
// Canonical magnitude buckets for "how many items" histograms
// (candidates per query, nodes per search).
const std::vector<double>& CountBuckets();

struct CounterSnapshot {
  std::string name;
  Labels labels;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  Labels labels;
  std::vector<double> bounds;
  // Cumulative counts, Prometheus-style: cumulative[i] is the number of
  // observations <= bounds[i]; the final entry is the +Inf bucket == count.
  std::vector<int64_t> cumulative;
  int64_t count = 0;
  double sum = 0.0;
};

// Point-in-time copy of every registered metric, ordered by (name, labels).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  std::string ToJson() const;
  std::string ToPrometheus() const;
};

// Prometheus text-exposition helpers (used by ToPrometheus, exposed for
// exporter edge-case tests). Label values escape backslash, double quote and
// newline; names must match the exposition-format grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]* for metrics, no leading "__" for labels).
std::string PromEscapeLabelValue(const std::string& value);
bool IsValidPrometheusMetricName(const std::string& name);
bool IsValidPrometheusLabelName(const std::string& name);

// Thread-safe named-metric registry. Get* registers on first use and returns
// the same pointer afterwards; pointers stay valid for the registry's
// lifetime (for Global(): the process lifetime), which is what lets call
// sites cache them in function-local statics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every CSI_* macro records into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  // If the metric already exists, `bounds` must match the registered ones
  // (the existing histogram wins; bounds are fixed at first registration).
  Histogram* GetHistogram(const std::string& name, const std::vector<double>& bounds,
                          const Labels& labels = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric in place. Pointers handed out by Get*
  // stay valid (used by tests; call sites cache pointers in statics).
  void Reset();

 private:
  using Key = std::pair<std::string, Labels>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

// Scoped timer recording its lifetime into a histogram, in seconds. Reads
// the clock only when telemetry is enabled at construction.
class SpanTimer {
 public:
  explicit SpanTimer(Histogram* hist) : hist_(Enabled() ? hist : nullptr) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~SpanTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   start_)
                         .count());
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace csi::telemetry

#define CSI_TELEMETRY_CAT2(a, b) a##b
#define CSI_TELEMETRY_CAT(a, b) CSI_TELEMETRY_CAT2(a, b)

#if defined(CSI_TELEMETRY_DISABLED)

#define CSI_SPAN(stage) \
  do {                  \
  } while (false)
#define CSI_SCOPED_HIST_TIMER(metric) \
  do {                                \
  } while (false)
#define CSI_COUNTER_ADD(metric, n) \
  do {                             \
  } while (false)
#define CSI_COUNTER_INC(metric) \
  do {                          \
  } while (false)
#define CSI_GAUGE_SET(metric, v) \
  do {                           \
  } while (false)
#define CSI_HISTOGRAM_OBSERVE(metric, bucket_bounds, v) \
  do {                                                  \
  } while (false)

#else

// Records the enclosing scope's duration into the per-stage latency
// histogram `csi_stage_duration_seconds{stage="<stage>"}`.
#define CSI_SPAN(stage)                                                             \
  static ::csi::telemetry::Histogram* const CSI_TELEMETRY_CAT(csi_span_hist_,       \
                                                              __LINE__) =           \
      ::csi::telemetry::MetricsRegistry::Global().GetHistogram(                     \
          "csi_stage_duration_seconds", ::csi::telemetry::DurationBuckets(),        \
          {{"stage", (stage)}});                                                    \
  ::csi::telemetry::SpanTimer CSI_TELEMETRY_CAT(csi_span_timer_, __LINE__)(         \
      CSI_TELEMETRY_CAT(csi_span_hist_, __LINE__))

// Like CSI_SPAN but into an unlabelled histogram named `metric`.
#define CSI_SCOPED_HIST_TIMER(metric)                                               \
  static ::csi::telemetry::Histogram* const CSI_TELEMETRY_CAT(csi_timer_hist_,      \
                                                              __LINE__) =           \
      ::csi::telemetry::MetricsRegistry::Global().GetHistogram(                     \
          (metric), ::csi::telemetry::DurationBuckets());                           \
  ::csi::telemetry::SpanTimer CSI_TELEMETRY_CAT(csi_timer_, __LINE__)(              \
      CSI_TELEMETRY_CAT(csi_timer_hist_, __LINE__))

#define CSI_COUNTER_ADD(metric, n)                                                  \
  do {                                                                              \
    static ::csi::telemetry::Counter* const csi_counter_site =                      \
        ::csi::telemetry::MetricsRegistry::Global().GetCounter((metric));           \
    csi_counter_site->Add(static_cast<int64_t>(n));                                 \
  } while (false)

#define CSI_COUNTER_INC(metric) CSI_COUNTER_ADD(metric, 1)

#define CSI_GAUGE_SET(metric, v)                                                    \
  do {                                                                              \
    static ::csi::telemetry::Gauge* const csi_gauge_site =                          \
        ::csi::telemetry::MetricsRegistry::Global().GetGauge((metric));             \
    csi_gauge_site->Set(static_cast<double>(v));                                    \
  } while (false)

#define CSI_HISTOGRAM_OBSERVE(metric, bucket_bounds, v)                             \
  do {                                                                              \
    static ::csi::telemetry::Histogram* const csi_hist_site =                       \
        ::csi::telemetry::MetricsRegistry::Global().GetHistogram((metric),          \
                                                                 (bucket_bounds));  \
    csi_hist_site->Observe(static_cast<double>(v));                                 \
  } while (false)

#endif  // CSI_TELEMETRY_DISABLED

#endif  // CSI_SRC_COMMON_TELEMETRY_H_
