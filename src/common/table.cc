#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace csi {

void TextTable::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size(), ' ');
      out << (c + 1 == widths.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* suffix = "B";
  double v = bytes;
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "GB";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "MB";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "KB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix);
  return buf;
}

}  // namespace csi
