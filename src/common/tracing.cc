#include "src/common/tracing.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>

#include "src/common/telemetry.h"

namespace csi::trace {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_next_flow_id{1};

constexpr size_t kDefaultFullCapacity = 32768;
constexpr size_t kDefaultFlightCapacity = 4096;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// One thread's ring. The owning thread appends under `mu`; the lock is
// uncontended except while a collector copies the ring out. `head` counts
// total writes, so `head - size-in-ring` is the drop count and the head
// value doubles as the per-thread sequence number.
struct ThreadLog {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  size_t capacity = 0;  // power of two
  uint64_t head = 0;
  int32_t tid = 0;
};

struct SessionState {
  std::mutex mu;  // guards everything below plus ring (re)configuration
  std::vector<std::shared_ptr<ThreadLog>> logs;
  int32_t next_tid = 1;
  Mode mode = Mode::kFull;
  size_t capacity = kDefaultFullCapacity;
  std::string flight_dump_path;
  // Session start on the steady clock, in ns. Atomic because Emit() reads it
  // without taking the session mutex.
  std::atomic<int64_t> base_ns{0};
  std::atomic<bool> flight_dumped{false};
};

SessionState& State() {
  static SessionState* state = new SessionState();
  return *state;
}

ThreadLog& LocalLog() {
  thread_local std::shared_ptr<ThreadLog> log = []() {
    auto created = std::make_shared<ThreadLog>();
    SessionState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    created->tid = state.next_tid++;
    created->capacity = state.capacity;
    created->ring.resize(created->capacity);
    state.logs.push_back(created);
    return created;
  }();
  return *log;
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  AppendJsonEscaped(out, s.c_str());
}

// Chrome trace ts is in microseconds; keep nanosecond precision as a fixed
// three-decimal fraction so exports are deterministic (no float formatting).
void AppendTimestampUs(std::string* out, int64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ts_ns / 1000,
                ts_ns % 1000);
  out->append(buf);
}

void AppendArgValue(std::string* out, const TraceArg& arg) {
  char buf[40];
  switch (arg.kind) {
    case TraceArg::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, arg.int_value);
      out->append(buf);
      break;
    case TraceArg::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.9g", arg.double_value);
      out->append(buf);
      break;
    case TraceArg::Kind::kString:
      out->push_back('"');
      AppendJsonEscaped(out, arg.string_value != nullptr ? arg.string_value : "");
      out->append("\"");
      break;
    case TraceArg::Kind::kNone:
      out->append("null");
      break;
  }
}

void AppendEventJson(std::string* out, const TraceEvent& e) {
  out->append("{\"name\":\"");
  AppendJsonEscaped(out, e.name != nullptr ? e.name : "");
  out->append("\",\"cat\":\"");
  AppendJsonEscaped(out, e.category != nullptr ? e.category : "csi");
  out->append("\",\"ph\":\"");
  out->push_back(e.phase);
  out->append("\",\"ts\":");
  AppendTimestampUs(out, e.ts_ns);
  out->append(",\"pid\":1,\"tid\":");
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", e.tid);
  out->append(buf);
  if (e.flow_id != 0) {
    char idbuf[32];
    std::snprintf(idbuf, sizeof(idbuf), ",\"id\":%" PRIu64, e.flow_id);
    out->append(idbuf);
  }
  if (e.num_args > 0) {
    out->append(",\"args\":{");
    for (int i = 0; i < e.num_args; ++i) {
      if (i > 0) {
        out->push_back(',');
      }
      out->push_back('"');
      AppendJsonEscaped(out, e.args[i].key != nullptr ? e.args[i].key : "");
      out->append("\":");
      AppendArgValue(out, e.args[i]);
    }
    out->push_back('}');
  }
  out->push_back('}');
}

void AppendEventArray(std::string* out, const std::vector<TraceEvent>& events) {
  out->push_back('[');
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      out->append(",\n");
    }
    AppendEventJson(out, events[i]);
  }
  out->push_back(']');
}

bool WriteStringToFile(const std::string& path, const std::string& contents,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok && error != nullptr) {
    *error = "short write to " + path;
  }
  return ok;
}

}  // namespace

#if !defined(CSI_TRACING_DISABLED)
bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
#endif

uint64_t NewFlowId() {
  return g_next_flow_id.fetch_add(1, std::memory_order_relaxed);
}

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

void TraceSession::Start(const SessionOptions& options) {
  SessionState& state = State();
  // Disable while reconfiguring so no writer appends into a ring that is
  // being resized; writers re-check Enabled() per event.
  g_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state.mu);
  state.mode = options.mode;
  size_t capacity = options.ring_capacity;
  if (capacity == 0) {
    capacity = options.mode == Mode::kFlight ? kDefaultFlightCapacity
                                             : kDefaultFullCapacity;
  }
  state.capacity = RoundUpPow2(capacity);
  state.flight_dump_path = options.flight_dump_path;
  state.flight_dumped.store(false, std::memory_order_relaxed);
  state.base_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count(),
                      std::memory_order_relaxed);
  for (const auto& log : state.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->capacity = state.capacity;
    log->ring.assign(log->capacity, TraceEvent{});
    log->head = 0;
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void TraceSession::Stop() { g_enabled.store(false, std::memory_order_relaxed); }

bool TraceSession::active() const { return Enabled(); }

Mode TraceSession::mode() const {
  SessionState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.mode;
}

std::vector<TraceEvent> TraceSession::Collect() const {
  SessionState& state = State();
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    logs = state.logs;
  }
  std::vector<TraceEvent> events;
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    const uint64_t count = std::min<uint64_t>(log->head, log->capacity);
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t index = log->head - count + i;
      events.push_back(log->ring[index & (log->capacity - 1)]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) {
                return a.ts_ns < b.ts_ns;
              }
              if (a.tid != b.tid) {
                return a.tid < b.tid;
              }
              return a.seq < b.seq;
            });
  return events;
}

uint64_t TraceSession::dropped_events() const {
  SessionState& state = State();
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    logs = state.logs;
  }
  uint64_t dropped = 0;
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    if (log->head > log->capacity) {
      dropped += log->head - log->capacity;
    }
  }
  return dropped;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out.append("{\"traceEvents\":");
  AppendEventArray(&out, events);
  out.append("}\n");
  return out;
}

std::string TraceSession::ExportChromeTrace() const {
  return ChromeTraceJson(Collect());
}

bool TraceSession::ExportChromeTrace(const std::string& path,
                                     std::string* error) const {
  return WriteStringToFile(path, ExportChromeTrace(), error);
}

bool TraceSession::DumpFlightRecord(const std::string& context,
                                    const std::string& error) {
  SessionState& state = State();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!Enabled() || state.mode != Mode::kFlight ||
        state.flight_dump_path.empty()) {
      return false;
    }
    // First failure wins: a cascade of failing traces must not overwrite the
    // post-mortem of the fault that started it.
    if (state.flight_dumped.exchange(true, std::memory_order_relaxed)) {
      return false;
    }
    path = state.flight_dump_path;
  }
  std::string out;
  out.append("{\"context\":\"");
  AppendJsonEscaped(&out, context);
  out.append("\",\"error\":\"");
  AppendJsonEscaped(&out, error);
  out.append("\",\"droppedEvents\":");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped_events());
  out.append(buf);
  out.append(",\"traceEvents\":");
  AppendEventArray(&out, Collect());
  out.append(",\n\"metrics\":");
  out.append(telemetry::MetricsRegistry::Global().Snapshot().ToJson());
  out.append("}\n");
  return WriteStringToFile(path, out, nullptr);
}

void Emit(TraceEvent event) {
  if (!Enabled()) {
    return;
  }
  ThreadLog& log = LocalLog();
  if (event.ts_ns == 0) {
    const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now().time_since_epoch())
                               .count();
    event.ts_ns = now_ns - State().base_ns.load(std::memory_order_relaxed);
    if (event.ts_ns <= 0) {
      event.ts_ns = 1;  // keep "0 == stamp me" unambiguous
    }
  }
  std::lock_guard<std::mutex> lock(log.mu);
  if (log.capacity == 0) {
    return;  // Start() has not configured rings yet
  }
  event.tid = log.tid;
  event.seq = log.head;
  log.ring[log.head & (log.capacity - 1)] = event;
  ++log.head;
}

namespace {

void FillArgs(TraceEvent* event, std::initializer_list<TraceArg> args) {
  for (const TraceArg& arg : args) {
    if (event->num_args >= kMaxTraceArgs) {
      break;
    }
    event->args[event->num_args++] = arg;
  }
}

}  // namespace

void EmitBegin(const char* name, const char* category,
               std::initializer_list<TraceArg> args) {
  if (!Enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'B';
  FillArgs(&event, args);
  Emit(event);
}

void EmitEnd(const char* name, const char* category) {
  if (!Enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'E';
  Emit(event);
}

void EmitInstant(const char* name, const char* category,
                 std::initializer_list<TraceArg> args) {
  if (!Enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  FillArgs(&event, args);
  Emit(event);
}

void EmitFlow(char phase, const char* name, uint64_t flow_id) {
  if (!Enabled() || flow_id == 0) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = "flow";
  event.phase = phase;
  event.flow_id = flow_id;
  Emit(event);
}

}  // namespace csi::trace
