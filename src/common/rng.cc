#include "src/common/rng.h"

#include <cmath>

namespace csi {
namespace {

// SplitMix64: used only to expand the user seed into generator state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256**.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace csi
