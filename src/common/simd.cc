#include "src/common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#if !defined(CSI_SIMD_DISABLED)
#if defined(__x86_64__) || defined(_M_X64)
#define CSI_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define CSI_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !CSI_SIMD_DISABLED

namespace csi::simd {

namespace {

size_t CountBelowScalar(const int64_t* data, size_t n, int64_t bound) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

#if defined(CSI_SIMD_X86)

// Per-64-bit-lane sign mask using only SSE2 ops: arithmetic-shift each 32-bit
// half, then broadcast the high half's result across the lane.
inline __m128i SignMask64Sse2(__m128i v) {
  const __m128i sign32 = _mm_srai_epi32(v, 31);
  return _mm_shuffle_epi32(sign32, _MM_SHUFFLE(3, 3, 1, 1));
}

// Signed 64-bit a < b without SSE4.2's pcmpgtq. When the signs agree, a - b
// cannot overflow and its sign decides; when they differ, a < b exactly when
// a is the negative one.
inline __m128i CmpLt64Sse2(__m128i a, __m128i b) {
  const __m128i diff = _mm_sub_epi64(a, b);
  const __m128i mixed = SignMask64Sse2(_mm_xor_si128(a, b));
  const __m128i sel =
      _mm_or_si128(_mm_andnot_si128(mixed, diff), _mm_and_si128(mixed, a));
  return SignMask64Sse2(sel);
}

size_t CountBelowSse2(const int64_t* data, size_t n, int64_t bound) {
  const __m128i b = _mm_set1_epi64x(bound);
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    // Compare-mask lanes are -1; subtracting them accumulates the count.
    acc = _mm_sub_epi64(acc, CmpLt64Sse2(v, b));
  }
  alignas(16) int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  size_t count = static_cast<size_t>(lanes[0] + lanes[1]);
  for (; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

__attribute__((target("avx2"))) size_t CountBelowAvx2(const int64_t* data,
                                                      size_t n, int64_t bound) {
  const __m256i b = _mm256_set1_epi64x(bound);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(b, v));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t count = static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

#endif  // CSI_SIMD_X86

#if defined(CSI_SIMD_NEON)

size_t CountBelowNeon(const int64_t* data, size_t n, int64_t bound) {
  const int64x2_t b = vdupq_n_s64(bound);
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t v = vld1q_s64(data + i);
    acc = vsubq_u64(acc, vcltq_s64(v, b));
  }
  size_t count =
      static_cast<size_t>(vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

#endif  // CSI_SIMD_NEON

bool EnvForcesScalar() {
  const char* env = std::getenv("CSI_SIMD");
  if (env == nullptr) {
    return false;
  }
  const std::string value(env);
  return value == "off" || value == "OFF" || value == "0" || value == "scalar" ||
         value == "none";
}

Backend DetectBackend() {
  if (EnvForcesScalar()) {
    return Backend::kScalar;
  }
#if defined(CSI_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) {
    return Backend::kAvx2;
  }
  return Backend::kSse2;  // baseline on x86-64
#elif defined(CSI_SIMD_NEON)
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

// -1 = unresolved; otherwise a Backend value.
std::atomic<int> g_backend{-1};

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "?";
}

Backend ActiveBackend() {
  int current = g_backend.load(std::memory_order_acquire);
  if (current < 0) {
    const Backend detected = DetectBackend();
    // First resolver wins; a concurrent ForceBackend is also fine (any stored
    // value is a supported backend).
    int expected = -1;
    g_backend.compare_exchange_strong(expected, static_cast<int>(detected),
                                      std::memory_order_acq_rel);
    current = g_backend.load(std::memory_order_acquire);
  }
  return static_cast<Backend>(current);
}

bool BackendSupported(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(CSI_SIMD_X86)
      return true;
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(CSI_SIMD_X86)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(CSI_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool ForceBackend(Backend backend) {
  if (!BackendSupported(backend)) {
    return false;
  }
  g_backend.store(static_cast<int>(backend), std::memory_order_release);
  return true;
}

size_t CountBelow(const int64_t* data, size_t n, int64_t bound) {
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return CountBelowAvx2(data, n, bound);
    case Backend::kSse2:
      return CountBelowSse2(data, n, bound);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return CountBelowNeon(data, n, bound);
#endif
    default:
      return CountBelowScalar(data, n, bound);
  }
}

size_t CountAtOrBelow(const int64_t* data, size_t n, int64_t bound) {
  if (bound == INT64_MAX) {
    return n;  // bound + 1 would overflow; everything qualifies
  }
  return CountBelow(data, n, bound + 1);
}

}  // namespace csi::simd
