#include "src/common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#if !defined(CSI_SIMD_DISABLED)
#if defined(__x86_64__) || defined(_M_X64)
#define CSI_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define CSI_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !CSI_SIMD_DISABLED

namespace csi::simd {

namespace {

size_t CountBelowScalar(const int64_t* data, size_t n, int64_t bound) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

// The scalar column kernels are the reference semantics: every vector backend
// below must match them bit-for-bit on every input (the cold-path differential
// test sweeps them against each other). Dispatchers normalize end < 0 to
// INT64_MAX before these run, so the window test is a plain pair of compares.

int64_t SumInWindowScalar(const int64_t* ts, const int64_t* values, size_t n,
                          int64_t begin, int64_t end) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ts[i] > begin && ts[i] <= end) {
      sum += values[i];
    }
  }
  return sum;
}

void MaskedQuicPayloadScalar(const uint8_t* from_client, const int64_t* payload,
                             size_t n, int64_t header, int64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const int64_t stripped = payload[i] - header;
    out[i] = (from_client[i] != 0 || stripped < 0) ? 0 : stripped;
  }
}

int64_t DirectionMaskedSumScalar(const uint8_t* from_client, uint8_t want,
                                 const int64_t* payload, size_t n) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (from_client[i] == want) {
      sum += payload[i];
    }
  }
  return sum;
}

size_t CollectIndicesScalar(const uint8_t* from_client, uint8_t want,
                            const int64_t* payload, int64_t min_payload,
                            size_t n, uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (from_client[i] == want && payload[i] >= min_payload) {
      out[count++] = static_cast<uint32_t>(i);
    }
  }
  return count;
}

int64_t MaxTsInWindowScalar(const int64_t* ts, const uint8_t* mask, size_t n,
                            int64_t begin, int64_t end) {
  int64_t best = INT64_MIN;
  for (size_t i = 0; i < n; ++i) {
    if (mask[i] != 0 && ts[i] > begin && ts[i] <= end && ts[i] > best) {
      best = ts[i];
    }
  }
  return best;
}

size_t CountRunsScalar(const uint32_t* ids, size_t n) {
  if (n == 0) {
    return 0;
  }
  size_t runs = 1;
  for (size_t i = 1; i < n; ++i) {
    runs += ids[i] != ids[i - 1] ? 1 : 0;
  }
  return runs;
}

#if defined(CSI_SIMD_X86)

// Per-64-bit-lane sign mask using only SSE2 ops: arithmetic-shift each 32-bit
// half, then broadcast the high half's result across the lane.
inline __m128i SignMask64Sse2(__m128i v) {
  const __m128i sign32 = _mm_srai_epi32(v, 31);
  return _mm_shuffle_epi32(sign32, _MM_SHUFFLE(3, 3, 1, 1));
}

// Signed 64-bit a < b without SSE4.2's pcmpgtq. When the signs agree, a - b
// cannot overflow and its sign decides; when they differ, a < b exactly when
// a is the negative one.
inline __m128i CmpLt64Sse2(__m128i a, __m128i b) {
  const __m128i diff = _mm_sub_epi64(a, b);
  const __m128i mixed = SignMask64Sse2(_mm_xor_si128(a, b));
  const __m128i sel =
      _mm_or_si128(_mm_andnot_si128(mixed, diff), _mm_and_si128(mixed, a));
  return SignMask64Sse2(sel);
}

// Per-64-bit-lane equality using only SSE2 ops: both 32-bit halves of a lane
// must compare equal.
inline __m128i CmpEq64Sse2(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

// Widen two adjacent direction/mask bytes into 64-bit lanes.
inline __m128i BytePair64Sse2(const uint8_t* d) {
  return _mm_set_epi64x(static_cast<int64_t>(d[1]), static_cast<int64_t>(d[0]));
}

size_t CountBelowSse2(const int64_t* data, size_t n, int64_t bound) {
  const __m128i b = _mm_set1_epi64x(bound);
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    // Compare-mask lanes are -1; subtracting them accumulates the count.
    acc = _mm_sub_epi64(acc, CmpLt64Sse2(v, b));
  }
  alignas(16) int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  size_t count = static_cast<size_t>(lanes[0] + lanes[1]);
  for (; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

__attribute__((target("avx2"))) size_t CountBelowAvx2(const int64_t* data,
                                                      size_t n, int64_t bound) {
  const __m256i b = _mm256_set1_epi64x(bound);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(b, v));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t count = static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

int64_t SumInWindowSse2(const int64_t* ts, const int64_t* values, size_t n,
                        int64_t begin, int64_t end) {
  const __m128i b = _mm_set1_epi64x(begin);
  const __m128i e = _mm_set1_epi64x(end);
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ts + i));
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    // ts > begin && !(end < ts)
    const __m128i in_window =
        _mm_andnot_si128(CmpLt64Sse2(e, t), CmpLt64Sse2(b, t));
    acc = _mm_add_epi64(acc, _mm_and_si128(v, in_window));
  }
  alignas(16) int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int64_t sum = lanes[0] + lanes[1];
  for (; i < n; ++i) {
    if (ts[i] > begin && ts[i] <= end) {
      sum += values[i];
    }
  }
  return sum;
}

void MaskedQuicPayloadSse2(const uint8_t* from_client, const int64_t* payload,
                           size_t n, int64_t header, int64_t* out) {
  const __m128i h = _mm_set1_epi64x(header);
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(payload + i));
    const __m128i stripped = _mm_sub_epi64(p, h);
    // max(stripped, 0): zero out lanes whose sign bit is set.
    const __m128i kept = _mm_andnot_si128(SignMask64Sse2(stripped), stripped);
    const __m128i downlink = CmpEq64Sse2(BytePair64Sse2(from_client + i), zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_and_si128(kept, downlink));
  }
  for (; i < n; ++i) {
    const int64_t stripped = payload[i] - header;
    out[i] = (from_client[i] != 0 || stripped < 0) ? 0 : stripped;
  }
}

int64_t DirectionMaskedSumSse2(const uint8_t* from_client, uint8_t want,
                               const int64_t* payload, size_t n) {
  const __m128i w = _mm_set1_epi64x(static_cast<int64_t>(want));
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(payload + i));
    const __m128i match = CmpEq64Sse2(BytePair64Sse2(from_client + i), w);
    acc = _mm_add_epi64(acc, _mm_and_si128(p, match));
  }
  alignas(16) int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int64_t sum = lanes[0] + lanes[1];
  for (; i < n; ++i) {
    if (from_client[i] == want) {
      sum += payload[i];
    }
  }
  return sum;
}

size_t CollectIndicesSse2(const uint8_t* from_client, uint8_t want,
                          const int64_t* payload, int64_t min_payload, size_t n,
                          uint32_t* out) {
  const __m128i w = _mm_set1_epi64x(static_cast<int64_t>(want));
  const __m128i mp = _mm_set1_epi64x(min_payload);
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(payload + i));
    // dir == want && !(payload < min_payload)
    const __m128i ok = _mm_andnot_si128(
        CmpLt64Sse2(p, mp), CmpEq64Sse2(BytePair64Sse2(from_client + i), w));
    const int mask = _mm_movemask_pd(_mm_castsi128_pd(ok));
    if (mask & 1) {
      out[count++] = static_cast<uint32_t>(i);
    }
    if (mask & 2) {
      out[count++] = static_cast<uint32_t>(i + 1);
    }
  }
  for (; i < n; ++i) {
    if (from_client[i] == want && payload[i] >= min_payload) {
      out[count++] = static_cast<uint32_t>(i);
    }
  }
  return count;
}

int64_t MaxTsInWindowSse2(const int64_t* ts, const uint8_t* mask, size_t n,
                          int64_t begin, int64_t end) {
  const __m128i b = _mm_set1_epi64x(begin);
  const __m128i e = _mm_set1_epi64x(end);
  const __m128i zero = _mm_setzero_si128();
  const __m128i floor = _mm_set1_epi64x(INT64_MIN);
  __m128i best = floor;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ts + i));
    const __m128i in_window =
        _mm_andnot_si128(CmpLt64Sse2(e, t), CmpLt64Sse2(b, t));
    const __m128i qualifies = _mm_andnot_si128(
        CmpEq64Sse2(BytePair64Sse2(mask + i), zero), in_window);
    const __m128i cand = _mm_or_si128(_mm_and_si128(qualifies, t),
                                      _mm_andnot_si128(qualifies, floor));
    const __m128i lt = CmpLt64Sse2(best, cand);
    best = _mm_or_si128(_mm_and_si128(lt, cand), _mm_andnot_si128(lt, best));
  }
  alignas(16) int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
  int64_t result = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) {
    if (mask[i] != 0 && ts[i] > begin && ts[i] <= end && ts[i] > result) {
      result = ts[i];
    }
  }
  return result;
}

size_t CountRunsSse2(const uint32_t* ids, size_t n) {
  if (n == 0) {
    return 0;
  }
  size_t breaks = 0;
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    const __m128i prev =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i - 1));
    const int eq = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, prev)));
    breaks += static_cast<size_t>(__builtin_popcount(~eq & 0xF));
  }
  for (; i < n; ++i) {
    breaks += ids[i] != ids[i - 1] ? 1 : 0;
  }
  return breaks + 1;
}

// Widen four adjacent direction/mask bytes into 64-bit lanes.
__attribute__((target("avx2"))) inline __m256i ByteQuad64Avx2(
    const uint8_t* d) {
  uint32_t word;
  std::memcpy(&word, d, sizeof(word));
  return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(word)));
}

__attribute__((target("avx2"))) int64_t SumInWindowAvx2(const int64_t* ts,
                                                        const int64_t* values,
                                                        size_t n, int64_t begin,
                                                        int64_t end) {
  const __m256i b = _mm256_set1_epi64x(begin);
  const __m256i e = _mm256_set1_epi64x(end);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + i));
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    // ts > begin && !(ts > end)
    const __m256i in_window = _mm256_andnot_si256(_mm256_cmpgt_epi64(t, e),
                                                  _mm256_cmpgt_epi64(t, b));
    acc = _mm256_add_epi64(acc, _mm256_and_si256(v, in_window));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    if (ts[i] > begin && ts[i] <= end) {
      sum += values[i];
    }
  }
  return sum;
}

__attribute__((target("avx2"))) void MaskedQuicPayloadAvx2(
    const uint8_t* from_client, const int64_t* payload, size_t n,
    int64_t header, int64_t* out) {
  const __m256i h = _mm256_set1_epi64x(header);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(payload + i));
    const __m256i stripped = _mm256_sub_epi64(p, h);
    const __m256i kept =
        _mm256_andnot_si256(_mm256_cmpgt_epi64(zero, stripped), stripped);
    const __m256i downlink =
        _mm256_cmpeq_epi64(ByteQuad64Avx2(from_client + i), zero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(kept, downlink));
  }
  for (; i < n; ++i) {
    const int64_t stripped = payload[i] - header;
    out[i] = (from_client[i] != 0 || stripped < 0) ? 0 : stripped;
  }
}

__attribute__((target("avx2"))) int64_t DirectionMaskedSumAvx2(
    const uint8_t* from_client, uint8_t want, const int64_t* payload,
    size_t n) {
  const __m256i w = _mm256_set1_epi64x(static_cast<int64_t>(want));
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(payload + i));
    const __m256i match =
        _mm256_cmpeq_epi64(ByteQuad64Avx2(from_client + i), w);
    acc = _mm256_add_epi64(acc, _mm256_and_si256(p, match));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    if (from_client[i] == want) {
      sum += payload[i];
    }
  }
  return sum;
}

__attribute__((target("avx2"))) size_t CollectIndicesAvx2(
    const uint8_t* from_client, uint8_t want, const int64_t* payload,
    int64_t min_payload, size_t n, uint32_t* out) {
  const __m256i w = _mm256_set1_epi64x(static_cast<int64_t>(want));
  const __m256i mp = _mm256_set1_epi64x(min_payload);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(payload + i));
    // dir == want && !(min_payload > payload)
    const __m256i ok =
        _mm256_andnot_si256(_mm256_cmpgt_epi64(mp, p),
                            _mm256_cmpeq_epi64(ByteQuad64Avx2(from_client + i), w));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(ok));
    for (int lane = 0; lane < 4; ++lane) {
      if (mask & (1 << lane)) {
        out[count++] = static_cast<uint32_t>(i + static_cast<size_t>(lane));
      }
    }
  }
  for (; i < n; ++i) {
    if (from_client[i] == want && payload[i] >= min_payload) {
      out[count++] = static_cast<uint32_t>(i);
    }
  }
  return count;
}

__attribute__((target("avx2"))) int64_t MaxTsInWindowAvx2(const int64_t* ts,
                                                          const uint8_t* mask,
                                                          size_t n,
                                                          int64_t begin,
                                                          int64_t end) {
  const __m256i b = _mm256_set1_epi64x(begin);
  const __m256i e = _mm256_set1_epi64x(end);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i floor = _mm256_set1_epi64x(INT64_MIN);
  __m256i best = floor;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + i));
    const __m256i in_window = _mm256_andnot_si256(_mm256_cmpgt_epi64(t, e),
                                                  _mm256_cmpgt_epi64(t, b));
    const __m256i qualifies = _mm256_andnot_si256(
        _mm256_cmpeq_epi64(ByteQuad64Avx2(mask + i), zero), in_window);
    const __m256i cand = _mm256_blendv_epi8(floor, t, qualifies);
    best = _mm256_blendv_epi8(best, cand, _mm256_cmpgt_epi64(cand, best));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  int64_t result = lanes[0];
  for (int lane = 1; lane < 4; ++lane) {
    if (lanes[lane] > result) {
      result = lanes[lane];
    }
  }
  for (; i < n; ++i) {
    if (mask[i] != 0 && ts[i] > begin && ts[i] <= end && ts[i] > result) {
      result = ts[i];
    }
  }
  return result;
}

__attribute__((target("avx2"))) size_t CountRunsAvx2(const uint32_t* ids,
                                                     size_t n) {
  if (n == 0) {
    return 0;
  }
  size_t breaks = 0;
  size_t i = 1;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i - 1));
    const int eq =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, prev)));
    breaks += static_cast<size_t>(__builtin_popcount(~eq & 0xFF));
  }
  for (; i < n; ++i) {
    breaks += ids[i] != ids[i - 1] ? 1 : 0;
  }
  return breaks + 1;
}

#endif  // CSI_SIMD_X86

#if defined(CSI_SIMD_NEON)

size_t CountBelowNeon(const int64_t* data, size_t n, int64_t bound) {
  const int64x2_t b = vdupq_n_s64(bound);
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t v = vld1q_s64(data + i);
    acc = vsubq_u64(acc, vcltq_s64(v, b));
  }
  size_t count =
      static_cast<size_t>(vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    count += data[i] < bound ? 1 : 0;
  }
  return count;
}

// Widen two adjacent direction/mask bytes into 64-bit lanes.
inline int64x2_t BytePair64Neon(const uint8_t* d) {
  return vcombine_s64(vcreate_s64(static_cast<uint64_t>(d[0])),
                      vcreate_s64(static_cast<uint64_t>(d[1])));
}

int64_t SumInWindowNeon(const int64_t* ts, const int64_t* values, size_t n,
                        int64_t begin, int64_t end) {
  const int64x2_t b = vdupq_n_s64(begin);
  const int64x2_t e = vdupq_n_s64(end);
  int64x2_t acc = vdupq_n_s64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t t = vld1q_s64(ts + i);
    const int64x2_t v = vld1q_s64(values + i);
    const uint64x2_t in_window = vandq_u64(vcgtq_s64(t, b), vcleq_s64(t, e));
    acc = vaddq_s64(acc, vandq_s64(v, vreinterpretq_s64_u64(in_window)));
  }
  int64_t sum = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; i < n; ++i) {
    if (ts[i] > begin && ts[i] <= end) {
      sum += values[i];
    }
  }
  return sum;
}

void MaskedQuicPayloadNeon(const uint8_t* from_client, const int64_t* payload,
                           size_t n, int64_t header, int64_t* out) {
  const int64x2_t h = vdupq_n_s64(header);
  const int64x2_t zero = vdupq_n_s64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t p = vld1q_s64(payload + i);
    const int64x2_t stripped = vsubq_s64(p, h);
    const int64x2_t kept = vandq_s64(
        stripped, vreinterpretq_s64_u64(vcgtq_s64(stripped, zero)));
    const uint64x2_t downlink = vceqq_s64(BytePair64Neon(from_client + i), zero);
    vst1q_s64(out + i, vandq_s64(kept, vreinterpretq_s64_u64(downlink)));
  }
  for (; i < n; ++i) {
    const int64_t stripped = payload[i] - header;
    out[i] = (from_client[i] != 0 || stripped < 0) ? 0 : stripped;
  }
}

int64_t DirectionMaskedSumNeon(const uint8_t* from_client, uint8_t want,
                               const int64_t* payload, size_t n) {
  const int64x2_t w = vdupq_n_s64(static_cast<int64_t>(want));
  int64x2_t acc = vdupq_n_s64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t p = vld1q_s64(payload + i);
    const uint64x2_t match = vceqq_s64(BytePair64Neon(from_client + i), w);
    acc = vaddq_s64(acc, vandq_s64(p, vreinterpretq_s64_u64(match)));
  }
  int64_t sum = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; i < n; ++i) {
    if (from_client[i] == want) {
      sum += payload[i];
    }
  }
  return sum;
}

size_t CollectIndicesNeon(const uint8_t* from_client, uint8_t want,
                          const int64_t* payload, int64_t min_payload, size_t n,
                          uint32_t* out) {
  const int64x2_t w = vdupq_n_s64(static_cast<int64_t>(want));
  const int64x2_t mp = vdupq_n_s64(min_payload);
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t p = vld1q_s64(payload + i);
    const uint64x2_t ok = vandq_u64(
        vceqq_s64(BytePair64Neon(from_client + i), w), vcgeq_s64(p, mp));
    if (vgetq_lane_u64(ok, 0) != 0) {
      out[count++] = static_cast<uint32_t>(i);
    }
    if (vgetq_lane_u64(ok, 1) != 0) {
      out[count++] = static_cast<uint32_t>(i + 1);
    }
  }
  for (; i < n; ++i) {
    if (from_client[i] == want && payload[i] >= min_payload) {
      out[count++] = static_cast<uint32_t>(i);
    }
  }
  return count;
}

int64_t MaxTsInWindowNeon(const int64_t* ts, const uint8_t* mask, size_t n,
                          int64_t begin, int64_t end) {
  const int64x2_t b = vdupq_n_s64(begin);
  const int64x2_t e = vdupq_n_s64(end);
  const int64x2_t zero = vdupq_n_s64(0);
  const int64x2_t floor = vdupq_n_s64(INT64_MIN);
  int64x2_t best = floor;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t t = vld1q_s64(ts + i);
    const uint64x2_t in_window = vandq_u64(vcgtq_s64(t, b), vcleq_s64(t, e));
    const uint64x2_t qualifies =
        vbicq_u64(in_window, vceqq_s64(BytePair64Neon(mask + i), zero));
    const int64x2_t cand = vbslq_s64(qualifies, t, floor);
    best = vbslq_s64(vcgtq_s64(cand, best), cand, best);
  }
  int64_t result = vgetq_lane_s64(best, 0);
  if (vgetq_lane_s64(best, 1) > result) {
    result = vgetq_lane_s64(best, 1);
  }
  for (; i < n; ++i) {
    if (mask[i] != 0 && ts[i] > begin && ts[i] <= end && ts[i] > result) {
      result = ts[i];
    }
  }
  return result;
}

size_t CountRunsNeon(const uint32_t* ids, size_t n) {
  if (n == 0) {
    return 0;
  }
  size_t breaks = 0;
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t v = vld1q_u32(ids + i);
    const uint32x4_t prev = vld1q_u32(ids + i - 1);
    // Differing lanes are all-ones; their top bit counts one break each.
    const uint32x4_t ne = vmvnq_u32(vceqq_u32(v, prev));
    breaks += static_cast<size_t>(vaddvq_u32(vshrq_n_u32(ne, 31)));
  }
  for (; i < n; ++i) {
    breaks += ids[i] != ids[i - 1] ? 1 : 0;
  }
  return breaks + 1;
}

#endif  // CSI_SIMD_NEON

bool EnvForcesScalar() {
  const char* env = std::getenv("CSI_SIMD");
  if (env == nullptr) {
    return false;
  }
  const std::string value(env);
  return value == "off" || value == "OFF" || value == "0" || value == "scalar" ||
         value == "none";
}

Backend DetectBackend() {
  if (EnvForcesScalar()) {
    return Backend::kScalar;
  }
#if defined(CSI_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) {
    return Backend::kAvx2;
  }
  return Backend::kSse2;  // baseline on x86-64
#elif defined(CSI_SIMD_NEON)
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

// -1 = unresolved; otherwise a Backend value.
std::atomic<int> g_backend{-1};

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "?";
}

Backend ActiveBackend() {
  int current = g_backend.load(std::memory_order_acquire);
  if (current < 0) {
    const Backend detected = DetectBackend();
    // First resolver wins; a concurrent ForceBackend is also fine (any stored
    // value is a supported backend).
    int expected = -1;
    g_backend.compare_exchange_strong(expected, static_cast<int>(detected),
                                      std::memory_order_acq_rel);
    current = g_backend.load(std::memory_order_acquire);
  }
  return static_cast<Backend>(current);
}

bool BackendSupported(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(CSI_SIMD_X86)
      return true;
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(CSI_SIMD_X86)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(CSI_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool ForceBackend(Backend backend) {
  if (!BackendSupported(backend)) {
    return false;
  }
  g_backend.store(static_cast<int>(backend), std::memory_order_release);
  return true;
}

size_t CountBelow(const int64_t* data, size_t n, int64_t bound) {
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return CountBelowAvx2(data, n, bound);
    case Backend::kSse2:
      return CountBelowSse2(data, n, bound);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return CountBelowNeon(data, n, bound);
#endif
    default:
      return CountBelowScalar(data, n, bound);
  }
}

size_t CountAtOrBelow(const int64_t* data, size_t n, int64_t bound) {
  if (bound == INT64_MAX) {
    return n;  // bound + 1 would overflow; everything qualifies
  }
  return CountBelow(data, n, bound + 1);
}

int64_t SumInWindow(const int64_t* ts, const int64_t* values, size_t n,
                    int64_t begin, int64_t end) {
  if (end < 0) {
    end = INT64_MAX;  // "no upper bound" per the estimator convention
  }
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return SumInWindowAvx2(ts, values, n, begin, end);
    case Backend::kSse2:
      return SumInWindowSse2(ts, values, n, begin, end);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return SumInWindowNeon(ts, values, n, begin, end);
#endif
    default:
      return SumInWindowScalar(ts, values, n, begin, end);
  }
}

void MaskedQuicPayload(const uint8_t* from_client, const int64_t* payload,
                       size_t n, int64_t header, int64_t* out) {
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return MaskedQuicPayloadAvx2(from_client, payload, n, header, out);
    case Backend::kSse2:
      return MaskedQuicPayloadSse2(from_client, payload, n, header, out);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return MaskedQuicPayloadNeon(from_client, payload, n, header, out);
#endif
    default:
      return MaskedQuicPayloadScalar(from_client, payload, n, header, out);
  }
}

int64_t DirectionMaskedSum(const uint8_t* from_client, uint8_t want,
                           const int64_t* payload, size_t n) {
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return DirectionMaskedSumAvx2(from_client, want, payload, n);
    case Backend::kSse2:
      return DirectionMaskedSumSse2(from_client, want, payload, n);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return DirectionMaskedSumNeon(from_client, want, payload, n);
#endif
    default:
      return DirectionMaskedSumScalar(from_client, want, payload, n);
  }
}

size_t CollectIndices(const uint8_t* from_client, uint8_t want,
                      const int64_t* payload, int64_t min_payload, size_t n,
                      uint32_t* out) {
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return CollectIndicesAvx2(from_client, want, payload, min_payload, n,
                                out);
    case Backend::kSse2:
      return CollectIndicesSse2(from_client, want, payload, min_payload, n,
                                out);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return CollectIndicesNeon(from_client, want, payload, min_payload, n,
                                out);
#endif
    default:
      return CollectIndicesScalar(from_client, want, payload, min_payload, n,
                                  out);
  }
}

int64_t MaxTsInWindow(const int64_t* ts, const uint8_t* mask, size_t n,
                      int64_t begin, int64_t end) {
  if (end < 0) {
    end = INT64_MAX;  // "no upper bound" per the estimator convention
  }
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return MaxTsInWindowAvx2(ts, mask, n, begin, end);
    case Backend::kSse2:
      return MaxTsInWindowSse2(ts, mask, n, begin, end);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return MaxTsInWindowNeon(ts, mask, n, begin, end);
#endif
    default:
      return MaxTsInWindowScalar(ts, mask, n, begin, end);
  }
}

size_t CountRuns(const uint32_t* ids, size_t n) {
  switch (ActiveBackend()) {
#if defined(CSI_SIMD_X86)
    case Backend::kAvx2:
      return CountRunsAvx2(ids, n);
    case Backend::kSse2:
      return CountRunsSse2(ids, n);
#endif
#if defined(CSI_SIMD_NEON)
    case Backend::kNeon:
      return CountRunsNeon(ids, n);
#endif
    default:
      return CountRunsScalar(ids, n);
  }
}

}  // namespace csi::simd
