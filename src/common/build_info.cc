#include "src/common/build_info.h"

#include <cstdlib>
#include <string>

#include "src/common/simd.h"

namespace csi {

namespace {

// Mirrors infer::GroupCandidateCache::EnvForcesOff(); duplicated here so
// csi_common does not depend on csi_core.
bool CandidateCacheEnvOff() {
  const char* env = std::getenv("CSI_CANDIDATE_CACHE");
  if (env == nullptr) {
    return false;
  }
  const std::string value(env);
  return value == "off" || value == "OFF" || value == "0" || value == "none";
}

}  // namespace

telemetry::Labels BuildInfoLabels() {
  return {
      {"candidate_cache_default", CandidateCacheEnvOff() ? "off" : "on"},
      // Mirrors capture::kPacketLayoutVersion (packet_columns.h); duplicated
      // here so csi_common does not depend on csi_capture.
      {"packet_layout", "soa-v1"},
      {"simd",
#if defined(CSI_SIMD_DISABLED)
       "off"
#else
       "on"
#endif
      },
      {"simd_backend", simd::BackendName(simd::ActiveBackend())},
      {"telemetry",
#if defined(CSI_TELEMETRY_DISABLED)
       "off"
#else
       "on"
#endif
      },
      {"tracing",
#if defined(CSI_TRACING_DISABLED)
       "off"
#else
       "on"
#endif
      },
  };
}

void RecordBuildInfoMetric() {
  telemetry::MetricsRegistry::Global()
      .GetGauge("csi_build_info", BuildInfoLabels())
      ->Set(1.0);
}

}  // namespace csi
