// Plain-text table rendering for benchmark / experiment output.
//
// The benchmark binaries reproduce tables and figures from the paper; this
// helper keeps their console output aligned and uniform.

#ifndef CSI_SRC_COMMON_TABLE_H_
#define CSI_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace csi {

class TextTable {
 public:
  // Sets the header row. Column count is fixed by the header.
  void SetHeader(std::vector<std::string> header);

  // Appends a data row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> row);

  // Renders the table with column-aligned cells and a separator under the
  // header.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimal places.
std::string FormatDouble(double v, int decimals);

// Formats a byte count with a human-readable suffix (e.g. "1.5 MB").
std::string FormatBytes(double bytes);

}  // namespace csi

#endif  // CSI_SRC_COMMON_TABLE_H_
