#include "src/common/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace csi::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

// Numbers in exports must be deterministic across platforms for golden
// tests: integral values print as integers, everything else as shortest %g
// with enough digits to round-trip float-ish precision.
std::string FormatNumber(double v) {
  char buffer[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  }
  return buffer;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"" + JsonEscape(labels[i].first) + "\":\"" + JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// `{stage="path_search"}` — empty string when there are no labels.
std::string PromLabels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first + "=\"" + PromEscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// Same, but with room for an extra trailing label (the histogram `le`).
std::string PromLabelsWith(const Labels& labels, const std::string& extra_key,
                           const std::string& extra_value) {
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    out += key + "=\"" + PromEscapeLabelValue(value) + "\",";
  }
  out += extra_key + "=\"" + PromEscapeLabelValue(extra_value) + "\"}";
  return out;
}

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// Prometheus text-exposition label values escape exactly backslash, double
// quote and newline (https://prometheus.io/docs/instrumenting/exposition_formats/).
std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool IsValidPrometheusMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head_ok(name[0])) {
    return false;
  }
  for (size_t i = 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!head_ok(c) && !(c >= '0' && c <= '9')) {
      return false;
    }
  }
  return true;
}

bool IsValidPrometheusLabelName(const std::string& name) {
  if (name.empty() || (name.size() >= 2 && name[0] == '_' && name[1] == '_')) {
    return false;  // "__" prefix is reserved for internal labels
  }
  auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head_ok(name[0])) {
    return false;
  }
  for (size_t i = 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!head_ok(c) && !(c >= '0' && c <= '9')) {
      return false;
    }
  }
  return true;
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

int ThreadStripe() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned stripe =
      next.fetch_add(1, std::memory_order_relaxed) % static_cast<unsigned>(kStripes);
  return static_cast<int>(stripe);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& stripe : stripes_) {
    stripe.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), stripes_(kStripes) {
  for (auto& stripe : stripes_) {
    stripe.buckets = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      stripe.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  if (!Enabled()) {
    return;
  }
  // lower_bound: first bound >= value, so a value equal to a bound lands in
  // that bound's bucket (Prometheus `le` buckets are inclusive upper bounds).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  Stripe& stripe = stripes_[static_cast<size_t>(ThreadStripe())];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(stripe.sum, value);
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& stripe : stripes_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      total += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& stripe : stripes_) {
    total += stripe.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1, 0);
  for (const auto& stripe : stripes_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& stripe : stripes_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      stripe.buckets[b].store(0, std::memory_order_relaxed);
    }
    stripe.sum.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& DurationBuckets() {
  static const std::vector<double> buckets = {1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3,
                                              0.01, 0.05, 0.1,  0.5,  1.0,  5.0,
                                              10.0, 60.0};
  return buckets;
}

const std::vector<double>& CountBuckets() {
  static const std::vector<double> buckets = {0,    1,    2,    5,     10,    25,   50,
                                              100,  250,  500,  1000,  2500,  5000,
                                              10000, 50000, 100000};
  return buckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  const Key key{name, SortedLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::unique_ptr<Counter>(new Counter())).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  const Key key{name, SortedLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds,
                                         const Labels& labels) {
  const Key key{name, SortedLabels(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(key, std::unique_ptr<Histogram>(new Histogram(bounds))).first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, counter] : counters_) {
    snapshot.counters.push_back(CounterSnapshot{key.first, key.second, counter->Value()});
  }
  for (const auto& [key, gauge] : gauges_) {
    snapshot.gauges.push_back(GaugeSnapshot{key.first, key.second, gauge->Value()});
  }
  for (const auto& [key, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = key.first;
    h.labels = key.second;
    h.bounds = histogram->bounds();
    const std::vector<int64_t> per_bucket = histogram->BucketCounts();
    h.cumulative.resize(per_bucket.size());
    int64_t running = 0;
    for (size_t b = 0; b < per_bucket.size(); ++b) {
      running += per_bucket[b];
      h.cumulative[b] = running;
    }
    h.count = running;
    h.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [key, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [key, histogram] : histograms_) {
    histogram->Reset();
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": [";
  for (size_t i = 0; i < counters.size(); ++i) {
    const CounterSnapshot& c = counters[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"name\":\"" + JsonEscape(c.name) + "\",\"labels\":" + JsonLabels(c.labels) +
           ",\"value\":" + FormatNumber(static_cast<double>(c.value)) + "}";
  }
  out += counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (size_t i = 0; i < gauges.size(); ++i) {
    const GaugeSnapshot& g = gauges[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"name\":\"" + JsonEscape(g.name) + "\",\"labels\":" + JsonLabels(g.labels) +
           ",\"value\":" + FormatNumber(g.value) + "}";
  }
  out += gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"name\":\"" + JsonEscape(h.name) + "\",\"labels\":" + JsonLabels(h.labels) +
           ",\"count\":" + FormatNumber(static_cast<double>(h.count)) +
           ",\"sum\":" + FormatNumber(h.sum) + ",\"buckets\":[";
    for (size_t b = 0; b < h.cumulative.size(); ++b) {
      if (b > 0) {
        out += ",";
      }
      const std::string le =
          b < h.bounds.size() ? FormatNumber(h.bounds[b]) : std::string("\"+Inf\"");
      out += "{\"le\":" + le +
             ",\"count\":" + FormatNumber(static_cast<double>(h.cumulative[b])) + "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + PromLabels(c.labels) + " " +
           FormatNumber(static_cast<double>(c.value)) + "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + PromLabels(g.labels) + " " + FormatNumber(g.value) + "\n";
  }
  std::string last_histogram_name;
  for (const HistogramSnapshot& h : histograms) {
    // One TYPE line per metric family (label variants share it).
    if (h.name != last_histogram_name) {
      out += "# TYPE " + h.name + " histogram\n";
      last_histogram_name = h.name;
    }
    for (size_t b = 0; b < h.cumulative.size(); ++b) {
      const std::string le = b < h.bounds.size() ? FormatNumber(h.bounds[b]) : "+Inf";
      out += h.name + "_bucket" + PromLabelsWith(h.labels, "le", le) + " " +
             FormatNumber(static_cast<double>(h.cumulative[b])) + "\n";
    }
    out += h.name + "_sum" + PromLabels(h.labels) + " " + FormatNumber(h.sum) + "\n";
    out += h.name + "_count" + PromLabels(h.labels) + " " +
           FormatNumber(static_cast<double>(h.count)) + "\n";
  }
  return out;
}

}  // namespace csi::telemetry
