// Monotonic bump-pointer arena with a std-compatible allocator adapter.
//
// The group search allocates thousands of short-lived candidate and scratch
// vectors per query; a monotonic arena turns those into pointer bumps and
// reclaims everything with one Reset() between queries (the largest block is
// retained, so a steady-state searcher stops touching the heap entirely).
//
// Threading: an arena is single-threaded by design. Share one per searcher /
// per worker, never across concurrent writers — vectors handed to worker
// threads must use the default allocator.

#ifndef CSI_SRC_COMMON_ARENA_H_
#define CSI_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace csi {

class MonotonicArena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit MonotonicArena(size_t min_block_bytes = kDefaultBlockBytes)
      : min_block_bytes_(min_block_bytes == 0 ? kDefaultBlockBytes
                                              : min_block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (a power of two). Never
  // returns null; grows by whole blocks when the current block is full.
  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) {
      bytes = 1;
    }
    size_t offset = AlignUp(used_, align);
    if (blocks_.empty() || offset + bytes > blocks_.back().size) {
      AddBlock(bytes + align);
      offset = AlignUp(used_, align);
    }
    std::byte* p = blocks_.back().data.get() + offset;
    used_ = offset + bytes;
    allocated_since_reset_ += bytes;
    if (allocated_since_reset_ > peak_bytes_) {
      peak_bytes_ = allocated_since_reset_;
    }
    return p;
  }

  // Invalidates every pointer handed out so far. The largest block is kept,
  // the rest are released — a steady-state caller reaches a fixed footprint
  // and never allocates again.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t largest = 0;
      for (size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[largest].size) {
          largest = i;
        }
      }
      std::swap(blocks_[0], blocks_[largest]);
      blocks_.resize(1);
    }
    used_ = 0;
    allocated_since_reset_ = 0;
    ++resets_;
  }

  // Bytes handed out since the last Reset().
  size_t bytes_allocated() const { return allocated_since_reset_; }
  // High-water mark of bytes_allocated() over the arena's lifetime.
  size_t peak_bytes() const { return peak_bytes_; }
  size_t resets() const { return resets_; }
  size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  static size_t AlignUp(size_t value, size_t align) {
    return (value + align - 1) & ~(align - 1);
  }

  void AddBlock(size_t at_least) {
    // Double the footprint each growth so a query with unexpectedly large
    // working set costs O(log n) blocks, not O(n).
    size_t size = min_block_bytes_;
    if (!blocks_.empty()) {
      size = blocks_.back().size * 2;
    }
    if (size < at_least) {
      size = at_least;
    }
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    used_ = 0;
  }

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t used_ = 0;  // bytes consumed in blocks_.back()
  size_t allocated_since_reset_ = 0;
  size_t peak_bytes_ = 0;
  size_t resets_ = 0;
};

// std::allocator-compatible adapter over a MonotonicArena. deallocate is a
// no-op: memory is reclaimed only by MonotonicArena::Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  MonotonicArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  MonotonicArena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace csi

#endif  // CSI_SRC_COMMON_ARENA_H_
