// Small statistics helpers shared by the encoder, the player's throughput
// estimator, and the experiment harness.

#ifndef CSI_SRC_COMMON_STATS_H_
#define CSI_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace csi {

// Accumulates count / mean / variance / min / max in one pass (Welford).
//
// min()/max() track the first sample onward — an all-positive stream never
// reports min 0, an all-negative stream never reports max 0. With no samples
// every accessor returns 0.0 by convention (locked in by common_test).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Returns the p-th percentile (p in [0, 100]) of `values` using linear
// interpolation between order statistics. Returns 0 for empty input. The input
// is copied, not mutated.
double Percentile(std::vector<double> values, double p);

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

// Exponentially-weighted moving average with a configurable smoothing factor.
class Ewma {
 public:
  // `alpha` is the weight of each new sample, in (0, 1].
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double sample);
  bool has_value() const { return has_value_; }
  double value() const { return value_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

}  // namespace csi

#endif  // CSI_SRC_COMMON_STATS_H_
