// Build/runtime provenance for metrics artifacts: which SIMD backend the
// process dispatched to, which instrumentation layers were compiled in, and
// whether the environment forces the candidate cache off. Exported as the
// conventional `csi_build_info` gauge (constant value 1, facts in labels) so
// every METRICS_*.json / .prom snapshot records how it was produced.

#ifndef CSI_SRC_COMMON_BUILD_INFO_H_
#define CSI_SRC_COMMON_BUILD_INFO_H_

#include "src/common/telemetry.h"

namespace csi {

// Label set describing this binary and process:
//   simd_backend          runtime-dispatched kernel ("scalar"/"sse2"/...)
//   telemetry / simd / tracing
//                         "on" unless compiled out with -DCSI_*=OFF
//   candidate_cache_default
//                         "off" iff CSI_CANDIDATE_CACHE in the environment
//                         forces the cache off, else "on"
telemetry::Labels BuildInfoLabels();

// Registers/updates `csi_build_info{...} 1` in the global registry. Called by
// the tools' metrics-snapshot path; idempotent.
void RecordBuildInfoMetric();

}  // namespace csi

#endif  // CSI_SRC_COMMON_BUILD_INFO_H_
