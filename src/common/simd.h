// SIMD size-window scans for the flat chunk-size index.
//
// The hot query of the inference engine — "how many sizes in this sorted run
// fall below a bound" — reduces to counting compare-mask lanes. This header
// exposes portable entry points that dispatch at runtime to the widest lane
// width the CPU supports (AVX2 > SSE2 on x86-64, NEON on aarch64) with a
// scalar fallback that is always available.
//
// Dispatch contract:
//   - `ActiveBackend()` resolves once per process: the CSI_SIMD environment
//     variable ("off" / "scalar" / "0" / "none") forces the scalar path for
//     debugging; building with -DCSI_SIMD=OFF compiles the vector kernels out
//     entirely.
//   - `ForceBackend()` overrides the choice at runtime — the hook the
//     differential tests and microbenches use to compare scalar and SIMD
//     outputs on identical inputs.
//   - Every backend returns bit-identical results for every input; the
//     property-based differential test (tests/db_differential_test.cc) locks
//     this in.

#ifndef CSI_SRC_COMMON_SIMD_H_
#define CSI_SRC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace csi::simd {

enum class Backend { kScalar, kSse2, kAvx2, kNeon };

// Human-readable backend name ("scalar", "sse2", "avx2", "neon").
const char* BackendName(Backend backend);

// The backend every Count* call dispatches to. Resolved on first use from the
// build flags, CPU features, and the CSI_SIMD environment variable.
Backend ActiveBackend();

// True if `backend` can run on this build and CPU. kScalar always can.
bool BackendSupported(Backend backend);

// Overrides ActiveBackend() process-wide (test/bench hook). Returns false and
// changes nothing if the backend is not supported here.
bool ForceBackend(Backend backend);

// Number of values in data[0..n) strictly below `bound`. The data does not
// need to be sorted; on a sorted run this is exactly the lower_bound index.
size_t CountBelow(const int64_t* data, size_t n, int64_t bound);

// Number of values in data[0..n) at or below `bound`. On a sorted run this is
// exactly the upper_bound index.
size_t CountAtOrBelow(const int64_t* data, size_t n, int64_t bound);

}  // namespace csi::simd

#endif  // CSI_SRC_COMMON_SIMD_H_
