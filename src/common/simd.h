// SIMD kernels for the flat chunk-size index and the columnar cold path.
//
// Two families live here. The size-window scans back the hot database query —
// "how many sizes in this sorted run fall below a bound" — which reduces to
// counting compare-mask lanes. The cold-path column kernels back the
// structure-of-arrays capture layout (capture::PacketColumns): windowed
// payload sums, direction-masked scans, request-boundary index collection and
// flow-id run partitioning over parallel columns. All entry points dispatch
// at runtime to the widest lane width the CPU supports (AVX2 > SSE2 on
// x86-64, NEON on aarch64) with a scalar fallback that is always available.
//
// Dispatch contract:
//   - `ActiveBackend()` resolves once per process: the CSI_SIMD environment
//     variable ("off" / "scalar" / "0" / "none") forces the scalar path for
//     debugging; building with -DCSI_SIMD=OFF compiles the vector kernels out
//     entirely.
//   - `ForceBackend()` overrides the choice at runtime — the hook the
//     differential tests and microbenches use to compare scalar and SIMD
//     outputs on identical inputs.
//   - Every backend returns bit-identical results for every input; the
//     property-based differential test (tests/db_differential_test.cc) locks
//     this in.

#ifndef CSI_SRC_COMMON_SIMD_H_
#define CSI_SRC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace csi::simd {

enum class Backend { kScalar, kSse2, kAvx2, kNeon };

// Human-readable backend name ("scalar", "sse2", "avx2", "neon").
const char* BackendName(Backend backend);

// The backend every Count* call dispatches to. Resolved on first use from the
// build flags, CPU features, and the CSI_SIMD environment variable.
Backend ActiveBackend();

// True if `backend` can run on this build and CPU. kScalar always can.
bool BackendSupported(Backend backend);

// Overrides ActiveBackend() process-wide (test/bench hook). Returns false and
// changes nothing if the backend is not supported here.
bool ForceBackend(Backend backend);

// Number of values in data[0..n) strictly below `bound`. The data does not
// need to be sorted; on a sorted run this is exactly the lower_bound index.
size_t CountBelow(const int64_t* data, size_t n, int64_t bound);

// Number of values in data[0..n) at or below `bound`. On a sorted run this is
// exactly the upper_bound index.
size_t CountAtOrBelow(const int64_t* data, size_t n, int64_t bound);

// ---- Cold-path column kernels -------------------------------------------
//
// These operate on the parallel packet columns of capture::PacketColumns:
// int64 timestamp/payload columns, a uint8 direction column holding exactly
// 0 or 1 (1 = client→server), and a uint32 flow-id column. Time windows
// follow the estimator convention `ts > begin && ts <= end`, with `end < 0`
// meaning "no upper bound". Every backend returns bit-identical results.

// Sum of values[i] where ts[i] > begin and (end < 0 || ts[i] <= end).
int64_t SumInWindow(const int64_t* ts, const int64_t* values, size_t n,
                    int64_t begin, int64_t end);

// out[i] = from_client[i] ? 0 : max(payload[i] - header, 0). The QUIC
// effective-payload transform: header bytes stripped, uplink lanes zeroed.
void MaskedQuicPayload(const uint8_t* from_client, const int64_t* payload,
                       size_t n, int64_t header, int64_t* out);

// Sum of payload[i] where from_client[i] == want (want must be 0 or 1).
int64_t DirectionMaskedSum(const uint8_t* from_client, uint8_t want,
                           const int64_t* payload, size_t n);

// Writes the ascending indices i with from_client[i] == want and
// payload[i] >= min_payload into out[] (which must hold at least n entries);
// returns how many indices were written.
size_t CollectIndices(const uint8_t* from_client, uint8_t want,
                      const int64_t* payload, int64_t min_payload, size_t n,
                      uint32_t* out);

// Maximum ts[i] with mask[i] != 0 inside the window (ts[i] > begin and
// (end < 0 || ts[i] <= end)); INT64_MIN when no lane qualifies.
int64_t MaxTsInWindow(const int64_t* ts, const uint8_t* mask, size_t n,
                      int64_t begin, int64_t end);

// Number of maximal runs of equal adjacent values in ids[0..n); 0 for n == 0.
// Equals the flow count exactly when the capture is already flow-contiguous.
size_t CountRuns(const uint32_t* ids, size_t n);

}  // namespace csi::simd

#endif  // CSI_SRC_COMMON_SIMD_H_
