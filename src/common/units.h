// Fundamental units used throughout the CSI codebase.
//
// Simulated time is an integer count of microseconds since the start of the
// simulation (type `TimeUs`). Data sizes are byte counts (`Bytes`), and link
// rates are bits per second (`BitsPerSec`). Keeping these as distinct aliases
// (rather than raw int64_t everywhere) makes call sites self-documenting.

#ifndef CSI_SRC_COMMON_UNITS_H_
#define CSI_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace csi {

// Simulated time in microseconds.
using TimeUs = int64_t;

// Data size in bytes.
using Bytes = int64_t;

// Link / encoding rate in bits per second.
using BitsPerSec = double;

inline constexpr TimeUs kUsPerMs = 1'000;
inline constexpr TimeUs kUsPerSec = 1'000'000;

inline constexpr Bytes kKiB = 1'024;
inline constexpr Bytes kMiB = 1'024 * 1'024;
inline constexpr Bytes kKB = 1'000;
inline constexpr Bytes kMB = 1'000'000;

inline constexpr BitsPerSec kKbps = 1'000.0;
inline constexpr BitsPerSec kMbps = 1'000'000.0;

// Converts seconds (as a double) to simulated microseconds.
constexpr TimeUs SecondsToUs(double seconds) {
  return static_cast<TimeUs>(seconds * static_cast<double>(kUsPerSec));
}

// Converts simulated microseconds to seconds.
constexpr double UsToSeconds(TimeUs us) {
  return static_cast<double>(us) / static_cast<double>(kUsPerSec);
}

// Time needed to serialize `bytes` onto a link running at `rate` bits/sec.
constexpr TimeUs TransmissionTimeUs(Bytes bytes, BitsPerSec rate) {
  if (rate <= 0.0) {
    return 0;
  }
  return static_cast<TimeUs>(static_cast<double>(bytes) * 8.0 /
                             rate * static_cast<double>(kUsPerSec));
}

// Number of bytes a link at `rate` bits/sec delivers in `us` microseconds.
constexpr Bytes BytesInTime(BitsPerSec rate, TimeUs us) {
  return static_cast<Bytes>(rate * UsToSeconds(us) / 8.0);
}

}  // namespace csi

#endif  // CSI_SRC_COMMON_UNITS_H_
