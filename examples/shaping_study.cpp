// Traffic-shaping study (paper §7): evaluate token-bucket policies against a
// Hulu-like player using only encrypted traffic.
//
// A mobile operator wants an SD-quality shaping policy. For each candidate
// (rate r, bucket N) this example streams a session through the shaper,
// runs CSI on the captured encrypted packets, and reports the delivered QoE
// and data usage — the information needed to pick a policy.
//
// Run: ./build/examples/shaping_study

#include <cstdio>

#include "src/common/table.h"
#include "src/csi/inference.h"
#include "src/csi/qoe.h"
#include "src/testbed/experiment.h"

using namespace csi;

int main() {
  // Hulu-like service: 7 tracks, separate CBR audio, ~145 s buffer target.
  media::EncoderConfig encoder;
  encoder.ladder = media::GeometricLadder(7, 300 * kKbps, 5800 * kKbps);
  encoder.target_pasr = 1.35;
  encoder.audio_bitrates = {128 * kKbps};
  Rng rng(2024);
  const media::Manifest manifest =
      media::EncodeAsset("hulu-show", "cdn.hulu.example", 12 * 60 * kUsPerSec, encoder, rng);

  const infer::InferenceEngine engine(&manifest, [] {
    infer::InferenceConfig config;
    config.design = infer::DesignType::kSH;
    return config;
  }());

  std::printf("Token-bucket policy study for a Hulu-like service (QoE inferred by CSI)\n\n");
  TextTable table;
  table.SetHeader({"policy", "avg kbps", "SD+ time %", "HD time %", "stalls", "switches",
                   "data / 10 min"});

  const int sd_track = 3;  // T4+ counts as "good SD or better"
  const int hd_track = 5;  // T6+ counts as HD
  uint64_t seed = 77;
  for (double r : {0.8, 1.5, 2.5}) {
    for (Bytes n : {50 * kKB, 2 * kMB}) {
      testbed::SessionConfig session;
      session.design = infer::DesignType::kSH;
      session.manifest = &manifest;
      session.downlink = nettrace::ConditionB2();  // 10 Mbps with 1 Mbps dips
      session.adaptation = "hulu-like";
      session.player.max_buffer = 145 * kUsPerSec;
      session.duration = 10 * 60 * kUsPerSec;
      session.seed = ++seed;
      net::TokenBucketConfig shaper;
      shaper.rate = r * kMbps;
      shaper.bucket_size = n;
      session.shaper = shaper;

      const auto result = RunStreamingSession(session);
      const auto inference = engine.Analyze(result.capture);
      if (inference.sequences.empty()) {
        continue;
      }
      const infer::QoeReport qoe = infer::AnalyzeQoe(inference.sequences[0], manifest);
      double sd = 0;
      double hd = 0;
      for (int t = 0; t < manifest.num_video_tracks(); ++t) {
        if (t >= sd_track) {
          sd += qoe.track_time_fraction[static_cast<size_t>(t)];
        }
        if (t >= hd_track) {
          hd += qoe.track_time_fraction[static_cast<size_t>(t)];
        }
      }
      table.AddRow({"r=" + FormatDouble(r, 1) + "Mbps N=" + FormatBytes(static_cast<double>(n)),
                    FormatDouble(qoe.avg_bitrate / 1000.0, 0), FormatDouble(100 * sd, 1),
                    FormatDouble(100 * hd, 1), std::to_string(qoe.stall_count),
                    std::to_string(qoe.track_switches),
                    FormatBytes(static_cast<double>(qoe.data_usage))});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading the table like the paper's §7: raise r for more quality at more\n"
      "data; a big bucket N lets the player burst to high tracks but causes\n"
      "quality oscillation. A policy around r=1.5 Mbps with a small bucket keeps\n"
      "the player on stable SD tracks at a fraction of the unshaped data usage.\n");
  return 0;
}
