// Quickstart: the complete CSI workflow in one file.
//
// 1. Encode a VBR test asset (standing in for a commercial service's
//    encoding ladder) and build the chunk-size database from its manifest.
// 2. Stream it with an ABR player over an emulated cellular link while
//    capturing the encrypted traffic at the gateway.
// 3. Run the CSI inference on the capture and compare the recovered chunk
//    sequence against the player's ground-truth log.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/csi/inference.h"
#include "src/csi/qoe.h"
#include "src/testbed/experiment.h"

using namespace csi;

int main() {
  // --- 1. The test asset: 6 video tracks + a CBR audio track, VBR with
  // PASR 1.6, 5-second chunks, 10 minutes of content. ---
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(infer::DesignType::kSH, /*genre_seed=*/1,
                                  /*duration=*/10 * 60 * kUsPerSec);
  std::printf("asset: %d video tracks, %d audio tracks, %d chunks/track\n",
              manifest.num_video_tracks(), manifest.num_audio_tracks(),
              manifest.num_positions());

  // --- 2. Stream it over an emulated LTE link (design SH: separate audio
  // over HTTPS), capturing encrypted packets. ---
  Rng rng(42);
  testbed::SessionConfig session;
  session.design = infer::DesignType::kSH;
  session.manifest = &manifest;
  session.downlink = nettrace::CellularTrace("lte", 6 * kMbps, 0.4,
                                             10 * 60 * kUsPerSec, 2 * kUsPerSec, rng);
  session.adaptation = "hybrid";
  session.duration = 10 * 60 * kUsPerSec;
  session.seed = 42;
  const testbed::SessionResult result = testbed::RunStreamingSession(session);
  std::printf("session: %zu packets captured, %zu chunks downloaded, %.1f MB\n",
              result.capture.size(), result.downloads.size(),
              static_cast<double>(result.total_bytes) / 1e6);

  // --- 3. Infer the chunk sequence from the encrypted capture. ---
  infer::InferenceConfig config;
  config.design = infer::DesignType::kSH;
  const infer::InferenceEngine engine(&manifest, config);
  const infer::InferenceResult inference = engine.Analyze(result.capture);
  const testbed::AccuracyResult accuracy =
      testbed::ScoreInference(inference, result.downloads);
  std::printf("inference: %d candidate sequence(s); accuracy best=%.1f%% worst=%.1f%%\n",
              accuracy.num_sequences, 100.0 * accuracy.best, 100.0 * accuracy.worst);

  // --- 4. QoE metrics from the inferred sequence. ---
  if (!inference.sequences.empty()) {
    const infer::QoeReport qoe = infer::AnalyzeQoe(inference.sequences[0], manifest);
    std::printf("qoe: avg bitrate %.0f kbps, %d track switches, %d stalls, data %.1f MB\n",
                qoe.avg_bitrate / 1000.0, qoe.track_switches, qoe.stall_count,
                static_cast<double>(qoe.data_usage) / 1e6);
  }
  return accuracy.best > 0.9 ? 0 : 1;
}
