// Offline pcap workflow: the shape of a real CSI deployment.
//
// A tester captures encrypted traffic with tcpdump during a streaming test
// and analyzes the pcap offline. This example produces such a pcap from a
// simulated session, then runs the analysis side exactly as a standalone
// tool would: load pcap -> load manifest (the §4.1 metadata) -> infer ->
// report QoE. It also reports the feasibility statistics CSI would check
// before a measurement campaign (is this encoding fingerprintable?).
//
// Run: ./build/examples/pcap_workflow [output.pcap]

#include <cstdio>
#include <string>

#include "src/capture/pcap_io.h"
#include "src/common/table.h"
#include "src/csi/inference.h"
#include "src/csi/qoe.h"
#include "src/csi/uniqueness.h"
#include "src/testbed/experiment.h"

using namespace csi;

int main(int argc, char** argv) {
  const std::string pcap_path = argc > 1 ? argv[1] : "/tmp/csi_session.pcap";

  // ---- Capture side (in deployment: tcpdump on the gateway) ----
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(infer::DesignType::kSH, 4, 8 * 60 * kUsPerSec);
  Rng rng(7);
  testbed::SessionConfig session;
  session.design = infer::DesignType::kSH;
  session.manifest = &manifest;
  session.downlink =
      nettrace::CellularTrace("lte", 5 * kMbps, 0.5, 8 * 60 * kUsPerSec, 2 * kUsPerSec, rng);
  session.duration = 8 * 60 * kUsPerSec;
  session.seed = 7;
  const auto result = RunStreamingSession(session);
  capture::WritePcap(pcap_path, result.capture);
  const std::string manifest_text = manifest.Serialize();
  std::printf("captured %zu packets -> %s\n", result.capture.size(), pcap_path.c_str());
  std::printf("manifest: %zu bytes of metadata (collected once per test video, §4.1)\n\n",
              manifest_text.size());

  // ---- Analysis side (a standalone tool: only the pcap + the manifest) ----
  const media::Manifest loaded = media::Manifest::Parse(manifest_text);
  const capture::CaptureTrace trace = capture::ReadPcap(pcap_path);

  // Pre-flight: is this encoding fingerprintable at the protocol's k?
  Rng feas_rng(1);
  std::printf("fingerprint feasibility of this encoding (k = 1%%):\n");
  std::printf("  unique single chunks: %.2f%%  (sizes alone cannot identify chunks)\n",
              100 * infer::UniqueSingleChunkFraction(loaded, 0.01));
  std::printf("  unique 3-chunk runs:  %.1f%%\n",
              100 * infer::UniqueSequenceFraction(loaded, 3, 0.01, 1500, feas_rng));
  std::printf("  unique 6-chunk runs:  %.1f%%\n\n",
              100 * infer::UniqueSequenceFraction(loaded, 6, 0.01, 1500, feas_rng));

  infer::InferenceConfig config;
  config.design = infer::DesignType::kSH;
  const infer::InferenceEngine engine(&loaded, config);
  const auto inference = engine.Analyze(trace);
  std::printf("inference: %d candidate sequence(s)%s\n", static_cast<int>(inference.sequences.size()),
              inference.truncated ? " (truncated)" : "");
  if (inference.sequences.empty()) {
    return 1;
  }
  const infer::QoeReport qoe = infer::AnalyzeQoe(inference.sequences[0], loaded);
  TextTable report;
  report.SetHeader({"metric", "value"});
  report.AddRow({"avg delivered bitrate", FormatDouble(qoe.avg_bitrate / 1000.0, 0) + " kbps"});
  report.AddRow({"startup delay", FormatDouble(UsToSeconds(qoe.startup_delay), 2) + " s"});
  report.AddRow({"stalls", std::to_string(qoe.stall_count)});
  report.AddRow({"total stall time", FormatDouble(UsToSeconds(qoe.total_stall), 2) + " s"});
  report.AddRow({"track switches", std::to_string(qoe.track_switches)});
  report.AddRow({"data usage", FormatBytes(static_cast<double>(qoe.data_usage))});
  std::printf("%s\n", report.Render().c_str());

  // Cross-check against the instrumented player (not available in a real
  // deployment — that is the point of CSI).
  const auto accuracy = testbed::ScoreInference(inference, result.downloads);
  std::printf("accuracy vs ground truth: best %.1f%%\n", 100 * accuracy.best);
  return accuracy.best > 0.9 ? 0 : 1;
}
