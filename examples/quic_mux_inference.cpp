// QUIC transport-multiplexing walkthrough (design SQ, paper §5.3.2).
//
// Streams a separate-audio asset over QUIC — audio and video chunks
// multiplexed on one connection — then walks through CSI's pipeline step by
// step: request detection, SP1/SP2 traffic splitting, per-group candidate
// search, and the cross-group sequence chain.
//
// Run: ./build/examples/quic_mux_inference

#include <cstdio>

#include "src/common/table.h"
#include "src/csi/flow_classifier.h"
#include "src/csi/group_search.h"
#include "src/csi/inference.h"
#include "src/csi/splitter.h"
#include "src/testbed/experiment.h"

using namespace csi;

int main() {
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(infer::DesignType::kSQ, 3, 8 * 60 * kUsPerSec);
  Rng rng(99);
  testbed::SessionConfig session;
  session.design = infer::DesignType::kSQ;
  session.manifest = &manifest;
  session.downlink =
      nettrace::CellularTrace("lte", 7 * kMbps, 0.45, 8 * 60 * kUsPerSec, 2 * kUsPerSec, rng);
  session.duration = 8 * 60 * kUsPerSec;
  session.seed = 99;
  const auto result = RunStreamingSession(session);
  std::printf("session: %zu packets, %zu chunk downloads (video+audio multiplexed)\n\n",
              result.capture.size(), result.downloads.size());

  // Step 1.1 — flow classification by SNI.
  const auto flows = infer::ClassifyMediaFlows(result.capture, manifest.host);
  std::printf("step 1.1: %zu media flow(s); SNI=\"%s\"\n", flows.size(),
              flows.empty() ? "?" : flows[0].sni.c_str());
  if (flows.empty()) {
    return 1;
  }

  // Step 1.2 — request detection (80-byte heuristic) and SP1/SP2 splitting.
  const auto requests = infer::DetectRequests(flows[0].packets, /*quic=*/true);
  const auto groups = infer::SplitIntoGroups(flows[0].packets);
  std::printf("step 1.2: %zu uplink requests -> %zu traffic groups\n", requests.size(),
              groups.size());
  TextTable gt;
  gt.SetHeader({"group", "requests", "estimated bytes", "window (s)"});
  for (size_t g = 0; g < groups.size() && g < 10; ++g) {
    gt.AddRow({std::to_string(g), std::to_string(groups[g].num_requests()),
               FormatBytes(static_cast<double>(groups[g].estimated_total)),
               FormatDouble(UsToSeconds(groups[g].start_time), 1) + " - " +
                   FormatDouble(UsToSeconds(groups[g].end_time), 1)});
  }
  std::printf("%s(first 10 groups)\n\n", gt.Render().c_str());

  // Step 2.1 — per-group candidate search (shown for one mid-session group,
  // conditioned on the chained start index as the engine does internally).
  const infer::ChunkDatabase db(&manifest);
  infer::GroupSearchConfig gconfig;
  gconfig.other_object_sizes = {manifest.SerializedSize() + 180};
  if (groups.size() > 4) {
    bool truncated = false;
    const auto candidates = infer::EnumerateGroupCandidates(
        groups[4], db, gconfig, {}, 0, db.num_positions() - 1, &truncated);
    std::printf("step 2.1: group 4 has %zu candidate explanations (unconditioned)\n",
                candidates.size());
    for (size_t i = 0; i < candidates.size() && i < 3; ++i) {
      const auto& c = candidates[i];
      std::printf("  #%zu: video", i);
      if (c.video_start < 0) {
        std::printf(" none");
      } else {
        for (size_t j = 0; j < c.tracks.size(); ++j) {
          std::printf(" (T%d,i%d)", c.tracks[j] + 1, c.video_start + static_cast<int>(j));
        }
      }
      std::printf(" + %d audio + %d other\n", c.audio_count, c.other_count);
    }
  }

  // Step 2.2 — full chained inference and scoring.
  infer::InferenceConfig config;
  config.design = infer::DesignType::kSQ;
  const infer::InferenceEngine engine(&manifest, config);
  const auto inference = engine.Analyze(result.capture);
  const auto accuracy = testbed::ScoreInference(inference, result.downloads);
  std::printf("\nstep 2.2: %d candidate sequence(s); best accuracy %.1f%%, worst %.1f%%\n",
              accuracy.num_sequences, 100 * accuracy.best, 100 * accuracy.worst);
  std::printf("ground truth recovered: %s\n", accuracy.found_ground_truth ? "yes" : "no");
  return accuracy.best > 0.9 ? 0 : 1;
}
