#include "tools/cli_options.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/common/build_info.h"
#include "src/common/telemetry.h"
#include "src/common/tracing.h"

namespace csi::tools {

void FlagParser::AddString(const std::string& name, std::string* value) {
  flags_[name] = Flag{Kind::kString, value, {}};
}

void FlagParser::AddInt(const std::string& name, int* value) {
  flags_[name] = Flag{Kind::kInt, value, {}};
}

void FlagParser::AddBool(const std::string& name, bool* value) {
  flags_[name] = Flag{Kind::kBool, value, {}};
}

void FlagParser::AddKeyedString(const std::string& name, const std::string& key,
                                std::string* value) {
  Flag& flag = flags_[name];
  flag.kind = Kind::kKeyed;
  flag.keyed[key] = Flag{Kind::kString, value, {}};
}

void FlagParser::AddKeyedInt(const std::string& name, const std::string& key, int* value) {
  Flag& flag = flags_[name];
  flag.kind = Kind::kKeyed;
  flag.keyed[key] = Flag{Kind::kInt, value, {}};
}

namespace {

bool ParseIntValue(const std::string& text, int* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() ||
      value < std::numeric_limits<int>::min() || value > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

bool FlagParser::Parse(int argc, const char* const* argv,
                       std::vector<std::string>* positional, std::string* error) {
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      if (!arg.empty() && arg[0] == '-') {
        if (error != nullptr) {
          *error = "unknown argument: " + arg;
        }
        return false;
      }
      if (positional == nullptr) {
        if (error != nullptr) {
          *error = "unexpected argument: " + arg;
        }
        return false;
      }
      positional->push_back(arg);
      continue;
    }
    Flag& flag = it->second;
    if (flag.kind == Kind::kBool) {
      *static_cast<bool*>(flag.target) = true;
      continue;
    }
    if (i + 1 >= argc) {
      if (error != nullptr) {
        *error = "missing value for " + arg;
      }
      return false;
    }
    const std::string value = argv[++i];
    if (flag.kind == Kind::kKeyed) {
      const size_t eq = value.find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) {
          *error = "expected KEY=VALUE for " + arg + ": " + value;
        }
        return false;
      }
      const std::string key = value.substr(0, eq);
      const std::string rest = value.substr(eq + 1);
      const auto sub = flag.keyed.find(key);
      if (sub == flag.keyed.end()) {
        if (error != nullptr) {
          *error = "unknown key for " + arg + ": " + key;
        }
        return false;
      }
      if (sub->second.kind == Kind::kString) {
        *static_cast<std::string*>(sub->second.target) = rest;
      } else if (!ParseIntValue(rest, static_cast<int*>(sub->second.target))) {
        if (error != nullptr) {
          *error = "invalid integer for " + arg + " " + key + ": " + rest;
        }
        return false;
      }
      continue;
    }
    if (flag.kind == Kind::kString) {
      *static_cast<std::string*>(flag.target) = value;
    } else {
      if (!ParseIntValue(value, static_cast<int*>(flag.target))) {
        if (error != nullptr) {
          *error = "invalid integer for " + arg + ": " + value;
        }
        return false;
      }
    }
  }
  return true;
}

void CommonOptions::Register(FlagParser* parser) {
  parser->AddString("--manifest", &manifest_path);
  parser->AddString("--design", &design_name);
  parser->AddString("--host", &host_suffix);
  parser->AddString("--metrics-out", &metrics_out);
  parser->AddString("--metrics-format", &metrics_format);
  parser->AddInt("--db-build-threads", &db_build_threads);
  // The unified per-tier cache flags and their legacy aliases write the same
  // storage, so either spelling (or a mix) works and the last one wins.
  parser->AddKeyedString("--cache", "prefix", &prefix_cache);
  parser->AddKeyedString("--cache", "candidate", &candidate_cache);
  parser->AddKeyedString("--cache", "result", &result_cache);
  parser->AddKeyedInt("--cache-mb", "prefix", &prefix_cache_mb);
  parser->AddKeyedInt("--cache-mb", "candidate", &candidate_cache_mb);
  parser->AddKeyedInt("--cache-mb", "result", &result_cache_mb);
  parser->AddInt("--candidate-cache-mb", &candidate_cache_mb);
  parser->AddString("--candidate-cache", &candidate_cache);
  parser->AddInt("--prefix-cache-mb", &prefix_cache_mb);
  parser->AddString("--prefix-cache", &prefix_cache);
  parser->AddString("--trace-out", &trace_out);
  parser->AddString("--trace-mode", &trace_mode);
  parser->AddString("--audit-out", &audit_out);
}

bool CommonOptions::Validate(std::string* error) const {
  if (manifest_path.empty() || design_name.empty()) {
    if (error != nullptr) {
      *error = "--manifest and --design are required";
    }
    return false;
  }
  infer::DesignType parsed;
  if (!ParseDesignName(design_name, &parsed)) {
    if (error != nullptr) {
      *error = "unknown design type (expected CH, SH, CQ or SQ)";
    }
    return false;
  }
  if (metrics_format != "json" && metrics_format != "prom") {
    if (error != nullptr) {
      *error = "--metrics-format must be json or prom";
    }
    return false;
  }
  if (db_build_threads < 0) {
    if (error != nullptr) {
      *error = "--db-build-threads must be >= 0";
    }
    return false;
  }
  if (candidate_cache_mb < 0) {
    if (error != nullptr) {
      *error = "--candidate-cache-mb must be >= 0";
    }
    return false;
  }
  if (candidate_cache != "on" && candidate_cache != "off") {
    if (error != nullptr) {
      *error = "--candidate-cache must be on or off";
    }
    return false;
  }
  if (prefix_cache_mb < 0) {
    if (error != nullptr) {
      *error = "--prefix-cache-mb must be >= 0";
    }
    return false;
  }
  if (prefix_cache != "on" && prefix_cache != "off") {
    if (error != nullptr) {
      *error = "--prefix-cache must be on or off";
    }
    return false;
  }
  if (result_cache_mb < 0) {
    if (error != nullptr) {
      *error = "--cache-mb result must be >= 0";
    }
    return false;
  }
  if (result_cache != "on" && result_cache != "off") {
    if (error != nullptr) {
      *error = "--cache result must be on or off";
    }
    return false;
  }
  if (trace_mode != "full" && trace_mode != "flight") {
    if (error != nullptr) {
      *error = "--trace-mode must be full or flight";
    }
    return false;
  }
  return true;
}

int CommonOptions::candidate_cache_budget_mb() const {
  return candidate_cache == "off" ? 0 : candidate_cache_mb;
}

int CommonOptions::prefix_cache_budget_mb() const {
  return prefix_cache == "off" ? 0 : prefix_cache_mb;
}

int CommonOptions::result_cache_budget_mb() const {
  return result_cache == "off" ? 0 : result_cache_mb;
}

infer::DesignType CommonOptions::design() const {
  infer::DesignType parsed = infer::DesignType::kCH;
  ParseDesignName(design_name, &parsed);
  return parsed;
}

bool ParseDesignName(const std::string& name, infer::DesignType* out) {
  if (name == "CH") {
    *out = infer::DesignType::kCH;
  } else if (name == "SH") {
    *out = infer::DesignType::kSH;
  } else if (name == "CQ") {
    *out = infer::DesignType::kCQ;
  } else if (name == "SQ") {
    *out = infer::DesignType::kSQ;
  } else {
    return false;
  }
  return true;
}

bool ReadFileToString(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteMetricsSnapshot(const std::string& path, const std::string& format,
                          std::string* error) {
  RecordBuildInfoMetric();
  const telemetry::MetricsSnapshot snapshot = telemetry::MetricsRegistry::Global().Snapshot();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot write metrics to " + path;
    }
    return false;
  }
  out << (format == "prom" ? snapshot.ToPrometheus() : snapshot.ToJson());
  return true;
}

void StartTraceSessionIfRequested(const CommonOptions& options) {
  if (options.trace_out.empty()) {
    return;
  }
  trace::SessionOptions session;
  if (options.trace_mode == "flight") {
    session.mode = trace::Mode::kFlight;
    session.flight_dump_path = options.trace_out;
  }
  trace::TraceSession::Global().Start(session);
}

bool FinishTraceSession(const CommonOptions& options, std::string* error) {
  if (options.trace_out.empty()) {
    return true;
  }
  trace::TraceSession& session = trace::TraceSession::Global();
  session.Stop();
  if (options.trace_mode != "full") {
    return true;  // the flight recorder's file appears only on a failure
  }
  return session.ExportChromeTrace(options.trace_out, error);
}

std::string FormatCacheSummaryBlock(const infer::ResultCache* result,
                                    const infer::AnalysisPrefixCache* prefix,
                                    const infer::GroupCandidateCache* candidate) {
  std::string block;
  const auto append = [&block](const std::string& line) {
    if (!block.empty()) {
      block += '\n';
    }
    block += line;
  };
  if (result != nullptr) {
    append(infer::FormatCacheSummary("result", result->stats()));
  }
  if (prefix != nullptr) {
    append(infer::FormatCacheSummary("prefix", prefix->stats()));
  }
  if (candidate != nullptr) {
    append(infer::FormatCacheSummary("candidate", candidate->stats()));
  }
  return block;
}

std::string FormatCandidateCacheSummary(const infer::GroupCandidateCache::Stats& stats) {
  return infer::FormatCacheSummary("candidate", stats);
}

std::string FormatPrefixCacheSummary(const infer::AnalysisPrefixCache::Stats& stats) {
  return infer::FormatCacheSummary("prefix", stats);
}

std::string FormatStageBreakdown(const telemetry::MetricsSnapshot& snapshot) {
  // Pull per-stage wall-clock sums out of the span histogram. Stage names are
  // the CSI_SPAN sites in src/csi; anything unlisted lands in "other" so new
  // spans never silently vanish from the breakdown.
  double per_packet = 0.0;  // flow_classify + traffic_split + size_estimate
  double search = 0.0;      // group_search (candidate + graph layers)
  double cache_lookup = 0.0;
  double analyze = 0.0;
  double other = 0.0;
  bool any = false;
  for (const telemetry::HistogramSnapshot& h : snapshot.histograms) {
    if (h.name != "csi_stage_duration_seconds" || h.labels.empty() ||
        h.labels[0].first != "stage") {
      continue;
    }
    const std::string& stage = h.labels[0].second;
    if (stage == "analyze") {
      // The envelope span, not a component: it brackets everything below.
      analyze += h.sum;
      any = true;
      continue;
    }
    any = true;
    if (stage == "flow_classify" || stage == "traffic_split" || stage == "size_estimate") {
      per_packet += h.sum;
    } else if (stage == "group_search") {
      search += h.sum;
    } else if (stage == "group_cache_lookup" || stage == "prefix_cache_lookup" ||
               stage == "result_cache_lookup") {
      cache_lookup += h.sum;
    } else {
      other += h.sum;
    }
  }
  if (!any) {
    return std::string();
  }
  const auto pct = [analyze](double v) {
    return analyze > 0.0 ? 100.0 * v / analyze : 0.0;
  };
  // "other" can include stages outside the analyze envelope (db build,
  // exports), so the components are reported against analyze, not summed to
  // it.
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "stage timing: analyze %.3fs; per-packet %.3fs (%.1f%%); "
                "search %.3fs (%.1f%%); cache lookup %.3fs (%.1f%%); other stages %.3fs",
                analyze, per_packet, pct(per_packet), search, pct(search), cache_lookup,
                pct(cache_lookup), other);
  return buf;
}

bool WriteAuditJsonl(const std::string& path, const std::vector<std::string>& labels,
                     const std::vector<infer::InferenceAudit>& audits, std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot write audit log to " + path;
    }
    return false;
  }
  for (size_t i = 0; i < audits.size(); ++i) {
    out << audits[i].ToJsonLine(i < labels.size() ? labels[i] : std::to_string(i)) << '\n';
  }
  return true;
}

}  // namespace csi::tools
