// csi_testgen — generate a synthetic streaming session for CSI analysis.
//
// Usage:
//   csi_testgen --design SH --out DIR [--duration SECONDS] [--bandwidth MBPS]
//               [--cv COEFF] [--adaptation NAME] [--pasr X] [--seed N]
//               [--shaper-rate MBPS --shaper-bucket BYTES]
//
// Writes into DIR:
//   session.pcap     the encrypted capture (analyze with csi_analyze)
//   video.manifest   the chunk-size database
//   ground_truth.tsv the instrumented-player log (for scoring)
//
// Together with csi_analyze this reproduces the paper's workflow end to end
// from the command line.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/capture/pcap_io.h"
#include "src/csi/inference.h"
#include "src/testbed/experiment.h"

using namespace csi;

namespace {

[[noreturn]] void Usage(const char* error) {
  if (error != nullptr) {
    std::fprintf(stderr, "error: %s\n\n", error);
  }
  std::fprintf(stderr,
               "usage: csi_testgen --design CH|SH|CQ|SQ --out DIR\n"
               "                   [--duration SECONDS] [--bandwidth MBPS] [--cv COEFF]\n"
               "                   [--adaptation rate-based|buffer-based|hybrid|hulu-like]\n"
               "                   [--pasr X] [--seed N]\n"
               "                   [--shaper-rate MBPS --shaper-bucket BYTES]\n");
  std::exit(error == nullptr ? 0 : 2);
}

infer::DesignType ParseDesign(const std::string& name) {
  if (name == "CH") {
    return infer::DesignType::kCH;
  }
  if (name == "SH") {
    return infer::DesignType::kSH;
  }
  if (name == "CQ") {
    return infer::DesignType::kCQ;
  }
  if (name == "SQ") {
    return infer::DesignType::kSQ;
  }
  Usage("unknown design type");
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  std::string design_name;
  std::string out_dir;
  std::string adaptation = "hybrid";
  double duration_s = 600;
  double bandwidth_mbps = 6.0;
  double cv = 0.5;
  double pasr = 1.6;
  uint64_t seed = 1;
  double shaper_rate_mbps = 0;
  Bytes shaper_bucket = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage(("missing value for " + arg).c_str());
      }
      return argv[++i];
    };
    if (arg == "--design") {
      design_name = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--duration") {
      duration_s = std::stod(next());
    } else if (arg == "--bandwidth") {
      bandwidth_mbps = std::stod(next());
    } else if (arg == "--cv") {
      cv = std::stod(next());
    } else if (arg == "--adaptation") {
      adaptation = next();
    } else if (arg == "--pasr") {
      pasr = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--shaper-rate") {
      shaper_rate_mbps = std::stod(next());
    } else if (arg == "--shaper-bucket") {
      shaper_bucket = std::stoll(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown argument: " + arg).c_str());
    }
  }
  if (design_name.empty() || out_dir.empty()) {
    Usage("--design and --out are required");
  }

  const infer::DesignType design = ParseDesign(design_name);
  const TimeUs duration = SecondsToUs(duration_s);
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(design, static_cast<int>(seed % 5), duration, pasr);

  testbed::SessionConfig session;
  session.design = design;
  session.manifest = &manifest;
  Rng trace_rng(seed ^ 0xBEEF);
  session.downlink = cv > 0
                         ? nettrace::CellularTrace("gen", bandwidth_mbps * kMbps, cv,
                                                   duration, 2 * kUsPerSec, trace_rng)
                         : nettrace::StableTrace("gen", bandwidth_mbps * kMbps);
  session.adaptation = adaptation;
  session.duration = duration;
  session.seed = seed;
  if (shaper_rate_mbps > 0) {
    net::TokenBucketConfig shaper;
    shaper.rate = shaper_rate_mbps * kMbps;
    shaper.bucket_size = shaper_bucket > 0 ? shaper_bucket : 50 * kKB;
    session.shaper = shaper;
  }
  const testbed::SessionResult result = RunStreamingSession(session);

  capture::WritePcap(out_dir + "/session.pcap", result.capture);
  WriteFileOrDie(out_dir + "/video.manifest", manifest.Serialize());
  std::string gt = "# kind\ttrack\tindex\trequest_us\tdone_us\tbytes\n";
  for (const auto& d : result.downloads) {
    gt += std::string(d.chunk.type == media::MediaType::kVideo ? "video" : "audio") + "\t" +
          std::to_string(d.chunk.track) + "\t" + std::to_string(d.chunk.index) + "\t" +
          std::to_string(d.request_time) + "\t" + std::to_string(d.done_time) + "\t" +
          std::to_string(d.bytes) + "\n";
  }
  WriteFileOrDie(out_dir + "/ground_truth.tsv", gt);

  std::printf("wrote %s/session.pcap (%zu packets), video.manifest, ground_truth.tsv "
              "(%zu downloads)\n",
              out_dir.c_str(), result.capture.size(), result.downloads.size());
  std::printf("analyze with:\n  csi_analyze --pcap %s/session.pcap --manifest "
              "%s/video.manifest --design %s\n",
              out_dir.c_str(), out_dir.c_str(), design_name.c_str());
  return 0;
}
