// Shared command-line plumbing for the csi_* tools.
//
// csi_analyze and csi_batch grew the same hand-rolled flag loops, design-name
// parsing, file slurping, and metrics-snapshot writing; this header is the
// one copy. FlagParser is deliberately tiny — string/int/bool flags, `--help`
// detection, positional collection — not a general argv framework.

#ifndef CSI_TOOLS_CLI_OPTIONS_H_
#define CSI_TOOLS_CLI_OPTIONS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/telemetry.h"
#include "src/csi/audit.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/prefix_cache.h"
#include "src/csi/result_cache.h"
#include "src/csi/types.h"

namespace csi::tools {

// Registry-driven argv parser. Register targets, then Parse(argc, argv);
// values land directly in the registered variables (untouched flags keep
// their defaults).
class FlagParser {
 public:
  // `--name VALUE`.
  void AddString(const std::string& name, std::string* value);
  // `--name N`, validated as a full base-10 int.
  void AddInt(const std::string& name, int* value);
  // Presence flag `--name` (no value); sets *value to true.
  void AddBool(const std::string& name, bool* value);
  // `--name KEY=VALUE`, repeatable: the VALUE for each registered KEY lands
  // in that key's target (an unregistered KEY is a parse error). Register the
  // same flag name once per key; string and int targets may mix across keys
  // of different flags but each key has one kind.
  void AddKeyedString(const std::string& name, const std::string& key, std::string* value);
  // Keyed variant of AddInt: `--name KEY=N`.
  void AddKeyedInt(const std::string& name, const std::string& key, int* value);

  // Parses argv[1..argc). Returns false and fills *error on an unknown flag,
  // missing value, or malformed int. Non-flag arguments are appended to
  // *positional when non-null and are an error otherwise. `--help`/`-h` stops
  // parsing and sets help_requested().
  bool Parse(int argc, const char* const* argv, std::vector<std::string>* positional,
             std::string* error);

  bool help_requested() const { return help_requested_; }

 private:
  enum class Kind { kString, kInt, kBool, kKeyed };
  struct Flag {
    Kind kind = Kind::kString;
    void* target = nullptr;
    // kKeyed only: per-KEY subtargets (kString or kInt each).
    std::map<std::string, Flag> keyed;
  };

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

// Flags every analysis tool shares. Register() wires them into a FlagParser;
// Validate() checks the combination after parsing.
struct CommonOptions {
  std::string manifest_path;
  std::string design_name;
  std::string host_suffix;
  std::string metrics_out;
  std::string metrics_format = "json";
  // Shard count for the chunk-database build (0 = one shard per worker).
  int db_build_threads = 0;
  // Per-tier cache knobs, written by the unified `--cache <name>=on|off` /
  // `--cache-mb <name>=N` flags and equally by the legacy per-tier flags
  // (`--candidate-cache-mb` etc.), which are plain aliases of the same
  // storage — last flag on the command line wins, whichever spelling. "off"
  // wins over any budget; the CSI_CACHE=<name>:off (or legacy per-tier)
  // environment override beats both.
  // Byte budget (MiB) for the shared group-candidate cache; 0 disables it.
  int candidate_cache_mb = 64;
  // "on" (default) or "off".
  std::string candidate_cache = "on";
  // Byte budget (MiB) for the shared analysis-prefix cache; 0 disables it.
  int prefix_cache_mb = 32;
  // "on" (default) or "off".
  std::string prefix_cache = "on";
  // Byte budget (MiB) for the shared whole-result cache; 0 disables it.
  // Unified spelling only (the tier is newer than the legacy flags).
  int result_cache_mb = 64;
  // "on" (default) or "off".
  std::string result_cache = "on";
  // Structured-trace output (Chrome trace-event JSON, Perfetto-loadable);
  // empty leaves tracing off entirely.
  std::string trace_out;
  // "full" records everything and exports --trace-out at exit; "flight" keeps
  // a small per-thread ring and writes --trace-out only when a trace analysis
  // throws (post-mortem flight recorder).
  std::string trace_mode = "full";
  // Per-trace inference audit records, one JSON object per line (JSONL).
  std::string audit_out;

  // Registers --manifest, --design, --host, --metrics-out, --metrics-format,
  // --db-build-threads, the unified cache flags --cache <name>=on|off and
  // --cache-mb <name>=N for name in {prefix, candidate, result}, their legacy
  // aliases --candidate-cache-mb, --candidate-cache, --prefix-cache-mb,
  // --prefix-cache, plus --trace-out, --trace-mode, --audit-out.
  void Register(FlagParser* parser);
  // Returns false and fills *error when required flags are missing or values
  // are out of range. Call after Parse().
  bool Validate(std::string* error) const;
  // The parsed --design value; only valid after Validate() passed.
  infer::DesignType design() const;
  // The effective cache budget in MiB after combining both cache flags
  // (0 when disabled). Only valid after Validate() passed.
  int candidate_cache_budget_mb() const;
  // Same combination for the analysis-prefix cache flags.
  int prefix_cache_budget_mb() const;
  // Same combination for the whole-result cache flags.
  int result_cache_budget_mb() const;
};

// Parses CH|SH|CQ|SQ into *out; false on anything else.
bool ParseDesignName(const std::string& name, infer::DesignType* out);

// Slurps `path` into *out; false with *error on failure.
bool ReadFileToString(const std::string& path, std::string* out, std::string* error);

// Writes the global telemetry snapshot to `path` as json or prom ("prom"
// selects the Prometheus exposition format); false with *error on failure.
// Stamps the csi_build_info gauge first, so every export carries the build
// configuration.
bool WriteMetricsSnapshot(const std::string& path, const std::string& format,
                          std::string* error);

// Starts the global trace session when --trace-out was given (no-op
// otherwise). Call before building the engine so the database build is part
// of the trace.
void StartTraceSessionIfRequested(const CommonOptions& options);

// Stops the session and, in full mode, writes the Chrome trace JSON to
// --trace-out. Flight mode writes nothing here — its file appears only on an
// analysis failure. Returns false with *error on a write failure; a run
// without --trace-out trivially succeeds.
bool FinishTraceSession(const CommonOptions& options, std::string* error);

// The unified per-tier cache summary block both tools print: one
// infer::FormatCacheSummary line per attached tier, in pipeline order
// (result, prefix, candidate), joined by newlines with no trailing newline.
// Null tiers are skipped; empty string when every tier is null.
std::string FormatCacheSummaryBlock(const infer::ResultCache* result,
                                    const infer::AnalysisPrefixCache* prefix,
                                    const infer::GroupCandidateCache* candidate);

// Deprecated single-tier summaries, now thin wrappers over the shared
// infer::FormatCacheSummary formatter (one consistent line shape per tier).
std::string FormatCandidateCacheSummary(const infer::GroupCandidateCache::Stats& stats);
std::string FormatPrefixCacheSummary(const infer::AnalysisPrefixCache::Stats& stats);

// Per-stage timing breakdown from the csi_stage_duration_seconds span
// histograms in `snapshot`: per-packet stages (flow_classify, traffic_split,
// size_estimate) vs. the candidate/graph search (group_search), plus cache
// lookup overhead — so the prefix-cache win is visible straight from the
// csi_batch summary, no trace viewer needed. Empty string when the snapshot
// carries no stage histograms (e.g. telemetry compiled out). No trailing
// newline.
std::string FormatStageBreakdown(const telemetry::MetricsSnapshot& snapshot);

// Writes audits[i] as a JSON line labeled labels[i] (falling back to the
// index when labels run short); false with *error on failure.
bool WriteAuditJsonl(const std::string& path, const std::vector<std::string>& labels,
                     const std::vector<infer::InferenceAudit>& audits, std::string* error);

}  // namespace csi::tools

#endif  // CSI_TOOLS_CLI_OPTIONS_H_
