#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks (beyond `python3 -m json.tool` well-formedness):
  * top level is an object with a "traceEvents" list;
  * every event carries name/cat/ph/ts/pid/tid with sane types;
  * phases are restricted to the set the tracer emits (B E i s t f);
  * per-thread B/E nesting balances — an 'E' without a matching 'B' is an
    error; trailing unclosed 'B's are allowed because stopping a session
    mid-span legitimately leaves open spans in the ring;
  * flow events pair up: every flow id has exactly one 's' (start), the 's'
    is not later than any 't'/'f' with the same id, and every 't'/'f' has a
    matching 's'.

Optionally validates an --audit JSONL file: one JSON object per line, each
with the per-trace audit fields the inference engine records.

Usage: check_trace.py TRACE_JSON [--audit AUDIT_JSONL]
Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "s", "t", "f"}
REQUIRED_AUDIT_KEYS = (
    "trace",
    "media_flows",
    "groups",
    "candidates",
    "dfs_nodes_expanded",
    "sequences",
    "truncated",
)


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path, encoding="utf-8") as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")

    depth = {}  # tid -> open 'B' count
    flow_starts = {}  # flow id -> ts of 's'
    flow_steps = []  # (id, ts, phase) for 't'/'f'
    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        for key, types in (
            ("name", str),
            ("cat", str),
            ("ph", str),
            ("ts", (int, float)),
            ("pid", int),
            ("tid", int),
        ):
            if key not in ev:
                fail(f"{where}: missing required field {key!r}")
            if not isinstance(ev[key], types):
                fail(f"{where}: field {key!r} has type {type(ev[key]).__name__}")
        ph = ev["ph"]
        if ph not in ALLOWED_PHASES:
            fail(f"{where}: unexpected phase {ph!r}")
        if ev["ts"] < 0:
            fail(f"{where}: negative timestamp")
        if ph == "B":
            depth[ev["tid"]] = depth.get(ev["tid"], 0) + 1
        elif ph == "E":
            d = depth.get(ev["tid"], 0)
            if d == 0:
                fail(f"{where}: 'E' on tid {ev['tid']} without a matching 'B'")
            depth[ev["tid"]] = d - 1
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                fail(f"{where}: flow event without an 'id'")
            if ph == "s":
                if ev["id"] in flow_starts:
                    fail(f"{where}: duplicate flow start for id {ev['id']}")
                flow_starts[ev["id"]] = ev["ts"]
            else:
                flow_steps.append((ev["id"], ev["ts"], ph, i))
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{where}: args must be an object")

    for fid, ts, ph, i in flow_steps:
        if fid not in flow_starts:
            fail(f"{path}: event {i}: flow '{ph}' id {fid} has no 's' start")
        if ts < flow_starts[fid]:
            fail(f"{path}: event {i}: flow '{ph}' id {fid} precedes its 's'")

    open_spans = sum(depth.values())
    n_flows = len(flow_starts)
    print(
        f"check_trace: OK: {len(events)} events, {n_flows} flow(s), "
        f"{open_spans} trailing open span(s)"
    )


def check_audit(path):
    n = 0
    with open(path, encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
            if not isinstance(rec, dict):
                fail(f"{path}:{lineno}: audit record must be an object")
            for key in REQUIRED_AUDIT_KEYS:
                if key not in rec:
                    fail(f"{path}:{lineno}: missing audit field {key!r}")
            n += 1
    if n == 0:
        fail(f"{path}: no audit records")
    print(f"check_trace: OK: {n} audit record(s)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--audit", help="audit JSONL file to validate too")
    args = parser.parse_args()
    check_trace(args.trace)
    if args.audit:
        check_audit(args.audit)


if __name__ == "__main__":
    main()
