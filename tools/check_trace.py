#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks (beyond `python3 -m json.tool` well-formedness):
  * top level is an object with a "traceEvents" list;
  * every event carries name/cat/ph/ts/pid/tid with sane types;
  * phases are restricted to the set the tracer emits (B E i s t f);
  * per-thread B/E nesting balances — an 'E' without a matching 'B' is an
    error; trailing unclosed 'B's are allowed because stopping a session
    mid-span legitimately leaves open spans in the ring;
  * flow events pair up: every flow id has exactly one 's' (start), the 's'
    is not later than any 't'/'f' with the same id, and every 't'/'f' has a
    matching 's'.

Prefix-cache telemetry checks on the same trace file:
  * every 'i' instant named "prefix_cache" carries args with an outcome of
    "hit" or "miss" plus a non-empty reason string;
  * the number of those instants equals the number of 'B' events for the
    "prefix_cache_lookup" span — every lookup explains itself exactly once.

Result-cache telemetry checks on the same trace file:
  * every 'i' instant named "result_cache" carries args with an outcome of
    "hit", "revalidated", "invalidated" or "miss" plus a non-empty reason;
  * the number of terminal instants (hit/revalidated/miss) equals the number
    of 'B' events for the "result_cache_lookup" span — every lookup resolves
    exactly once. "invalidated" instants are extra (a lookup that drops a
    stale entry then misses emits both), so they may not exceed lookups.

Optionally validates an --audit JSONL file: one JSON object per line, each
with the per-trace audit fields the inference engine records.

Optionally validates one or more --metrics JSON exports (csi_batch
--metrics-out --metrics-format json). Per file, the prefix-cache and
result-cache counters must be internally consistent (lookups == hits +
misses, inserts <= misses, evictions <= inserts, and for the result tier
invalidations <= misses). Across files given in order, every
csi_prefix_cache_*_total / csi_result_cache_*_total counter must be
monotonically non-decreasing — the order should match the order the exports
were produced in.

Usage: check_trace.py TRACE_JSON [--audit AUDIT_JSONL] [--metrics JSON ...]
Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "s", "t", "f"}
REQUIRED_AUDIT_KEYS = (
    "trace",
    "media_flows",
    "groups",
    "candidates",
    "dfs_nodes_expanded",
    "sequences",
    "truncated",
)


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path, encoding="utf-8") as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")

    depth = {}  # tid -> open 'B' count
    flow_starts = {}  # flow id -> ts of 's'
    flow_steps = []  # (id, ts, phase) for 't'/'f'
    prefix_lookups = 0  # 'B' events of the prefix_cache_lookup span
    prefix_instants = 0  # 'i' events named prefix_cache
    result_lookups = 0  # 'B' events of the result_cache_lookup span
    result_terminal = 0  # result_cache instants that resolve a lookup
    result_invalidated = 0  # extra instants for dropped stale entries
    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        for key, types in (
            ("name", str),
            ("cat", str),
            ("ph", str),
            ("ts", (int, float)),
            ("pid", int),
            ("tid", int),
        ):
            if key not in ev:
                fail(f"{where}: missing required field {key!r}")
            if not isinstance(ev[key], types):
                fail(f"{where}: field {key!r} has type {type(ev[key]).__name__}")
        ph = ev["ph"]
        if ph not in ALLOWED_PHASES:
            fail(f"{where}: unexpected phase {ph!r}")
        if ev["ts"] < 0:
            fail(f"{where}: negative timestamp")
        if ph == "B":
            depth[ev["tid"]] = depth.get(ev["tid"], 0) + 1
        elif ph == "E":
            d = depth.get(ev["tid"], 0)
            if d == 0:
                fail(f"{where}: 'E' on tid {ev['tid']} without a matching 'B'")
            depth[ev["tid"]] = d - 1
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                fail(f"{where}: flow event without an 'id'")
            if ph == "s":
                if ev["id"] in flow_starts:
                    fail(f"{where}: duplicate flow start for id {ev['id']}")
                flow_starts[ev["id"]] = ev["ts"]
            else:
                flow_steps.append((ev["id"], ev["ts"], ph, i))
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{where}: args must be an object")
        if ph == "B" and ev["name"] == "prefix_cache_lookup":
            prefix_lookups += 1
        if ph == "i" and ev["name"] == "prefix_cache":
            prefix_instants += 1
            args = ev.get("args")
            if not isinstance(args, dict):
                fail(f"{where}: prefix_cache instant without args")
            if args.get("outcome") not in ("hit", "miss"):
                fail(
                    f"{where}: prefix_cache outcome must be 'hit' or 'miss', "
                    f"got {args.get('outcome')!r}"
                )
            reason = args.get("reason")
            if not isinstance(reason, str) or not reason:
                fail(f"{where}: prefix_cache instant missing a reason string")
        if ph == "B" and ev["name"] == "result_cache_lookup":
            result_lookups += 1
        if ph == "i" and ev["name"] == "result_cache":
            args = ev.get("args")
            if not isinstance(args, dict):
                fail(f"{where}: result_cache instant without args")
            outcome = args.get("outcome")
            if outcome in ("hit", "revalidated", "miss"):
                result_terminal += 1
            elif outcome == "invalidated":
                result_invalidated += 1
            else:
                fail(
                    f"{where}: result_cache outcome must be one of "
                    f"hit/revalidated/invalidated/miss, got {outcome!r}"
                )
            reason = args.get("reason")
            if not isinstance(reason, str) or not reason:
                fail(f"{where}: result_cache instant missing a reason string")

    for fid, ts, ph, i in flow_steps:
        if fid not in flow_starts:
            fail(f"{path}: event {i}: flow '{ph}' id {fid} has no 's' start")
        if ts < flow_starts[fid]:
            fail(f"{path}: event {i}: flow '{ph}' id {fid} precedes its 's'")

    if prefix_instants != prefix_lookups:
        fail(
            f"{path}: {prefix_lookups} prefix_cache_lookup span(s) but "
            f"{prefix_instants} prefix_cache instant(s) — every lookup must "
            f"explain its outcome exactly once"
        )
    if result_terminal != result_lookups:
        fail(
            f"{path}: {result_lookups} result_cache_lookup span(s) but "
            f"{result_terminal} terminal result_cache instant(s) — every "
            f"lookup must resolve (hit/revalidated/miss) exactly once"
        )
    if result_invalidated > result_lookups:
        fail(
            f"{path}: {result_invalidated} result_cache 'invalidated' "
            f"instant(s) exceed {result_lookups} lookup span(s)"
        )

    open_spans = sum(depth.values())
    n_flows = len(flow_starts)
    print(
        f"check_trace: OK: {len(events)} events, {n_flows} flow(s), "
        f"{open_spans} trailing open span(s), "
        f"{prefix_lookups} prefix-cache lookup(s), "
        f"{result_lookups} result-cache lookup(s)"
    )


def check_audit(path):
    n = 0
    with open(path, encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
            if not isinstance(rec, dict):
                fail(f"{path}:{lineno}: audit record must be an object")
            for key in REQUIRED_AUDIT_KEYS:
                if key not in rec:
                    fail(f"{path}:{lineno}: missing audit field {key!r}")
            n += 1
    if n == 0:
        fail(f"{path}: no audit records")
    print(f"check_trace: OK: {n} audit record(s)")


MONOTONIC_COUNTERS = (
    "csi_prefix_cache_lookups_total",
    "csi_prefix_cache_hits_total",
    "csi_prefix_cache_misses_total",
    "csi_prefix_cache_inserts_total",
    "csi_prefix_cache_evictions_total",
    "csi_result_cache_lookups_total",
    "csi_result_cache_hits_total",
    "csi_result_cache_misses_total",
    "csi_result_cache_inserts_total",
    "csi_result_cache_evictions_total",
    "csi_result_cache_invalidations_total",
)


def check_cache_counters(path, counters, tier):
    """lookups == hits + misses; inserts <= misses; evictions <= inserts.

    Absent counters read as 0: a cache-off run legitimately exports none.
    """
    lookups = counters.get(f"csi_{tier}_cache_lookups_total", 0)
    hits = counters.get(f"csi_{tier}_cache_hits_total", 0)
    misses = counters.get(f"csi_{tier}_cache_misses_total", 0)
    inserts = counters.get(f"csi_{tier}_cache_inserts_total", 0)
    evictions = counters.get(f"csi_{tier}_cache_evictions_total", 0)
    if hits + misses != lookups:
        fail(f"{path}: {tier}-cache lookups ({lookups}) != hits ({hits}) + misses ({misses})")
    if inserts > misses:
        fail(f"{path}: {tier}-cache inserts ({inserts}) > misses ({misses})")
    if evictions > inserts:
        fail(f"{path}: {tier}-cache evictions ({evictions}) > inserts ({inserts})")
    if tier == "result":
        # A dropped stale entry always resolves as a miss in the same lookup.
        invalidations = counters.get("csi_result_cache_invalidations_total", 0)
        if invalidations > misses:
            fail(f"{path}: result-cache invalidations ({invalidations}) > misses ({misses})")


def load_counters(path):
    with open(path, encoding="utf-8") as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or "counters" not in doc:
        fail(f"{path}: metrics export must be an object with a counters list")
    counters = {}
    for c in doc["counters"]:
        if not isinstance(c, dict) or "name" not in c or "value" not in c:
            fail(f"{path}: malformed counter entry {c!r}")
        counters[c["name"]] = c["value"]
    return counters


def check_metrics(paths):
    previous = None
    prev_path = None
    for path in paths:
        counters = load_counters(path)
        check_cache_counters(path, counters, "prefix")
        check_cache_counters(path, counters, "result")
        if previous is not None:
            for name in MONOTONIC_COUNTERS:
                before = previous.get(name, 0)
                after = counters.get(name, 0)
                if after < before:
                    fail(
                        f"{path}: counter {name} went backwards "
                        f"({before} in {prev_path} -> {after})"
                    )
        previous = counters
        prev_path = path
    print(f"check_trace: OK: {len(paths)} metrics export(s) consistent")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--audit", help="audit JSONL file to validate too")
    parser.add_argument(
        "--metrics",
        action="append",
        default=[],
        metavar="FILE",
        help="metrics JSON export(s), in production order; repeatable",
    )
    args = parser.parse_args()
    check_trace(args.trace)
    if args.audit:
        check_audit(args.audit)
    if args.metrics:
        check_metrics(args.metrics)


if __name__ == "__main__":
    main()
