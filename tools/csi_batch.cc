// csi_batch — parallel CSI analysis of many captures against one manifest.
//
// Usage:
//   csi_batch --manifest FILE --design CH|SH|CQ|SQ (--dir DIR | PCAP...)
//             [--threads N] [--db-build-threads N] [--repeat R]
//             [--host SUFFIX] [--quiet]
//             [--follow-manifests N] [--db-compact-after N]
//             [--cache NAME=on|off] [--cache-mb NAME=N]
//             [--metrics-out FILE] [--metrics-format json|prom]
//             [--trace-out FILE] [--trace-mode full|flight] [--audit-out FILE]
//
// The deployment workload (paper §6.2.3 scaled up): a directory of per-device
// captures of the same service, analyzed over one shared chunk database.
// Prints per-trace summaries plus batch throughput in sessions/sec, and can
// dump a pipeline-telemetry snapshot (stage latencies, cache hit rates,
// thread-pool stats) next to the results.
//
// --follow-manifests N replays a live session: the batch starts from a
// prefix of the manifest (half the positions), and N metadata refreshes
// spread across the --repeat rounds append the remaining chunks through a
// LiveChunkDatabase — each round re-acquires the current snapshot, so the
// last round analyzes against the full database. Inference output at a given
// refresh point is byte-identical to a fresh full build there.
//
// Unreadable pcaps do not abort the batch: each failure is recorded and
// counted, the remaining traces are analyzed, and the exit status is
// non-zero only at the end (with a failure summary).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/capture/packet_columns.h"
#include "src/capture/pcap_io.h"
#include "src/common/stats.h"
#include "src/common/telemetry.h"
#include "src/csi/batch_analyzer.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/live_database.h"
#include "tools/cli_options.h"

using namespace csi;

namespace {

[[noreturn]] void Usage(const char* error) {
  if (error != nullptr) {
    std::fprintf(stderr, "error: %s\n\n", error);
  }
  std::fprintf(stderr,
               "usage: csi_batch --manifest FILE --design CH|SH|CQ|SQ (--dir DIR | PCAP...)\n"
               "                 [--threads N] [--db-build-threads N] [--repeat R]\n"
               "                 [--host SUFFIX] [--quiet]\n"
               "                 [--follow-manifests N] [--db-compact-after N]\n"
               "                 [--cache NAME=on|off] [--cache-mb NAME=N]\n"
               "                 [--metrics-out FILE] [--metrics-format json|prom]\n"
               "                 [--trace-out FILE] [--trace-mode full|flight]\n"
               "                 [--audit-out FILE]\n"
               "\n"
               "  --db-build-threads N   shard the chunk-database build into N jobs fanned\n"
               "                         over the worker pool (0 = one shard per worker;\n"
               "                         1 = serial build; the index is identical either way)\n"
               "  --follow-manifests N   replay a live manifest: start from a half-length\n"
               "                         prefix and apply N metadata refreshes spread across\n"
               "                         the --repeat rounds via a LiveChunkDatabase\n"
               "  --db-compact-after N   delta chunks that trigger a live-database\n"
               "                         compaction (default 4096; 0 = every refresh)\n"
               "  --cache NAME=on|off    toggle one shared cache tier, NAME in\n"
               "                         {result, prefix, candidate}; results are\n"
               "                         byte-identical with any subset enabled. Legacy\n"
               "                         spellings --candidate-cache / --prefix-cache\n"
               "                         (and their -mb forms) remain as aliases\n"
               "  --cache-mb NAME=N      byte budget (MiB) for one tier (defaults:\n"
               "                         result 64, prefix 32, candidate 64; 0 disables).\n"
               "                         CSI_CACHE=NAME:off,... overrides from the\n"
               "                         environment\n"
               "  --trace-out FILE       record a structured event trace; full mode writes\n"
               "                         Chrome trace-event JSON (Perfetto-loadable) at exit\n"
               "  --trace-mode full|flight\n"
               "                         flight keeps a small per-thread ring and writes\n"
               "                         FILE only when a trace analysis throws (post-mortem)\n"
               "  --audit-out FILE       per-trace inference audit records as JSONL\n"
               "                         (candidate counts, DFS/prune totals, cache path,\n"
               "                         chosen-vs-runner-up costs)\n");
  std::exit(error == nullptr ? 0 : 2);
}

// The replay schedule for --follow-manifests: the prefix manifest the batch
// starts from plus the refreshes that grow it back to the full manifest.
struct FollowPlan {
  media::Manifest start;
  std::vector<infer::ManifestRefresh> refreshes;
};

FollowPlan BuildFollowPlan(const media::Manifest& full, int refreshes) {
  FollowPlan plan;
  const int positions = full.num_positions();
  const int start_positions = std::max(1, positions / 2);
  const int tail = positions - start_positions;
  const int steps = std::min(refreshes, tail);

  plan.start = full;
  for (auto& track : plan.start.video_tracks) {
    track.chunks.resize(static_cast<size_t>(start_positions));
  }
  for (auto& track : plan.start.audio_tracks) {
    track.chunks.resize(
        std::min(track.chunks.size(), static_cast<size_t>(start_positions)));
  }

  for (int r = 0; r < steps; ++r) {
    const int lo = start_positions + tail * r / steps;
    const int hi = start_positions + tail * (r + 1) / steps;
    infer::ManifestRefresh refresh;
    refresh.video_appends.resize(full.video_tracks.size());
    for (size_t t = 0; t < full.video_tracks.size(); ++t) {
      const auto& chunks = full.video_tracks[t].chunks;
      refresh.video_appends[t].assign(chunks.begin() + lo, chunks.begin() + hi);
    }
    plan.refreshes.push_back(std::move(refresh));
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  tools::CommonOptions common;
  std::string dir;
  std::vector<std::string> pcap_paths;
  int threads = 0;
  int repeat = 1;
  int follow_refreshes = 0;
  int db_compact_after = -1;
  bool quiet = false;

  tools::FlagParser parser;
  common.Register(&parser);
  parser.AddString("--dir", &dir);
  parser.AddInt("--threads", &threads);
  parser.AddInt("--repeat", &repeat);
  parser.AddInt("--follow-manifests", &follow_refreshes);
  parser.AddInt("--db-compact-after", &db_compact_after);
  parser.AddBool("--quiet", &quiet);

  std::string error;
  if (!parser.Parse(argc, argv, &pcap_paths, &error)) {
    Usage(error.c_str());
  }
  if (parser.help_requested()) {
    Usage(nullptr);
  }
  if (!common.Validate(&error)) {
    Usage(error.c_str());
  }
  if (!dir.empty()) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".pcap") {
        pcap_paths.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "error: cannot scan %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::sort(pcap_paths.begin(), pcap_paths.end());
  }
  if (pcap_paths.empty()) {
    Usage("no pcap inputs (pass files or --dir)");
  }
  if (repeat < 1) {
    Usage("--repeat must be >= 1");
  }
  if (follow_refreshes < 0) {
    Usage("--follow-manifests must be >= 0");
  }
  if (db_compact_after < -1) {
    Usage("--db-compact-after must be >= 0");
  }

  std::string manifest_text;
  if (!tools::ReadFileToString(common.manifest_path, &manifest_text, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  // Before the database build so the build spans land in the trace.
  tools::StartTraceSessionIfRequested(common);
  const media::Manifest manifest = media::Manifest::Parse(manifest_text);
  // A corrupt capture is an expected condition at deployment scale (truncated
  // tcpdump, mid-rotation file): record it, keep going, fail at the end.
  std::vector<capture::CaptureTrace> traces;
  std::vector<std::string> loaded_paths;
  std::vector<std::pair<std::string, std::string>> failures;
  traces.reserve(pcap_paths.size());
  size_t total_packets = 0;
  for (const std::string& path : pcap_paths) {
    try {
      traces.push_back(capture::ReadPcap(path));
    } catch (const std::exception& e) {
      failures.emplace_back(path, e.what());
      CSI_COUNTER_INC("csi_batch_trace_load_failures_total");
      continue;
    }
    loaded_paths.push_back(path);
    total_packets += traces.back().size();
  }
  std::printf("loaded %zu trace(s), %zu packets total; manifest %s: %d tracks x %d chunks\n",
              traces.size(), total_packets, manifest.asset_id.c_str(),
              manifest.num_video_tracks(), manifest.num_positions());
  for (const auto& [path, what] : failures) {
    std::fprintf(stderr, "warning: skipped %s: %s\n", path.c_str(), what.c_str());
  }

  // Transpose every capture to the columnar layout once, up front: each
  // --repeat / --follow-manifests round then analyzes the PacketColumns
  // directly, so repeats never pay the per-call column build — and the AoS
  // traces are released here since the columns carry everything inference
  // reads.
  std::vector<capture::PacketColumns> columns;
  columns.reserve(traces.size());
  for (const capture::CaptureTrace& trace : traces) {
    columns.push_back(capture::PacketColumns::Build(trace));
  }
  traces = {};

  infer::InferenceConfig config;
  config.design = common.design();
  if (!common.host_suffix.empty()) {
    config.host_suffix = common.host_suffix;
  }
  infer::BatchConfig batch;
  batch.threads = threads;
  batch.db_build_shards = common.db_build_threads;
  batch.caches.candidate.budget_mb = common.candidate_cache_budget_mb();
  batch.caches.prefix.budget_mb = common.prefix_cache_budget_mb();
  batch.caches.result.budget_mb = common.result_cache_budget_mb();
  if (!quiet) {
    batch.progress = [](size_t done, size_t total_traces) {
      std::fprintf(stderr, "  ...%zu/%zu traces\n", done, total_traces);
    };
  }

  // Live-replay mode: start from the prefix manifest and grow it back via a
  // LiveChunkDatabase. Static mode: one full build, as before.
  std::optional<FollowPlan> plan;
  std::optional<infer::LiveChunkDatabase> live;
  std::optional<infer::BatchAnalyzer> analyzer;
  if (follow_refreshes > 0) {
    plan = BuildFollowPlan(manifest, follow_refreshes);
    if (plan->refreshes.empty()) {
      std::fprintf(stderr,
                   "warning: manifest too short to follow (%d positions); "
                   "running a static batch\n",
                   manifest.num_positions());
      plan.reset();
    }
  }
  if (plan.has_value()) {
    infer::LiveChunkDatabase::Options live_options;
    live_options.build_shards = common.db_build_threads;
    if (db_compact_after >= 0) {
      live_options.compact_after_delta_chunks = static_cast<size_t>(db_compact_after);
    }
    live.emplace(plan->start, live_options);
    // The engine must rank against the same non-media objects at every
    // refresh point; pin the full manifest's size up front (the default would
    // re-derive it from the prefix).
    config.other_object_sizes.push_back(manifest.SerializedSize() +
                                        config.expected_fixed_overhead);
    if (config.host_suffix.empty()) {
      config.host_suffix = manifest.host;
    }
    analyzer.emplace(live->Acquire(), config, batch);
    std::printf("following manifest: %d -> %d positions over %zu refresh(es)\n",
                plan->start.num_positions(), manifest.num_positions(),
                plan->refreshes.size());
  } else {
    analyzer.emplace(&manifest, config, batch);
  }

  std::vector<infer::InferenceResult> results;
  std::vector<double> trace_seconds;
  std::vector<std::string> trace_errors;
  std::vector<infer::InferenceAudit> audits;
  std::vector<infer::InferenceAudit>* audits_out =
      common.audit_out.empty() ? nullptr : &audits;
  size_t applied = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeat; ++r) {
    if (live.has_value()) {
      // Spread refreshes across rounds so the final round always sees the
      // fully grown database.
      const size_t target = plan->refreshes.size() * static_cast<size_t>(r + 1) /
                            static_cast<size_t>(repeat);
      for (; applied < target; ++applied) {
        live->ApplyRefresh(plan->refreshes[applied]);
      }
      const infer::DbSnapshot snapshot = live->Acquire();
      analyzer->UpdateSnapshot(snapshot);
      if (!quiet) {
        std::fprintf(stderr, "  round %d: epoch %llu, %d positions, %zu delta chunk(s)\n",
                     r, static_cast<unsigned long long>(snapshot.epoch()),
                     snapshot.num_positions(), snapshot.delta_chunks());
      }
    }
    results = analyzer->AnalyzeAll(columns, &trace_seconds, &trace_errors, audits_out);
  }
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  if (live.has_value()) {
    live->WaitForCompaction();
  }

  if (!quiet) {
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("  %-40s %4zu sequence(s)%s  %.3f s\n", loaded_paths[i].c_str(),
                  results[i].sequences.size(), results[i].truncated ? " (truncated)" : "",
                  trace_seconds[i]);
    }
  }
  const double sessions = static_cast<double>(columns.size()) * repeat;
  std::printf("analyzed %.0f session(s) in %.3f s on %d worker(s): %.2f sessions/sec\n",
              sessions, elapsed.count(), analyzer->threads(),
              sessions / std::max(elapsed.count(), 1e-9));
  if (live.has_value()) {
    std::printf("live database: epoch %llu, %d positions, %zu residual delta chunk(s)\n",
                static_cast<unsigned long long>(live->epoch()), live->num_positions(),
                live->delta_chunks());
  }
  {
    const std::string cache_block = tools::FormatCacheSummaryBlock(
        analyzer->result_cache(), analyzer->prefix_cache(), analyzer->candidate_cache());
    if (!cache_block.empty()) {
      std::printf("%s\n", cache_block.c_str());
    }
  }
  {
    const std::string breakdown =
        tools::FormatStageBreakdown(telemetry::MetricsRegistry::Global().Snapshot());
    if (!breakdown.empty()) {
      std::printf("%s\n", breakdown.c_str());
    }
  }
  if (!trace_seconds.empty()) {
    RunningStats per_trace;
    for (double s : trace_seconds) {
      per_trace.Add(s);
    }
    std::printf("per-trace seconds (last repeat): min %.4f  mean %.4f  p95 %.4f  max %.4f\n",
                per_trace.min(), per_trace.mean(),
                Percentile(trace_seconds, 95.0), per_trace.max());
  }

  bool metrics_ok = true;
  if (!common.metrics_out.empty() &&
      !tools::WriteMetricsSnapshot(common.metrics_out, common.metrics_format, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    metrics_ok = false;
  }
  if (audits_out != nullptr &&
      !tools::WriteAuditJsonl(common.audit_out, loaded_paths, audits, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    metrics_ok = false;
  }
  if (!tools::FinishTraceSession(common, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    metrics_ok = false;
  }
  // Analyze failures mirror load failures: every bad trace is reported by
  // name, the good results above still stand, and the exit status is the
  // only thing that turns red.
  size_t analyze_failures = 0;
  for (size_t i = 0; i < trace_errors.size(); ++i) {
    if (trace_errors[i].empty()) {
      continue;
    }
    if (analyze_failures == 0) {
      std::fprintf(stderr, "error: analysis failed for some trace(s):\n");
    }
    ++analyze_failures;
    std::fprintf(stderr, "  %s: %s\n", loaded_paths[i].c_str(), trace_errors[i].c_str());
  }
  if (!failures.empty()) {
    std::fprintf(stderr, "error: %zu of %zu pcap(s) failed to load:\n", failures.size(),
                 pcap_paths.size());
    for (const auto& [path, what] : failures) {
      std::fprintf(stderr, "  %s: %s\n", path.c_str(), what.c_str());
    }
    return 1;
  }
  if (analyze_failures > 0) {
    return 1;
  }
  return metrics_ok ? 0 : 1;
}
