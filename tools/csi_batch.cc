// csi_batch — parallel CSI analysis of many captures against one manifest.
//
// Usage:
//   csi_batch --manifest FILE --design CH|SH|CQ|SQ (--dir DIR | PCAP...)
//             [--threads N] [--repeat R] [--host SUFFIX] [--quiet]
//             [--metrics-out FILE] [--metrics-format json|prom]
//
// The deployment workload (paper §6.2.3 scaled up): a directory of per-device
// captures of the same service, analyzed over one shared chunk database.
// Prints per-trace summaries plus batch throughput in sessions/sec, and can
// dump a pipeline-telemetry snapshot (stage latencies, cache hit rates,
// thread-pool stats) next to the results.
//
// Unreadable pcaps do not abort the batch: each failure is recorded and
// counted, the remaining traces are analyzed, and the exit status is
// non-zero only at the end (with a failure summary).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/capture/pcap_io.h"
#include "src/common/stats.h"
#include "src/common/telemetry.h"
#include "src/csi/batch_analyzer.h"

using namespace csi;

namespace {

[[noreturn]] void Usage(const char* error) {
  if (error != nullptr) {
    std::fprintf(stderr, "error: %s\n\n", error);
  }
  std::fprintf(stderr,
               "usage: csi_batch --manifest FILE --design CH|SH|CQ|SQ (--dir DIR | PCAP...)\n"
               "                 [--threads N] [--db-build-threads N] [--repeat R]\n"
               "                 [--host SUFFIX] [--quiet]\n"
               "                 [--metrics-out FILE] [--metrics-format json|prom]\n"
               "\n"
               "  --db-build-threads N   shard the chunk-database build into N jobs fanned\n"
               "                         over the worker pool (0 = one shard per worker;\n"
               "                         1 = serial build; the index is identical either way)\n");
  std::exit(error == nullptr ? 0 : 2);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

infer::DesignType ParseDesign(const std::string& name) {
  if (name == "CH") {
    return infer::DesignType::kCH;
  }
  if (name == "SH") {
    return infer::DesignType::kSH;
  }
  if (name == "CQ") {
    return infer::DesignType::kCQ;
  }
  if (name == "SQ") {
    return infer::DesignType::kSQ;
  }
  Usage("unknown design type (expected CH, SH, CQ or SQ)");
}

}  // namespace

// Writes the global metrics snapshot; returns false (with a message) on
// filesystem failure.
bool WriteMetrics(const std::string& path, const std::string& format) {
  const telemetry::MetricsSnapshot snapshot = telemetry::MetricsRegistry::Global().Snapshot();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  out << (format == "prom" ? snapshot.ToPrometheus() : snapshot.ToJson());
  return true;
}

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string design_name;
  std::string dir;
  std::string host_suffix;
  std::string metrics_out;
  std::string metrics_format = "json";
  std::vector<std::string> pcap_paths;
  int threads = 0;
  int db_build_threads = 0;
  int repeat = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage(("missing value for " + arg).c_str());
      }
      return argv[++i];
    };
    if (arg == "--manifest") {
      manifest_path = next();
    } else if (arg == "--design") {
      design_name = next();
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--threads") {
      threads = std::stoi(next());
    } else if (arg == "--db-build-threads") {
      db_build_threads = std::stoi(next());
    } else if (arg == "--repeat") {
      repeat = std::stoi(next());
    } else if (arg == "--host") {
      host_suffix = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--metrics-format") {
      metrics_format = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      Usage(("unknown argument: " + arg).c_str());
    } else {
      pcap_paths.push_back(arg);
    }
  }
  if (manifest_path.empty() || design_name.empty()) {
    Usage("--manifest and --design are required");
  }
  if (!dir.empty()) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".pcap") {
        pcap_paths.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "error: cannot scan %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::sort(pcap_paths.begin(), pcap_paths.end());
  }
  if (pcap_paths.empty()) {
    Usage("no pcap inputs (pass files or --dir)");
  }
  if (repeat < 1) {
    Usage("--repeat must be >= 1");
  }
  if (metrics_format != "json" && metrics_format != "prom") {
    Usage("--metrics-format must be json or prom");
  }

  const media::Manifest manifest = media::Manifest::Parse(ReadFileOrDie(manifest_path));
  // A corrupt capture is an expected condition at deployment scale (truncated
  // tcpdump, mid-rotation file): record it, keep going, fail at the end.
  std::vector<capture::CaptureTrace> traces;
  std::vector<std::string> loaded_paths;
  std::vector<std::pair<std::string, std::string>> failures;
  traces.reserve(pcap_paths.size());
  size_t total_packets = 0;
  for (const std::string& path : pcap_paths) {
    try {
      traces.push_back(capture::ReadPcap(path));
    } catch (const std::exception& e) {
      failures.emplace_back(path, e.what());
      CSI_COUNTER_INC("csi_batch_trace_load_failures_total");
      continue;
    }
    loaded_paths.push_back(path);
    total_packets += traces.back().size();
  }
  std::printf("loaded %zu trace(s), %zu packets total; manifest %s: %d tracks x %d chunks\n",
              traces.size(), total_packets, manifest.asset_id.c_str(),
              manifest.num_video_tracks(), manifest.num_positions());
  for (const auto& [path, what] : failures) {
    std::fprintf(stderr, "warning: skipped %s: %s\n", path.c_str(), what.c_str());
  }

  infer::InferenceConfig config;
  config.design = ParseDesign(design_name);
  if (!host_suffix.empty()) {
    config.host_suffix = host_suffix;
  }
  infer::BatchConfig batch;
  batch.threads = threads;
  batch.db_build_shards = db_build_threads;
  if (!quiet) {
    batch.progress = [](size_t done, size_t total_traces) {
      std::fprintf(stderr, "  ...%zu/%zu traces\n", done, total_traces);
    };
  }
  infer::BatchAnalyzer analyzer(&manifest, config, batch);

  std::vector<infer::InferenceResult> results;
  std::vector<double> trace_seconds;
  std::vector<std::string> trace_errors;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeat; ++r) {
    results = analyzer.AnalyzeAll(traces, &trace_seconds, &trace_errors);
  }
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

  if (!quiet) {
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("  %-40s %4zu sequence(s)%s  %.3f s\n", loaded_paths[i].c_str(),
                  results[i].sequences.size(), results[i].truncated ? " (truncated)" : "",
                  trace_seconds[i]);
    }
  }
  const double sessions = static_cast<double>(traces.size()) * repeat;
  std::printf("analyzed %.0f session(s) in %.3f s on %d worker(s): %.2f sessions/sec\n",
              sessions, elapsed.count(), analyzer.threads(),
              sessions / std::max(elapsed.count(), 1e-9));
  if (!trace_seconds.empty()) {
    RunningStats per_trace;
    for (double s : trace_seconds) {
      per_trace.Add(s);
    }
    std::printf("per-trace seconds (last repeat): min %.4f  mean %.4f  p95 %.4f  max %.4f\n",
                per_trace.min(), per_trace.mean(),
                Percentile(trace_seconds, 95.0), per_trace.max());
  }

  bool metrics_ok = true;
  if (!metrics_out.empty()) {
    metrics_ok = WriteMetrics(metrics_out, metrics_format);
  }
  // Analyze failures mirror load failures: every bad trace is reported by
  // name, the good results above still stand, and the exit status is the
  // only thing that turns red.
  size_t analyze_failures = 0;
  for (size_t i = 0; i < trace_errors.size(); ++i) {
    if (trace_errors[i].empty()) {
      continue;
    }
    if (analyze_failures == 0) {
      std::fprintf(stderr, "error: analysis failed for some trace(s):\n");
    }
    ++analyze_failures;
    std::fprintf(stderr, "  %s: %s\n", loaded_paths[i].c_str(), trace_errors[i].c_str());
  }
  if (!failures.empty()) {
    std::fprintf(stderr, "error: %zu of %zu pcap(s) failed to load:\n", failures.size(),
                 pcap_paths.size());
    for (const auto& [path, what] : failures) {
      std::fprintf(stderr, "  %s: %s\n", path.c_str(), what.c_str());
    }
    return 1;
  }
  if (analyze_failures > 0) {
    return 1;
  }
  return metrics_ok ? 0 : 1;
}
