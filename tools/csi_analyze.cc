// csi_analyze — offline CSI analysis of an encrypted capture.
//
// Usage:
//   csi_analyze --pcap session.pcap --manifest video.manifest --design SH
//               [--host suffix] [--max-sequences N] [--report sequence|qoe|both]
//               [--db-build-threads N]
//               [--cache NAME=on|off] [--cache-mb NAME=N]
//               [--metrics-out FILE] [--metrics-format json|prom]
//               [--trace-out FILE] [--trace-mode full|flight] [--audit-out FILE]
//
// Inputs are exactly what a real deployment has (paper §4): a tcpdump pcap of
// the encrypted session and the chunk-size manifest collected ahead of time.
// Prints the inferred chunk sequence(s) and/or the derived QoE report.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/capture/packet_columns.h"
#include "src/capture/pcap_io.h"
#include "src/common/table.h"
#include "src/common/tracing.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/inference.h"
#include "src/csi/qoe.h"
#include "tools/cli_options.h"

using namespace csi;

namespace {

[[noreturn]] void Usage(const char* error) {
  if (error != nullptr) {
    std::fprintf(stderr, "error: %s\n\n", error);
  }
  std::fprintf(stderr,
               "usage: csi_analyze --pcap FILE --manifest FILE --design CH|SH|CQ|SQ\n"
               "                   [--host SUFFIX] [--max-sequences N]\n"
               "                   [--report sequence|qoe|both] [--db-build-threads N]\n"
               "                   [--cache NAME=on|off] [--cache-mb NAME=N]\n"
               "                   (NAME in {result, prefix, candidate}; legacy\n"
               "                   --candidate-cache*/--prefix-cache* flags still accepted)\n"
               "                   [--metrics-out FILE] [--metrics-format json|prom]\n"
               "                   [--trace-out FILE] [--trace-mode full|flight]\n"
               "                   [--audit-out FILE]\n");
  std::exit(error == nullptr ? 0 : 2);
}

}  // namespace

int main(int argc, char** argv) {
  tools::CommonOptions common;
  std::string pcap_path;
  std::string report = "both";
  int max_sequences = 512;

  tools::FlagParser parser;
  common.Register(&parser);
  parser.AddString("--pcap", &pcap_path);
  parser.AddString("--report", &report);
  parser.AddInt("--max-sequences", &max_sequences);

  std::string error;
  if (!parser.Parse(argc, argv, nullptr, &error)) {
    Usage(error.c_str());
  }
  if (parser.help_requested()) {
    Usage(nullptr);
  }
  if (pcap_path.empty()) {
    Usage("--pcap, --manifest and --design are required");
  }
  if (!common.Validate(&error)) {
    Usage(error.c_str());
  }
  if (report != "sequence" && report != "qoe" && report != "both") {
    Usage("--report must be sequence, qoe or both");
  }

  std::string manifest_text;
  if (!tools::ReadFileToString(common.manifest_path, &manifest_text, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  // Before the database build so the build spans land in the trace.
  tools::StartTraceSessionIfRequested(common);
  const media::Manifest manifest = media::Manifest::Parse(manifest_text);
  // Transpose to the columnar layout right after the pcap parse; the AoS
  // trace never reaches the engine.
  const capture::PacketColumns columns =
      capture::PacketColumns::Build(capture::ReadPcap(pcap_path));
  std::printf("loaded %zu packets, manifest %s: %d video tracks x %d chunks%s\n",
              columns.packet_count(), manifest.asset_id.c_str(),
              manifest.num_video_tracks(), manifest.num_positions(),
              manifest.has_separate_audio() ? " + audio" : "");

  infer::InferenceConfig config;
  config.design = common.design();
  config.max_sequences = max_sequences;
  config.db_build_shards = common.db_build_threads;
  if (!common.host_suffix.empty()) {
    config.host_suffix = common.host_suffix;
  }
  // Single-trace runs still profit within the trace (repeated group
  // signatures across SQ groups); the cache also feeds the hit-rate metrics.
  if (const int cache_mb = common.candidate_cache_budget_mb();
      cache_mb > 0 && !infer::GroupCandidateCache::EnvForcesOff()) {
    config.candidate_cache = std::make_shared<infer::GroupCandidateCache>(
        static_cast<size_t>(cache_mb) * 1024 * 1024);
  }
  // One trace means at most one prefix entry, but attaching the cache keeps
  // the lookup metrics and trace instants exercised on the single-shot tool.
  if (const int cache_mb = common.prefix_cache_budget_mb();
      cache_mb > 0 && !infer::AnalysisPrefixCache::EnvForcesOff()) {
    config.prefix_cache = std::make_shared<infer::AnalysisPrefixCache>(
        static_cast<size_t>(cache_mb) * 1024 * 1024);
  }
  // Same reasoning for the whole-result tier: a single shot can only miss,
  // but the lookup path and its metrics stay exercised.
  if (const int cache_mb = common.result_cache_budget_mb();
      cache_mb > 0 && !infer::ResultCache::EnvForcesOff()) {
    config.caches.result = std::make_shared<infer::ResultCache>(
        static_cast<size_t>(cache_mb) * 1024 * 1024);
  }
  const infer::InferenceEngine engine(&manifest, config);
  infer::InferenceAudit audit;
  infer::InferenceResult result;
  try {
    result = engine.Analyze(columns, {}, &audit);
  } catch (const std::exception& e) {
    // Same post-mortem path as BatchAnalyzer: a flight-mode session dumps the
    // last events before the error surfaces.
    trace::TraceSession::Global().DumpFlightRecord(pcap_path, e.what());
    std::fprintf(stderr, "error: analysis failed: %s\n", e.what());
    return 1;
  }
  // Snapshot right after Analyze so the export happens even on the
  // no-sequence early exit below.
  if (!common.metrics_out.empty() &&
      !tools::WriteMetricsSnapshot(common.metrics_out, common.metrics_format, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!common.audit_out.empty() &&
      !tools::WriteAuditJsonl(common.audit_out, {pcap_path}, {audit}, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!tools::FinishTraceSession(common, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::printf("inference: %zu candidate sequence(s)%s\n", result.sequences.size(),
              result.truncated ? " (truncated)" : "");
  {
    const std::string cache_block = tools::FormatCacheSummaryBlock(
        config.caches.result.get(), config.prefix_cache.get(), config.candidate_cache.get());
    if (!cache_block.empty()) {
      std::printf("%s\n", cache_block.c_str());
    }
  }
  std::printf("\n");
  if (result.sequences.empty()) {
    std::fprintf(stderr, "no matching chunk sequence found — wrong manifest or design?\n");
    return 1;
  }
  const infer::InferredSequence& best = result.sequences.front();

  if (report == "sequence" || report == "both") {
    TextTable table;
    table.SetHeader({"request (s)", "kind", "track", "index", "estimated bytes"});
    for (const auto& slot : best.slots) {
      const char* kind = slot.kind == infer::SlotKind::kVideo   ? "video"
                         : slot.kind == infer::SlotKind::kAudio ? "audio"
                                                                : "other";
      table.AddRow({FormatDouble(UsToSeconds(slot.request_time), 2), kind,
                    slot.kind == infer::SlotKind::kOther
                        ? "-"
                        : manifest.TrackOf(slot.chunk).name,
                    slot.kind == infer::SlotKind::kOther ? "-"
                                                         : std::to_string(slot.chunk.index),
                    std::to_string(slot.estimated_size)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  if (report == "qoe" || report == "both") {
    const infer::QoeReport qoe = infer::AnalyzeQoe(best, manifest);
    TextTable table;
    table.SetHeader({"metric", "value"});
    table.AddRow({"avg delivered bitrate",
                  FormatDouble(qoe.avg_bitrate / 1000.0, 0) + " kbps"});
    table.AddRow({"startup delay", FormatDouble(UsToSeconds(qoe.startup_delay), 2) + " s"});
    table.AddRow({"stalls", std::to_string(qoe.stall_count)});
    table.AddRow({"total stall time", FormatDouble(UsToSeconds(qoe.total_stall), 2) + " s"});
    table.AddRow({"track switches", std::to_string(qoe.track_switches)});
    table.AddRow({"data usage", FormatBytes(static_cast<double>(qoe.data_usage))});
    for (int t = 0; t < manifest.num_video_tracks(); ++t) {
      table.AddRow({"time on " + manifest.video_tracks[static_cast<size_t>(t)].name,
                    FormatDouble(100 * qoe.track_time_fraction[static_cast<size_t>(t)], 1) +
                        " %"});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}
