// csi_analyze — offline CSI analysis of an encrypted capture.
//
// Usage:
//   csi_analyze --pcap session.pcap --manifest video.manifest --design SH
//               [--host suffix] [--max-sequences N] [--report sequence|qoe|both]
//               [--metrics-out FILE] [--metrics-format json|prom]
//
// Inputs are exactly what a real deployment has (paper §4): a tcpdump pcap of
// the encrypted session and the chunk-size manifest collected ahead of time.
// Prints the inferred chunk sequence(s) and/or the derived QoE report.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/capture/pcap_io.h"
#include "src/common/table.h"
#include "src/common/telemetry.h"
#include "src/csi/inference.h"
#include "src/csi/qoe.h"

using namespace csi;

namespace {

[[noreturn]] void Usage(const char* error) {
  if (error != nullptr) {
    std::fprintf(stderr, "error: %s\n\n", error);
  }
  std::fprintf(stderr,
               "usage: csi_analyze --pcap FILE --manifest FILE --design CH|SH|CQ|SQ\n"
               "                   [--host SUFFIX] [--max-sequences N]\n"
               "                   [--report sequence|qoe|both]\n"
               "                   [--metrics-out FILE] [--metrics-format json|prom]\n");
  std::exit(error == nullptr ? 0 : 2);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

infer::DesignType ParseDesign(const std::string& name) {
  if (name == "CH") {
    return infer::DesignType::kCH;
  }
  if (name == "SH") {
    return infer::DesignType::kSH;
  }
  if (name == "CQ") {
    return infer::DesignType::kCQ;
  }
  if (name == "SQ") {
    return infer::DesignType::kSQ;
  }
  Usage("unknown design type (expected CH, SH, CQ or SQ)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string pcap_path;
  std::string manifest_path;
  std::string design_name;
  std::string host_suffix;
  std::string report = "both";
  std::string metrics_out;
  std::string metrics_format = "json";
  int max_sequences = 512;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage(("missing value for " + arg).c_str());
      }
      return argv[++i];
    };
    if (arg == "--pcap") {
      pcap_path = next();
    } else if (arg == "--manifest") {
      manifest_path = next();
    } else if (arg == "--design") {
      design_name = next();
    } else if (arg == "--host") {
      host_suffix = next();
    } else if (arg == "--max-sequences") {
      max_sequences = std::stoi(next());
    } else if (arg == "--report") {
      report = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--metrics-format") {
      metrics_format = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown argument: " + arg).c_str());
    }
  }
  if (pcap_path.empty() || manifest_path.empty() || design_name.empty()) {
    Usage("--pcap, --manifest and --design are required");
  }
  if (report != "sequence" && report != "qoe" && report != "both") {
    Usage("--report must be sequence, qoe or both");
  }
  if (metrics_format != "json" && metrics_format != "prom") {
    Usage("--metrics-format must be json or prom");
  }

  const media::Manifest manifest = media::Manifest::Parse(ReadFileOrDie(manifest_path));
  const capture::CaptureTrace trace = capture::ReadPcap(pcap_path);
  std::printf("loaded %zu packets, manifest %s: %d video tracks x %d chunks%s\n",
              trace.size(), manifest.asset_id.c_str(), manifest.num_video_tracks(),
              manifest.num_positions(),
              manifest.has_separate_audio() ? " + audio" : "");

  infer::InferenceConfig config;
  config.design = ParseDesign(design_name);
  config.max_sequences = max_sequences;
  if (!host_suffix.empty()) {
    config.host_suffix = host_suffix;
  }
  const infer::InferenceEngine engine(&manifest, config);
  const infer::InferenceResult result = engine.Analyze(trace);
  // Snapshot right after Analyze so the export happens even on the
  // no-sequence early exit below.
  if (!metrics_out.empty()) {
    const telemetry::MetricsSnapshot snapshot =
        telemetry::MetricsRegistry::Global().Snapshot();
    std::ofstream metrics(metrics_out, std::ios::binary);
    if (!metrics) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n", metrics_out.c_str());
      return 2;
    }
    metrics << (metrics_format == "prom" ? snapshot.ToPrometheus() : snapshot.ToJson());
  }
  std::printf("inference: %zu candidate sequence(s)%s\n\n", result.sequences.size(),
              result.truncated ? " (truncated)" : "");
  if (result.sequences.empty()) {
    std::fprintf(stderr, "no matching chunk sequence found — wrong manifest or design?\n");
    return 1;
  }
  const infer::InferredSequence& best = result.sequences.front();

  if (report == "sequence" || report == "both") {
    TextTable table;
    table.SetHeader({"request (s)", "kind", "track", "index", "estimated bytes"});
    for (const auto& slot : best.slots) {
      const char* kind = slot.kind == infer::SlotKind::kVideo   ? "video"
                         : slot.kind == infer::SlotKind::kAudio ? "audio"
                                                                : "other";
      table.AddRow({FormatDouble(UsToSeconds(slot.request_time), 2), kind,
                    slot.kind == infer::SlotKind::kOther
                        ? "-"
                        : manifest.TrackOf(slot.chunk).name,
                    slot.kind == infer::SlotKind::kOther ? "-"
                                                         : std::to_string(slot.chunk.index),
                    std::to_string(slot.estimated_size)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  if (report == "qoe" || report == "both") {
    const infer::QoeReport qoe = infer::AnalyzeQoe(best, manifest);
    TextTable table;
    table.SetHeader({"metric", "value"});
    table.AddRow({"avg delivered bitrate",
                  FormatDouble(qoe.avg_bitrate / 1000.0, 0) + " kbps"});
    table.AddRow({"startup delay", FormatDouble(UsToSeconds(qoe.startup_delay), 2) + " s"});
    table.AddRow({"stalls", std::to_string(qoe.stall_count)});
    table.AddRow({"total stall time", FormatDouble(UsToSeconds(qoe.total_stall), 2) + " s"});
    table.AddRow({"track switches", std::to_string(qoe.track_switches)});
    table.AddRow({"data usage", FormatBytes(static_cast<double>(qoe.data_usage))});
    for (int t = 0; t < manifest.num_video_tracks(); ++t) {
      table.AddRow({"time on " + manifest.video_tracks[static_cast<size_t>(t)].name,
                    FormatDouble(100 * qoe.track_time_fraction[static_cast<size_t>(t)], 1) +
                        " %"});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  return 0;
}
