file(REMOVE_RECURSE
  "CMakeFiles/csi_testgen.dir/csi_testgen.cc.o"
  "CMakeFiles/csi_testgen.dir/csi_testgen.cc.o.d"
  "csi_testgen"
  "csi_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
