# Empty dependencies file for csi_testgen.
# This may be replaced when dependencies are built.
