# Empty dependencies file for csi_analyze.
# This may be replaced when dependencies are built.
