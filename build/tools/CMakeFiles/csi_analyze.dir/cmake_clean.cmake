file(REMOVE_RECURSE
  "CMakeFiles/csi_analyze.dir/csi_analyze.cc.o"
  "CMakeFiles/csi_analyze.dir/csi_analyze.cc.o.d"
  "csi_analyze"
  "csi_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
