
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec32_size_estimation.cc" "bench/CMakeFiles/bench_sec32_size_estimation.dir/bench_sec32_size_estimation.cc.o" "gcc" "bench/CMakeFiles/bench_sec32_size_estimation.dir/bench_sec32_size_estimation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/csi_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/csi/CMakeFiles/csi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/csi_player.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/csi_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/csi_app.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/csi_media.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/csi_http.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/csi_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/csi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nettrace/CMakeFiles/csi_nettrace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/csi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
