# Empty compiler generated dependencies file for bench_sec32_size_estimation.
# This may be replaced when dependencies are built.
