file(REMOVE_RECURSE
  "CMakeFiles/bench_sec623_computation_time.dir/bench_sec623_computation_time.cc.o"
  "CMakeFiles/bench_sec623_computation_time.dir/bench_sec623_computation_time.cc.o.d"
  "bench_sec623_computation_time"
  "bench_sec623_computation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec623_computation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
