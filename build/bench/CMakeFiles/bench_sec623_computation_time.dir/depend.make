# Empty dependencies file for bench_sec623_computation_time.
# This may be replaced when dependencies are built.
