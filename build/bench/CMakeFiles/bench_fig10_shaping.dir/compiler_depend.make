# Empty compiler generated dependencies file for bench_fig10_shaping.
# This may be replaced when dependencies are built.
