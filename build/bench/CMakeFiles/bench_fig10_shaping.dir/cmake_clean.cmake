file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_shaping.dir/bench_fig10_shaping.cc.o"
  "CMakeFiles/bench_fig10_shaping.dir/bench_fig10_shaping.cc.o.d"
  "bench_fig10_shaping"
  "bench_fig10_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
