file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_uniqueness.dir/bench_fig5_uniqueness.cc.o"
  "CMakeFiles/bench_fig5_uniqueness.dir/bench_fig5_uniqueness.cc.o.d"
  "bench_fig5_uniqueness"
  "bench_fig5_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
