# Empty compiler generated dependencies file for bench_fig5_uniqueness.
# This may be replaced when dependencies are built.
