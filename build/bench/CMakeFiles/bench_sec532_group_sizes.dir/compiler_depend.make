# Empty compiler generated dependencies file for bench_sec532_group_sizes.
# This may be replaced when dependencies are built.
