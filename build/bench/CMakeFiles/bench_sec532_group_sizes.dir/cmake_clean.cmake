file(REMOVE_RECURSE
  "CMakeFiles/bench_sec532_group_sizes.dir/bench_sec532_group_sizes.cc.o"
  "CMakeFiles/bench_sec532_group_sizes.dir/bench_sec532_group_sizes.cc.o.d"
  "bench_sec532_group_sizes"
  "bench_sec532_group_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec532_group_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
