# Empty dependencies file for bench_fig4_chunk_sizes.
# This may be replaced when dependencies are built.
