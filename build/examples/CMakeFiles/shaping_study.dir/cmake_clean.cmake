file(REMOVE_RECURSE
  "CMakeFiles/shaping_study.dir/shaping_study.cpp.o"
  "CMakeFiles/shaping_study.dir/shaping_study.cpp.o.d"
  "shaping_study"
  "shaping_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shaping_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
