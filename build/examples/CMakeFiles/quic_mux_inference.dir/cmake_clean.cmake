file(REMOVE_RECURSE
  "CMakeFiles/quic_mux_inference.dir/quic_mux_inference.cpp.o"
  "CMakeFiles/quic_mux_inference.dir/quic_mux_inference.cpp.o.d"
  "quic_mux_inference"
  "quic_mux_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_mux_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
