# Empty dependencies file for quic_mux_inference.
# This may be replaced when dependencies are built.
