
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csi/chunk_database.cc" "src/csi/CMakeFiles/csi_core.dir/chunk_database.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/chunk_database.cc.o.d"
  "/root/repo/src/csi/displayed_info.cc" "src/csi/CMakeFiles/csi_core.dir/displayed_info.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/displayed_info.cc.o.d"
  "/root/repo/src/csi/flow_classifier.cc" "src/csi/CMakeFiles/csi_core.dir/flow_classifier.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/flow_classifier.cc.o.d"
  "/root/repo/src/csi/group_search.cc" "src/csi/CMakeFiles/csi_core.dir/group_search.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/group_search.cc.o.d"
  "/root/repo/src/csi/inference.cc" "src/csi/CMakeFiles/csi_core.dir/inference.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/inference.cc.o.d"
  "/root/repo/src/csi/metadata_collector.cc" "src/csi/CMakeFiles/csi_core.dir/metadata_collector.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/metadata_collector.cc.o.d"
  "/root/repo/src/csi/path_search.cc" "src/csi/CMakeFiles/csi_core.dir/path_search.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/path_search.cc.o.d"
  "/root/repo/src/csi/qoe.cc" "src/csi/CMakeFiles/csi_core.dir/qoe.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/qoe.cc.o.d"
  "/root/repo/src/csi/size_estimator.cc" "src/csi/CMakeFiles/csi_core.dir/size_estimator.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/size_estimator.cc.o.d"
  "/root/repo/src/csi/splitter.cc" "src/csi/CMakeFiles/csi_core.dir/splitter.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/splitter.cc.o.d"
  "/root/repo/src/csi/uniqueness.cc" "src/csi/CMakeFiles/csi_core.dir/uniqueness.cc.o" "gcc" "src/csi/CMakeFiles/csi_core.dir/uniqueness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/csi_media.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/csi_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/csi_player.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/csi_http.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/csi_app.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/csi_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/csi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nettrace/CMakeFiles/csi_nettrace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
