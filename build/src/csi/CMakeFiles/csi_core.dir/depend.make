# Empty dependencies file for csi_core.
# This may be replaced when dependencies are built.
