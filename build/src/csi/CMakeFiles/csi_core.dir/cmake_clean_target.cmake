file(REMOVE_RECURSE
  "libcsi_core.a"
)
