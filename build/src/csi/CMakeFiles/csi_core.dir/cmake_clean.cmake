file(REMOVE_RECURSE
  "CMakeFiles/csi_core.dir/chunk_database.cc.o"
  "CMakeFiles/csi_core.dir/chunk_database.cc.o.d"
  "CMakeFiles/csi_core.dir/displayed_info.cc.o"
  "CMakeFiles/csi_core.dir/displayed_info.cc.o.d"
  "CMakeFiles/csi_core.dir/flow_classifier.cc.o"
  "CMakeFiles/csi_core.dir/flow_classifier.cc.o.d"
  "CMakeFiles/csi_core.dir/group_search.cc.o"
  "CMakeFiles/csi_core.dir/group_search.cc.o.d"
  "CMakeFiles/csi_core.dir/inference.cc.o"
  "CMakeFiles/csi_core.dir/inference.cc.o.d"
  "CMakeFiles/csi_core.dir/metadata_collector.cc.o"
  "CMakeFiles/csi_core.dir/metadata_collector.cc.o.d"
  "CMakeFiles/csi_core.dir/path_search.cc.o"
  "CMakeFiles/csi_core.dir/path_search.cc.o.d"
  "CMakeFiles/csi_core.dir/qoe.cc.o"
  "CMakeFiles/csi_core.dir/qoe.cc.o.d"
  "CMakeFiles/csi_core.dir/size_estimator.cc.o"
  "CMakeFiles/csi_core.dir/size_estimator.cc.o.d"
  "CMakeFiles/csi_core.dir/splitter.cc.o"
  "CMakeFiles/csi_core.dir/splitter.cc.o.d"
  "CMakeFiles/csi_core.dir/uniqueness.cc.o"
  "CMakeFiles/csi_core.dir/uniqueness.cc.o.d"
  "libcsi_core.a"
  "libcsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
