file(REMOVE_RECURSE
  "CMakeFiles/csi_transport.dir/quic_connection.cc.o"
  "CMakeFiles/csi_transport.dir/quic_connection.cc.o.d"
  "CMakeFiles/csi_transport.dir/tcp_connection.cc.o"
  "CMakeFiles/csi_transport.dir/tcp_connection.cc.o.d"
  "libcsi_transport.a"
  "libcsi_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
