# Empty dependencies file for csi_transport.
# This may be replaced when dependencies are built.
