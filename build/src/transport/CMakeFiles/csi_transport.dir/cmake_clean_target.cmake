file(REMOVE_RECURSE
  "libcsi_transport.a"
)
