file(REMOVE_RECURSE
  "CMakeFiles/csi_sim.dir/simulator.cc.o"
  "CMakeFiles/csi_sim.dir/simulator.cc.o.d"
  "libcsi_sim.a"
  "libcsi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
