# Empty dependencies file for csi_sim.
# This may be replaced when dependencies are built.
