file(REMOVE_RECURSE
  "libcsi_sim.a"
)
