# Empty compiler generated dependencies file for csi_net.
# This may be replaced when dependencies are built.
