file(REMOVE_RECURSE
  "CMakeFiles/csi_net.dir/link.cc.o"
  "CMakeFiles/csi_net.dir/link.cc.o.d"
  "CMakeFiles/csi_net.dir/token_bucket.cc.o"
  "CMakeFiles/csi_net.dir/token_bucket.cc.o.d"
  "libcsi_net.a"
  "libcsi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
