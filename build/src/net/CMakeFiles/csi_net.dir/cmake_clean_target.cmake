file(REMOVE_RECURSE
  "libcsi_net.a"
)
