file(REMOVE_RECURSE
  "libcsi_player.a"
)
