file(REMOVE_RECURSE
  "CMakeFiles/csi_player.dir/abr_player.cc.o"
  "CMakeFiles/csi_player.dir/abr_player.cc.o.d"
  "CMakeFiles/csi_player.dir/adaptation.cc.o"
  "CMakeFiles/csi_player.dir/adaptation.cc.o.d"
  "libcsi_player.a"
  "libcsi_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
