# Empty dependencies file for csi_player.
# This may be replaced when dependencies are built.
