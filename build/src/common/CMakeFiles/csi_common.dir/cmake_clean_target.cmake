file(REMOVE_RECURSE
  "libcsi_common.a"
)
