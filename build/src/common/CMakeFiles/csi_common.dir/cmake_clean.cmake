file(REMOVE_RECURSE
  "CMakeFiles/csi_common.dir/rng.cc.o"
  "CMakeFiles/csi_common.dir/rng.cc.o.d"
  "CMakeFiles/csi_common.dir/stats.cc.o"
  "CMakeFiles/csi_common.dir/stats.cc.o.d"
  "CMakeFiles/csi_common.dir/table.cc.o"
  "CMakeFiles/csi_common.dir/table.cc.o.d"
  "libcsi_common.a"
  "libcsi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
