# Empty dependencies file for csi_common.
# This may be replaced when dependencies are built.
