file(REMOVE_RECURSE
  "CMakeFiles/csi_testbed.dir/experiment.cc.o"
  "CMakeFiles/csi_testbed.dir/experiment.cc.o.d"
  "CMakeFiles/csi_testbed.dir/metrics.cc.o"
  "CMakeFiles/csi_testbed.dir/metrics.cc.o.d"
  "CMakeFiles/csi_testbed.dir/session.cc.o"
  "CMakeFiles/csi_testbed.dir/session.cc.o.d"
  "libcsi_testbed.a"
  "libcsi_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
