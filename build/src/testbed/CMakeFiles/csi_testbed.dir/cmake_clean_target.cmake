file(REMOVE_RECURSE
  "libcsi_testbed.a"
)
