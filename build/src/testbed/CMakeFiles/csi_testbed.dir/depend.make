# Empty dependencies file for csi_testbed.
# This may be replaced when dependencies are built.
