file(REMOVE_RECURSE
  "CMakeFiles/csi_nettrace.dir/bandwidth_trace.cc.o"
  "CMakeFiles/csi_nettrace.dir/bandwidth_trace.cc.o.d"
  "libcsi_nettrace.a"
  "libcsi_nettrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_nettrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
