file(REMOVE_RECURSE
  "libcsi_nettrace.a"
)
