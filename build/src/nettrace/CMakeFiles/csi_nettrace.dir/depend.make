# Empty dependencies file for csi_nettrace.
# This may be replaced when dependencies are built.
