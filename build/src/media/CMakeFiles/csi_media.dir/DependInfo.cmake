
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/encoder.cc" "src/media/CMakeFiles/csi_media.dir/encoder.cc.o" "gcc" "src/media/CMakeFiles/csi_media.dir/encoder.cc.o.d"
  "/root/repo/src/media/ladder.cc" "src/media/CMakeFiles/csi_media.dir/ladder.cc.o" "gcc" "src/media/CMakeFiles/csi_media.dir/ladder.cc.o.d"
  "/root/repo/src/media/manifest.cc" "src/media/CMakeFiles/csi_media.dir/manifest.cc.o" "gcc" "src/media/CMakeFiles/csi_media.dir/manifest.cc.o.d"
  "/root/repo/src/media/scene_model.cc" "src/media/CMakeFiles/csi_media.dir/scene_model.cc.o" "gcc" "src/media/CMakeFiles/csi_media.dir/scene_model.cc.o.d"
  "/root/repo/src/media/service_profiles.cc" "src/media/CMakeFiles/csi_media.dir/service_profiles.cc.o" "gcc" "src/media/CMakeFiles/csi_media.dir/service_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
