file(REMOVE_RECURSE
  "CMakeFiles/csi_media.dir/encoder.cc.o"
  "CMakeFiles/csi_media.dir/encoder.cc.o.d"
  "CMakeFiles/csi_media.dir/ladder.cc.o"
  "CMakeFiles/csi_media.dir/ladder.cc.o.d"
  "CMakeFiles/csi_media.dir/manifest.cc.o"
  "CMakeFiles/csi_media.dir/manifest.cc.o.d"
  "CMakeFiles/csi_media.dir/scene_model.cc.o"
  "CMakeFiles/csi_media.dir/scene_model.cc.o.d"
  "CMakeFiles/csi_media.dir/service_profiles.cc.o"
  "CMakeFiles/csi_media.dir/service_profiles.cc.o.d"
  "libcsi_media.a"
  "libcsi_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
