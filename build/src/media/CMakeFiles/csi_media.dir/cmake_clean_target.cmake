file(REMOVE_RECURSE
  "libcsi_media.a"
)
