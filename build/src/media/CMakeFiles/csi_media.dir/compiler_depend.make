# Empty compiler generated dependencies file for csi_media.
# This may be replaced when dependencies are built.
