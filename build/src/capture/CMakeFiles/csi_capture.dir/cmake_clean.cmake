file(REMOVE_RECURSE
  "CMakeFiles/csi_capture.dir/capture.cc.o"
  "CMakeFiles/csi_capture.dir/capture.cc.o.d"
  "CMakeFiles/csi_capture.dir/pcap_io.cc.o"
  "CMakeFiles/csi_capture.dir/pcap_io.cc.o.d"
  "libcsi_capture.a"
  "libcsi_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
