file(REMOVE_RECURSE
  "libcsi_capture.a"
)
