# Empty dependencies file for csi_capture.
# This may be replaced when dependencies are built.
