
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/capture.cc" "src/capture/CMakeFiles/csi_capture.dir/capture.cc.o" "gcc" "src/capture/CMakeFiles/csi_capture.dir/capture.cc.o.d"
  "/root/repo/src/capture/pcap_io.cc" "src/capture/CMakeFiles/csi_capture.dir/pcap_io.cc.o" "gcc" "src/capture/CMakeFiles/csi_capture.dir/pcap_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/csi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/csi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nettrace/CMakeFiles/csi_nettrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
