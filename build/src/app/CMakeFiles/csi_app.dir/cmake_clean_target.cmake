file(REMOVE_RECURSE
  "libcsi_app.a"
)
