# Empty compiler generated dependencies file for csi_app.
# This may be replaced when dependencies are built.
