file(REMOVE_RECURSE
  "CMakeFiles/csi_app.dir/origin_server.cc.o"
  "CMakeFiles/csi_app.dir/origin_server.cc.o.d"
  "CMakeFiles/csi_app.dir/resource.cc.o"
  "CMakeFiles/csi_app.dir/resource.cc.o.d"
  "libcsi_app.a"
  "libcsi_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
