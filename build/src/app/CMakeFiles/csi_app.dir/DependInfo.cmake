
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/origin_server.cc" "src/app/CMakeFiles/csi_app.dir/origin_server.cc.o" "gcc" "src/app/CMakeFiles/csi_app.dir/origin_server.cc.o.d"
  "/root/repo/src/app/resource.cc" "src/app/CMakeFiles/csi_app.dir/resource.cc.o" "gcc" "src/app/CMakeFiles/csi_app.dir/resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/csi_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
