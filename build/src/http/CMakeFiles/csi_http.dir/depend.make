# Empty dependencies file for csi_http.
# This may be replaced when dependencies are built.
