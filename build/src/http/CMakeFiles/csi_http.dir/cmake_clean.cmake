file(REMOVE_RECURSE
  "CMakeFiles/csi_http.dir/http_session.cc.o"
  "CMakeFiles/csi_http.dir/http_session.cc.o.d"
  "libcsi_http.a"
  "libcsi_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
