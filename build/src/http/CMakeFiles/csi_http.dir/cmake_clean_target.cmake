file(REMOVE_RECURSE
  "libcsi_http.a"
)
