file(REMOVE_RECURSE
  "CMakeFiles/quic_test.dir/quic_test.cc.o"
  "CMakeFiles/quic_test.dir/quic_test.cc.o.d"
  "quic_test"
  "quic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
