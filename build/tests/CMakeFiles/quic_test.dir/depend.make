# Empty dependencies file for quic_test.
# This may be replaced when dependencies are built.
