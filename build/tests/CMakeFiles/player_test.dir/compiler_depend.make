# Empty compiler generated dependencies file for player_test.
# This may be replaced when dependencies are built.
