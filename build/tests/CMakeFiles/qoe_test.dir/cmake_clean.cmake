file(REMOVE_RECURSE
  "CMakeFiles/qoe_test.dir/qoe_test.cc.o"
  "CMakeFiles/qoe_test.dir/qoe_test.cc.o.d"
  "qoe_test"
  "qoe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
