# Empty dependencies file for metadata_collector_test.
# This may be replaced when dependencies are built.
