file(REMOVE_RECURSE
  "CMakeFiles/metadata_collector_test.dir/metadata_collector_test.cc.o"
  "CMakeFiles/metadata_collector_test.dir/metadata_collector_test.cc.o.d"
  "metadata_collector_test"
  "metadata_collector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
