file(REMOVE_RECURSE
  "CMakeFiles/group_search_test.dir/group_search_test.cc.o"
  "CMakeFiles/group_search_test.dir/group_search_test.cc.o.d"
  "group_search_test"
  "group_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
