# Empty compiler generated dependencies file for group_search_test.
# This may be replaced when dependencies are built.
