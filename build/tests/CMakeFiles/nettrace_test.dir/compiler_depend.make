# Empty compiler generated dependencies file for nettrace_test.
# This may be replaced when dependencies are built.
