file(REMOVE_RECURSE
  "CMakeFiles/nettrace_test.dir/nettrace_test.cc.o"
  "CMakeFiles/nettrace_test.dir/nettrace_test.cc.o.d"
  "nettrace_test"
  "nettrace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nettrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
