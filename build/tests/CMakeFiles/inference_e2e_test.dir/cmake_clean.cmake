file(REMOVE_RECURSE
  "CMakeFiles/inference_e2e_test.dir/inference_e2e_test.cc.o"
  "CMakeFiles/inference_e2e_test.dir/inference_e2e_test.cc.o.d"
  "inference_e2e_test"
  "inference_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
