# Empty dependencies file for inference_e2e_test.
# This may be replaced when dependencies are built.
