#include <gtest/gtest.h>

#include "src/csi/uniqueness.h"
#include "src/media/encoder.h"

namespace csi::infer {
namespace {

TEST(SizesSimilar, Definition) {
  // Similar with threshold k iff each size could be the other's estimate
  // source (§3.3).
  EXPECT_TRUE(SizesSimilar(100, 100, 0.01));
  EXPECT_TRUE(SizesSimilar(100, 101, 0.01));
  EXPECT_TRUE(SizesSimilar(101, 100, 0.01));
  EXPECT_FALSE(SizesSimilar(100, 102, 0.01));
  EXPECT_TRUE(SizesSimilar(100, 104, 0.05));
  EXPECT_FALSE(SizesSimilar(100, 106, 0.05));
}

media::Manifest CbrManifest() {
  media::EncoderConfig config;
  config.target_pasr = 1.0;
  config.per_track_sigma = 0.0;
  Rng rng(1);
  return media::EncodeAsset("cbr", "h", 10 * 60 * kUsPerSec, config, rng);
}

media::Manifest VbrManifest(double pasr, uint64_t seed = 2) {
  media::EncoderConfig config;
  config.target_pasr = pasr;
  Rng rng(seed);
  return media::EncodeAsset("vbr", "h", 10 * 60 * kUsPerSec, config, rng);
}

TEST(SingleChunk, CbrChunksAreNeverUnique) {
  // CBR: all chunks in a track share (nearly) one size.
  const media::Manifest m = CbrManifest();
  EXPECT_LT(UniqueSingleChunkFraction(m, 0.01), 0.01);
}

TEST(SingleChunk, VbrChunksAlmostNeverUnique) {
  // Q1 (§3.3): single chunks are almost never unique at k = 1% because
  // quantized rate control and track overlap give nearly every chunk a
  // size-twin. (The paper reports <0.1% on real encodings; our synthetic
  // encoder reaches a few percent — the deviation is documented in
  // EXPERIMENTS.md.)
  for (double pasr : {1.1, 1.5, 2.0}) {
    const media::Manifest m = VbrManifest(pasr);
    EXPECT_LT(UniqueSingleChunkFraction(m, 0.01), 0.06) << pasr;
  }
}

TEST(Sequences, FractionIncreasesWithLength) {
  const media::Manifest m = VbrManifest(1.5);
  Rng rng(3);
  double prev = -1.0;
  for (int length : {1, 2, 3, 6}) {
    const double unique = UniqueSequenceFraction(m, length, 0.01, 1500, rng);
    EXPECT_GE(unique, prev - 0.02) << length;  // monotone up to sampling noise
    prev = unique;
  }
  // Long sequences are essentially always unique (Fig. 5).
  EXPECT_GT(prev, 0.99);
}

TEST(Sequences, ShortVbrSequencesUniqueAtOnePercent) {
  // Fig. 5 shape: a short run of chunks is a strong fingerprint at k = 1%
  // for moderate PASR. (Low-PASR encodings need longer runs in our model
  // than in the paper's; see EXPERIMENTS.md.)
  const media::Manifest m = VbrManifest(1.5);
  Rng rng(4);
  EXPECT_GT(UniqueSequenceFraction(m, 3, 0.01, 2000, rng), 0.9);
  const media::Manifest low = VbrManifest(1.1);
  EXPECT_GT(UniqueSequenceFraction(low, 6, 0.01, 2000, rng), 0.85);
}

TEST(Sequences, LargerToleranceLowersUniqueness) {
  const media::Manifest m = VbrManifest(1.3);
  Rng rng(5);
  const double at_1pct = UniqueSequenceFraction(m, 3, 0.01, 1500, rng);
  const double at_5pct = UniqueSequenceFraction(m, 3, 0.05, 1500, rng);
  EXPECT_GT(at_1pct, at_5pct);
}

TEST(Sequences, SixChunksUniqueEvenAtFivePercent) {
  // §3.3: with 6 consecutive chunks, >90% unique even at k = 5%.
  const media::Manifest m = VbrManifest(1.5);
  Rng rng(6);
  EXPECT_GT(UniqueSequenceFraction(m, 6, 0.05, 1500, rng), 0.9);
  const media::Manifest high = VbrManifest(2.0);
  EXPECT_GT(UniqueSequenceFraction(high, 6, 0.05, 1500, rng), 0.95);
}

TEST(Sequences, CbrSequencesNeverUnique) {
  // With CBR every same-track sequence at any offset is similar.
  const media::Manifest m = CbrManifest();
  Rng rng(7);
  EXPECT_LT(UniqueSequenceFraction(m, 4, 0.01, 500, rng), 0.05);
}

TEST(Sequences, DegenerateInputs) {
  const media::Manifest m = VbrManifest(1.5);
  Rng rng(8);
  EXPECT_EQ(UniqueSequenceFraction(m, 10000, 0.01, 100, rng), 0.0);  // longer than video
  EXPECT_EQ(UniqueSequenceFraction(m, 3, 0.01, 0, rng), 0.0);        // no samples
}

}  // namespace
}  // namespace csi::infer
