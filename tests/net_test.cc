#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/link.h"
#include "src/net/loss_model.h"
#include "src/net/packet.h"
#include "src/net/token_bucket.h"
#include "src/nettrace/bandwidth_trace.h"
#include "src/sim/simulator.h"

namespace csi::net {
namespace {

Packet MakeDataPacket(Bytes payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(Packet, WireSizeIncludesHeaders) {
  Packet tcp;
  tcp.transport = Transport::kTcp;
  tcp.payload = 1000;
  EXPECT_EQ(tcp.WireSize(), 1000 + kIpHeaderBytes + kTcpHeaderBytes);
  Packet udp;
  udp.transport = Transport::kUdp;
  udp.payload = 1000;
  EXPECT_EQ(udp.WireSize(), 1000 + kIpHeaderBytes + kUdpHeaderBytes);
}

TEST(Link, SerializationTiming) {
  sim::Simulator sim;
  // 1460-payload TCP packet = 1500 wire bytes at 12 Mbps = 1 ms + 5 ms prop.
  const auto trace = nettrace::StableTrace("t", 12 * kMbps);
  LinkConfig config;
  config.trace = &trace;
  config.propagation_delay = 5 * kUsPerMs;
  std::vector<TimeUs> arrivals;
  Link link(&sim, config, std::make_unique<NoLoss>(), Rng(1),
            [&](const Packet&) { arrivals.push_back(sim.Now()); });
  link.Send(MakeDataPacket(1460));
  sim.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 6 * kUsPerMs);
}

TEST(Link, BackToBackPacketsQueue) {
  sim::Simulator sim;
  const auto trace = nettrace::StableTrace("t", 12 * kMbps);
  LinkConfig config;
  config.trace = &trace;
  config.propagation_delay = 0;
  std::vector<TimeUs> arrivals;
  Link link(&sim, config, std::make_unique<NoLoss>(), Rng(1),
            [&](const Packet&) { arrivals.push_back(sim.Now()); });
  for (int i = 0; i < 3; ++i) {
    link.Send(MakeDataPacket(1460));
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1 * kUsPerMs);
  EXPECT_EQ(arrivals[1], 2 * kUsPerMs);
  EXPECT_EQ(arrivals[2], 3 * kUsPerMs);
}

TEST(Link, DropTailOnQueueOverflow) {
  sim::Simulator sim;
  const auto trace = nettrace::StableTrace("t", 1 * kMbps);
  LinkConfig config;
  config.trace = &trace;
  config.queue_limit = 3000;  // fits ~2 full packets
  int delivered = 0;
  Link link(&sim, config, std::make_unique<NoLoss>(), Rng(1),
            [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    link.Send(MakeDataPacket(1460));
  }
  sim.Run();
  EXPECT_EQ(delivered, link.packets_delivered());
  EXPECT_LT(delivered, 10);
  EXPECT_EQ(link.packets_dropped(), 10 - delivered);
}

TEST(Link, RandomLossDropsApproximately) {
  sim::Simulator sim;
  LinkConfig config;  // infinitely fast
  config.queue_limit = 0;  // unbounded: isolate random loss from drop-tail
  int delivered = 0;
  Link link(&sim, config, std::make_unique<BernoulliLoss>(0.2), Rng(7),
            [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 5000; ++i) {
    link.Send(MakeDataPacket(100));
  }
  sim.Run();
  EXPECT_NEAR(delivered / 5000.0, 0.8, 0.03);
}

TEST(Link, UnlimitedWhenNoTrace) {
  sim::Simulator sim;
  LinkConfig config;
  config.propagation_delay = 2 * kUsPerMs;
  std::vector<TimeUs> arrivals;
  Link link(&sim, config, std::make_unique<NoLoss>(), Rng(1),
            [&](const Packet&) { arrivals.push_back(sim.Now()); });
  link.Send(MakeDataPacket(100000));
  sim.Run();
  EXPECT_EQ(arrivals[0], 2 * kUsPerMs);
}

TEST(LossModel, GilbertElliottBursts) {
  GilbertElliottLoss ge(/*p_good_to_bad=*/0.01, /*p_bad_to_good=*/0.2, /*loss_good=*/0.0,
                        /*loss_bad=*/0.8);
  Rng rng(11);
  int losses = 0;
  int longest_burst = 0;
  int burst = 0;
  for (int i = 0; i < 50000; ++i) {
    if (ge.ShouldDrop(rng)) {
      ++losses;
      ++burst;
      longest_burst = std::max(longest_burst, burst);
    } else {
      burst = 0;
    }
  }
  EXPECT_GT(losses, 100);
  EXPECT_GE(longest_burst, 3);  // bursty, not independent
}

// --- Token bucket (the §7 shaper) ---

TEST(TokenBucket, BurstsUpToBucketSize) {
  sim::Simulator sim;
  TokenBucketConfig config;
  config.rate = 1 * kMbps;
  config.bucket_size = 5000;
  std::vector<TimeUs> arrivals;
  TokenBucket tb(&sim, config, [&](const Packet&) { arrivals.push_back(sim.Now()); });
  // Three 1500-wire-byte packets fit the initial bucket; the fourth waits.
  for (int i = 0; i < 4; ++i) {
    tb.Send(MakeDataPacket(1460));
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(arrivals[0], 0);
  EXPECT_EQ(arrivals[1], 0);
  EXPECT_EQ(arrivals[2], 0);
  EXPECT_GT(arrivals[3], 0);
}

TEST(TokenBucket, SustainedRateMatchesTokenRate) {
  sim::Simulator sim;
  TokenBucketConfig config;
  config.rate = 2 * kMbps;
  config.bucket_size = 2000;
  Bytes delivered_bytes = 0;
  TimeUs last_arrival = 0;
  TokenBucket tb(&sim, config, [&](const Packet& p) {
    delivered_bytes += p.WireSize();
    last_arrival = sim.Now();
  });
  for (int i = 0; i < 200; ++i) {
    tb.Send(MakeDataPacket(1460));
  }
  sim.Run();
  // Long-run throughput ~ r.
  const double rate = static_cast<double>(delivered_bytes) * 8.0 / UsToSeconds(last_arrival);
  EXPECT_NEAR(rate, 2 * kMbps, 0.1 * kMbps);
}

TEST(TokenBucket, TokensRefillWhileIdle) {
  sim::Simulator sim;
  TokenBucketConfig config;
  config.rate = 8 * kMbps;  // 1 MB/s
  config.bucket_size = 50 * kKB;
  TokenBucket tb(&sim, config, [](const Packet&) {});
  // Drain the bucket.
  for (int i = 0; i < 40; ++i) {
    tb.Send(MakeDataPacket(1460));
  }
  sim.Run();
  const Bytes after_drain = tb.TokensAvailable();
  sim.RunUntil(sim.Now() + 20 * kUsPerMs);  // 20 ms -> +20 KB
  EXPECT_NEAR(static_cast<double>(tb.TokensAvailable() - after_drain), 20000.0, 2000.0);
}

TEST(TokenBucket, BucketNeverExceedsCapacity) {
  sim::Simulator sim;
  TokenBucketConfig config;
  config.rate = 10 * kMbps;
  config.bucket_size = 5000;
  TokenBucket tb(&sim, config, [](const Packet&) {});
  sim.RunUntil(10 * kUsPerSec);
  EXPECT_LE(tb.TokensAvailable(), 5000);
}

TEST(TokenBucket, QueueLimitDrops) {
  sim::Simulator sim;
  TokenBucketConfig config;
  config.rate = 100 * kKbps;
  config.bucket_size = 1500;
  config.queue_limit = 4000;
  int delivered = 0;
  TokenBucket tb(&sim, config, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 20; ++i) {
    tb.Send(MakeDataPacket(1460));
  }
  EXPECT_GT(tb.packets_dropped(), 0);
}

TEST(TokenBucket, LargerBucketAllowsBiggerBurst) {
  for (const Bytes bucket : {5 * kKB, 50 * kKB}) {
    sim::Simulator sim;
    TokenBucketConfig config;
    config.rate = 1 * kMbps;
    config.bucket_size = bucket;
    int immediate = 0;
    TokenBucket tb(&sim, config, [&](const Packet&) {
      if (sim.Now() == 0) {
        ++immediate;
      }
    });
    for (int i = 0; i < 100; ++i) {
      tb.Send(MakeDataPacket(1460));
    }
    sim.Run();
    EXPECT_NEAR(immediate, static_cast<int>(bucket / 1500), 1);
  }
}

}  // namespace
}  // namespace csi::net
