#include <gtest/gtest.h>

#include <cstdio>

#include "src/capture/capture.h"
#include "src/capture/pcap_io.h"
#include "src/sim/simulator.h"

namespace csi::capture {
namespace {

net::Packet SamplePacket(bool from_client, net::Transport transport) {
  net::Packet p;
  p.flow_id = 9;
  p.from_client = from_client;
  p.transport = transport;
  p.client_ip = 0x0A000002;
  p.server_ip = 0xC0A80001;
  p.client_port = 51234;
  p.server_port = 443;
  p.payload = 1200;
  p.tcp_seq = 777;
  p.tcp_ack = 888;
  p.quic_packet_number = 55;
  return p;
}

TEST(RecordFrom, ProjectsObservableFields) {
  net::Packet p = SamplePacket(false, net::Transport::kTcp);
  const PacketRecord r = RecordFrom(p, 123456);
  EXPECT_EQ(r.timestamp, 123456);
  EXPECT_FALSE(r.from_client);
  EXPECT_EQ(r.payload, 1200);
  EXPECT_EQ(r.wire_size, p.WireSize());
  EXPECT_EQ(r.tcp_seq, 777u);
  EXPECT_EQ(r.tcp_ack, 888u);
  EXPECT_EQ(r.client_port, 51234);
}

TEST(GatewayTap, RecordsAndForwards) {
  sim::Simulator sim;
  GatewayTap tap(&sim);
  int forwarded = 0;
  auto sink = tap.Tap([&](const net::Packet&) { ++forwarded; });
  sim.ScheduleAt(500, [&] { sink(SamplePacket(true, net::Transport::kUdp)); });
  sim.Run();
  EXPECT_EQ(forwarded, 1);
  ASSERT_EQ(tap.trace().size(), 1u);
  EXPECT_EQ(tap.trace()[0].timestamp, 500);
}

TEST(FlowKey, GroupsByFiveTuple) {
  const PacketRecord a = RecordFrom(SamplePacket(true, net::Transport::kTcp), 0);
  const PacketRecord b = RecordFrom(SamplePacket(false, net::Transport::kTcp), 10);
  EXPECT_EQ(FlowKeyOf(a), FlowKeyOf(b));  // direction does not change the flow
  net::Packet other = SamplePacket(true, net::Transport::kTcp);
  other.client_port = 51235;
  EXPECT_NE(FlowKeyOf(RecordFrom(other, 0)), FlowKeyOf(a));
}

CaptureTrace SampleTrace() {
  CaptureTrace trace;
  // TCP ClientHello with SNI.
  net::Packet hello = SamplePacket(true, net::Transport::kTcp);
  hello.sni = "cdn.video.example";
  hello.payload = 330;
  trace.push_back(RecordFrom(hello, 1000));
  // Large TCP data downlink.
  net::Packet data = SamplePacket(false, net::Transport::kTcp);
  data.payload = 1448;
  data.tcp_seq = 4242;
  trace.push_back(RecordFrom(data, kUsPerSec + 2500));
  // Pure ACK uplink.
  net::Packet ack = SamplePacket(true, net::Transport::kTcp);
  ack.payload = 0;
  ack.tcp_ack = 5690;
  trace.push_back(RecordFrom(ack, 2 * kUsPerSec));
  // QUIC Initial with SNI.
  net::Packet initial = SamplePacket(true, net::Transport::kUdp);
  initial.sni = "cdn.video.example";
  initial.payload = 1213;
  initial.quic_packet_number = 1;
  trace.push_back(RecordFrom(initial, 3 * kUsPerSec));
  // QUIC data downlink.
  net::Packet qdata = SamplePacket(false, net::Transport::kUdp);
  qdata.payload = 1363;
  qdata.quic_packet_number = 12345;
  trace.push_back(RecordFrom(qdata, 4 * kUsPerSec + 99));
  return trace;
}

TEST(Pcap, SerializeParseRoundTrip) {
  const CaptureTrace trace = SampleTrace();
  const CaptureTrace parsed = ParsePcap(SerializePcap(trace));
  ASSERT_EQ(parsed.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(parsed[i].timestamp, trace[i].timestamp);
    EXPECT_EQ(parsed[i].from_client, trace[i].from_client);
    EXPECT_EQ(parsed[i].transport, trace[i].transport);
    EXPECT_EQ(parsed[i].client_ip, trace[i].client_ip);
    EXPECT_EQ(parsed[i].server_ip, trace[i].server_ip);
    EXPECT_EQ(parsed[i].client_port, trace[i].client_port);
    EXPECT_EQ(parsed[i].server_port, trace[i].server_port);
    EXPECT_EQ(parsed[i].payload, trace[i].payload);
    EXPECT_EQ(parsed[i].wire_size, trace[i].wire_size);
    EXPECT_EQ(parsed[i].sni, trace[i].sni);
    if (trace[i].transport == net::Transport::kTcp) {
      EXPECT_EQ(parsed[i].tcp_seq, trace[i].tcp_seq);
      EXPECT_EQ(parsed[i].tcp_ack, trace[i].tcp_ack);
    } else {
      EXPECT_EQ(parsed[i].quic_packet_number, trace[i].quic_packet_number);
    }
  }
}

TEST(Pcap, TruncatesAtSnapLength) {
  CaptureTrace trace;
  net::Packet big = SamplePacket(false, net::Transport::kTcp);
  big.payload = 1448;
  trace.push_back(RecordFrom(big, 0));
  const std::vector<uint8_t> bytes = SerializePcap(trace);
  // File = 24B global header + 16B packet header + snaplen bytes.
  EXPECT_EQ(bytes.size(), 24u + 16u + kPcapSnapLen);
  // Original length is preserved.
  const CaptureTrace parsed = ParsePcap(bytes);
  EXPECT_EQ(parsed[0].payload, 1448);
}

TEST(Pcap, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csi_capture_test.pcap";
  WritePcap(path, SampleTrace());
  const CaptureTrace parsed = ReadPcap(path);
  EXPECT_EQ(parsed.size(), SampleTrace().size());
  std::remove(path.c_str());
}

TEST(Pcap, RejectsGarbage) {
  EXPECT_THROW(ParsePcap({1, 2, 3, 4}), std::runtime_error);
  std::vector<uint8_t> bad = SerializePcap(SampleTrace());
  bad.resize(bad.size() - 3);  // truncated body
  EXPECT_THROW(ParsePcap(bad), std::runtime_error);
}

}  // namespace
}  // namespace csi::capture
