// Telemetry subsystem contract:
//   * the registry is safe to hammer from ThreadPool workers (run under TSan
//     in CI) and loses no increments;
//   * histogram bucket boundaries are inclusive upper bounds with a +Inf
//     tail;
//   * JSON / Prometheus exports are byte-stable (golden outputs);
//   * instrumentation never changes inference output: results are
//     byte-identical with telemetry enabled, disabled, and — via the golden
//     digest, which CI also checks in a -DCSI_TELEMETRY=OFF build — compiled
//     out entirely.

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/telemetry.h"
#include "src/common/thread_pool.h"
#include "src/csi/batch_analyzer.h"
#include "src/testbed/experiment.h"
#include "tests/inference_digest.h"

namespace csi {
namespace {

using infer::DesignType;
using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;

TEST(MetricsRegistry, SameNameAndLabelsYieldSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", {{"design", "SQ"}});
  Counter* b = registry.GetCounter("requests_total", {{"design", "SQ"}});
  Counter* c = registry.GetCounter("requests_total", {{"design", "CH"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Label order must not matter for identity.
  Gauge* g1 = registry.GetGauge("depth", {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = registry.GetGauge("depth", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistry, CountersSurviveConcurrentHammering) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hammered_total");
  Histogram* hist = registry.GetHistogram("hammered_values", {10.0, 100.0});
  constexpr int kTasks = 64;
  constexpr int kPerTask = 10000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int64_t task) {
    for (int i = 0; i < kPerTask; ++i) {
      counter->Increment();
      hist->Observe(static_cast<double>((task + i) % 150));
    }
  });
  EXPECT_EQ(counter->Value(), static_cast<int64_t>(kTasks) * kPerTask);
  EXPECT_EQ(hist->Count(), static_cast<int64_t>(kTasks) * kPerTask);
}

TEST(MetricsRegistry, GlobalMacrosRecordFromPoolWorkers) {
  MetricsRegistry::Global().Reset();
  ThreadPool pool(4);
  pool.ParallelFor(32, [&](int64_t) {
    CSI_COUNTER_INC("telemetry_test_macro_total");
    CSI_HISTOGRAM_OBSERVE("telemetry_test_macro_hist", telemetry::CountBuckets(), 3);
  });
#if !defined(CSI_TELEMETRY_DISABLED)
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("telemetry_test_macro_total")->Value(), 32);
#endif
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("bounds", {1.0, 2.5, 10.0});
  // One observation per region, including both exact boundaries and the
  // +Inf tail.
  hist->Observe(0.5);   // <= 1.0
  hist->Observe(1.0);   // <= 1.0 (boundary is inclusive)
  hist->Observe(2.5);   // <= 2.5
  hist->Observe(3.0);   // <= 10.0
  hist->Observe(10.1);  // +Inf
  const std::vector<int64_t> counts = hist->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(hist->Count(), 5);
  EXPECT_DOUBLE_EQ(hist->Sum(), 0.5 + 1.0 + 2.5 + 3.0 + 10.1);
}

// Builds a small deterministic registry for the exporter goldens.
MetricsSnapshot GoldenSnapshot() {
  static MetricsRegistry registry;
  static bool filled = false;
  if (!filled) {
    filled = true;
    registry.GetCounter("csi_cache_hits_total")->Add(42);
    registry.GetCounter("csi_queries_total", {{"design", "SQ"}})->Add(7);
    registry.GetGauge("csi_queue_depth")->Set(3);
    Histogram* hist = registry.GetHistogram("csi_stage_seconds", {0.001, 0.01},
                                            {{"stage", "split"}});
    hist->Observe(0.0005);
    hist->Observe(0.002);
    hist->Observe(5.0);
  }
  return registry.Snapshot();
}

TEST(Exporters, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": [\n"
      "    {\"name\":\"csi_cache_hits_total\",\"labels\":{},\"value\":42},\n"
      "    {\"name\":\"csi_queries_total\",\"labels\":{\"design\":\"SQ\"},\"value\":7}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\":\"csi_queue_depth\",\"labels\":{},\"value\":3}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\":\"csi_stage_seconds\",\"labels\":{\"stage\":\"split\"},"
      "\"count\":3,\"sum\":5.0025,\"buckets\":["
      "{\"le\":0.001,\"count\":1},"
      "{\"le\":0.01,\"count\":2},"
      "{\"le\":\"+Inf\",\"count\":3}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(GoldenSnapshot().ToJson(), expected);
}

TEST(Exporters, PrometheusGolden) {
  const std::string expected =
      "# TYPE csi_cache_hits_total counter\n"
      "csi_cache_hits_total 42\n"
      "# TYPE csi_queries_total counter\n"
      "csi_queries_total{design=\"SQ\"} 7\n"
      "# TYPE csi_queue_depth gauge\n"
      "csi_queue_depth 3\n"
      "# TYPE csi_stage_seconds histogram\n"
      "csi_stage_seconds_bucket{stage=\"split\",le=\"0.001\"} 1\n"
      "csi_stage_seconds_bucket{stage=\"split\",le=\"0.01\"} 2\n"
      "csi_stage_seconds_bucket{stage=\"split\",le=\"+Inf\"} 3\n"
      "csi_stage_seconds_sum{stage=\"split\"} 5.0025\n"
      "csi_stage_seconds_count{stage=\"split\"} 3\n";
  EXPECT_EQ(GoldenSnapshot().ToPrometheus(), expected);
}

// --- Inference-output invariance -----------------------------------------
// The fixed batch, digest, and golden value live in tests/inference_digest.h,
// shared with tracing_test (same invariance contract, different subsystem).

using testutil::AnalyzeFixedSqBatch;
using testutil::DigestResults;
using testutil::MakeBatch;
using testutil::kSqBatchDigest;

TEST(TelemetryInvariance, ResultsByteIdenticalEnabledVsDisabled) {
  telemetry::SetEnabled(true);
  const auto with_telemetry = AnalyzeFixedSqBatch();
  telemetry::SetEnabled(false);
  const auto without_telemetry = AnalyzeFixedSqBatch();
  telemetry::SetEnabled(true);
  ASSERT_EQ(with_telemetry.size(), without_telemetry.size());
  for (size_t i = 0; i < with_telemetry.size(); ++i) {
    EXPECT_EQ(with_telemetry[i], without_telemetry[i]) << "trace " << i;
  }
  EXPECT_FALSE(with_telemetry.empty());
  EXPECT_EQ(DigestResults(with_telemetry), DigestResults(without_telemetry));
}

TEST(TelemetryInvariance, GoldenDigestHoldsInEveryBuildMode) {
  EXPECT_EQ(DigestResults(AnalyzeFixedSqBatch()), kSqBatchDigest);
}

TEST(TelemetryInvariance, AnalyzePopulatesStageHistograms) {
#if !defined(CSI_TELEMETRY_DISABLED)
  MetricsRegistry::Global().Reset();
  telemetry::SetEnabled(true);
  AnalyzeFixedSqBatch();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool saw_analyze_span = false;
  bool saw_split_span = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name != "csi_stage_duration_seconds" || h.labels.empty()) {
      continue;
    }
    saw_analyze_span |= h.labels[0].second == "analyze" && h.count == 4;
    saw_split_span |= h.labels[0].second == "traffic_split" && h.count == 4;
  }
  EXPECT_TRUE(saw_analyze_span);
  EXPECT_TRUE(saw_split_span);
  int64_t queries = 0;
  int64_t batch_traces = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name == "csi_candidate_queries_total") {
      queries = c.value;
    }
    if (c.name == "csi_batch_traces_total") {
      batch_traces = c.value;
    }
  }
  EXPECT_GT(queries, 0);
  EXPECT_EQ(batch_traces, 4);
#endif
}

TEST(BatchAnalyzer, ProgressCallbackAndTimingSlots) {
  const TimeUs duration = 60 * kUsPerSec;
  const media::Manifest manifest = testbed::MakeAssetForDesign(DesignType::kCH, 2, duration);
  const auto traces = MakeBatch(manifest, DesignType::kCH, 5, duration);
  infer::InferenceConfig config;
  config.design = DesignType::kCH;
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.progress_every = 2;
  std::vector<std::pair<size_t, size_t>> ticks;
  std::mutex mu;
  batch.progress = [&](size_t done, size_t total) {
    std::lock_guard<std::mutex> lock(mu);
    ticks.emplace_back(done, total);
  };
  infer::BatchAnalyzer analyzer(&manifest, config, batch);
  std::vector<double> seconds;
  const auto results = analyzer.AnalyzeAll(traces, &seconds);
  ASSERT_EQ(results.size(), 5u);
  ASSERT_EQ(seconds.size(), 5u);
  for (double s : seconds) {
    EXPECT_GT(s, 0.0);
  }
  // Every tick reports total == 5, and the final tick fires at done == 5
  // regardless of divisibility by progress_every.
  ASSERT_FALSE(ticks.empty());
  bool saw_final = false;
  for (const auto& [done, total] : ticks) {
    EXPECT_EQ(total, 5u);
    saw_final |= done == 5u;
  }
  EXPECT_TRUE(saw_final);
}

}  // namespace
}  // namespace csi
