// Tracing subsystem contract:
//   * per-thread rings overwrite their own oldest events and report drops;
//   * ParallelFor propagates trace context across threads via flow events
//     ('s' on the caller, 't' on each participating worker, 'f' at the
//     join), with balanced B/E spans per thread (run under TSan in CI);
//   * the Chrome trace-event exporter is byte-stable over an explicit event
//     list (golden output);
//   * a flight-recorder session dumps the last events plus a metrics
//     snapshot when a batch trace analysis throws, first failure wins;
//   * instrumentation never changes inference output: the golden digest
//     holds with tracing enabled, disabled, and — in the -DCSI_TRACING=OFF
//     CI build — compiled out entirely, and collecting audits is equally
//     inert.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/tracing.h"
#include "src/csi/batch_analyzer.h"
#include "src/testbed/experiment.h"
#include "tests/inference_digest.h"

namespace csi {
namespace {

using infer::DesignType;
using testutil::AnalyzeFixedSqBatch;
using testutil::DigestResults;
using testutil::kSqBatchDigest;
using testutil::MakeBatch;

[[maybe_unused]] std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

#if !defined(CSI_TRACING_DISABLED)

TEST(Tracing, RingOverwritesOldestAndCountsDrops) {
  trace::SessionOptions options;
  options.ring_capacity = 8;
  trace::TraceSession& session = trace::TraceSession::Global();
  session.Start(options);
  for (int i = 0; i < 20; ++i) {
    trace::TraceEvent event;
    event.name = "tick";
    event.category = "test";
    event.ts_ns = i + 1;  // explicit, deterministic timestamps
    event.num_args = 1;
    event.args[0] = trace::TraceArg("i", i);
    trace::Emit(event);
  }
  session.Stop();

  const std::vector<trace::TraceEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 8u);
  // Oldest 12 overwritten: the ring keeps exactly ticks 12..19, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, static_cast<int64_t>(i) + 13);
    EXPECT_EQ(events[i].args[0].int_value, static_cast<int64_t>(i) + 12);
  }
  EXPECT_EQ(session.dropped_events(), 12u);
}

TEST(Tracing, ParallelForPropagatesFlowAcrossThreads) {
  trace::TraceSession& session = trace::TraceSession::Global();
  session.Start({});
  std::atomic<int64_t> sum{0};
  {
    ThreadPool pool(4);
    pool.ParallelFor(64, [&](int64_t i) { sum.fetch_add(i); });
  }
  session.Stop();
  EXPECT_EQ(sum.load(), 64 * 63 / 2);

  // Every flow id must have exactly one start and one finish, with all steps
  // and the finish timestamped at or after the start; B/E spans must balance
  // per thread (no 'E' without a matching 'B').
  struct FlowInfo {
    int starts = 0;
    int steps = 0;
    int finishes = 0;
    int64_t start_ts = 0;
    int64_t min_other_ts = INT64_MAX;
  };
  std::map<uint64_t, FlowInfo> flows;
  std::map<int32_t, int> depth;
  for (const trace::TraceEvent& e : session.Collect()) {
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      ASSERT_NE(e.flow_id, 0u);
      FlowInfo& info = flows[e.flow_id];
      if (e.phase == 's') {
        ++info.starts;
        info.start_ts = e.ts_ns;
      } else {
        info.steps += e.phase == 't' ? 1 : 0;
        info.finishes += e.phase == 'f' ? 1 : 0;
        info.min_other_ts = std::min(info.min_other_ts, e.ts_ns);
      }
    } else if (e.phase == 'B') {
      ++depth[e.tid];
    } else if (e.phase == 'E') {
      --depth[e.tid];
      EXPECT_GE(depth[e.tid], 0) << "unmatched 'E' on tid " << e.tid;
    }
  }
  ASSERT_FALSE(flows.empty());
  for (const auto& [id, info] : flows) {
    EXPECT_EQ(info.starts, 1) << "flow " << id;
    EXPECT_EQ(info.finishes, 1) << "flow " << id;
    EXPECT_LE(info.steps, 4) << "flow " << id;  // at most one 't' per helper
    EXPECT_LE(info.start_ts, info.min_other_ts) << "flow " << id;
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }
}

TEST(Tracing, FlightRecorderDumpsOnAnalysisFailureFirstWins) {
  const std::string path = ::testing::TempDir() + "/csi_flight_dump.json";
  std::remove(path.c_str());
  trace::SessionOptions options;
  options.mode = trace::Mode::kFlight;
  options.flight_dump_path = path;
  trace::TraceSession& session = trace::TraceSession::Global();
  session.Start(options);

  const TimeUs duration = 30 * kUsPerSec;
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, duration);
  infer::InferenceConfig config;
  config.design = DesignType::kSQ;
  infer::BatchConfig batch;
  batch.threads = 2;
  batch.analyze_override = [](const capture::CaptureTrace&) -> infer::InferenceResult {
    throw std::runtime_error("injected trace failure");
  };
  infer::BatchAnalyzer analyzer(&manifest, config, batch);
  const std::vector<capture::CaptureTrace> traces(3);
  std::vector<std::string> errors;
  const auto results = analyzer.AnalyzeAll(traces, nullptr, &errors);
  // All three traces failed in isolation; the batch itself completed.
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(errors.size(), 3u);
  for (const std::string& e : errors) {
    EXPECT_EQ(e, "injected trace failure");
  }
  // Only the first failure dumped; later calls are refused.
  EXPECT_FALSE(session.DumpFlightRecord("later", "cascade failure"));
  session.Stop();

  const std::string dump = Slurp(path);
  ASSERT_FALSE(dump.empty()) << "flight dump missing at " << path;
  EXPECT_NE(dump.find("\"error\":\"injected trace failure\""), std::string::npos);
  EXPECT_NE(dump.find("\"context\":\"batch trace "), std::string::npos);
  EXPECT_NE(dump.find("\"traceEvents\":"), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\":"), std::string::npos);
  EXPECT_EQ(dump.find("cascade failure"), std::string::npos);
}

#endif  // !CSI_TRACING_DISABLED

TEST(Tracing, ChromeTraceJsonGolden) {
  std::vector<trace::TraceEvent> events(5);
  events[0].name = "analyze";
  events[0].category = "stage";
  events[0].phase = 'B';
  events[0].tid = 1;
  events[0].ts_ns = 1500;
  events[0].num_args = 2;
  events[0].args[0] = trace::TraceArg("packets", static_cast<int64_t>(4821));
  events[0].args[1] = trace::TraceArg("ratio", 0.5);
  events[1].name = "parallel_for";
  events[1].category = "flow";
  events[1].phase = 's';
  events[1].tid = 1;
  events[1].ts_ns = 2000;
  events[1].flow_id = 7;
  events[2].name = "parallel_for";
  events[2].category = "flow";
  events[2].phase = 't';
  events[2].tid = 2;
  events[2].ts_ns = 2500;
  events[2].flow_id = 7;
  events[3].name = "group_cache";
  events[3].category = "cache";
  events[3].phase = 'i';
  events[3].tid = 2;
  events[3].ts_ns = 3001;
  events[3].num_args = 1;
  events[3].args[0] = trace::TraceArg("outcome", "a\"b\n");
  events[4].name = "analyze";
  events[4].category = "stage";
  events[4].phase = 'E';
  events[4].tid = 1;
  events[4].ts_ns = 4000;

  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"analyze\",\"cat\":\"stage\",\"ph\":\"B\",\"ts\":1.500,"
      "\"pid\":1,\"tid\":1,\"args\":{\"packets\":4821,\"ratio\":0.5}},\n"
      "{\"name\":\"parallel_for\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":2.000,"
      "\"pid\":1,\"tid\":1,\"id\":7},\n"
      "{\"name\":\"parallel_for\",\"cat\":\"flow\",\"ph\":\"t\",\"ts\":2.500,"
      "\"pid\":1,\"tid\":2,\"id\":7},\n"
      "{\"name\":\"group_cache\",\"cat\":\"cache\",\"ph\":\"i\",\"ts\":3.001,"
      "\"pid\":1,\"tid\":2,\"args\":{\"outcome\":\"a\\\"b\\n\"}},\n"
      "{\"name\":\"analyze\",\"cat\":\"stage\",\"ph\":\"E\",\"ts\":4.000,"
      "\"pid\":1,\"tid\":1}"
      "]}\n";
  EXPECT_EQ(trace::ChromeTraceJson(events), expected);
}

// The invariance contract, tracing edition: the golden digest holds with an
// active full-mode session, with tracing runtime-off, and (when CI builds
// with -DCSI_TRACING=OFF) compiled out — this test runs unchanged in every
// configuration.
TEST(TracingInvariance, ResultsByteIdenticalOnVsOffVsCompiledOut) {
  // All four design paths, not just SQ: the CH/SH/CQ pipelines emit their own
  // span/instant mix (size_estimate instead of traffic_split, merge repair),
  // and each must be inert too.
  for (const DesignType design :
       {DesignType::kCH, DesignType::kSH, DesignType::kCQ, DesignType::kSQ}) {
    trace::TraceSession::Global().Start({});
    const auto with_tracing = testutil::AnalyzeFixedBatch(design);
    trace::TraceSession::Global().Stop();
    const auto without_tracing = testutil::AnalyzeFixedBatch(design);
    EXPECT_EQ(DigestResults(with_tracing), testutil::GoldenBatchDigest(design))
        << infer::DesignTypeName(design);
    EXPECT_EQ(DigestResults(without_tracing), testutil::GoldenBatchDigest(design))
        << infer::DesignTypeName(design);
  }
}

TEST(Audit, CollectionIsInertAndPopulatesPerTraceRecords) {
  const TimeUs duration = 90 * kUsPerSec;
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, duration);
  const auto traces = MakeBatch(manifest, DesignType::kSQ, 4, duration);
  infer::InferenceConfig config;
  config.design = DesignType::kSQ;
  infer::BatchConfig batch;
  batch.threads = 4;
  infer::BatchAnalyzer analyzer(&manifest, config, batch);
  std::vector<infer::InferenceAudit> audits;
  const auto results = analyzer.AnalyzeAll(traces, nullptr, nullptr, &audits);
  // Collecting audits must not perturb the inference (same golden batch as
  // the invariance tests).
  EXPECT_EQ(DigestResults(results), kSqBatchDigest);
  ASSERT_EQ(audits.size(), 4u);
  for (size_t i = 0; i < audits.size(); ++i) {
    const infer::InferenceAudit& audit = audits[i];
    EXPECT_EQ(audit.media_flows, 1) << "trace " << i;
    EXPECT_GT(audit.groups, 0) << "trace " << i;
    EXPECT_GT(audit.enumerations, 0) << "trace " << i;
    EXPECT_GT(audit.candidates, 0) << "trace " << i;
    EXPECT_GT(audit.chain_nodes, 0) << "trace " << i;
    EXPECT_EQ(audit.sequences, static_cast<int>(results[i].sequences.size()))
        << "trace " << i;
    if (!results[i].sequences.empty()) {
      EXPECT_TRUE(audit.has_best_cost) << "trace " << i;
    }
    const std::string line = audit.ToJsonLine("trace-" + std::to_string(i));
    EXPECT_EQ(line.find("{\"trace\":\"trace-"), 0u) << line;
    EXPECT_NE(line.find("\"dfs_nodes_expanded\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"best_cost\":"), std::string::npos) << line;
  }
}

TEST(Audit, ToJsonLineEscapesLabelAndEncodesMissingCosts) {
  infer::InferenceAudit audit;
  audit.media_flows = 1;
  const std::string line = audit.ToJsonLine("path\\with\"quote");
  EXPECT_EQ(line.find("{\"trace\":\"path\\\\with\\\"quote\""), 0u) << line;
  EXPECT_NE(line.find("\"best_cost\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"runner_up_cost\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"truncated\":false"), std::string::npos) << line;
}

}  // namespace
}  // namespace csi
