// Environment-tunable knobs for the differential test suites.
//
// The seeded schedule loops (db_differential_test, live_database_test,
// candidate_cache_test, prefix_cache_test) default to counts that keep tier-1
// CI fast; the scheduled deep-differential CI job raises CSI_TEST_SCHEDULES
// (e.g. to 500) to sweep far more seeds on the same binaries.

#ifndef CSI_TESTS_TEST_ENV_H_
#define CSI_TESTS_TEST_ENV_H_

#include <cstdlib>
#include <string>

namespace csi::testutil {

// The per-suite schedule count: CSI_TEST_SCHEDULES when set to a positive
// integer, `default_count` otherwise (including on malformed values — a typo
// must not silently shrink coverage to zero).
inline uint64_t ScheduleCount(uint64_t default_count) {
  const char* env = std::getenv("CSI_TEST_SCHEDULES");
  if (env == nullptr || *env == '\0') {
    return default_count;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || value == 0) {
    return default_count;
  }
  return static_cast<uint64_t>(value);
}

}  // namespace csi::testutil

#endif  // CSI_TESTS_TEST_ENV_H_
