// Differential replay harness for the snapshot-keyed whole-result cache.
//
// Same absolute contract as the lower tiers, one level up: inference output
// is byte-identical with the result cache on, off, and env-disabled, for
// every design path, capture set, repeat schedule, thread count, and
// live-refresh replay — the cache may only change WHETHER the pipeline runs,
// never what it produces. On top of the differential sweeps this suite pins
// the hull-capture rules (RecordEnumerationForResultCache mirrors the
// candidate tier's Revalidate conditions at analyze time), the revalidation
// boundaries (same state, delta-disjoint re-anchor, delta-in-window and
// compaction invalidations, stale-snapshot keeps), eviction under a tiny
// budget, and a TSan'd hammer where concurrent BatchAnalyzers share one
// result cache while a LiveChunkDatabase publishes refreshes under them.
//
// The seeded sweep honors CSI_TEST_SCHEDULES (tests/test_env.h): tier-1 CI
// runs the fast default, the scheduled deep-differential job raises it.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/csi/batch_analyzer.h"
#include "src/csi/chunk_database.h"
#include "src/csi/live_database.h"
#include "src/csi/result_cache.h"
#include "src/testbed/experiment.h"
#include "tests/inference_digest.h"
#include "tests/test_env.h"

namespace csi::infer {
namespace {

using testutil::AnalyzeFixedBatch;
using testutil::DigestResults;
using testutil::GoldenBatchDigest;
using testutil::MakeBatch;

// Restores the in-process env-off override no matter how the test exits.
struct ForceEnvOffGuard {
  ForceEnvOffGuard() { ResultCache::ForceEnvOffForTest(true); }
  ~ForceEnvOffGuard() { ResultCache::ForceEnvOffForTest(false); }
};

capture::PacketRecord BasePacket() {
  capture::PacketRecord p;
  p.timestamp = 1000;
  p.from_client = true;
  p.transport = net::Transport::kUdp;
  p.client_ip = 0x0a000001;
  p.server_ip = 0xc0a80101;
  p.client_port = 51000;
  p.server_port = 443;
  p.payload = 1200;
  p.wire_size = 1242;
  p.sni = "v.example.com";
  return p;
}

ResultCache::Query QueryFor(const DbSnapshot& db, uint32_t context, TimeUs stamp) {
  capture::CaptureTrace trace{BasePacket()};
  trace[0].timestamp = stamp;
  return ResultCache::MakeQuery(FingerprintTrace(trace), context, db);
}

std::shared_ptr<const InferenceResult> MakeResult(int sequences) {
  auto result = std::make_shared<InferenceResult>();
  for (int s = 0; s < sequences; ++s) {
    InferredSequence seq;
    seq.slots.resize(4);
    result->sequences.push_back(std::move(seq));
  }
  return result;
}

// --- Hull capture rules -----------------------------------------------------

TEST(ResultHullScope, InstallsNestsAndRestores) {
  EXPECT_EQ(CurrentResultHull(), nullptr);
  ResultHull outer;
  {
    ResultHullScope scope(&outer);
    EXPECT_EQ(CurrentResultHull(), &outer);
    ResultHull inner;
    {
      ResultHullScope nested(&inner);
      EXPECT_EQ(CurrentResultHull(), &inner);
    }
    EXPECT_EQ(CurrentResultHull(), &outer);
    {
      ResultHullScope null_scope(nullptr);  // null is a valid no-op target
      EXPECT_EQ(CurrentResultHull(), nullptr);
      RecordSizeProbeForResultCache(1000, 0.96);  // must not crash
    }
    EXPECT_EQ(CurrentResultHull(), &outer);
  }
  EXPECT_EQ(CurrentResultHull(), nullptr);
  EXPECT_FALSE(outer.sensitive);
}

TEST(ResultHull, WidenUnionsWindows) {
  ResultHull hull;
  hull.Widen(100, 200);
  EXPECT_TRUE(hull.sensitive);
  EXPECT_EQ(hull.probe_lo, 100);
  EXPECT_EQ(hull.probe_hi, 200);
  hull.Widen(50, 150);
  EXPECT_EQ(hull.probe_lo, 50);
  EXPECT_EQ(hull.probe_hi, 200);
  hull.Widen(80, 900);
  EXPECT_EQ(hull.probe_lo, 50);
  EXPECT_EQ(hull.probe_hi, 900);
}

TEST(RecordEnumeration, MirrorsCandidateTierConditions) {
  CandidateSetHull video;
  video.has_video_split = true;
  video.v_max = 3;
  video.has_v1 = true;
  video.hull1_lo = 400;
  video.hull1_hi = 800;
  video.hull2_hi = 1200;
  video.hull_all_hi = 1500;
  const int kPositions = 100;
  const int64_t kSmallBudget = 1 << 10;

  {
    // No video split: the enumeration never reads the position axis.
    ResultHull out;
    ResultHullScope scope(&out);
    CandidateSetHull no_video = video;
    no_video.has_video_split = false;
    RecordEnumerationForResultCache(no_video, 0, GroupCandidateCache::kOpenHi, kPositions,
                                    kSmallBudget);
    EXPECT_FALSE(out.sensitive);
  }
  {
    // Concrete range whose longest run cannot cross the live edge.
    ResultHull out;
    ResultHullScope scope(&out);
    RecordEnumerationForResultCache(video, 10, 20, kPositions, kSmallBudget);
    EXPECT_FALSE(out.sensitive);
  }
  {
    // Concrete range with a run crossing the analyze-time edge: the
    // multi-chunk upper bound is the only thing between an appended chunk and
    // a new candidate.
    ResultHull out;
    ResultHullScope scope(&out);
    RecordEnumerationForResultCache(video, 90, kPositions - 2, kPositions, kSmallBudget);
    EXPECT_TRUE(out.sensitive);
    EXPECT_FALSE(out.unsafe);
    EXPECT_EQ(out.probe_lo, 0);
    EXPECT_EQ(out.probe_hi, video.hull2_hi);
  }
  {
    // Growth range, multi-chunk splits, budget under the floor: appended
    // chunks can seed candidates anywhere up to the overall hull.
    ResultHull out;
    ResultHullScope scope(&out);
    RecordEnumerationForResultCache(video, 0, GroupCandidateCache::kOpenHi, kPositions,
                                    kSmallBudget);
    EXPECT_TRUE(out.sensitive);
    EXPECT_FALSE(out.unsafe);
    EXPECT_EQ(out.probe_lo, 0);
    EXPECT_EQ(out.probe_hi, video.hull_all_hi);
  }
  {
    // Growth range, single-chunk splits only: the v == 1 window floor holds.
    ResultHull out;
    ResultHullScope scope(&out);
    CandidateSetHull single = video;
    single.v_max = 1;
    RecordEnumerationForResultCache(single, 0, GroupCandidateCache::kOpenHi, kPositions,
                                    kSmallBudget);
    EXPECT_TRUE(out.sensitive);
    EXPECT_FALSE(out.unsafe);
    EXPECT_EQ(out.probe_lo, single.hull1_lo);
    EXPECT_EQ(out.probe_hi, single.hull_all_hi);
  }
  {
    // Growth range with a per-start DFS budget above the floor: the cutoff
    // itself shifts with the live edge — unprovable by any window.
    ResultHull out;
    ResultHullScope scope(&out);
    const int64_t huge = static_cast<int64_t>(kPositions + 1) *
                         (GroupCandidateCache::kPerStartNodeFloor + 1);
    RecordEnumerationForResultCache(video, 0, GroupCandidateCache::kOpenHi, kPositions,
                                    huge);
    EXPECT_TRUE(out.sensitive);
    EXPECT_TRUE(out.unsafe);
  }
}

TEST(RecordSizeProbe, UsesAdmissibleWindow) {
  ResultHull out;
  ResultHullScope scope(&out);
  const Bytes estimated = 100000;
  const double k = 0.96;
  RecordSizeProbeForResultCache(estimated, k);
  EXPECT_TRUE(out.sensitive);
  EXPECT_EQ(out.probe_lo, ChunkDatabase::AdmissibleLow(estimated, k));
  EXPECT_EQ(out.probe_hi, estimated);
}

// --- Cache mechanics --------------------------------------------------------

TEST(ResultCacheMechanics, InternContextDistinguishesEveryKnob) {
  ResultCache cache(1 << 20);
  ResultCache::Context base;
  base.design = DesignType::kSQ;
  base.host_suffix = "a.example.com";
  base.k_https = 0.96;
  base.max_sequences = 512;
  base.other_object_sizes = {1000};
  const uint32_t id = cache.InternContext(base);
  EXPECT_GE(id, 1u);
  EXPECT_EQ(cache.InternContext(base), id);

  const auto differs = [&](auto&& mutate) {
    ResultCache::Context c = base;
    mutate(c);
    return cache.InternContext(c) != id;
  };
  EXPECT_TRUE(differs([](auto& c) { c.design = DesignType::kCQ; }));
  EXPECT_TRUE(differs([](auto& c) { c.host_suffix = "b.example.com"; }));
  EXPECT_TRUE(differs([](auto& c) { c.splitter.idle_threshold += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.k_https += 0.01; }));
  EXPECT_TRUE(differs([](auto& c) { c.k_quic += 0.01; }));
  EXPECT_TRUE(differs([](auto& c) { c.expected_fixed_overhead += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.max_sequences += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.max_candidates_per_group += 1; }));
  EXPECT_TRUE(differs([](auto& c) { c.enable_wildcards = !c.enable_wildcards; }));
  EXPECT_TRUE(differs([](auto& c) { c.enable_merge_repair = !c.enable_merge_repair; }));
  EXPECT_TRUE(differs([](auto& c) { c.other_object_sizes.push_back(2000); }));
  EXPECT_EQ(cache.stats().contexts, 12u);
}

TEST(ResultCacheMechanics, OffValueSpellings) {
  EXPECT_TRUE(ResultCache::IsOffValue("off"));
  EXPECT_TRUE(ResultCache::IsOffValue("OFF"));
  EXPECT_TRUE(ResultCache::IsOffValue("0"));
  EXPECT_TRUE(ResultCache::IsOffValue("none"));
  EXPECT_FALSE(ResultCache::IsOffValue("on"));
  EXPECT_FALSE(ResultCache::IsOffValue(""));
  EXPECT_FALSE(ResultCache::IsOffValue("1"));
}

TEST(ResultCacheMechanics, RevalidationBoundariesAcrossLiveStates) {
  if (ResultCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_RESULT_CACHE=off in the environment";
  }
  const media::Manifest full =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, 60 * kUsPerSec);
  const int start_positions = std::max(1, full.num_positions() / 2);
  media::Manifest prefix = full;
  for (auto& track : prefix.video_tracks) {
    track.chunks.resize(static_cast<size_t>(start_positions));
  }
  for (auto& track : prefix.audio_tracks) {
    track.chunks.resize(std::min(track.chunks.size(),
                                 static_cast<size_t>(start_positions)));
  }
  ManifestRefresh refresh;
  refresh.video_appends.resize(full.video_tracks.size());
  for (size_t t = 0; t < full.video_tracks.size(); ++t) {
    const auto& chunks = full.video_tracks[t].chunks;
    refresh.video_appends[t].assign(chunks.begin() + start_positions, chunks.end());
  }

  LiveChunkDatabase live(prefix, {});
  const DbSnapshot a = live.Acquire();
  ResultCache cache(1 << 20);
  ResultCache::AuditShape shape_in;
  shape_in.media_flows = 2;
  shape_in.sequences = 1;
  shape_in.has_best_cost = true;
  shape_in.best_cost = 3.5;

  // Insensitive entry: valid at A and at every later state of the lineage.
  const auto insensitive_q = QueryFor(a, 1, 1000);
  cache.Insert(insensitive_q, a, ResultHull{}, MakeResult(1), shape_in);
  ResultCache::AuditShape shape_out;
  ASSERT_NE(cache.Lookup(insensitive_q, a, &shape_out), nullptr);
  EXPECT_EQ(shape_out.media_flows, 2);
  EXPECT_EQ(shape_out.sequences, 1);
  EXPECT_TRUE(shape_out.has_best_cost);
  EXPECT_EQ(shape_out.best_cost, 3.5);

  // Sensitive entries with a window the appended sizes cannot touch (real
  // chunks are tens of KB) vs. one that swallows every append.
  ResultHull disjoint;
  disjoint.Widen(1, 2);
  const auto disjoint_q = QueryFor(a, 1, 2000);
  cache.Insert(disjoint_q, a, disjoint, MakeResult(1), {});
  ResultHull covering;
  covering.Widen(0, static_cast<Bytes>(1) << 40);
  const auto covering_q = QueryFor(a, 1, 3000);
  cache.Insert(covering_q, a, covering, MakeResult(1), {});
  ResultHull unsafe;
  unsafe.sensitive = true;
  unsafe.unsafe = true;
  const auto unsafe_q = QueryFor(a, 1, 4000);
  cache.Insert(unsafe_q, a, unsafe, MakeResult(1), {});

  // All four hit at the exact state they were inserted at.
  EXPECT_NE(cache.Lookup(disjoint_q, a), nullptr);
  EXPECT_NE(cache.Lookup(covering_q, a), nullptr);
  EXPECT_NE(cache.Lookup(unsafe_q, a), nullptr);

  const DbSnapshot b = live.ApplyRefresh(refresh);
  ASSERT_GT(b.num_positions(), a.num_positions());
  ASSERT_EQ(b.lineage_id(), a.lineage_id());

  const auto before = cache.stats();
  // Insensitive and delta-disjoint entries revalidate and re-anchor to B...
  EXPECT_NE(cache.Lookup(insensitive_q, b), nullptr);
  EXPECT_NE(cache.Lookup(disjoint_q, b), nullptr);
  // ...the covering-window and unsafe entries are provably unusable: dropped,
  // counted, and absent afterwards.
  EXPECT_EQ(cache.Lookup(covering_q, b), nullptr);
  EXPECT_EQ(cache.Lookup(unsafe_q, b), nullptr);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 2);
  EXPECT_EQ(after.invalidations, before.invalidations + 2);
  EXPECT_EQ(cache.Lookup(covering_q, b), nullptr);
  EXPECT_EQ(cache.stats().invalidations, after.invalidations);  // already gone

  // Re-anchored entries are now exact at B; a reader still pinning A gets a
  // miss but the entry survives for current readers.
  EXPECT_EQ(cache.Lookup(disjoint_q, a), nullptr);
  EXPECT_NE(cache.Lookup(disjoint_q, b), nullptr);

  // A different lineage never shares entries, whatever the fingerprint.
  LiveChunkDatabase other(prefix, {});
  const DbSnapshot c = other.Acquire();
  ASSERT_NE(c.lineage_id(), a.lineage_id());
  EXPECT_EQ(cache.Lookup(QueryFor(c, 1, 1000), c), nullptr);
}

TEST(ResultCacheMechanics, CompactionInvalidatesSensitiveEntries) {
  if (ResultCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_RESULT_CACHE=off in the environment";
  }
  const media::Manifest full =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, 60 * kUsPerSec);
  const int start_positions = std::max(1, full.num_positions() / 2);
  media::Manifest prefix = full;
  for (auto& track : prefix.video_tracks) {
    track.chunks.resize(static_cast<size_t>(start_positions));
  }
  for (auto& track : prefix.audio_tracks) {
    track.chunks.resize(std::min(track.chunks.size(),
                                 static_cast<size_t>(start_positions)));
  }
  ManifestRefresh refresh;
  refresh.video_appends.resize(full.video_tracks.size());
  for (size_t t = 0; t < full.video_tracks.size(); ++t) {
    const auto& chunks = full.video_tracks[t].chunks;
    refresh.video_appends[t].assign(chunks.begin() + start_positions, chunks.end());
  }

  LiveDbOptions options;
  options.compact_after_delta_chunks = 0;  // compact on every refresh
  LiveChunkDatabase live(prefix, options);
  const DbSnapshot a = live.Acquire();

  ResultCache cache(1 << 20);
  ResultHull disjoint;
  disjoint.Widen(1, 2);
  const auto query = QueryFor(a, 1, 1000);
  cache.Insert(query, a, disjoint, MakeResult(1), {});

  live.ApplyRefresh(refresh);
  live.WaitForCompaction();
  const DbSnapshot b = live.Acquire();
  ASSERT_GT(b.num_positions(), a.num_positions());
  if (b.base_positions() <= a.num_positions()) {
    GTEST_SKIP() << "compaction did not fold the delta; nothing to test";
  }
  // The appends are folded into the base: the one-sided delta probe can no
  // longer prove disjointness, even for a window no append could touch.
  EXPECT_EQ(cache.Lookup(query, b), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // An insensitive entry shrugs the compaction off.
  const auto easy = QueryFor(a, 1, 2000);
  cache.Insert(easy, b, ResultHull{}, MakeResult(1), {});
  EXPECT_NE(cache.Lookup(easy, b), nullptr);
}

TEST(ResultCacheMechanics, EvictionKeepsBytesUnderTinyBudget) {
  if (ResultCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_RESULT_CACHE=off in the environment";
  }
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kCH, 1, 30 * kUsPerSec);
  LiveChunkDatabase live(manifest, {});
  const DbSnapshot db = live.Acquire();

  ResultCache cache(4096, 2);
  for (int i = 0; i < 64; ++i) {
    cache.Insert(QueryFor(db, 1, 1000 + i), db, ResultHull{}, MakeResult(2), {});
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 4096u);
  EXPECT_GT(stats.entries, 0u);

  // A result bigger than a whole shard is refused outright.
  const auto huge_q = QueryFor(db, 1, 999999);
  cache.Insert(huge_q, db, ResultHull{}, MakeResult(256), {});
  EXPECT_EQ(cache.Lookup(huge_q, db), nullptr);

  cache.Clear();
  const auto cleared = cache.stats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.bytes, 0u);
}

TEST(ResultCacheMechanics, ForceEnvOffMakesLookupAndInsertNoOps) {
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kCH, 1, 30 * kUsPerSec);
  LiveChunkDatabase live(manifest, {});
  const DbSnapshot db = live.Acquire();
  ResultCache cache(1 << 20);
  const auto query = QueryFor(db, 1, 1000);
  {
    const ForceEnvOffGuard guard;
    EXPECT_TRUE(ResultCache::EnvForcesOff());
    cache.Insert(query, db, ResultHull{}, MakeResult(1), {});
    EXPECT_EQ(cache.Lookup(query, db), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.lookups(), 0u);
    EXPECT_EQ(stats.inserts, 0u);
    EXPECT_EQ(stats.entries, 0u);
  }
  // Back on: the same calls work again.
  if (!ResultCache::EnvForcesOff()) {
    cache.Insert(query, db, ResultHull{}, MakeResult(1), {});
    EXPECT_NE(cache.Lookup(query, db), nullptr);
  }
}

// --- Differential replay: on vs off vs env-disabled -------------------------

std::vector<capture::CaptureTrace> SeededCaptureSet(const media::Manifest& manifest,
                                                    DesignType design, int unique) {
  auto traces = MakeBatch(manifest, design, unique, 60 * kUsPerSec);
  // Duplicates are the top tier's whole purpose: re-analyzing the same bytes
  // must hit, and hit output must equal recomputed output.
  const size_t n = traces.size();
  for (size_t i = 0; i < n; ++i) {
    traces.push_back(traces[i]);
  }
  return traces;
}

TEST(ResultCacheDifferential, CacheOnOffEnvDisabledByteIdenticalAcrossSchedules) {
  // Capture sets (per design) × repeat schedules × thread counts. Tier-1 runs
  // the default; CSI_TEST_SCHEDULES raises the repeat sweep for the deep job.
  const int max_repeats = static_cast<int>(std::min<uint64_t>(
      3 + (testutil::ScheduleCount(0) / 50), 16));
  for (const DesignType design : {DesignType::kSQ, DesignType::kCH, DesignType::kCQ}) {
    const media::Manifest manifest =
        testbed::MakeAssetForDesign(design, 1, 60 * kUsPerSec);
    const auto traces = SeededCaptureSet(manifest, design, 3);
    const std::string ctx = DesignTypeName(design);

    // Reference: every cache tier off, serial.
    InferenceConfig config;
    config.design = design;
    BatchConfig off;
    off.threads = 1;
    off.candidate_cache_mb = 0;
    off.prefix_cache_mb = 0;
    off.caches.result.enabled = false;
    BatchAnalyzer reference(&manifest, config, off);
    const auto expected = reference.AnalyzeAll(traces);
    EXPECT_EQ(reference.result_cache(), nullptr);

    for (const int threads : {1, 3}) {
      for (int repeats = 1; repeats <= max_repeats; ++repeats) {
        BatchConfig on;
        on.threads = threads;
        BatchAnalyzer analyzer(&manifest, config, on);
        for (int r = 0; r < repeats; ++r) {
          const auto got = analyzer.AnalyzeAll(traces);
          ASSERT_EQ(got.size(), expected.size());
          for (size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], expected[i])
                << ctx << " threads=" << threads << " repeat " << r << " trace " << i;
          }
        }
        if (!ResultCache::EnvForcesOff()) {
          ASSERT_NE(analyzer.result_cache(), nullptr);
          const auto stats = analyzer.result_cache()->stats();
          // Serial passes must hit on the duplicated back half; a single
          // concurrent pass may race dup pairs to all-miss, but any second
          // pass runs against a fully warm cache at the same state.
          if (threads == 1 || repeats >= 2) {
            EXPECT_GT(stats.hits, 0u)
                << ctx << " threads=" << threads << " repeats=" << repeats;
          }
          EXPECT_LE(stats.misses, static_cast<uint64_t>(traces.size()) *
                                      static_cast<uint64_t>(threads))
              << ctx;
        }
      }
    }

    // Env-disabled: the engine must bypass an attached cache entirely and
    // still produce identical bytes.
    {
      const ForceEnvOffGuard guard;
      InferenceConfig forced = config;
      forced.caches.result = std::make_shared<ResultCache>(32 << 20);
      BatchConfig on;
      on.threads = 3;
      BatchAnalyzer analyzer(&manifest, forced, on);
      const auto got = analyzer.AnalyzeAll(traces);
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i]) << ctx << " env-disabled trace " << i;
      }
      const auto stats = forced.caches.result->stats();
      EXPECT_EQ(stats.lookups(), 0u) << ctx;
      EXPECT_EQ(stats.inserts, 0u) << ctx;
      EXPECT_EQ(stats.entries, 0u) << ctx;
    }
  }
}

TEST(ResultCacheDifferential, GoldenDigestsHoldOnOffAndEnvDisabled) {
  for (const DesignType design :
       {DesignType::kCH, DesignType::kSH, DesignType::kCQ, DesignType::kSQ}) {
    BatchConfig off;
    off.threads = 4;
    off.caches.result.enabled = false;
    EXPECT_EQ(DigestResults(AnalyzeFixedBatch(design)), GoldenBatchDigest(design))
        << DesignTypeName(design) << " result cache on";
    EXPECT_EQ(DigestResults(AnalyzeFixedBatch(design, off)), GoldenBatchDigest(design))
        << DesignTypeName(design) << " result cache off";
    {
      const ForceEnvOffGuard guard;
      EXPECT_EQ(DigestResults(AnalyzeFixedBatch(design)), GoldenBatchDigest(design))
          << DesignTypeName(design) << " result cache env-disabled";
    }
  }
}

TEST(ResultCacheSharing, SecondBatchOverSameTracesRunsFullyWarm) {
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, 60 * kUsPerSec);
  const auto traces = MakeBatch(manifest, DesignType::kSQ, 3, 60 * kUsPerSec);

  InferenceConfig config;
  config.design = DesignType::kSQ;
  BatchConfig batch;
  batch.threads = 2;
  BatchAnalyzer analyzer(&manifest, config, batch);
  const auto expected = analyzer.AnalyzeAll(traces);
  if (ResultCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_RESULT_CACHE=off in the environment";
  }
  ASSERT_NE(analyzer.result_cache(), nullptr);
  const auto cold = analyzer.result_cache()->stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, static_cast<uint64_t>(traces.size()));

  // Same engine, same snapshot: the second pass never runs the pipeline.
  const auto warm = analyzer.AnalyzeAll(traces);
  for (size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i], expected[i]) << "trace " << i;
  }
  const auto stats = analyzer.result_cache()->stats();
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(traces.size()));
  EXPECT_EQ(stats.inserts, cold.inserts);
}

// --- Live-refresh replay: revalidation boundaries under real growth ---------

// Appends the back half of `full` to `live` in `steps` refreshes.
std::vector<ManifestRefresh> TailRefreshes(const media::Manifest& full, int start_positions,
                                           int steps) {
  std::vector<ManifestRefresh> refreshes;
  const int tail = full.num_positions() - start_positions;
  for (int r = 0; r < steps; ++r) {
    const int lo = start_positions + tail * r / steps;
    const int hi = start_positions + tail * (r + 1) / steps;
    ManifestRefresh refresh;
    refresh.video_appends.resize(full.video_tracks.size());
    for (size_t t = 0; t < full.video_tracks.size(); ++t) {
      const auto& chunks = full.video_tracks[t].chunks;
      refresh.video_appends[t].assign(chunks.begin() + lo, chunks.begin() + hi);
    }
    refreshes.push_back(std::move(refresh));
  }
  return refreshes;
}

media::Manifest PrefixManifest(const media::Manifest& full, int positions) {
  media::Manifest prefix = full;
  for (auto& track : prefix.video_tracks) {
    track.chunks.resize(static_cast<size_t>(positions));
  }
  for (auto& track : prefix.audio_tracks) {
    track.chunks.resize(std::min(track.chunks.size(), static_cast<size_t>(positions)));
  }
  return prefix;
}

TEST(ResultCacheLiveReplay, RefreshRoundsStayByteIdenticalAndWarmWithinAState) {
  if (ResultCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_RESULT_CACHE=off in the environment";
  }
  const TimeUs duration = 60 * kUsPerSec;
  const media::Manifest full =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, duration);
  const auto traces = MakeBatch(full, DesignType::kSQ, 3, duration);
  const int start_positions = std::max(1, full.num_positions() / 2);
  const auto refreshes = TailRefreshes(full, start_positions, 3);
  ASSERT_FALSE(refreshes.empty());

  LiveChunkDatabase live(PrefixManifest(full, start_positions), {});

  // Pin the config knobs that would otherwise be derived from the growing
  // manifest (same discipline as csi_batch --follow-manifests).
  InferenceConfig config;
  config.design = DesignType::kSQ;
  config.host_suffix = full.host;
  config.other_object_sizes.push_back(full.SerializedSize() +
                                      config.expected_fixed_overhead);
  auto shared = std::make_shared<ResultCache>(32 << 20);
  config.caches.result = shared;
  BatchConfig batch;
  batch.threads = 2;
  BatchAnalyzer analyzer(live.Acquire(), config, batch);

  InferenceConfig no_cache = config;
  no_cache.caches.result = nullptr;
  BatchConfig off;
  off.threads = 1;
  off.candidate_cache_mb = 0;
  off.prefix_cache_mb = 0;
  off.caches.result.enabled = false;

  for (size_t round = 0; round <= refreshes.size(); ++round) {
    if (round > 0) {
      live.ApplyRefresh(refreshes[round - 1]);
    }
    const DbSnapshot snapshot = live.Acquire();
    analyzer.UpdateSnapshot(snapshot);
    // First pass at this state: any mix of revalidated hits, invalidations
    // and misses — but byte-identical to a cold cache-off reference.
    const auto got = analyzer.AnalyzeAll(traces);
    BatchAnalyzer reference(snapshot, no_cache, off);
    const auto expected = reference.AnalyzeAll(traces);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "round " << round << " trace " << i;
    }
    // Second pass at the same state: fully warm, zero pipeline runs.
    const uint64_t hits_before = shared->stats().hits;
    const auto again = analyzer.AnalyzeAll(traces);
    for (size_t i = 0; i < again.size(); ++i) {
      ASSERT_EQ(again[i], expected[i]) << "round " << round << " warm trace " << i;
    }
    EXPECT_EQ(shared->stats().hits, hits_before + static_cast<uint64_t>(traces.size()))
        << "round " << round;
  }
  const auto stats = shared->stats();
  EXPECT_EQ(stats.lookups(), stats.hits + stats.misses);
  live.WaitForCompaction();
}

// --- TSan hammer: concurrent batches, shared cache, live publishes ----------

TEST(ResultCacheHammer, ConcurrentBatchesSharedCacheUnderLivePublishes) {
  const TimeUs duration = 45 * kUsPerSec;
  const media::Manifest full =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, duration);
  const auto traces = MakeBatch(full, DesignType::kSQ, 3, duration);
  const int start_positions = std::max(1, full.num_positions() / 2);
  const auto refreshes = TailRefreshes(full, start_positions, 6);

  LiveChunkDatabase live(PrefixManifest(full, start_positions), {});

  InferenceConfig config;
  config.design = DesignType::kSQ;
  config.host_suffix = full.host;
  config.other_object_sizes.push_back(full.SerializedSize() +
                                      config.expected_fixed_overhead);
  auto shared = std::make_shared<ResultCache>(32 << 20);
  config.caches.result = shared;

  constexpr int kWorkers = 2;
  constexpr int kRounds = 4;
  // Every (worker, round) records the snapshot it analyzed against plus its
  // results, so the serial reference below can replay the exact state.
  struct Recorded {
    DbSnapshot snapshot;
    std::vector<InferenceResult> results;
  };
  std::vector<std::vector<Recorded>> recorded(kWorkers);
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      try {
        BatchConfig batch;
        batch.threads = 2;
        BatchAnalyzer analyzer(live.Acquire(), config, batch);
        for (int r = 0; r < kRounds; ++r) {
          DbSnapshot snapshot = live.Acquire();
          analyzer.UpdateSnapshot(snapshot);
          auto results = analyzer.AnalyzeAll(traces);
          recorded[static_cast<size_t>(w)].push_back(
              Recorded{std::move(snapshot), std::move(results)});
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  std::thread publisher([&] {
    for (const ManifestRefresh& refresh : refreshes) {
      live.ApplyRefresh(refresh);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : workers) {
    t.join();
  }
  publisher.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial reference per recorded snapshot, all caches off: the concurrent
  // results must be byte-identical per index.
  InferenceConfig no_cache = config;
  no_cache.caches.result = nullptr;
  BatchConfig off;
  off.threads = 1;
  off.candidate_cache_mb = 0;
  off.prefix_cache_mb = 0;
  off.caches.result.enabled = false;
  for (int w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(recorded[static_cast<size_t>(w)].size(), static_cast<size_t>(kRounds));
    for (int r = 0; r < kRounds; ++r) {
      const Recorded& rec = recorded[static_cast<size_t>(w)][static_cast<size_t>(r)];
      BatchAnalyzer reference(rec.snapshot, no_cache, off);
      const auto expected = reference.AnalyzeAll(traces);
      ASSERT_EQ(rec.results.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(rec.results[i], expected[i])
            << "worker " << w << " round " << r << " trace " << i;
      }
    }
  }
  live.WaitForCompaction();
}

// --- Batch knob plumbing ----------------------------------------------------

TEST(ResultCacheBatchConfig, KnobsCreateAndDisableTheTier) {
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kCH, 1, 60 * kUsPerSec);
  InferenceConfig config;
  config.design = DesignType::kCH;
  {
    BatchConfig batch;
    batch.threads = 1;
    BatchAnalyzer analyzer(&manifest, config, batch);
    if (!ResultCache::EnvForcesOff()) {
      EXPECT_NE(analyzer.result_cache(), nullptr);  // default-on tier
    }
  }
  {
    BatchConfig batch;
    batch.threads = 1;
    batch.caches.result.enabled = false;
    BatchAnalyzer analyzer(&manifest, config, batch);
    EXPECT_EQ(analyzer.result_cache(), nullptr);
  }
  {
    BatchConfig batch;
    batch.threads = 1;
    batch.caches.result.budget_mb = 0;
    BatchAnalyzer analyzer(&manifest, config, batch);
    EXPECT_EQ(analyzer.result_cache(), nullptr);
  }
  {
    // An explicit engine-level cache always wins over the batch knobs.
    InferenceConfig with_cache = config;
    auto own = std::make_shared<ResultCache>(1 << 20);
    with_cache.caches.result = own;
    BatchConfig batch;
    batch.threads = 1;
    batch.caches.result.budget_mb = 0;
    BatchAnalyzer analyzer(&manifest, with_cache, batch);
    EXPECT_EQ(analyzer.result_cache(), own.get());
  }
}

}  // namespace
}  // namespace csi::infer
