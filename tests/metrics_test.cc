#include <gtest/gtest.h>

#include "src/testbed/experiment.h"
#include "src/testbed/metrics.h"

namespace csi::testbed {
namespace {

using infer::InferenceResult;
using infer::InferredSequence;
using infer::InferredSlot;
using infer::SlotKind;
using media::ChunkRef;
using media::MediaType;

std::vector<player::DownloadRecord> GroundTruth() {
  std::vector<player::DownloadRecord> gt;
  for (int i = 0; i < 4; ++i) {
    player::DownloadRecord v;
    v.chunk = ChunkRef{MediaType::kVideo, i % 2, i};
    gt.push_back(v);
    player::DownloadRecord a;
    a.chunk = ChunkRef{MediaType::kAudio, 0, i};
    gt.push_back(a);
  }
  return gt;
}

InferredSlot Video(int track, int index) {
  InferredSlot s;
  s.kind = SlotKind::kVideo;
  s.chunk = ChunkRef{MediaType::kVideo, track, index};
  return s;
}

InferredSlot Audio(int index) {
  InferredSlot s;
  s.kind = SlotKind::kAudio;
  s.chunk = ChunkRef{MediaType::kAudio, 0, index};
  return s;
}

InferredSequence PerfectSequence() {
  InferredSequence seq;
  for (int i = 0; i < 4; ++i) {
    seq.slots.push_back(Video(i % 2, i));
    seq.slots.push_back(Audio(i));
  }
  return seq;
}

TEST(SequenceAccuracy, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(SequenceAccuracy(PerfectSequence(), GroundTruth()), 1.0);
}

TEST(SequenceAccuracy, WrongTrackLosesCredit) {
  InferredSequence seq = PerfectSequence();
  seq.slots[0].chunk.track = 1;  // truth is track 0
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 7.0 / 8.0);
}

TEST(SequenceAccuracy, MissingSlotsLoseCredit) {
  InferredSequence seq;
  seq.slots.push_back(Video(0, 0));
  seq.slots.push_back(Audio(0));
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 2.0 / 8.0);
}

TEST(SequenceAccuracy, WrongAudioIndexLosesCredit) {
  InferredSequence seq = PerfectSequence();
  seq.slots[1].chunk.index = 99;
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 7.0 / 8.0);
}

TEST(SequenceAccuracy, OtherSlotsNeitherHelpNorHarm) {
  InferredSequence seq = PerfectSequence();
  InferredSlot other;
  other.kind = SlotKind::kOther;
  seq.slots.push_back(other);
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 1.0);
}

TEST(SequenceAccuracy, EmptyGroundTruthScoresZero) {
  EXPECT_DOUBLE_EQ(SequenceAccuracy(PerfectSequence(), {}), 0.0);
}

TEST(ScoreInference, BestAndWorstAcrossSequences) {
  InferenceResult result;
  result.sequences.push_back(PerfectSequence());
  InferredSequence bad;
  bad.slots.push_back(Video(1, 0));  // wrong track
  result.sequences.push_back(bad);
  const AccuracyResult acc = ScoreInference(result, GroundTruth());
  EXPECT_EQ(acc.num_sequences, 2);
  EXPECT_DOUBLE_EQ(acc.best, 1.0);
  EXPECT_DOUBLE_EQ(acc.worst, 0.0);
  EXPECT_TRUE(acc.found_ground_truth);
  EXPECT_FALSE(acc.unique_output);
}

TEST(ScoreInference, UniqueOutputFlag) {
  InferenceResult result;
  result.sequences.push_back(PerfectSequence());
  const AccuracyResult acc = ScoreInference(result, GroundTruth());
  EXPECT_TRUE(acc.unique_output);
  EXPECT_TRUE(acc.found_ground_truth);
}

TEST(ScoreInference, NoSequencesScoresZero) {
  const AccuracyResult acc = ScoreInference(InferenceResult{}, GroundTruth());
  EXPECT_EQ(acc.num_sequences, 0);
  EXPECT_DOUBLE_EQ(acc.best, 0.0);
  EXPECT_FALSE(acc.found_ground_truth);
}

TEST(Aggregate, ComputesTable4Columns) {
  std::vector<AccuracyResult> runs;
  for (double best : {1.0, 1.0, 0.97, 0.5}) {
    AccuracyResult r;
    r.best = best;
    r.worst = best - 0.1;
    runs.push_back(r);
  }
  const AccuracyAggregate agg = Aggregate(runs, /*best=*/true);
  EXPECT_DOUBLE_EQ(agg.pct_100_match, 50.0);
  EXPECT_DOUBLE_EQ(agg.pct_above_95, 75.0);
  EXPECT_GT(agg.pct5_accuracy, 50.0);
  EXPECT_LT(agg.pct5_accuracy, 97.0);
}

}  // namespace
}  // namespace csi::testbed
