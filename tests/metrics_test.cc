#include <gtest/gtest.h>

#include "src/common/build_info.h"
#include "src/common/telemetry.h"
#include "src/testbed/experiment.h"
#include "src/testbed/metrics.h"

namespace csi::testbed {
namespace {

using infer::InferenceResult;
using infer::InferredSequence;
using infer::InferredSlot;
using infer::SlotKind;
using media::ChunkRef;
using media::MediaType;

std::vector<player::DownloadRecord> GroundTruth() {
  std::vector<player::DownloadRecord> gt;
  for (int i = 0; i < 4; ++i) {
    player::DownloadRecord v;
    v.chunk = ChunkRef{MediaType::kVideo, i % 2, i};
    gt.push_back(v);
    player::DownloadRecord a;
    a.chunk = ChunkRef{MediaType::kAudio, 0, i};
    gt.push_back(a);
  }
  return gt;
}

InferredSlot Video(int track, int index) {
  InferredSlot s;
  s.kind = SlotKind::kVideo;
  s.chunk = ChunkRef{MediaType::kVideo, track, index};
  return s;
}

InferredSlot Audio(int index) {
  InferredSlot s;
  s.kind = SlotKind::kAudio;
  s.chunk = ChunkRef{MediaType::kAudio, 0, index};
  return s;
}

InferredSequence PerfectSequence() {
  InferredSequence seq;
  for (int i = 0; i < 4; ++i) {
    seq.slots.push_back(Video(i % 2, i));
    seq.slots.push_back(Audio(i));
  }
  return seq;
}

TEST(SequenceAccuracy, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(SequenceAccuracy(PerfectSequence(), GroundTruth()), 1.0);
}

TEST(SequenceAccuracy, WrongTrackLosesCredit) {
  InferredSequence seq = PerfectSequence();
  seq.slots[0].chunk.track = 1;  // truth is track 0
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 7.0 / 8.0);
}

TEST(SequenceAccuracy, MissingSlotsLoseCredit) {
  InferredSequence seq;
  seq.slots.push_back(Video(0, 0));
  seq.slots.push_back(Audio(0));
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 2.0 / 8.0);
}

TEST(SequenceAccuracy, WrongAudioIndexLosesCredit) {
  InferredSequence seq = PerfectSequence();
  seq.slots[1].chunk.index = 99;
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 7.0 / 8.0);
}

TEST(SequenceAccuracy, OtherSlotsNeitherHelpNorHarm) {
  InferredSequence seq = PerfectSequence();
  InferredSlot other;
  other.kind = SlotKind::kOther;
  seq.slots.push_back(other);
  EXPECT_DOUBLE_EQ(SequenceAccuracy(seq, GroundTruth()), 1.0);
}

TEST(SequenceAccuracy, EmptyGroundTruthScoresZero) {
  EXPECT_DOUBLE_EQ(SequenceAccuracy(PerfectSequence(), {}), 0.0);
}

TEST(ScoreInference, BestAndWorstAcrossSequences) {
  InferenceResult result;
  result.sequences.push_back(PerfectSequence());
  InferredSequence bad;
  bad.slots.push_back(Video(1, 0));  // wrong track
  result.sequences.push_back(bad);
  const AccuracyResult acc = ScoreInference(result, GroundTruth());
  EXPECT_EQ(acc.num_sequences, 2);
  EXPECT_DOUBLE_EQ(acc.best, 1.0);
  EXPECT_DOUBLE_EQ(acc.worst, 0.0);
  EXPECT_TRUE(acc.found_ground_truth);
  EXPECT_FALSE(acc.unique_output);
}

TEST(ScoreInference, UniqueOutputFlag) {
  InferenceResult result;
  result.sequences.push_back(PerfectSequence());
  const AccuracyResult acc = ScoreInference(result, GroundTruth());
  EXPECT_TRUE(acc.unique_output);
  EXPECT_TRUE(acc.found_ground_truth);
}

TEST(ScoreInference, NoSequencesScoresZero) {
  const AccuracyResult acc = ScoreInference(InferenceResult{}, GroundTruth());
  EXPECT_EQ(acc.num_sequences, 0);
  EXPECT_DOUBLE_EQ(acc.best, 0.0);
  EXPECT_FALSE(acc.found_ground_truth);
}

TEST(Aggregate, ComputesTable4Columns) {
  std::vector<AccuracyResult> runs;
  for (double best : {1.0, 1.0, 0.97, 0.5}) {
    AccuracyResult r;
    r.best = best;
    r.worst = best - 0.1;
    runs.push_back(r);
  }
  const AccuracyAggregate agg = Aggregate(runs, /*best=*/true);
  EXPECT_DOUBLE_EQ(agg.pct_100_match, 50.0);
  EXPECT_DOUBLE_EQ(agg.pct_above_95, 75.0);
  EXPECT_GT(agg.pct5_accuracy, 50.0);
  EXPECT_LT(agg.pct5_accuracy, 97.0);
}

// --- Prometheus exporter edge cases ---------------------------------------
// The text-exposition format escapes exactly backslash, double quote and
// newline inside label values; metric names are [a-zA-Z_:][a-zA-Z0-9_:]* and
// label names [a-zA-Z_][a-zA-Z0-9_]* with the "__" prefix reserved.

TEST(PrometheusExporter, EscapesLabelValueSpecialCharacters) {
  EXPECT_EQ(telemetry::PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(telemetry::PromEscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(telemetry::PromEscapeLabelValue("\\\\"), "\\\\\\\\");
  EXPECT_EQ(telemetry::PromEscapeLabelValue("\n\n"), "\\n\\n");
  // Tabs and other characters pass through untouched.
  EXPECT_EQ(telemetry::PromEscapeLabelValue("a\tb"), "a\tb");
}

TEST(PrometheusExporter, GoldenWithSpecialCharacterLabels) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("csi_paths_total", {{"path", "C:\\traces\n\"live\""}})->Add(3);
  registry.GetGauge("csi_mode", {{"note", "line1\nline2"}})->Set(1);
  telemetry::Histogram* hist =
      registry.GetHistogram("csi_h_seconds", {0.5}, {{"stage", "a\"b"}});
  hist->Observe(0.1);
  const std::string expected =
      "# TYPE csi_paths_total counter\n"
      "csi_paths_total{path=\"C:\\\\traces\\n\\\"live\\\"\"} 3\n"
      "# TYPE csi_mode gauge\n"
      "csi_mode{note=\"line1\\nline2\"} 1\n"
      "# TYPE csi_h_seconds histogram\n"
      "csi_h_seconds_bucket{stage=\"a\\\"b\",le=\"0.5\"} 1\n"
      "csi_h_seconds_bucket{stage=\"a\\\"b\",le=\"+Inf\"} 1\n"
      "csi_h_seconds_sum{stage=\"a\\\"b\"} 0.1\n"
      "csi_h_seconds_count{stage=\"a\\\"b\"} 1\n";
  EXPECT_EQ(registry.Snapshot().ToPrometheus(), expected);
}

TEST(PrometheusExporter, MetricNameValidity) {
  EXPECT_TRUE(telemetry::IsValidPrometheusMetricName("csi_batch_traces_total"));
  EXPECT_TRUE(telemetry::IsValidPrometheusMetricName("ns:sub_metric9"));
  EXPECT_TRUE(telemetry::IsValidPrometheusMetricName("_leading_underscore"));
  EXPECT_FALSE(telemetry::IsValidPrometheusMetricName(""));
  EXPECT_FALSE(telemetry::IsValidPrometheusMetricName("9starts_with_digit"));
  EXPECT_FALSE(telemetry::IsValidPrometheusMetricName("has-dash"));
  EXPECT_FALSE(telemetry::IsValidPrometheusMetricName("has space"));
}

TEST(PrometheusExporter, LabelNameValidity) {
  EXPECT_TRUE(telemetry::IsValidPrometheusLabelName("design"));
  EXPECT_TRUE(telemetry::IsValidPrometheusLabelName("_hidden"));
  EXPECT_TRUE(telemetry::IsValidPrometheusLabelName("a__b"));
  EXPECT_FALSE(telemetry::IsValidPrometheusLabelName("__reserved"));
  EXPECT_FALSE(telemetry::IsValidPrometheusLabelName("9digit"));
  EXPECT_FALSE(telemetry::IsValidPrometheusLabelName("with:colon"));
  EXPECT_FALSE(telemetry::IsValidPrometheusLabelName(""));
}

TEST(PrometheusExporter, BuildInfoIsWellFormed) {
  EXPECT_TRUE(telemetry::IsValidPrometheusMetricName("csi_build_info"));
  const telemetry::Labels labels = BuildInfoLabels();
  EXPECT_FALSE(labels.empty());
  for (const auto& [key, value] : labels) {
    EXPECT_TRUE(telemetry::IsValidPrometheusLabelName(key)) << key;
    EXPECT_EQ(telemetry::PromEscapeLabelValue(value), value) << value;
  }
}

}  // namespace
}  // namespace csi::testbed
