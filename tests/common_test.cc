#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace csi {
namespace {

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_EQ(SecondsToUs(1.0), kUsPerSec);
  EXPECT_EQ(SecondsToUs(0.5), 500 * kUsPerMs);
  EXPECT_DOUBLE_EQ(UsToSeconds(2 * kUsPerSec), 2.0);
}

TEST(Units, TransmissionTime) {
  // 1500 bytes at 12 Mbps = 1 ms.
  EXPECT_EQ(TransmissionTimeUs(1500, 12 * kMbps), 1 * kUsPerMs);
  EXPECT_EQ(TransmissionTimeUs(1500, 0), 0);
}

TEST(Units, BytesInTime) {
  EXPECT_EQ(BytesInTime(8 * kMbps, kUsPerSec), 1 * kMB);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.2);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child stream should differ from the parent's continued stream.
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(RunningStats, MinMaxCount) {
  RunningStats s;
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(7.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

// min/max must track the first sample, not a 0.0 initializer: an
// all-positive stream (e.g. per-trace latencies feeding the telemetry
// summaries) must never report min() == 0.
TEST(RunningStats, AllPositiveMinIsFirstSampleNotZero) {
  RunningStats s;
  for (double v : {5.0, 3.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, AllNegativeMaxIsFirstSampleNotZero) {
  RunningStats s;
  for (double v : {-5.0, -3.0, -9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.min(), -9.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(RunningStats, SingleSampleIsBothMinAndMax) {
  RunningStats s;
  s.Add(42.5);
  EXPECT_DOUBLE_EQ(s.min(), 42.5);
  EXPECT_DOUBLE_EQ(s.max(), 42.5);
}

TEST(RunningStats, EmptyStatsReportZeroes) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, VarianceMatchesDefinition) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 95), 5.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  for (int i = 0; i < 30; ++i) {
    e.Add(8.0);
  }
  EXPECT_NEAR(e.value(), 8.0, 1e-9);
}

TEST(Ewma, FirstSampleTaken) {
  Ewma e(0.1);
  e.Add(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 100.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.SetHeader({"a", "long-header", "c"});
  t.AddRow({"1", "2", "3"});
  t.AddRow({"wide-cell", "x"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  // All rows share the same width.
  size_t first_nl = out.find('\n');
  size_t second_nl = out.find('\n', first_nl + 1);
  EXPECT_EQ(first_nl, out.find('\n', second_nl + 1) - second_nl - 1);
}

TEST(Format, Bytes) {
  EXPECT_EQ(FormatBytes(1500), "1.50 KB");
  EXPECT_EQ(FormatBytes(2.2e6), "2.20 MB");
  EXPECT_EQ(FormatBytes(12), "12.00 B");
}

TEST(Format, Double) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace csi
