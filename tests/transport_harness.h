// Shared wiring for transport-level tests: a connection across two emulated
// links with a capture tap on the client side (mirroring the testbed).

#ifndef CSI_TESTS_TRANSPORT_HARNESS_H_
#define CSI_TESTS_TRANSPORT_HARNESS_H_

#include <memory>

#include "src/capture/capture.h"
#include "src/net/link.h"
#include "src/nettrace/bandwidth_trace.h"
#include "src/sim/simulator.h"
#include "src/transport/quic_connection.h"
#include "src/transport/tcp_connection.h"

namespace csi::testutil {

// Owns the simulator, links, and tap; the connection is created by the test
// via MakeTcp/MakeQuic so callbacks can capture test state.
class TransportHarness {
 public:
  explicit TransportHarness(BitsPerSec downlink_rate = 20 * kMbps, double downlink_loss = 0.0,
                            uint64_t seed = 1)
      : downlink_trace_(nettrace::StableTrace("down", downlink_rate)), tap_(&sim_) {
    net::LinkConfig down;
    down.trace = &downlink_trace_;
    down.propagation_delay = 10 * kUsPerMs;
    downlink_ = std::make_unique<net::Link>(
        &sim_, down,
        downlink_loss > 0
            ? std::unique_ptr<net::LossModel>(new net::BernoulliLoss(downlink_loss))
            : std::unique_ptr<net::LossModel>(new net::NoLoss()),
        Rng(seed), tap_.Tap([this](const net::Packet& p) { DeliverToClient(p); }));
    net::LinkConfig up;
    up.propagation_delay = 10 * kUsPerMs;
    uplink_ = std::make_unique<net::Link>(&sim_, up, std::make_unique<net::NoLoss>(),
                                          Rng(seed + 1),
                                          [this](const net::Packet& p) { DeliverToServer(p); });
  }

  transport::TcpTlsConnection* MakeTcp(transport::ConnectionCallbacks callbacks,
                                       transport::TcpConfig config = {}) {
    tcp_ = std::make_unique<transport::TcpTlsConnection>(
        &sim_, config, tap_.Tap([this](const net::Packet& p) { uplink_->Send(p); }),
        [this](const net::Packet& p) { downlink_->Send(p); }, std::move(callbacks));
    return tcp_.get();
  }

  transport::QuicConnection* MakeQuic(transport::ConnectionCallbacks callbacks,
                                      transport::QuicConfig config = {}) {
    quic_ = std::make_unique<transport::QuicConnection>(
        &sim_, config, tap_.Tap([this](const net::Packet& p) { uplink_->Send(p); }),
        [this](const net::Packet& p) { downlink_->Send(p); }, std::move(callbacks));
    return quic_.get();
  }

  sim::Simulator& sim() { return sim_; }
  const capture::CaptureTrace& trace() const { return tap_.trace(); }

 private:
  void DeliverToClient(const net::Packet& p) {
    if (tcp_) {
      tcp_->DeliverToClient(p);
    } else if (quic_) {
      quic_->DeliverToClient(p);
    }
  }
  void DeliverToServer(const net::Packet& p) {
    if (tcp_) {
      tcp_->DeliverToServer(p);
    } else if (quic_) {
      quic_->DeliverToServer(p);
    }
  }

  sim::Simulator sim_;
  nettrace::BandwidthTrace downlink_trace_;
  capture::GatewayTap tap_;
  std::unique_ptr<net::Link> downlink_;
  std::unique_ptr<net::Link> uplink_;
  std::unique_ptr<transport::TcpTlsConnection> tcp_;
  std::unique_ptr<transport::QuicConnection> quic_;
};

}  // namespace csi::testutil

#endif  // CSI_TESTS_TRANSPORT_HARNESS_H_
