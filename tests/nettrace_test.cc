#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nettrace/bandwidth_trace.h"

namespace csi::nettrace {
namespace {

TEST(BandwidthTrace, StableTraceIsConstant) {
  const BandwidthTrace t = StableTrace("s", 5 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(0), 5 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(123456789), 5 * kMbps);
  EXPECT_DOUBLE_EQ(t.AverageRate(), 5 * kMbps);
}

TEST(BandwidthTrace, SegmentsSelectRate) {
  BandwidthTrace t("t", {{0, 10 * kMbps}, {kUsPerSec, 2 * kMbps}, {2 * kUsPerSec, 6 * kMbps}});
  EXPECT_DOUBLE_EQ(t.RateAt(0), 10 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(kUsPerSec - 1), 10 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(kUsPerSec), 2 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(2 * kUsPerSec + 1), 6 * kMbps);
}

TEST(BandwidthTrace, CyclesBeyondPeriod) {
  BandwidthTrace t("t", {{0, 10 * kMbps}, {kUsPerSec, 2 * kMbps}});
  const TimeUs period = t.Period();
  EXPECT_DOUBLE_EQ(t.RateAt(period), 10 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(period + kUsPerSec), 2 * kMbps);
}

TEST(BandwidthTrace, NextChangeAfter) {
  BandwidthTrace t("t", {{0, 1 * kMbps}, {kUsPerSec, 2 * kMbps}});
  EXPECT_EQ(t.NextChangeAfter(0), kUsPerSec);
  EXPECT_EQ(t.NextChangeAfter(kUsPerSec), t.Period());
}

TEST(BandwidthTrace, AverageWeighsDurations) {
  // 1s at 9 Mbps then (period extension) at 3 Mbps for 1s.
  BandwidthTrace t("t", {{0, 9 * kMbps}, {kUsPerSec, 3 * kMbps}});
  EXPECT_NEAR(t.AverageRate(), 6 * kMbps, 1.0);
}

TEST(BandwidthTrace, RejectsEmptyAndNonZeroStart) {
  EXPECT_THROW(BandwidthTrace("x", {}), std::invalid_argument);
  EXPECT_THROW(BandwidthTrace("x", {{5, 1 * kMbps}}), std::invalid_argument);
}

TEST(BandwidthTrace, SerializeParseRoundTrip) {
  Rng rng(3);
  const BandwidthTrace t = CellularTrace("c", 4 * kMbps, 0.5, 60 * kUsPerSec, kUsPerSec, rng);
  const BandwidthTrace parsed = BandwidthTrace::Parse("c", t.Serialize());
  ASSERT_EQ(parsed.segments().size(), t.segments().size());
  for (size_t i = 0; i < t.segments().size(); ++i) {
    EXPECT_EQ(parsed.segments()[i].start, t.segments()[i].start);
    EXPECT_NEAR(parsed.segments()[i].rate, t.segments()[i].rate, 1.0);
  }
}

TEST(CellularTrace, HitsTargetMeanAndSpread) {
  Rng rng(4);
  const BandwidthTrace t =
      CellularTrace("c", 8 * kMbps, 0.5, 30 * 60 * kUsPerSec, kUsPerSec, rng);
  EXPECT_NEAR(t.AverageRate(), 8 * kMbps, 1.5 * kMbps);
  // Variability present: min and max rates differ substantially.
  double lo = 1e18;
  double hi = 0;
  for (const auto& seg : t.segments()) {
    lo = std::min(lo, seg.rate);
    hi = std::max(hi, seg.rate);
  }
  EXPECT_GT(hi / lo, 2.0);
}

TEST(CellularTrace, FloorsAtMinimumRate) {
  Rng rng(5);
  const BandwidthTrace t =
      CellularTrace("c", 100 * kKbps, 1.5, 10 * 60 * kUsPerSec, kUsPerSec, rng);
  for (const auto& seg : t.segments()) {
    EXPECT_GE(seg.rate, 50 * kKbps);
  }
}

TEST(SquareWave, AlternatesRates) {
  const BandwidthTrace t =
      SquareWaveTrace("sq", 10 * kMbps, 1 * kMbps, 5 * kUsPerSec, 2 * kUsPerSec);
  EXPECT_DOUBLE_EQ(t.RateAt(1 * kUsPerSec), 10 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(6 * kUsPerSec), 1 * kMbps);
  EXPECT_DOUBLE_EQ(t.RateAt(7 * kUsPerSec + 1), 10 * kMbps);
}

TEST(Conditions, B1IsStableTenMbps) {
  const BandwidthTrace b1 = ConditionB1();
  EXPECT_DOUBLE_EQ(b1.RateAt(12345678), 10 * kMbps);
}

TEST(Conditions, B2HasDipsToOneMbps) {
  const BandwidthTrace b2 = ConditionB2();
  bool saw_high = false;
  bool saw_low = false;
  for (TimeUs t = 0; t < b2.Period(); t += kUsPerSec) {
    if (b2.RateAt(t) == 10 * kMbps) {
      saw_high = true;
    }
    if (b2.RateAt(t) == 1 * kMbps) {
      saw_low = true;
    }
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_low);
}

TEST(TraceLibrary, CoversPaperRange) {
  Rng rng(6);
  const auto traces = CellularTraceLibrary(30, 10 * 60 * kUsPerSec, rng);
  ASSERT_EQ(traces.size(), 30u);
  // Average rates span roughly 0.6-40 Mbps (paper §6.2).
  EXPECT_LT(traces.front().AverageRate(), 1.5 * kMbps);
  EXPECT_GT(traces.back().AverageRate(), 20 * kMbps);
}

}  // namespace
}  // namespace csi::nettrace
