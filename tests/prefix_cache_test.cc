// Differential replay harness for the analysis-prefix cache.
//
// The cache's contract is absolute: inference output is byte-identical with
// the prefix cache on, off, and env-disabled, for every design path, capture
// set, repeat schedule, and thread count — the cache may only change WHEN the
// per-packet stages run, never what they produce. This suite locks that down
// with seeded replay sweeps against cache-off references, fingerprint
// stability/collision tests, a live-refresh replay (entries must survive
// snapshot publishes — they are snapshot-independent), and a TSan'd hammer
// where concurrent BatchAnalyzers share one cache while a LiveChunkDatabase
// publishes refreshes under them.
//
// The seeded sweep honors CSI_TEST_SCHEDULES (tests/test_env.h): tier-1 CI
// runs the fast default, the scheduled deep-differential job raises it.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/csi/batch_analyzer.h"
#include "src/csi/live_database.h"
#include "src/csi/prefix_cache.h"
#include "src/testbed/experiment.h"
#include "tests/inference_digest.h"
#include "tests/test_env.h"

namespace csi::infer {
namespace {

using testutil::AnalyzeFixedBatch;
using testutil::DigestResults;
using testutil::GoldenBatchDigest;
using testutil::MakeBatch;

// Restores the in-process env-off override no matter how the test exits.
struct ForceEnvOffGuard {
  ForceEnvOffGuard() { AnalysisPrefixCache::ForceEnvOffForTest(true); }
  ~ForceEnvOffGuard() { AnalysisPrefixCache::ForceEnvOffForTest(false); }
};

capture::PacketRecord BasePacket() {
  capture::PacketRecord p;
  p.timestamp = 1000;
  p.from_client = true;
  p.transport = net::Transport::kUdp;
  p.client_ip = 0x0a000001;
  p.server_ip = 0xc0a80101;
  p.client_port = 51000;
  p.server_port = 443;
  p.payload = 1200;
  p.wire_size = 1242;
  p.tcp_seq = 7;
  p.tcp_ack = 9;
  p.quic_packet_number = 3;
  p.sni = "v.example.com";
  return p;
}

// --- Fingerprint stability and sensitivity --------------------------------

TEST(TraceFingerprint, DeterministicAcrossCalls) {
  capture::CaptureTrace trace{BasePacket(), BasePacket(), BasePacket()};
  trace[1].timestamp = 2000;
  trace[2].timestamp = 3000;
  const TraceFingerprint a = FingerprintTrace(trace);
  const TraceFingerprint b = FingerprintTrace(trace);
  EXPECT_EQ(a, b);
  const capture::CaptureTrace copy = trace;
  EXPECT_EQ(FingerprintTrace(copy), a);
}

TEST(TraceFingerprint, EveryObserverVisibleFieldPerturbsIt) {
  const capture::CaptureTrace base{BasePacket()};
  const TraceFingerprint ref = FingerprintTrace(base);

  const auto mutated = [&](auto&& mutate) {
    capture::CaptureTrace t = base;
    mutate(t[0]);
    return FingerprintTrace(t);
  };
  EXPECT_NE(mutated([](auto& p) { p.timestamp += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.from_client = false; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.transport = net::Transport::kTcp; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.client_ip += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.server_ip += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.client_port += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.server_port += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.payload += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.wire_size += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.tcp_seq += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.tcp_ack += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.quic_packet_number += 1; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.sni = "w.example.com"; }), ref);
  EXPECT_NE(mutated([](auto& p) { p.sni.clear(); }), ref);

  // Packet count and order matter too.
  capture::CaptureTrace two{BasePacket(), BasePacket()};
  EXPECT_NE(FingerprintTrace(two), ref);
  capture::CaptureTrace empty;
  EXPECT_NE(FingerprintTrace(empty), ref);
}

TEST(TraceFingerprint, NoCollisionsAcrossRandomTraces) {
  // 500 random traces; a collision needs both independent 64-bit mixes to
  // collide at once, so any duplicate here is a real mixing bug.
  Rng rng(7);
  std::vector<TraceFingerprint> seen;
  for (int t = 0; t < 500; ++t) {
    capture::CaptureTrace trace;
    const int packets = rng.UniformInt(1, 40);
    TimeUs now = 0;
    for (int i = 0; i < packets; ++i) {
      capture::PacketRecord p = BasePacket();
      now += rng.UniformInt(1, 50000);
      p.timestamp = now;
      p.from_client = rng.Chance(0.5);
      p.payload = rng.UniformInt(0, 1500);
      p.wire_size = p.payload + 42;
      p.quic_packet_number = static_cast<uint64_t>(i);
      if (i == 0) {
        p.sni = "s" + std::to_string(rng.UniformInt(0, 1 << 20)) + ".example.com";
      } else {
        p.sni.clear();
      }
      trace.push_back(p);
    }
    const TraceFingerprint fp = FingerprintTrace(trace);
    for (const TraceFingerprint& other : seen) {
      ASSERT_FALSE(fp == other) << "collision at trace " << t;
    }
    seen.push_back(fp);
  }
}

// --- Cache mechanics -------------------------------------------------------

TEST(AnalysisPrefixCache, InternContextDistinguishesEveryKnob) {
  AnalysisPrefixCache cache(1 << 20);
  SplitterConfig splitter;
  const uint32_t base = cache.InternContext(DesignType::kSQ, "a.example.com", splitter);
  EXPECT_GE(base, 1u);
  EXPECT_EQ(cache.InternContext(DesignType::kSQ, "a.example.com", splitter), base);

  EXPECT_NE(cache.InternContext(DesignType::kCQ, "a.example.com", splitter), base);
  EXPECT_NE(cache.InternContext(DesignType::kSQ, "b.example.com", splitter), base);
  SplitterConfig idle = splitter;
  idle.idle_threshold += 1;
  EXPECT_NE(cache.InternContext(DesignType::kSQ, "a.example.com", idle), base);
  SplitterConfig window = splitter;
  window.simultaneity_window += 1;
  EXPECT_NE(cache.InternContext(DesignType::kSQ, "a.example.com", window), base);
  SplitterConfig sp1 = splitter;
  sp1.enable_sp1 = false;
  EXPECT_NE(cache.InternContext(DesignType::kSQ, "a.example.com", sp1), base);
  SplitterConfig sp2 = splitter;
  sp2.enable_sp2 = false;
  EXPECT_NE(cache.InternContext(DesignType::kSQ, "a.example.com", sp2), base);
  EXPECT_EQ(cache.stats().contexts, 7u);
}

TEST(AnalysisPrefixCache, LookupInsertClearRoundTrip) {
  if (AnalysisPrefixCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_PREFIX_CACHE=off in the environment";
  }
  AnalysisPrefixCache cache(1 << 20);
  const capture::CaptureTrace trace{BasePacket()};
  const auto query = AnalysisPrefixCache::MakeQuery(trace, 1);

  EXPECT_EQ(cache.Lookup(query), nullptr);
  auto value = std::make_shared<AnalysisPrefix>();
  value->media_flows = 1;
  cache.Insert(query, value);
  const auto hit = cache.Lookup(query);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), value.get());  // shared, not copied

  // Same fingerprint under another context is a different key.
  auto other = query;
  other.context = 2;
  EXPECT_EQ(cache.Lookup(other), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.Lookup(query), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(AnalysisPrefixCache, EvictionKeepsBytesUnderTinyBudget) {
  if (AnalysisPrefixCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_PREFIX_CACHE=off in the environment";
  }
  // Budget small enough that a few entries overflow each shard; the clock
  // sweep must keep per-shard bytes bounded and count evictions.
  AnalysisPrefixCache cache(4096, 2);
  const capture::CaptureTrace trace{BasePacket()};
  for (int i = 0; i < 64; ++i) {
    auto value = std::make_shared<AnalysisPrefix>();
    value->media_flows = 1;
    value->exchanges.resize(8);
    capture::CaptureTrace t = trace;
    t[0].timestamp = 1000 + i;
    cache.Insert(AnalysisPrefixCache::MakeQuery(t, 1), std::move(value));
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 4096u);
  EXPECT_GT(stats.entries, 0u);

  // A value bigger than a whole shard is refused outright.
  auto huge = std::make_shared<AnalysisPrefix>();
  huge->exchanges.resize(4096);
  const auto huge_query = AnalysisPrefixCache::MakeQuery(trace, 9);
  cache.Insert(huge_query, huge);
  EXPECT_EQ(cache.Lookup(huge_query), nullptr);
}

TEST(AnalysisPrefixCache, OffValueSpellings) {
  EXPECT_TRUE(AnalysisPrefixCache::IsOffValue("off"));
  EXPECT_TRUE(AnalysisPrefixCache::IsOffValue("OFF"));
  EXPECT_TRUE(AnalysisPrefixCache::IsOffValue("0"));
  EXPECT_TRUE(AnalysisPrefixCache::IsOffValue("none"));
  EXPECT_FALSE(AnalysisPrefixCache::IsOffValue("on"));
  EXPECT_FALSE(AnalysisPrefixCache::IsOffValue(""));
  EXPECT_FALSE(AnalysisPrefixCache::IsOffValue("1"));
}

// --- Differential replay: on vs off vs env-disabled ------------------------

std::vector<capture::CaptureTrace> SeededCaptureSet(const media::Manifest& manifest,
                                                    DesignType design, int unique) {
  auto traces = MakeBatch(manifest, design, unique, 60 * kUsPerSec);
  // Duplicates are the cache's bread and butter: re-analyzing the same bytes
  // must hit, and hit output must equal recomputed output.
  const size_t n = traces.size();
  for (size_t i = 0; i < n; ++i) {
    traces.push_back(traces[i]);
  }
  return traces;
}

TEST(PrefixCacheDifferential, CacheOnOffEnvDisabledByteIdenticalAcrossSchedules) {
  // Capture sets (per design) × repeat schedules × thread counts. Tier-1 runs
  // the default; CSI_TEST_SCHEDULES raises the repeat sweep for the deep job.
  const int max_repeats = static_cast<int>(std::min<uint64_t>(
      3 + (testutil::ScheduleCount(0) / 50), 16));
  for (const DesignType design : {DesignType::kSQ, DesignType::kCH, DesignType::kCQ}) {
    const media::Manifest manifest =
        testbed::MakeAssetForDesign(design, 1, 60 * kUsPerSec);
    const auto traces = SeededCaptureSet(manifest, design, 3);
    const std::string ctx = DesignTypeName(design);

    // Reference: both caches off, serial.
    InferenceConfig config;
    config.design = design;
    BatchConfig off;
    off.threads = 1;
    off.candidate_cache_mb = 0;
    off.prefix_cache_mb = 0;
    BatchAnalyzer reference(&manifest, config, off);
    const auto expected = reference.AnalyzeAll(traces);
    EXPECT_EQ(reference.prefix_cache(), nullptr);

    for (const int threads : {1, 3}) {
      for (int repeats = 1; repeats <= max_repeats; ++repeats) {
        BatchConfig on;
        on.threads = threads;
        // This test targets the prefix tier's warm-hit stats; the result tier
        // would absorb the duplicate traces first, so keep it off here (its
        // own differential lives in result_cache_test).
        on.caches.result.enabled = false;
        BatchAnalyzer analyzer(&manifest, config, on);
        for (int r = 0; r < repeats; ++r) {
          const auto got = analyzer.AnalyzeAll(traces);
          ASSERT_EQ(got.size(), expected.size());
          for (size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], expected[i])
                << ctx << " threads=" << threads << " repeat " << r << " trace " << i;
          }
        }
        if (!AnalysisPrefixCache::EnvForcesOff()) {
          ASSERT_NE(analyzer.prefix_cache(), nullptr);
          const auto stats = analyzer.prefix_cache()->stats();
          // Serial passes must hit on the duplicated back half of the set; a
          // single concurrent pass may legitimately race dup pairs to
          // all-miss, but any second pass runs against a fully warm cache.
          if (threads == 1 || repeats >= 2) {
            EXPECT_GT(stats.hits, 0u) << ctx << " threads=" << threads
                                      << " repeats=" << repeats;
          }
          EXPECT_LE(stats.misses,
                    static_cast<uint64_t>(traces.size()) *
                        static_cast<uint64_t>(threads))
              << ctx;
        }
      }
    }

    // Env-disabled: the engine must bypass an attached cache entirely and
    // still produce identical bytes.
    {
      const ForceEnvOffGuard guard;
      InferenceConfig forced = config;
      forced.prefix_cache = std::make_shared<AnalysisPrefixCache>(32 << 20);
      BatchConfig on;
      on.threads = 3;
      BatchAnalyzer analyzer(&manifest, forced, on);
      const auto got = analyzer.AnalyzeAll(traces);
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i]) << ctx << " env-disabled trace " << i;
      }
      const auto stats = forced.prefix_cache->stats();
      EXPECT_EQ(stats.lookups(), 0u) << ctx;
      EXPECT_EQ(stats.inserts, 0u) << ctx;
      EXPECT_EQ(stats.entries, 0u) << ctx;
    }
  }
}

TEST(PrefixCacheDifferential, GoldenDigestsHoldOnOffAndEnvDisabled) {
  for (const DesignType design :
       {DesignType::kCH, DesignType::kSH, DesignType::kCQ, DesignType::kSQ}) {
    BatchConfig off;
    off.threads = 4;
    off.prefix_cache_mb = 0;
    EXPECT_EQ(DigestResults(AnalyzeFixedBatch(design)), GoldenBatchDigest(design))
        << DesignTypeName(design) << " prefix cache on";
    EXPECT_EQ(DigestResults(AnalyzeFixedBatch(design, off)), GoldenBatchDigest(design))
        << DesignTypeName(design) << " prefix cache off";
    {
      const ForceEnvOffGuard guard;
      EXPECT_EQ(DigestResults(AnalyzeFixedBatch(design)), GoldenBatchDigest(design))
          << DesignTypeName(design) << " prefix cache env-disabled";
    }
  }
}

TEST(PrefixCacheSharing, WarmHitsAcrossEnginesAndBatches) {
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, 60 * kUsPerSec);
  const auto traces = MakeBatch(manifest, DesignType::kSQ, 2, 60 * kUsPerSec);
  auto shared = std::make_shared<AnalysisPrefixCache>(32 << 20);

  InferenceConfig config;
  config.design = DesignType::kSQ;
  config.prefix_cache = shared;
  BatchConfig batch;
  batch.threads = 2;

  BatchAnalyzer first(&manifest, config, batch);
  const auto expected = first.AnalyzeAll(traces);
  if (AnalysisPrefixCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_PREFIX_CACHE=off in the environment";
  }
  const auto cold = shared->stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, static_cast<uint64_t>(traces.size()));

  // A different analyzer over the same bytes starts fully warm: every lookup
  // hits, zero new inserts — cross-session sharing, same bytes out.
  BatchAnalyzer second(&manifest, config, batch);
  const auto warm = second.AnalyzeAll(traces);
  for (size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i], expected[i]) << "trace " << i;
  }
  const auto stats = shared->stats();
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(traces.size()));
  EXPECT_EQ(stats.inserts, cold.inserts);
}

// --- Live-refresh replay: entries survive snapshot publishes ----------------

// Appends the back half of `full` to `live` in `steps` refreshes.
std::vector<ManifestRefresh> TailRefreshes(const media::Manifest& full, int start_positions,
                                           int steps) {
  std::vector<ManifestRefresh> refreshes;
  const int tail = full.num_positions() - start_positions;
  for (int r = 0; r < steps; ++r) {
    const int lo = start_positions + tail * r / steps;
    const int hi = start_positions + tail * (r + 1) / steps;
    ManifestRefresh refresh;
    refresh.video_appends.resize(full.video_tracks.size());
    for (size_t t = 0; t < full.video_tracks.size(); ++t) {
      const auto& chunks = full.video_tracks[t].chunks;
      refresh.video_appends[t].assign(chunks.begin() + lo, chunks.begin() + hi);
    }
    refreshes.push_back(std::move(refresh));
  }
  return refreshes;
}

media::Manifest PrefixManifest(const media::Manifest& full, int positions) {
  media::Manifest prefix = full;
  for (auto& track : prefix.video_tracks) {
    track.chunks.resize(static_cast<size_t>(positions));
  }
  for (auto& track : prefix.audio_tracks) {
    track.chunks.resize(std::min(track.chunks.size(), static_cast<size_t>(positions)));
  }
  return prefix;
}

TEST(PrefixCacheLiveReplay, EntriesSurviveRefreshesAndStayByteIdentical) {
  if (AnalysisPrefixCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_PREFIX_CACHE=off in the environment";
  }
  const TimeUs duration = 60 * kUsPerSec;
  const media::Manifest full =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, duration);
  const auto traces = MakeBatch(full, DesignType::kSQ, 3, duration);
  const int start_positions = std::max(1, full.num_positions() / 2);
  const auto refreshes = TailRefreshes(full, start_positions, 3);
  ASSERT_FALSE(refreshes.empty());

  LiveChunkDatabase live(PrefixManifest(full, start_positions), {});

  // Pin the config knobs that would otherwise be derived from the growing
  // manifest (same discipline as csi_batch --follow-manifests).
  InferenceConfig config;
  config.design = DesignType::kSQ;
  config.host_suffix = full.host;
  config.other_object_sizes.push_back(full.SerializedSize() +
                                      config.expected_fixed_overhead);
  auto shared = std::make_shared<AnalysisPrefixCache>(32 << 20);
  config.prefix_cache = shared;
  BatchConfig batch;
  batch.threads = 2;
  BatchAnalyzer analyzer(live.Acquire(), config, batch);

  InferenceConfig no_cache = config;
  no_cache.prefix_cache = nullptr;
  BatchConfig off;
  off.threads = 1;
  off.candidate_cache_mb = 0;
  off.prefix_cache_mb = 0;

  uint64_t hits_before = 0;
  for (size_t round = 0; round <= refreshes.size(); ++round) {
    if (round > 0) {
      live.ApplyRefresh(refreshes[round - 1]);
    }
    const DbSnapshot snapshot = live.Acquire();
    analyzer.UpdateSnapshot(snapshot);
    const auto got = analyzer.AnalyzeAll(traces);
    // Reference at the same snapshot, caches off.
    BatchAnalyzer reference(snapshot, no_cache, off);
    const auto expected = reference.AnalyzeAll(traces);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "round " << round << " trace " << i;
    }
    const auto stats = shared->stats();
    if (round == 0) {
      EXPECT_EQ(stats.hits, 0u);
      hits_before = stats.hits;
    } else {
      // The prefix is snapshot-independent: every round after the first runs
      // fully warm even though the database grew underneath.
      EXPECT_EQ(stats.hits, hits_before + static_cast<uint64_t>(traces.size()))
          << "round " << round;
      hits_before = stats.hits;
      EXPECT_EQ(stats.misses, static_cast<uint64_t>(traces.size()));
    }
  }
  live.WaitForCompaction();
}

// --- TSan hammer: concurrent batches, shared cache, live publishes ----------

TEST(PrefixCacheHammer, ConcurrentBatchesSharedCacheUnderLivePublishes) {
  const TimeUs duration = 45 * kUsPerSec;
  const media::Manifest full =
      testbed::MakeAssetForDesign(DesignType::kSQ, 1, duration);
  const auto traces = MakeBatch(full, DesignType::kSQ, 3, duration);
  const int start_positions = std::max(1, full.num_positions() / 2);
  const auto refreshes = TailRefreshes(full, start_positions, 6);

  LiveChunkDatabase live(PrefixManifest(full, start_positions), {});

  InferenceConfig config;
  config.design = DesignType::kSQ;
  config.host_suffix = full.host;
  config.other_object_sizes.push_back(full.SerializedSize() +
                                      config.expected_fixed_overhead);
  auto shared = std::make_shared<AnalysisPrefixCache>(32 << 20);
  config.prefix_cache = shared;

  constexpr int kWorkers = 2;
  constexpr int kRounds = 4;
  // Every (worker, round) records the snapshot it analyzed against plus its
  // results, so the serial reference below can replay the exact state.
  struct Recorded {
    DbSnapshot snapshot;
    std::vector<InferenceResult> results;
  };
  std::vector<std::vector<Recorded>> recorded(kWorkers);
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      try {
        BatchConfig batch;
        batch.threads = 2;
        BatchAnalyzer analyzer(live.Acquire(), config, batch);
        for (int r = 0; r < kRounds; ++r) {
          DbSnapshot snapshot = live.Acquire();
          analyzer.UpdateSnapshot(snapshot);
          auto results = analyzer.AnalyzeAll(traces);
          recorded[static_cast<size_t>(w)].push_back(
              Recorded{std::move(snapshot), std::move(results)});
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  std::thread publisher([&] {
    for (const ManifestRefresh& refresh : refreshes) {
      live.ApplyRefresh(refresh);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : workers) {
    t.join();
  }
  publisher.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial reference per recorded snapshot, all caches off: the concurrent
  // results must be byte-identical per index.
  InferenceConfig no_cache = config;
  no_cache.prefix_cache = nullptr;
  BatchConfig off;
  off.threads = 1;
  off.candidate_cache_mb = 0;
  off.prefix_cache_mb = 0;
  for (int w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(recorded[static_cast<size_t>(w)].size(), static_cast<size_t>(kRounds));
    for (int r = 0; r < kRounds; ++r) {
      const Recorded& rec = recorded[static_cast<size_t>(w)][static_cast<size_t>(r)];
      BatchAnalyzer reference(rec.snapshot, no_cache, off);
      const auto expected = reference.AnalyzeAll(traces);
      ASSERT_EQ(rec.results.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(rec.results[i], expected[i])
            << "worker " << w << " round " << r << " trace " << i;
      }
    }
  }
  live.WaitForCompaction();
}

// --- Batch knob plumbing ----------------------------------------------------

TEST(PrefixCacheBatchConfig, ZeroBudgetDisablesTheCache) {
  const media::Manifest manifest =
      testbed::MakeAssetForDesign(DesignType::kCH, 1, 60 * kUsPerSec);
  InferenceConfig config;
  config.design = DesignType::kCH;
  BatchConfig batch;
  batch.prefix_cache_mb = 0;
  batch.threads = 1;
  BatchAnalyzer analyzer(&manifest, config, batch);
  EXPECT_EQ(analyzer.prefix_cache(), nullptr);
}

}  // namespace
}  // namespace csi::infer
