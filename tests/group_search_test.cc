#include <gtest/gtest.h>

#include "src/csi/group_search.h"
#include "src/media/manifest.h"

namespace csi::infer {
namespace {

// 3 video tracks x 8 positions, distinct sizes, 1 CBR audio track of 60000.
media::Manifest GroupManifest() {
  media::Manifest m;
  m.asset_id = "grp";
  m.host = "cdn.example";
  for (int t = 0; t < 3; ++t) {
    media::Track track;
    track.name = "T" + std::to_string(t);
    track.nominal_bitrate = (t + 1) * 600 * kKbps;
    for (int i = 0; i < 8; ++i) {
      // Non-linear spacing so distinct track combinations never sum equal.
      track.chunks.push_back(media::Chunk{100000 * (1 << (2 * t)) + 7919 * i + 997 * t * i,
                                          5 * kUsPerSec});
    }
    m.video_tracks.push_back(track);
  }
  media::Track audio;
  audio.type = media::MediaType::kAudio;
  audio.name = "audio";
  for (int i = 0; i < 8; ++i) {
    audio.chunks.push_back(media::Chunk{60000, 5 * kUsPerSec});
  }
  m.audio_tracks.push_back(audio);
  return m;
}

TrafficGroup MakeGroup(int requests, Bytes estimated, TimeUs start = 0) {
  TrafficGroup g;
  for (int i = 0; i < requests; ++i) {
    g.requests.push_back(DetectedRequest{start, false});
  }
  g.start_time = start;
  g.end_time = start + 5 * kUsPerSec;
  g.estimated_total = estimated;
  return g;
}

// Estimate with small overhead, inside the k = 5% window.
Bytes Est(Bytes true_total) { return true_total + true_total / 200; }  // +0.5%

GroupSearchConfig Config() {
  GroupSearchConfig config;
  config.k = 0.05;
  config.expected_overhead = 0.005;
  config.expected_fixed_overhead = 0;
  return config;
}

TEST(EnumerateGroupCandidates, SingleVideoPlusAudioPair) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  // Group: video (t1, i3) + one audio chunk.
  const Bytes truth = db.VideoSize(1, 3) + 60000;
  bool truncated = false;
  const auto candidates =
      EnumerateGroupCandidates(MakeGroup(2, Est(truth)), db, Config(), {}, 3, 3, &truncated);
  ASSERT_FALSE(candidates.empty());
  // The top-ranked candidate is the ground truth.
  EXPECT_EQ(candidates[0].video_start, 3);
  ASSERT_EQ(candidates[0].tracks.size(), 1u);
  EXPECT_EQ(candidates[0].tracks[0], 1);
  EXPECT_EQ(candidates[0].audio_count, 1);
}

TEST(EnumerateGroupCandidates, StartRangeConstrains) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  const Bytes truth = db.VideoSize(0, 5) + 60000;
  bool truncated = false;
  // Range [5,5] finds it; range [0,2] cannot.
  EXPECT_FALSE(
      EnumerateGroupCandidates(MakeGroup(2, Est(truth)), db, Config(), {}, 5, 5, &truncated)
          .empty());
  const auto wrong_range =
      EnumerateGroupCandidates(MakeGroup(2, Est(truth)), db, Config(), {}, 0, 2, &truncated);
  for (const auto& c : wrong_range) {
    EXPECT_TRUE(c.wildcard || c.video_start < 0 || (c.video_start >= 0 && c.video_start <= 2));
  }
}

TEST(EnumerateGroupCandidates, MultiChunkRun) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  // Videos (t0,i2),(t2,i3),(t1,i4) + 3 audio.
  const Bytes truth = db.VideoSize(0, 2) + db.VideoSize(2, 3) + db.VideoSize(1, 4) + 3 * 60000;
  bool truncated = false;
  const auto candidates =
      EnumerateGroupCandidates(MakeGroup(6, Est(truth)), db, Config(), {}, 2, 2, &truncated);
  ASSERT_FALSE(candidates.empty());
  bool found = false;
  for (const auto& c : candidates) {
    if (!c.wildcard && c.video_start == 2 && c.tracks == std::vector<int>{0, 2, 1} &&
        c.audio_count == 3) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnumerateGroupCandidates, AudioOnlyGroup) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  bool truncated = false;
  const auto candidates =
      EnumerateGroupCandidates(MakeGroup(2, Est(120000)), db, Config(), {}, 0, 7, &truncated);
  bool found = false;
  for (const auto& c : candidates) {
    if (!c.wildcard && c.video_start < 0 && c.audio_count == 2) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnumerateGroupCandidates, OversizedGroupBecomesWildcard) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  GroupSearchConfig config = Config();
  config.max_group_requests = 4;
  bool truncated = false;
  const auto candidates =
      EnumerateGroupCandidates(MakeGroup(8, 10 * kMB), db, config, {}, 0, 7, &truncated);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].wildcard);
}

TEST(EnumerateGroupCandidates, UnexplainableGroupBecomesWildcard) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  bool truncated = false;
  const auto candidates =
      EnumerateGroupCandidates(MakeGroup(1, 33), db, Config(), {}, 0, 7, &truncated);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].wildcard);
}

TEST(EnumerateGroupCandidates, PhantomRequestDeficit) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  // 3 requests but only 2 objects (one request was a retransmission).
  const Bytes truth = db.VideoSize(1, 0) + 60000;
  GroupSearchConfig config = Config();
  config.max_phantom_requests = 1;
  bool truncated = false;
  const auto candidates =
      EnumerateGroupCandidates(MakeGroup(3, Est(truth)), db, config, {}, 0, 0, &truncated);
  bool found = false;
  for (const auto& c : candidates) {
    if (!c.wildcard && c.video_start == 0 && c.tracks.size() == 1 && c.audio_count == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnumerateGroupCandidates, KnownOtherObjectConsumed) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  GroupSearchConfig config = Config();
  config.other_object_sizes = {25000};  // e.g. the manifest
  const Bytes truth = db.VideoSize(0, 0) + 25000;
  bool truncated = false;
  const auto candidates =
      EnumerateGroupCandidates(MakeGroup(2, Est(truth)), db, config, {}, 0, 0, &truncated);
  bool found = false;
  for (const auto& c : candidates) {
    if (!c.wildcard && c.video_start == 0 && c.other_count == 1 && c.audio_count == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnumerateGroupCandidates, DisplayConstraintPrunesTracks) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  const Bytes truth = db.VideoSize(1, 3) + 60000;
  DisplayConstraints display;
  display[3] = 2;  // screen says track 2 at index 3 -> truth (track 1) pruned
  bool truncated = false;
  const auto candidates = EnumerateGroupCandidates(MakeGroup(2, Est(truth)), db, Config(),
                                                   display, 3, 3, &truncated);
  for (const auto& c : candidates) {
    if (!c.wildcard && c.video_start == 3 && !c.tracks.empty()) {
      EXPECT_EQ(c.tracks[0], 2);
    }
  }
}

TEST(SearchGroupSequences, ChainsGroupsContiguously) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  std::vector<TrafficGroup> groups;
  // Group 0: video i0 (t0) + audio; group 1: video i1,i2 (t1,t1) + 2 audio.
  groups.push_back(MakeGroup(2, Est(db.VideoSize(0, 0) + 60000), 0));
  groups.push_back(MakeGroup(
      4, Est(db.VideoSize(1, 1) + db.VideoSize(1, 2) + 2 * 60000), 10 * kUsPerSec));
  const auto result = SearchGroupSequences(groups, db, Config());
  ASSERT_FALSE(result.sequences.empty());
  // Top sequence is the ground truth.
  const auto& slots = result.sequences[0].slots;
  std::vector<std::pair<int, int>> video;
  for (const auto& s : slots) {
    if (s.kind == SlotKind::kVideo) {
      video.emplace_back(s.chunk.track, s.chunk.index);
    }
  }
  ASSERT_EQ(video.size(), 3u);
  EXPECT_EQ(video[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(video[1], (std::pair<int, int>{1, 1}));
  EXPECT_EQ(video[2], (std::pair<int, int>{1, 2}));
  EXPECT_EQ(result.group_sizes, (std::vector<int>{2, 4}));
}

TEST(SearchGroupSequences, WildcardGroupWidensButChainRecovers) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  std::vector<TrafficGroup> groups;
  groups.push_back(MakeGroup(2, Est(db.VideoSize(0, 0) + 60000), 0));
  groups.push_back(MakeGroup(2, 12345, 10 * kUsPerSec));  // unexplainable
  // After a 2-request wildcard the next video index is in [1, 3]; this group
  // pins it back to 2.
  groups.push_back(MakeGroup(2, Est(db.VideoSize(2, 2) + 60000), 20 * kUsPerSec));
  const auto result = SearchGroupSequences(groups, db, Config());
  ASSERT_FALSE(result.sequences.empty());
  bool found_recovery = false;
  for (const auto& seq : result.sequences) {
    for (const auto& s : seq.slots) {
      if (s.kind == SlotKind::kVideo && s.chunk.index == 2 && s.chunk.track == 2) {
        found_recovery = true;
      }
    }
  }
  EXPECT_TRUE(found_recovery);
}

TEST(EnumerateGroupCandidates, ParallelPartitioningIsBitIdenticalToSerial) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  ThreadPool pool(8);
  GroupSearchConfig serial_config = Config();
  GroupSearchConfig parallel_config = Config();
  parallel_config.pool = &pool;
  // Sweep group shapes: single video, multi-chunk runs, audio-only, phantom
  // deficits — all over the full (unconditioned) start range.
  const std::vector<TrafficGroup> groups = {
      MakeGroup(1, Est(db.VideoSize(1, 3))),
      MakeGroup(2, Est(db.VideoSize(0, 5) + 60000)),
      MakeGroup(6, Est(db.VideoSize(0, 2) + db.VideoSize(2, 3) + db.VideoSize(1, 4) + 3 * 60000)),
      MakeGroup(2, Est(2 * 60000)),
      MakeGroup(3, Est(db.VideoSize(1, 0) + 60000)),
      MakeGroup(1, 33),  // unexplainable -> wildcard
  };
  for (size_t g = 0; g < groups.size(); ++g) {
    bool serial_truncated = false;
    bool parallel_truncated = false;
    const auto serial =
        EnumerateGroupCandidates(groups[g], db, serial_config, {}, 0, 7, &serial_truncated);
    const auto parallel = EnumerateGroupCandidates(groups[g], db, parallel_config, {}, 0, 7,
                                                   &parallel_truncated);
    EXPECT_EQ(serial, parallel) << "group " << g;
    EXPECT_EQ(serial_truncated, parallel_truncated) << "group " << g;
  }
}

TEST(EnumerateGroupCandidates, CandidateCapKeepsBestRankedDeterministically) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  GroupSearchConfig config = Config();
  config.max_candidates_per_group = 3;
  const Bytes truth = db.VideoSize(1, 3) + 60000;
  bool truncated = false;
  const auto capped =
      EnumerateGroupCandidates(MakeGroup(2, Est(truth)), db, config, {}, 0, 7, &truncated);
  ASSERT_LE(capped.size(), 3u);
  // The cap drops the worst-ranked candidates, so the ground truth survives.
  ASSERT_FALSE(capped.empty());
  EXPECT_EQ(capped[0].video_start, 3);
  ASSERT_EQ(capped[0].tracks.size(), 1u);
  EXPECT_EQ(capped[0].tracks[0], 1);
}

TEST(CandidateCost, GroundTruthRanksAheadOfImpostors) {
  const media::Manifest m = GroupManifest();
  const ChunkDatabase db(&m);
  GroupSearchConfig config = Config();
  GroupCandidate truth;
  truth.video_start = 0;
  truth.tracks = {1};
  truth.audio_count = 1;
  truth.implied_total = db.VideoSize(1, 0) + 60000;
  GroupCandidate impostor = truth;
  impostor.tracks = {0};
  impostor.implied_total = db.VideoSize(0, 0) + 60000;
  const Bytes estimate = Est(truth.implied_total);
  EXPECT_LT(CandidateCost(truth, estimate, 2, config),
            CandidateCost(impostor, estimate, 2, config));
}

}  // namespace
}  // namespace csi::infer
