#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace csi {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count]() { ++count; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  const std::thread::id self = std::this_thread::get_id();
  auto f = pool.Submit([self]() { return std::this_thread::get_id() == self; });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, ZeroWorkersParallelForCoversAllIndices) {
  ThreadPool pool(0);
  std::vector<int> hit(64, 0);
  pool.ParallelFor(64, [&hit](int64_t i) { hit[static_cast<size_t>(i)] = 1; });
  for (int h : hit) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForMoreWorkersThanWork) {
  ThreadPool pool(16);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&count](int64_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ParallelForZeroAndNegativeIterations) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int64_t) { FAIL() << "must not be called"; });
  pool.ParallelFor(-5, [](int64_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](int64_t i) {
                                  if (i == 17) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A task running on a pool worker issues ParallelFor on the same pool: the
  // calling thread drives its own loop, so this completes even when every
  // worker is busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&pool, &total](int64_t) {
    pool.ParallelFor(8, [&total](int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, FreeFunctionNullPoolRunsSerially) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&order](int64_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&count]() { ++count; }));
    }
    for (auto& f : futures) {
      f.get();
    }
  }
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace csi
