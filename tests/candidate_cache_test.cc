// Differential, invalidation, eviction, and concurrency tests for the shared
// group-candidate cache (src/csi/candidate_cache.h).
//
// The contract locked in here: enumeration results are byte-identical with
// the cache enabled, disabled, and across live-manifest refreshes — for any
// append schedule and compaction cadence. Revalidation must hit when no
// appended chunk can enter an entry's output, invalidate when one can (or
// when a compaction hides the appends), stay under its byte budget while
// evicting, and survive concurrent readers racing a publisher (run under
// TSan in CI).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/csi/batch_analyzer.h"
#include "src/csi/candidate_cache.h"
#include "src/csi/group_search.h"
#include "src/csi/live_database.h"
#include "src/media/manifest.h"
#include "src/testbed/experiment.h"
#include "tests/inference_digest.h"
#include "tests/test_env.h"

namespace csi::infer {
namespace {

using media::Chunk;
using media::Manifest;
using media::MediaType;
using media::Track;

Bytes RandomChunkSize(Rng* rng, std::vector<Bytes>* palette) {
  if (!palette->empty() && rng->Chance(0.35)) {
    return (*palette)[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(palette->size()) - 1))];
  }
  const Bytes size = rng->UniformInt(1, 4'000'000);
  palette->push_back(size);
  return size;
}

// Random uniform live-edge manifest (same shape as live_database_test).
Manifest RandomUniformManifest(Rng* rng, std::vector<Bytes>* palette) {
  Manifest m;
  m.asset_id = "cache-fuzz";
  m.host = "cdn.live.example";
  const int tracks = static_cast<int>(rng->UniformInt(1, 4));
  const int positions = rng->Chance(0.05) ? 0 : static_cast<int>(rng->UniformInt(1, 16));
  for (int t = 0; t < tracks; ++t) {
    Track track;
    track.name = "v" + std::to_string(t);
    track.type = MediaType::kVideo;
    track.nominal_bitrate = (t + 1) * 1'000'000;
    for (int i = 0; i < positions; ++i) {
      track.chunks.push_back(Chunk{RandomChunkSize(rng, palette), 2'000'000});
    }
    m.video_tracks.push_back(std::move(track));
  }
  if (rng->Chance(0.6)) {
    Track audio;
    audio.name = "audio";
    audio.type = MediaType::kAudio;
    audio.nominal_bitrate = 128'000;
    const Bytes audio_size = rng->UniformInt(8'000, 64'000);
    for (int i = 0; i < positions; ++i) {
      audio.chunks.push_back(Chunk{audio_size, 2'000'000});
    }
    m.audio_tracks.push_back(std::move(audio));
  }
  return m;
}

ManifestRefresh RandomRefresh(Rng* rng, int tracks, int appended,
                              std::vector<Bytes>* palette) {
  ManifestRefresh refresh;
  refresh.video_appends.resize(static_cast<size_t>(tracks));
  for (int t = 0; t < tracks; ++t) {
    for (int i = 0; i < appended; ++i) {
      refresh.video_appends[static_cast<size_t>(t)].push_back(
          Chunk{RandomChunkSize(rng, palette), 2'000'000});
    }
  }
  return refresh;
}

TrafficGroup MakeGroup(int requests, Bytes estimated) {
  TrafficGroup g;
  for (int i = 0; i < requests; ++i) {
    g.requests.push_back(DetectedRequest{0, false});
  }
  g.start_time = 0;
  g.end_time = 5 * kUsPerSec;
  g.estimated_total = estimated;
  return g;
}

// One reusable query: a group plus a start-range recipe. Open ranges track
// the live edge (hi = positions at query time), the others stay fixed — both
// shapes the sequence chain produces.
struct QueryCase {
  TrafficGroup group;
  int lo = 0;
  int hi = 0;
  bool open = false;
};

std::vector<QueryCase> MakeQueryCases(Rng* rng, const Manifest& m, Bytes audio_size) {
  std::vector<QueryCase> cases;
  const int positions = m.num_positions();
  const int tracks = m.num_video_tracks();
  for (int qi = 0; qi < 6; ++qi) {
    QueryCase qc;
    const int requests = static_cast<int>(rng->UniformInt(1, 5));
    Bytes estimated = 0;
    if (positions > 0 && rng->Chance(0.7)) {
      // Plant a real explanation so the DFS has work to do.
      const int s = static_cast<int>(rng->UniformInt(0, positions - 1));
      const int v = static_cast<int>(
          rng->UniformInt(1, std::min<int64_t>({3, positions - s, requests})));
      Bytes total = 0;
      for (int j = 0; j < v; ++j) {
        const int t = static_cast<int>(rng->UniformInt(0, tracks - 1));
        total += m.video_tracks[static_cast<size_t>(t)]
                     .chunks[static_cast<size_t>(s + j)]
                     .size;
      }
      total += static_cast<Bytes>(requests - v) * audio_size;
      estimated = total + total / 300 + 1;
    } else {
      estimated = rng->UniformInt(1, 5'000'000);
    }
    qc.group = MakeGroup(requests, estimated);
    const int anchor = positions > 0 ? static_cast<int>(rng->UniformInt(0, positions - 1)) : 0;
    switch (rng->UniformInt(0, 3)) {
      case 0:
        qc.open = true;  // chain root: [0, live edge]
        break;
      case 1:
        qc.lo = anchor;
        qc.hi = anchor;  // post-transition single-start range
        break;
      case 2:
        qc.lo = 0;
        qc.hi = anchor;
        break;
      default:
        qc.lo = anchor;
        qc.open = true;  // [anchor, live edge]
        break;
    }
    cases.push_back(std::move(qc));
  }
  return cases;
}

GroupSearchConfig FuzzConfig(Rng* rng, const std::vector<Bytes>& palette) {
  GroupSearchConfig config;
  config.k = 0.05;
  config.expected_overhead = 0.005;
  config.expected_fixed_overhead = 0;
  // Mix budgets that floor per-start (always revalidatable) with the default
  // (which trips the growth-range budget check at these position counts).
  config.max_dfs_nodes = rng->Chance(0.5) ? 50'000 : 2'000'000;
  if (rng->Chance(0.3) && !palette.empty()) {
    config.other_object_sizes.push_back(palette[0]);
  }
  return config;
}

// Runs every query case against `snap` with the shared cache on and off and
// asserts byte identity; runs the cached side twice so the second call takes
// the hit/revalidation path.
void ExpectCacheOnMatchesOff(const std::vector<QueryCase>& cases, const DbSnapshot& snap,
                             const GroupSearchConfig& off_config,
                             GroupCandidateCache* cache, const std::string& context) {
  GroupSearchConfig on_config = off_config;
  on_config.shared_cache = cache;
  for (size_t i = 0; i < cases.size(); ++i) {
    const QueryCase& qc = cases[i];
    const int hi = qc.open ? snap.num_positions() : qc.hi;
    const std::string ctx = context + " query " + std::to_string(i);
    bool trunc_off = false;
    bool trunc_on = false;
    bool trunc_on2 = false;
    const std::vector<GroupCandidate> off = EnumerateGroupCandidates(
        qc.group, snap, off_config, {}, qc.lo, hi, &trunc_off);
    const std::vector<GroupCandidate> on = EnumerateGroupCandidates(
        qc.group, snap, on_config, {}, qc.lo, hi, &trunc_on);
    const std::vector<GroupCandidate> on_again = EnumerateGroupCandidates(
        qc.group, snap, on_config, {}, qc.lo, hi, &trunc_on2);
    ASSERT_EQ(on, off) << ctx;
    ASSERT_EQ(on_again, off) << ctx << " (hit path)";
    ASSERT_EQ(trunc_on, trunc_off) << ctx;
    ASSERT_EQ(trunc_on2, trunc_off) << ctx << " (hit path)";
  }
}

// --- Cache-on vs cache-off byte identity over append schedules ------------

TEST(CandidateCacheDifferential, CacheOnMatchesCacheOffOn120Schedules) {
  ThreadPool pool(3);
  const uint64_t schedules = testutil::ScheduleCount(120);
  for (uint64_t seed = 0; seed < schedules; ++seed) {
    Rng rng(seed);
    std::vector<Bytes> palette;
    Manifest m = RandomUniformManifest(&rng, &palette);
    const std::string ctx = "seed " + std::to_string(seed);

    LiveChunkDatabase::Options options;
    options.pool = rng.Chance(0.5) ? &pool : nullptr;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        options.compact_after_delta_chunks = 0;
        break;
      case 1:
        options.compact_after_delta_chunks = static_cast<size_t>(rng.UniformInt(1, 12));
        break;
      default:
        options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
        break;
    }
    options.background_compaction = rng.Chance(0.5);
    LiveChunkDatabase live(m, options);

    const Bytes audio_size =
        m.audio_tracks.empty() ? 0 : m.audio_tracks[0].chunks.empty()
                                         ? 0
                                         : m.audio_tracks[0].chunks[0].size;
    const GroupSearchConfig off_config = FuzzConfig(&rng, palette);
    std::vector<QueryCase> cases = MakeQueryCases(&rng, m, audio_size);
    // One cache across every state of this lineage: the cross-refresh
    // revalidation path is exactly what this loop exercises.
    GroupCandidateCache cache(8ull * 1024 * 1024);

    ASSERT_NO_FATAL_FAILURE(
        ExpectCacheOnMatchesOff(cases, live.Acquire(), off_config, &cache, ctx + " initial"));

    const int refreshes = static_cast<int>(rng.UniformInt(1, 4));
    for (int r = 0; r < refreshes; ++r) {
      const int appended = static_cast<int>(rng.UniformInt(1, 4));
      const ManifestRefresh refresh =
          RandomRefresh(&rng, m.num_video_tracks(), appended, &palette);
      const DbSnapshot snap = live.ApplyRefresh(refresh);
      const std::string step = ctx + " refresh " + std::to_string(r);
      ASSERT_NO_FATAL_FAILURE(
          ExpectCacheOnMatchesOff(cases, snap, off_config, &cache, step));
      if (rng.Chance(0.25)) {
        const DbSnapshot compacted = live.CompactNow();
        ASSERT_NO_FATAL_FAILURE(ExpectCacheOnMatchesOff(cases, compacted, off_config, &cache,
                                                        step + " compacted"));
      }
      live.WaitForCompaction();
      ASSERT_NO_FATAL_FAILURE(ExpectCacheOnMatchesOff(cases, live.Acquire(), off_config,
                                                      &cache, step + " settled"));
    }
  }
}

// --- Targeted delta invalidation ------------------------------------------

// Fixed two-track manifest with well-separated sizes; audio 32000.
Manifest SmallManifest(int positions) {
  Manifest m;
  m.asset_id = "small";
  m.host = "cdn.small.example";
  for (int t = 0; t < 2; ++t) {
    Track track;
    track.name = "v" + std::to_string(t);
    track.type = MediaType::kVideo;
    track.nominal_bitrate = (t + 1) * 1'000'000;
    for (int i = 0; i < positions; ++i) {
      track.chunks.push_back(Chunk{1000 * (t + 1) + 7 * i, 2'000'000});
    }
    m.video_tracks.push_back(std::move(track));
  }
  Track audio;
  audio.name = "audio";
  audio.type = MediaType::kAudio;
  audio.nominal_bitrate = 128'000;
  for (int i = 0; i < positions; ++i) {
    audio.chunks.push_back(Chunk{32'000, 2'000'000});
  }
  m.audio_tracks.push_back(std::move(audio));
  return m;
}

ManifestRefresh UniformAppend(int tracks, Bytes size) {
  ManifestRefresh refresh;
  refresh.video_appends.resize(static_cast<size_t>(tracks));
  for (int t = 0; t < tracks; ++t) {
    refresh.video_appends[static_cast<size_t>(t)].push_back(Chunk{size, 2'000'000});
  }
  return refresh;
}

class CandidateCacheInvalidation : public ::testing::Test {
 protected:
  void SetUp() override {
    if (GroupCandidateCache::EnvForcesOff()) {
      GTEST_SKIP() << "CSI_CANDIDATE_CACHE forces the cache off";
    }
  }

  // Enumerates `group` over [0, live edge] with the cache and asserts the
  // result matches a cache-off run at the same state.
  std::vector<GroupCandidate> Enumerate(const DbSnapshot& snap, const TrafficGroup& group,
                                        GroupCandidateCache* cache) {
    GroupSearchConfig off;
    off.k = 0.05;
    off.expected_overhead = 0.005;
    off.expected_fixed_overhead = 0;
    // Keep the per-start DFS budget at its floor so growth revalidation is
    // decided by the delta-size probe alone, not the budget-shift guard
    // (which conservatively invalidates at toy position counts).
    off.max_dfs_nodes = 50'000;
    GroupSearchConfig on = off;
    on.shared_cache = cache;
    bool trunc_on = false;
    bool trunc_off = false;
    const auto cached = EnumerateGroupCandidates(group, snap, on, {}, 0,
                                                 snap.num_positions(), &trunc_on);
    const auto cold = EnumerateGroupCandidates(group, snap, off, {}, 0,
                                               snap.num_positions(), &trunc_off);
    EXPECT_EQ(cached, cold);
    EXPECT_EQ(trunc_on, trunc_off);
    return cached;
  }
};

TEST_F(CandidateCacheInvalidation, AppendOutsideWindowRevalidatesAndHits) {
  const Manifest m = SmallManifest(8);
  LiveChunkDatabase::Options options;
  options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
  LiveChunkDatabase live(m, options);
  GroupCandidateCache cache(1 << 20);
  // video (t0, i3) + one audio chunk.
  const Bytes truth = 1000 + 7 * 3 + 32'000;
  const TrafficGroup group = MakeGroup(2, truth + truth / 300);

  Enumerate(live.Acquire(), group, &cache);
  const auto before = cache.stats();
  EXPECT_GE(before.inserts, 1u);

  // The widest split window tops out at the estimate itself; an append just
  // past it (adjacent, outside) can never enter the output.
  live.ApplyRefresh(UniformAppend(2, group.estimated_total + 1));
  Enumerate(live.Acquire(), group, &cache);
  const auto after = cache.stats();
  EXPECT_GT(after.hits, before.hits) << "outside-window append must revalidate, not recompute";
  EXPECT_EQ(after.invalidations, before.invalidations);
}

TEST_F(CandidateCacheInvalidation, AppendInsideWindowInvalidates) {
  const Manifest m = SmallManifest(8);
  LiveChunkDatabase::Options options;
  options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
  LiveChunkDatabase live(m, options);
  GroupCandidateCache cache(1 << 20);
  const Bytes truth = 1000 + 7 * 3 + 32'000;
  const TrafficGroup group = MakeGroup(2, truth + truth / 300);

  Enumerate(live.Acquire(), group, &cache);
  const auto before = cache.stats();

  // An append at the window's upper boundary (adjacent, inside) could become
  // a candidate: the entry must drop and the fresh result must see the new
  // position.
  live.ApplyRefresh(UniformAppend(2, group.estimated_total));
  const auto fresh = Enumerate(live.Acquire(), group, &cache);
  const auto after = cache.stats();
  EXPECT_GT(after.invalidations, before.invalidations);
  EXPECT_EQ(after.hits, before.hits) << "inside-window append must not serve the stale set";
  // The re-inserted entry is anchored at the new state and hits again.
  Enumerate(live.Acquire(), group, &cache);
  EXPECT_GT(cache.stats().hits, after.hits);
  (void)fresh;
}

TEST_F(CandidateCacheInvalidation, CompactionHidingAppendsInvalidates) {
  const Manifest m = SmallManifest(8);
  LiveChunkDatabase::Options options;
  options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
  LiveChunkDatabase live(m, options);
  GroupCandidateCache cache(1 << 20);
  const Bytes truth = 1000 + 7 * 3 + 32'000;
  const TrafficGroup group = MakeGroup(2, truth + truth / 300);

  Enumerate(live.Acquire(), group, &cache);
  const auto before = cache.stats();

  // Outside-window append, normally revalidatable — but compaction folds it
  // into the base where the one-sided probe can no longer see it.
  live.ApplyRefresh(UniformAppend(2, group.estimated_total + 1));
  live.CompactNow();
  Enumerate(live.Acquire(), group, &cache);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_GT(after.invalidations, before.invalidations);
}

TEST_F(CandidateCacheInvalidation, CompactionWithoutAppendsKeepsEntries) {
  const Manifest m = SmallManifest(8);
  LiveChunkDatabase::Options options;
  options.compact_after_delta_chunks = std::numeric_limits<size_t>::max();
  LiveChunkDatabase live(m, options);
  GroupCandidateCache cache(1 << 20);
  const Bytes truth = 1000 + 7 * 3 + 32'000;
  const TrafficGroup group = MakeGroup(2, truth + truth / 300);

  // Entry computed at a state that already includes the append...
  live.ApplyRefresh(UniformAppend(2, group.estimated_total + 1));
  Enumerate(live.Acquire(), group, &cache);
  const auto before = cache.stats();

  // ...stays valid across a compaction: same positions, same data, new
  // published state (epoch reuse after compaction).
  live.CompactNow();
  Enumerate(live.Acquire(), group, &cache);
  const auto after = cache.stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.invalidations, before.invalidations);
}

// --- Eviction stays under the byte budget ---------------------------------

TEST(CandidateCacheEviction, NeverExceedsByteBudgetUnderLoad) {
  if (GroupCandidateCache::EnvForcesOff()) {
    GTEST_SKIP() << "CSI_CANDIDATE_CACHE forces the cache off";
  }
  const Manifest m = SmallManifest(12);
  const ChunkDatabase db(&m);
  const DbSnapshot snap(db);
  constexpr size_t kBudget = 64 * 1024;
  GroupCandidateCache cache(kBudget, /*shards=*/2);
  GroupSearchConfig config;
  config.k = 0.05;
  config.shared_cache = &cache;

  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    // Distinct estimates make distinct keys; many land real candidate sets.
    const Bytes truth = 1000 + 7 * static_cast<Bytes>(rng.UniformInt(0, 11)) + 32'000;
    const TrafficGroup group =
        MakeGroup(static_cast<int>(rng.UniformInt(1, 4)), truth + static_cast<Bytes>(i));
    bool truncated = false;
    EnumerateGroupCandidates(group, snap, config, {}, 0, snap.num_positions(), &truncated);
    ASSERT_LE(cache.stats().bytes, kBudget) << "after insert " << i;
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.evictions, 0u) << "load must overflow the budget and evict";
  EXPECT_LE(stats.bytes, kBudget);
}

// --- Concurrent readers racing a live publisher (TSan) --------------------

TEST(CandidateCacheConcurrency, SharedCacheHammeredByReadersWhileRefreshing) {
  ThreadPool pool(2);
  std::vector<Bytes> palette;
  Rng setup_rng(42);
  Manifest m = SmallManifest(10);
  LiveChunkDatabase::Options options;
  options.pool = &pool;
  options.compact_after_delta_chunks = 6;
  options.background_compaction = true;
  LiveChunkDatabase live(m, options);
  GroupCandidateCache cache(4ull * 1024 * 1024);

  std::vector<QueryCase> cases = MakeQueryCases(&setup_rng, m, 32'000);
  GroupSearchConfig config;
  config.k = 0.05;
  config.shared_cache = &cache;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        const DbSnapshot snap = live.Acquire();
        const QueryCase& qc = cases[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(cases.size()) - 1))];
        const int hi = qc.open ? snap.num_positions() : qc.hi;
        bool trunc_on = false;
        bool trunc_off = false;
        GroupSearchConfig off = config;
        off.shared_cache = nullptr;
        const auto on =
            EnumerateGroupCandidates(qc.group, snap, config, {}, qc.lo, hi, &trunc_on);
        const auto cold =
            EnumerateGroupCandidates(qc.group, snap, off, {}, qc.lo, hi, &trunc_off);
        // Both ran against the same pinned snapshot: identity must hold even
        // while publishes land concurrently.
        if (on != cold || trunc_on != trunc_off) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  Rng writer_rng(7);
  for (int r = 0; r < 12; ++r) {
    live.ApplyRefresh(
        RandomRefresh(&writer_rng, m.num_video_tracks(), 2, &palette));
    if (r % 5 == 4) {
      live.CompactNow();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  live.WaitForCompaction();
}

// --- Batch-level identity and warm-start ----------------------------------

// The shared multi-design golden digests must hold with the candidate cache
// on and off — same constants inference_e2e_test locks, so a cache bug that
// moves output is pinned to the cache, not the pipeline.
TEST(CandidateCacheBatch, GoldenDigestsHoldWithCacheOnAndOff) {
  for (const DesignType design :
       {DesignType::kCH, DesignType::kSH, DesignType::kCQ, DesignType::kSQ}) {
    infer::BatchConfig off;
    off.threads = 4;
    off.candidate_cache_mb = 0;
    EXPECT_EQ(testutil::DigestResults(testutil::AnalyzeFixedBatch(design)),
              testutil::GoldenBatchDigest(design))
        << DesignTypeName(design) << " cache on";
    EXPECT_EQ(testutil::DigestResults(testutil::AnalyzeFixedBatch(design, off)),
              testutil::GoldenBatchDigest(design))
        << DesignTypeName(design) << " cache off";
  }
}

TEST(CandidateCacheBatch, SqBatchIdenticalWithCacheOnOffAndWarm) {
  using testbed::MakeAssetForDesign;
  const TimeUs duration = 60 * kUsPerSec;
  const media::Manifest manifest = MakeAssetForDesign(DesignType::kSQ, 1, duration);
  std::vector<capture::CaptureTrace> traces;
  for (int i = 0; i < 3; ++i) {
    testbed::SessionConfig sc;
    sc.design = DesignType::kSQ;
    sc.manifest = &manifest;
    sc.downlink = nettrace::StableTrace("s", (4 + i) * kMbps);
    sc.duration = duration;
    sc.seed = 100 + static_cast<uint64_t>(i);
    traces.push_back(testbed::RunStreamingSession(sc).capture);
  }
  // Duplicate the list: the second half re-analyzes the same captures, which
  // is the cross-trace amortization the cache exists for.
  const size_t unique = traces.size();
  for (size_t i = 0; i < unique; ++i) {
    traces.push_back(traces[i]);
  }

  InferenceConfig config;
  config.design = DesignType::kSQ;
  BatchConfig cache_on;
  cache_on.threads = 2;
  // Keep the result tier out of the way: it would serve the duplicated back
  // half wholesale and starve the candidate-tier warm-hit stats under test.
  cache_on.caches.result.enabled = false;
  BatchConfig cache_off;
  cache_off.threads = 2;
  cache_off.candidate_cache_mb = 0;
  cache_off.caches.result.enabled = false;

  BatchAnalyzer with_cache(&manifest, config, cache_on);
  BatchAnalyzer without_cache(&manifest, config, cache_off);
  const auto on = with_cache.AnalyzeAll(traces);
  const auto off = without_cache.AnalyzeAll(traces);
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "trace " << i;
  }

  EXPECT_EQ(without_cache.candidate_cache(), nullptr);
  if (!GroupCandidateCache::EnvForcesOff()) {
    ASSERT_NE(with_cache.candidate_cache(), nullptr);
    const auto stats = with_cache.candidate_cache()->stats();
    EXPECT_GT(stats.hits, 0u) << "duplicate traces must warm-start from the shared cache";
    // A second batch over the same traces starts warm.
    const uint64_t hits_after_first = stats.hits;
    const auto again = with_cache.AnalyzeAll(traces);
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i], off[i]) << "warm trace " << i;
    }
    EXPECT_GT(with_cache.candidate_cache()->stats().hits, hits_after_first);
  }
}

}  // namespace
}  // namespace csi::infer
